// mhp_run: execute declarative scenarios and campaigns from the command
// line.
//
//   mhp_run scenario.json                   run, report to stdout
//   mhp_run scenario.json --out report.json run, report to a file
//   mhp_run scenario.json --profile-out t.json   profile the run, write
//                                           Chrome trace-event JSON
//   mhp_run scenario.json --samples-out s.jsonl  sim-time metric samples
//   mhp_run --validate-only a.json b.json   parse + validate, run nothing
//   mhp_run --validate-trace trace.json     strict-parse an emitted trace
//   mhp_run --dump-defaults [stack]         print the fully-defaulted
//                                           scenario (polling default)
//   mhp_run --campaign campaign.json --out-dir DIR [--workers N]
//
// Campaign service (the long-lived daemon and its clients):
//   mhp_run --serve --socket /run/mhp.sock --out-dir jobs [--workers N]
//           [--queue-cap N]                 serve submissions until
//                                           shutdown (SIGINT/SIGTERM
//                                           drain + flush gracefully)
//   mhp_run --submit file.json --connect /run/mhp.sock [--out report.json]
//                                           submit a scenario/campaign,
//                                           stream its results
//   mhp_run --ctl status|drain|shutdown --connect /run/mhp.sock
//
// Exit codes: 0 success, 1 runtime/validation failure, 2 usage error,
// 3 server backpressure (queue_full), 130 interrupted (manifest flushed
// for resume).
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "exp/flags.hpp"
#include "obs/report_json.hpp"
#include "scenario/campaign.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace mhp;

// Graceful-interrupt plumbing: the handler only flips atomics (and asks
// a serving instance to stop), so it is async-signal-safe.  Batch mode
// stops dispatching new campaign points and flushes manifests; serve
// mode drains in-flight points and flushes every job.
std::atomic<bool> g_interrupt{false};
serve::Server* g_server = nullptr;

extern "C" void on_interrupt(int) {
  g_interrupt.store(true, std::memory_order_relaxed);
  if (g_server != nullptr) g_server->request_stop();
}

void install_interrupt_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_interrupt;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int dump_defaults(const std::string& stack_name) {
  scenario::StackKind stack = scenario::StackKind::kPolling;
  if (stack_name == "multi_cluster")
    stack = scenario::StackKind::kMultiCluster;
  else if (stack_name == "smac")
    stack = scenario::StackKind::kSmac;
  else if (stack_name != "polling") {
    std::fprintf(stderr,
                 "mhp_run: unknown stack \"%s\" (polling, multi_cluster, "
                 "smac)\n",
                 stack_name.c_str());
    return 2;
  }
  const obs::Json doc =
      scenario::scenario_to_json(scenario::default_scenario(stack));
  std::printf("%s\n", doc.dump(2).c_str());
  return 0;
}

int validate_only(const std::vector<std::string>& paths) {
  int bad = 0;
  for (const std::string& path : paths) {
    try {
      const obs::Json doc = obs::parse_json(read_file(path));
      // A top-level "base" key marks a campaign file; everything else
      // must be a plain scenario.
      if (doc.is_object() && doc.find("base") != nullptr) {
        const std::filesystem::path dir =
            std::filesystem::path(path).parent_path();
        const scenario::Campaign campaign = scenario::parse_campaign(
            doc, [&dir](const std::string& base) {
              return read_file((dir / base).string());
            });
        std::printf("%s: ok (campaign, %zu points)\n", path.c_str(),
                    scenario::expand_campaign(campaign).size());
      } else {
        scenario::parse_scenario(doc);
        std::printf("%s: ok\n", path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

/// Strict validation of an emitted Chrome trace-event file: it must
/// parse with the obs::Json parser and hold a non-empty "traceEvents"
/// array whose entries all carry the mandatory event keys.
int validate_trace(const std::vector<std::string>& paths) {
  int bad = 0;
  for (const std::string& path : paths) {
    try {
      const obs::Json doc = obs::parse_json(read_file(path));
      const obs::Json* events =
          doc.is_object() ? doc.find("traceEvents") : nullptr;
      if (events == nullptr || !events->is_array())
        throw std::runtime_error("no \"traceEvents\" array");
      std::size_t spans = 0;
      for (std::size_t i = 0; i < events->size(); ++i) {
        const obs::Json& e = events->at(i);
        if (!e.is_object() || e.find("ph") == nullptr ||
            e.find("pid") == nullptr || e.find("tid") == nullptr ||
            e.find("name") == nullptr)
          throw std::runtime_error("traceEvents[" + std::to_string(i) +
                                   "]: missing ph/pid/tid/name");
        if (e.find("ph")->as_string() == "X") ++spans;
      }
      if (spans == 0)
        throw std::runtime_error("no complete (\"ph\":\"X\") span events");
      std::printf("%s: ok (%zu events, %zu spans)\n", path.c_str(),
                  events->size(), spans);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int run_one(const std::string& path, const std::string& out,
            std::optional<std::size_t> workers,
            const std::string& profile_out, const std::string& samples_out) {
  scenario::Scenario s = scenario::parse_scenario_text(read_file(path));
  // --workers on a single run overrides the scenario's routing worker
  // count (reports are byte-identical for any value).
  if (workers.has_value()) s.route_workers = *workers;

  scenario::RunScenarioOptions opts;
  std::ofstream trace_file, samples_file;
  if (!profile_out.empty()) {
    // The flag both requests the artifact and turns profiling on, so a
    // stock scenario file profiles without editing.
    s.profile = true;
    trace_file.open(profile_out);
    if (!trace_file.is_open())
      throw std::runtime_error("cannot open " + profile_out);
    opts.trace_out = &trace_file;
  }
  if (!samples_out.empty()) {
    if (s.sample_period <= Time::zero())
      s.sample_period = Time::seconds(1.0);
    samples_file.open(samples_out);
    if (!samples_file.is_open())
      throw std::runtime_error("cannot open " + samples_out);
    opts.samples_out = &samples_file;
  }

  const obs::Json report = scenario::run_scenario(s, opts);
  if (out.empty()) {
    std::printf("%s\n", report.dump(2).c_str());
    return 0;
  }
  return obs::save_json(out, report) ? 0 : 1;
}

int run_campaign_file(const std::string& path, const std::string& out_dir,
                      std::size_t workers) {
  // "base": "fig7a.json" resolves relative to the campaign file.
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  const scenario::Campaign campaign = scenario::parse_campaign(
      obs::parse_json(read_file(path)), [&dir](const std::string& base) {
        return read_file((dir / base).string());
      });
  // SIGINT/SIGTERM stop dispatching new points; finished points are
  // already flushed, so a rerun resumes from the manifest.
  install_interrupt_handlers();
  const scenario::CampaignResult r = scenario::run_campaign(
      campaign, out_dir, workers, stdout, &g_interrupt);
  std::printf(
      "campaign: %zu point(s): %zu ok, %zu failed, %zu skipped "
      "(results in %s)\n",
      r.total, r.ok, r.failed, r.skipped, out_dir.c_str());
  if (r.interrupted > 0) {
    std::printf(
        "campaign: interrupted — %zu point(s) not started; manifest "
        "flushed, rerun to resume\n",
        r.interrupted);
    return 130;
  }
  return r.failed == 0 ? 0 : 1;
}

int serve_main(const exp::Flags& flags) {
  serve::ServeConfig cfg;
  cfg.socket_path = flags.value("--socket");
  if (cfg.socket_path.empty()) {
    std::fprintf(stderr, "mhp_run: --serve needs --socket PATH\n");
    return 2;
  }
  cfg.out_root = flags.value("--out-dir", "mhp_jobs");
  cfg.workers = flags.count_value("--workers", 0);
  cfg.queue_capacity = flags.count_value("--queue-cap", 256);
  if (cfg.queue_capacity == 0) {
    std::fprintf(stderr, "mhp_run: --queue-cap must be >= 1\n");
    return 2;
  }
  cfg.log = stdout;

  serve::Server server(cfg);
  server.start();
  g_server = &server;
  install_interrupt_handlers();
  server.run();
  g_server = nullptr;
  return 0;
}

int ctl_main(const std::string& op, const std::string& connect_path) {
  if (op != "status" && op != "drain" && op != "shutdown") {
    std::fprintf(stderr,
                 "mhp_run: --ctl takes status, drain or shutdown\n");
    return 2;
  }
  serve::Client client = serve::Client::connect(connect_path);
  const obs::Json response =
      client.request(obs::Json::object().set("op", obs::Json(op)));
  std::printf("%s\n", response.dump(2).c_str());
  const obs::Json* status = response.find("status");
  return status != nullptr && status->is_string() &&
                 status->as_string() == "ok"
             ? 0
             : 1;
}

int submit_main(const std::string& path, const std::string& connect_path,
                const std::string& out) {
  obs::Json doc = obs::parse_json(read_file(path));
  // Campaign "base" file references resolve client-side: the server
  // only accepts self-contained documents.
  doc = serve::inline_campaign_base(
      std::move(doc), std::filesystem::path(path).parent_path().string());

  serve::Client client = serve::Client::connect(connect_path);
  const obs::Json response = client.submit(std::move(doc));
  const std::string& status = response.at("status").as_string();
  if (status == "queue_full") {
    std::fprintf(stderr,
                 "mhp_run: server queue full (%lld in flight, capacity "
                 "%lld) — retry later\n",
                 static_cast<long long>(response.at("pending").as_int()),
                 static_cast<long long>(response.at("capacity").as_int()));
    return 3;
  }
  if (status != "ok") {
    const obs::Json* error = response.find("error");
    std::fprintf(stderr, "mhp_run: submission rejected (%s): %s\n",
                 status.c_str(),
                 error != nullptr && error->is_string()
                     ? error->as_string().c_str()
                     : "(no detail)");
    return 1;
  }

  const std::string& job = response.at("job").as_string();
  const std::size_t total = response.at("points").as_uint();
  std::printf("submitted %s as %s (%zu point(s), durable under %s)\n",
              path.c_str(), job.c_str(), total,
              response.at("dir").as_string().c_str());

  std::size_t seen = 0, failed = 0;
  bool done = false, have_report = false;
  obs::Json last_report;
  while (auto frame = client.next_frame()) {
    const obs::Json* kind = frame->find("frame");
    const obs::Json* frame_job = frame->find("job");
    if (kind == nullptr || frame_job == nullptr ||
        frame_job->as_string() != job)
      continue;
    if (kind->as_string() == "result") {
      ++seen;
      const std::string& point_status = frame->at("status").as_string();
      std::printf("serve: [%zu/%zu] %s %s\n", seen, total,
                  point_status.c_str(),
                  frame->at("key").as_string().c_str());
      if (point_status == "failed")
        std::fprintf(stderr, "mhp_run: point failed: %s\n",
                     frame->at("error").as_string().c_str());
      if (const obs::Json* report = frame->find("report")) {
        last_report = *report;
        have_report = true;
      }
    } else if (kind->as_string() == "done") {
      failed = frame->at("failed").as_uint();
      done = true;
      break;
    }
  }
  if (!done) {
    std::fprintf(stderr,
                 "mhp_run: server connection lost mid-stream (durable "
                 "results survive; resubmit to resume)\n");
    return 1;
  }
  if (!out.empty()) {
    if (total != 1 || !have_report) {
      std::fprintf(stderr,
                   "mhp_run: --out needs a single-scenario submission "
                   "that produced a report\n");
      return 1;
    }
    return obs::save_json(out, last_report) ? 0 : 1;
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Flags flags(
      "run declarative scenario / campaign files (JSON) and emit reports");
  flags.flag("--validate-only", "parse and validate inputs, run nothing")
      .flag("--validate-trace",
            "strict-parse Chrome trace-event files, run nothing")
      .flag("--dump-defaults", "print the fully-defaulted scenario schema")
      .flag("--campaign", "treat the input as a campaign file")
      .flag("--serve", "run the campaign service daemon (needs --socket)")
      .flag("--submit",
            "submit the input to a serving mhp_run (needs --connect)")
      .option("--ctl", "OP",
              "send a control op (status|drain|shutdown) to a server")
      .option("--socket", "PATH", "UNIX socket the daemon listens on")
      .option("--connect", "PATH", "UNIX socket of the server to talk to")
      .option("--queue-cap", "N",
              "serve mode: max in-system points before queue_full "
              "(default 256)")
      .option("--out", "FILE", "write the scenario report here")
      .option("--out-dir", "DIR", "campaign output directory (default: .)")
      .option("--profile-out", "FILE",
              "profile the run and write Chrome trace-event JSON here")
      .option("--samples-out", "FILE",
              "write sim-time metric samples (JSONL) here")
      .option("--workers", "N",
              "campaign worker threads, or routing workers for a single "
              "run (0 = all cores)")
      .positional("file", 0, 64);
  flags.parse(argc, argv);

  try {
    if (flags.has("--dump-defaults")) {
      const std::string stack =
          flags.args().empty() ? "polling" : flags.args().front();
      return dump_defaults(stack);
    }
    if (flags.has("--validate-only")) {
      if (flags.args().empty()) {
        std::fprintf(stderr, "mhp_run: --validate-only needs input files\n");
        return 2;
      }
      return validate_only(flags.args());
    }
    if (flags.has("--validate-trace")) {
      if (flags.args().empty()) {
        std::fprintf(stderr, "mhp_run: --validate-trace needs input files\n");
        return 2;
      }
      return validate_trace(flags.args());
    }
    if (flags.has("--serve")) {
      if (!flags.args().empty()) {
        std::fprintf(stderr, "mhp_run: --serve takes no input files\n");
        return 2;
      }
      return serve_main(flags);
    }
    if (flags.has("--ctl")) {
      if (!flags.args().empty()) {
        std::fprintf(stderr, "mhp_run: --ctl takes no input files\n");
        return 2;
      }
      if (!flags.has("--connect")) {
        std::fprintf(stderr, "mhp_run: --ctl needs --connect PATH\n");
        return 2;
      }
      return ctl_main(flags.value("--ctl"), flags.value("--connect"));
    }
    if (flags.has("--submit")) {
      if (flags.args().size() != 1) {
        std::fprintf(stderr,
                     "mhp_run: --submit needs exactly one input file\n");
        return 2;
      }
      if (!flags.has("--connect")) {
        std::fprintf(stderr, "mhp_run: --submit needs --connect PATH\n");
        return 2;
      }
      return submit_main(flags.args().front(), flags.value("--connect"),
                         flags.value("--out"));
    }
    if (flags.args().size() != 1) {
      std::fprintf(stderr, "mhp_run: expected exactly one input file "
                           "(see --help)\n");
      return 2;
    }
    if (flags.has("--campaign")) {
      return run_campaign_file(flags.args().front(),
                               flags.value("--out-dir", "."),
                               flags.count_value("--workers", 0));
    }
    return run_one(flags.args().front(), flags.value("--out"),
                   flags.has("--workers")
                       ? std::optional(flags.count_value("--workers", 0))
                       : std::nullopt,
                   flags.value("--profile-out", ""),
                   flags.value("--samples-out", ""));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mhp_run: %s\n", e.what());
    return 1;
  }
}
