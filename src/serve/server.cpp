#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/report_json.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"
#include "util/assertx.hpp"

namespace mhp::serve {

namespace {

using obs::Json;

/// A validated submission, ready for admission.
struct Parsed {
  std::string name;
  std::string canonical;  // durable-identity hash input
  std::vector<scenario::CampaignPoint> points;
};

/// Strict validation: campaigns (a "base" key) go through parse_campaign,
/// everything else through parse_scenario.  Both reject with the exact
/// dotted-path error the CLI would print.  Campaign bases must be inline
/// objects over the wire — the client resolves file paths before sending.
Parsed parse_submission(const Json& doc) {
  if (!doc.is_object())
    throw scenario::ScenarioError("submit.doc: expected object");
  Parsed p;
  if (doc.find("base") != nullptr) {
    const scenario::Campaign campaign = scenario::parse_campaign(
        doc, [](const std::string& path) -> std::string {
          throw scenario::ScenarioError(
              "campaign.base: file path \"" + path +
              "\" cannot be resolved server-side; inline the base object "
              "(mhp_run --submit does this automatically)");
        });
    p.name = campaign.name;
    p.canonical = campaign.base.dump();
    p.points = expand_campaign(campaign);
    for (const scenario::CampaignPoint& pt : p.points) {
      p.canonical += '\n';
      p.canonical += pt.key;
    }
    return p;
  }
  const scenario::Scenario s = scenario::parse_scenario(doc);
  p.name = s.name;
  Json canonical = scenario::scenario_to_json(s);
  p.canonical = canonical.dump();
  p.points.push_back(scenario::CampaignPoint{"base", std::move(canonical)});
  return p;
}

Json response_base(const char* op, const char* status) {
  return Json::object().set("op", Json(op)).set("status", Json(status));
}

Json stats_to_json(const ServeStats& s) {
  return Json::object()
      .set("submissions_ok", Json(s.submissions_ok))
      .set("rejected_invalid", Json(s.rejected_invalid))
      .set("rejected_full", Json(s.rejected_full))
      .set("points_ok", Json(s.points_ok))
      .set("points_failed", Json(s.points_failed))
      .set("points_skipped", Json(s.points_skipped))
      .set("points_cancelled", Json(s.points_cancelled));
}

}  // namespace

std::string content_hash_hex(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char out[17];
  static const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[h & 0xf];
    h >>= 4;
  }
  out[16] = '\0';
  return std::string(out);
}

std::string job_dir_name(const std::string& name, const std::string& hash) {
  std::string safe;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe.push_back(ok ? c : '_');
  }
  if (safe.empty()) safe = "job";
  return safe + "-" + hash;
}

bool Server::Connection::send(const Json& doc) {
  if (closed.load(std::memory_order_relaxed)) return false;
  const std::lock_guard lock(write_mu);
  if (!sock.send_line(doc.dump())) {
    closed.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Server::Server(ServeConfig config) : cfg_(std::move(config)) {
  pool_ = std::make_unique<ThreadPool>(cfg_.workers);
}

Server::~Server() {
  request_stop();
  // The pool destructor runs every queued task; abort_pending_ makes the
  // unstarted ones cheap no-ops while in-flight points finish and flush.
  pool_.reset();
  {
    const std::lock_guard lock(conn_mu_);
    for (const auto& c : conns_) {
      c->closed.store(true, std::memory_order_relaxed);
      c->sock.shutdown_both();
    }
  }
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  if (listener_.valid()) {
    listener_.close();
    ::unlink(cfg_.socket_path.c_str());
  }
}

void Server::start() {
  MHP_REQUIRE(!cfg_.socket_path.empty(), "serve: empty socket path");
  std::filesystem::create_directories(cfg_.out_root);
  listener_ = listen_unix(cfg_.socket_path);
}

void Server::request_stop() {
  abort_pending_.store(true, std::memory_order_relaxed);
  draining_.store(true, std::memory_order_relaxed);
  stop_accept_.store(true, std::memory_order_relaxed);
}

ServeStats Server::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

void Server::log_line(const char* fmt, ...) {
  if (cfg_.log == nullptr) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(cfg_.log, fmt, args);
  va_end(args);
  std::fputc('\n', cfg_.log);
  std::fflush(cfg_.log);
}

void Server::run() {
  MHP_REQUIRE(listener_.valid(), "Server::run before start()");
  log_line("serve: listening on %s (queue capacity %zu, %zu worker(s))",
           cfg_.socket_path.c_str(), cfg_.queue_capacity,
           pool_->worker_count());

  while (!stop_accept_.load(std::memory_order_relaxed)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>(Socket(fd));
    const std::lock_guard lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { handle_connection(conn); });
  }

  // Graceful exit: whatever triggered the stop (shutdown op or signal),
  // every dispatched point finishes and flushes its manifest line before
  // the listener goes away.  abort_pending_ (signal path) short-circuits
  // queued points so the drain is prompt.
  draining_.store(true, std::memory_order_relaxed);
  wait_drained();
  pool_->wait_idle();

  {
    const std::lock_guard lock(conn_mu_);
    for (const auto& c : conns_) {
      c->closed.store(true, std::memory_order_relaxed);
      c->sock.shutdown_both();
    }
  }
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  conn_threads_.clear();

  listener_.close();
  ::unlink(cfg_.socket_path.c_str());
  const ServeStats s = stats();
  log_line(
      "serve: shut down (%llu submission(s): %llu points ok, %llu failed, "
      "%llu skipped, %llu cancelled; rejected %llu invalid, %llu full)",
      static_cast<unsigned long long>(s.submissions_ok),
      static_cast<unsigned long long>(s.points_ok),
      static_cast<unsigned long long>(s.points_failed),
      static_cast<unsigned long long>(s.points_skipped),
      static_cast<unsigned long long>(s.points_cancelled),
      static_cast<unsigned long long>(s.rejected_invalid),
      static_cast<unsigned long long>(s.rejected_full));
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  LineReader reader(conn->sock.fd());
  while (auto line = reader.next()) {
    if (line->empty()) continue;
    Json request;
    try {
      request = obs::parse_json(*line);
    } catch (const obs::JsonParseError& e) {
      conn->send(response_base("?", "bad_request")
                     .set("error", Json(std::string(e.what()))));
      continue;
    }
    bool shutdown_after = false;
    const Json response = handle_request(conn, request, shutdown_after);
    if (!response.is_null()) conn->send(response);
    if (shutdown_after) {
      stop_accept_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  conn->closed.store(true, std::memory_order_relaxed);
  conn->sock.shutdown_both();
}

Json Server::handle_request(const std::shared_ptr<Connection>& conn,
                            const Json& request, bool& shutdown_after) {
  const Json* op = request.is_object() ? request.find("op") : nullptr;
  if (op == nullptr || !op->is_string())
    return response_base("?", "bad_request")
        .set("error", Json("request must be an object with a string "
                           "\"op\""));
  const std::string& name = op->as_string();
  if (name == "submit") {
    handle_submit(conn, request);  // sends its own response + frames
    return Json();
  }
  if (name == "status") return handle_status();
  if (name == "cancel") return handle_cancel(request);
  if (name == "drain") {
    draining_.store(true, std::memory_order_relaxed);
    wait_drained();
    return response_base("drain", "ok").set("pending", Json(0));
  }
  if (name == "shutdown") {
    draining_.store(true, std::memory_order_relaxed);
    wait_drained();
    shutdown_after = true;
    return response_base("shutdown", "ok");
  }
  return response_base(name.c_str(), "bad_request")
      .set("error", Json("unknown op \"" + name + "\""));
}

void Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           const Json& request) {
  const Json* doc = request.find("doc");
  if (doc == nullptr) {
    conn->send(response_base("submit", "bad_request")
                   .set("error", Json("submit: missing \"doc\"")));
    return;
  }

  // Admission validation: the strict parsers reject with the exact
  // dotted-path error, before anything is queued or written.
  Parsed parsed;
  try {
    parsed = parse_submission(*doc);
  } catch (const std::exception& e) {
    {
      const std::lock_guard lock(mu_);
      ++stats_.rejected_invalid;
    }
    conn->send(response_base("submit", "invalid")
                   .set("error", Json(std::string(e.what()))));
    return;
  }

  // Durable identity: same document → same directory → manifest resume,
  // whether the previous attempt ran under this server or an earlier one.
  const std::string dir =
      cfg_.out_root + "/" +
      job_dir_name(parsed.name, content_hash_hex(parsed.canonical));
  std::filesystem::create_directories(dir);

  const auto manifest = scenario::read_keyed_jsonl(dir + "/manifest.jsonl");
  const auto point_done = [&manifest](const std::string& key) {
    for (const auto& [k, entry] : manifest) {
      if (k != key) continue;
      const Json* status = entry.find("status");
      return status != nullptr && status->is_string() &&
             status->as_string() == "ok";
    }
    return false;
  };
  std::vector<scenario::CampaignPoint> runnable;
  std::vector<std::string> skipped;
  for (scenario::CampaignPoint& pt : parsed.points) {
    if (point_done(pt.key))
      skipped.push_back(pt.key);
    else
      runnable.push_back(std::move(pt));
  }

  std::ofstream results_out(dir + "/results.jsonl", std::ios::app);
  std::ofstream manifest_out(dir + "/manifest.jsonl", std::ios::app);
  if (!results_out.is_open() || !manifest_out.is_open()) {
    conn->send(response_base("submit", "error")
                   .set("error", Json("cannot open output files in " + dir)));
    return;
  }

  std::shared_ptr<Job> job;
  {
    const std::lock_guard lock(mu_);
    if (draining_.load(std::memory_order_relaxed)) {
      conn->send(response_base("submit", "draining")
                     .set("error", Json("server is draining; submissions "
                                        "are closed")));
      return;
    }
    for (const auto& other : jobs_) {
      bool active;
      {
        const std::lock_guard jlock(other->mu);
        active = other->done < other->total;
      }
      if (active && other->dir == dir) {
        conn->send(response_base("submit", "busy")
                       .set("error", Json("this submission is already "
                                          "running as " + other->id))
                       .set("job", Json(other->id)));
        return;
      }
    }
    // Bounded queue with explicit backpressure: admission past the cap
    // is a queue_full response, never a blocked client.  The whole
    // submission is admitted atomically or not at all.
    if (pending_ + runnable.size() > cfg_.queue_capacity) {
      ++stats_.rejected_full;
      conn->send(response_base("submit", "queue_full")
                     .set("pending", Json(pending_))
                     .set("capacity", Json(cfg_.queue_capacity)));
      return;
    }
    pending_ += runnable.size();
    job = std::make_shared<Job>();
    job->id = "j" + std::to_string(next_job_id_++);
    jobs_.push_back(job);
    ++stats_.submissions_ok;
    stats_.points_skipped += skipped.size();
  }
  job->name = parsed.name;
  job->dir = dir;
  job->total = parsed.points.size();
  job->client = conn;
  job->results_out = std::move(results_out);
  job->manifest_out = std::move(manifest_out);
  job->skipped = skipped.size();
  job->done = skipped.size();
  job->runnable = std::move(runnable);

  conn->send(response_base("submit", "ok")
                 .set("job", Json(job->id))
                 .set("dir", Json(dir))
                 .set("points", Json(job->total))
                 .set("skipped", Json(job->skipped)));
  log_line("serve: %s admitted \"%s\" (%zu point(s), %zu already complete) "
           "-> %s",
           job->id.c_str(), job->name.c_str(), job->total, job->skipped,
           dir.c_str());

  // Replay completed points from the durable record so a resumed
  // submission still streams every report it asked for.
  if (!skipped.empty()) {
    const auto results = scenario::read_keyed_jsonl(dir + "/results.jsonl");
    for (const std::string& key : skipped) {
      Json frame = Json::object()
                       .set("frame", Json("result"))
                       .set("job", Json(job->id))
                       .set("key", Json(key))
                       .set("status", Json("skipped"));
      double wall_ms = 0.0;
      const Json* report = nullptr;
      for (const auto& [k, entry] : results) {
        if (k != key) continue;
        if (const Json* ms = entry.find("point_wall_ms"))
          if (ms->is_number()) wall_ms = ms->as_double();
        report = entry.find("report");
        break;
      }
      frame.set("point_wall_ms", Json(wall_ms));
      if (report != nullptr) frame.set("report", *report);
      conn->send(frame);
    }
  }

  const std::size_t n = job->runnable.size();
  if (n == 0) {
    finish_job(job);
    return;
  }
  for (std::size_t i = 0; i < n; ++i)
    pool_->submit([this, job, i] { run_point(job, i); });
}

void Server::run_point(const std::shared_ptr<Job>& job, std::size_t index) {
  const scenario::CampaignPoint& point = job->runnable[index];

  std::string status;
  std::string error;
  Json report;
  double wall_ms = 0.0;
  if (abort_pending_.load(std::memory_order_relaxed) ||
      job->cancel.load(std::memory_order_relaxed)) {
    // Not run, not recorded: a resume (same submission, later) reruns it.
    status = "cancelled";
  } else {
    if (cfg_.point_hook) cfg_.point_hook();
    MHP_SPAN("serve/point");
    bool record_perf = true;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      scenario::Scenario s = scenario::parse_scenario(point.doc);
      record_perf = s.run.record_perf;
      // Profiling is process-global; concurrent points would corrupt
      // each other's summaries (same rule as the campaign runner).
      s.profile = false;
      report = scenario::run_scenario(s);
      status = "ok";
    } catch (const std::exception& e) {
      status = "failed";
      error = e.what();
      if (error.empty()) error = "unknown error";
    }
    wall_ms = record_perf
                  ? std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count()
                  : 0.0;
  }

  Json frame = Json::object()
                   .set("frame", Json("result"))
                   .set("job", Json(job->id))
                   .set("key", Json(point.key))
                   .set("status", Json(status))
                   .set("point_wall_ms", Json(wall_ms));
  if (status == "failed") frame.set("error", Json(error));

  bool job_complete = false;
  {
    const std::lock_guard lock(job->mu);
    if (status == "ok") {
      job->results_out << Json::object()
                              .set("key", Json(point.key))
                              .set("scenario", point.doc)
                              .set("point_wall_ms", Json(wall_ms))
                              .set("report", report)
                              .dump()
                       << '\n'
                       << std::flush;
      job->manifest_out << Json::object()
                               .set("key", Json(point.key))
                               .set("status", Json("ok"))
                               .dump()
                        << '\n'
                        << std::flush;
      ++job->ok;
    } else if (status == "failed") {
      job->manifest_out << Json::object()
                               .set("key", Json(point.key))
                               .set("status", Json("failed"))
                               .set("error", Json(error))
                               .dump()
                        << '\n'
                        << std::flush;
      ++job->failed;
    } else {
      ++job->cancelled;
    }
    ++job->done;
    job_complete = job->done == job->total;
    // Send under job->mu: per-job frame order then matches counter
    // order, so the done frame (emitted by whichever worker retires the
    // last point) can never overtake another point's result frame.
    if (status == "ok") frame.set("report", std::move(report));
    job->client->send(frame);
  }

  if (job_complete) finish_job(job);

  {
    const std::lock_guard lock(mu_);
    MHP_REQUIRE(pending_ > 0, "serve: pending underflow");
    --pending_;
    if (status == "ok")
      ++stats_.points_ok;
    else if (status == "failed")
      ++stats_.points_failed;
    else
      ++stats_.points_cancelled;
  }
  drained_cv_.notify_all();
}

void Server::finish_job(const std::shared_ptr<Job>& job) {
  std::size_t ok, failed, skipped, cancelled;
  {
    const std::lock_guard lock(job->mu);
    ok = job->ok;
    failed = job->failed;
    skipped = job->skipped;
    cancelled = job->cancelled;
    // Flush-before-done: once the client sees the done frame, the
    // durable record is complete.
    job->results_out.flush();
    job->manifest_out.flush();
  }
  obs::save_json(job->dir + "/summary.json",
                 scenario::build_campaign_summary(job->name, job->dir,
                                                  job->total));
  job->client->send(Json::object()
                        .set("frame", Json("done"))
                        .set("job", Json(job->id))
                        .set("total", Json(job->total))
                        .set("ok", Json(ok))
                        .set("failed", Json(failed))
                        .set("skipped", Json(skipped))
                        .set("cancelled", Json(cancelled)));
  log_line("serve: %s done (%zu ok, %zu failed, %zu skipped, %zu cancelled)",
           job->id.c_str(), ok, failed, skipped, cancelled);
}

Json Server::handle_status() {
  std::vector<std::shared_ptr<Job>> jobs;
  Json response;
  {
    const std::lock_guard lock(mu_);
    response = response_base("status", "ok")
                   .set("pending", Json(pending_))
                   .set("capacity", Json(cfg_.queue_capacity))
                   .set("draining",
                        Json(draining_.load(std::memory_order_relaxed)))
                   .set("stats", stats_to_json(stats_));
    jobs = jobs_;
  }
  Json list = Json::array();
  for (const auto& job : jobs) {
    const std::lock_guard jlock(job->mu);
    list.push_back(Json::object()
                       .set("job", Json(job->id))
                       .set("name", Json(job->name))
                       .set("dir", Json(job->dir))
                       .set("total", Json(job->total))
                       .set("done", Json(job->done))
                       .set("ok", Json(job->ok))
                       .set("failed", Json(job->failed))
                       .set("skipped", Json(job->skipped))
                       .set("cancelled", Json(job->cancelled)));
  }
  response.set("jobs", std::move(list));
  return response;
}

Json Server::handle_cancel(const Json& request) {
  const Json* id = request.find("job");
  if (id == nullptr || !id->is_string())
    return response_base("cancel", "bad_request")
        .set("error", Json("cancel: missing string \"job\""));
  std::shared_ptr<Job> target;
  {
    const std::lock_guard lock(mu_);
    for (const auto& job : jobs_)
      if (job->id == id->as_string()) target = job;
  }
  if (target == nullptr)
    return response_base("cancel", "unknown_job")
        .set("error", Json("no job \"" + id->as_string() + "\""));
  target->cancel.store(true, std::memory_order_relaxed);
  return response_base("cancel", "ok").set("job", Json(target->id));
}

void Server::wait_drained() {
  std::unique_lock lock(mu_);
  drained_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace mhp::serve
