// Wire layer for the campaign service: AF_UNIX stream sockets carrying
// newline-delimited JSON in both directions.
//
// Requests (client → server), one object per line, tagged with "op":
//   {"op":"submit","doc":<scenario or campaign document>}
//   {"op":"status"}            {"op":"cancel","job":"<id>"}
//   {"op":"drain"}             {"op":"shutdown"}
// Every request gets exactly one response object that echoes "op" and
// carries "status" ("ok", "invalid", "queue_full", "draining",
// "unknown_job", "bad_request").  Result frames (server → client) are
// asynchronous objects tagged with "frame" instead of "op":
//   {"frame":"result","job":...,"key":...,"status":...,
//    "point_wall_ms":...[,"report":...][,"error":...]}
//   {"frame":"done","job":...,"total":...,"ok":...,"failed":...,
//    "skipped":...,"cancelled":...}
// The two tag keys never collide, so one connection can interleave
// request/response turns with streamed results.
#pragma once

#include <optional>
#include <string>

#include "obs/json.hpp"

namespace mhp::serve {

/// Thin owner of a connected socket fd.  Writes loop over partial sends
/// and suppress SIGPIPE (MSG_NOSIGNAL); a peer hangup turns the socket
/// dead rather than killing the process.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Send `line` plus a trailing '\n'.  False when the peer is gone.
  bool send_line(const std::string& line);

  /// Half-close both directions (unblocks a reader on the other side).
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Connect to a listening UNIX socket.  Throws std::runtime_error with
/// the path and errno text on failure.
Socket connect_unix(const std::string& path);

/// Bind + listen on `path`.  A stale socket file from a dead server is
/// unlinked first; a live listener on the same path is an error.
Socket listen_unix(const std::string& path, int backlog = 64);

/// Buffered line reader over a socket: next() returns the next
/// newline-terminated line (without the '\n'), or nullopt on EOF /
/// connection reset.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  std::optional<std::string> next();

 private:
  int fd_;
  std::string buf_;
};

}  // namespace mhp::serve
