// Client side of the campaign service protocol: connect to a serving
// mhp_run, send request objects, and consume the asynchronous result
// frames the server streams back.  Used by `mhp_run --submit/--ctl`,
// the serve tests and the serve_load bench.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace mhp::serve {

class Client {
 public:
  /// Connect to a serving mhp_run.  Throws std::runtime_error when the
  /// socket is absent or refuses.
  static Client connect(const std::string& socket_path);

  /// Send one request and block for its response.  Result frames that
  /// arrive first (from earlier submissions on this connection) are
  /// queued for next_frame(), preserving arrival order.  Throws when
  /// the server closes the connection before responding.
  obs::Json request(const obs::Json& req);

  /// Next streamed frame (queued or read fresh); nullopt once the
  /// server closes the connection.
  std::optional<obs::Json> next_frame();

  /// Convenience: {"op":"submit","doc":doc}.
  obs::Json submit(obs::Json doc);

 private:
  explicit Client(Socket sock)
      : sock_(std::move(sock)), reader_(sock_.fd()) {}

  Socket sock_;
  LineReader reader_;
  std::deque<obs::Json> frames_;
};

/// Inline a campaign's "base" file reference so the document is
/// self-contained for the wire.  `dir` is the directory the campaign
/// file came from (relative bases resolve against it).  Scenario
/// documents and inline-base campaigns pass through untouched.
obs::Json inline_campaign_base(obs::Json doc, const std::string& dir);

}  // namespace mhp::serve
