#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mhp::serve {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("cannot create socket for", path);
  Socket sock(fd);
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    fail("cannot connect to", path);
  return sock;
}

Socket listen_unix(const std::string& path, int backlog) {
  // A socket file left behind by a dead server would make bind() fail
  // forever; probe it with a connect and unlink only when nobody answers.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const sockaddr_un addr = make_addr(path);
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        ::close(probe);
        throw std::runtime_error("a server is already listening on " + path);
      }
      ::close(probe);
    }
    ::unlink(path.c_str());
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("cannot create socket for", path);
  Socket sock(fd);
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("cannot bind", path);
  if (::listen(fd, backlog) != 0) fail("cannot listen on", path);
  return sock;
}

std::optional<std::string> LineReader::next() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;  // EOF or reset; partial tail dropped
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mhp::serve
