#include "serve/client.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mhp::serve {

namespace {

using obs::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

Client Client::connect(const std::string& socket_path) {
  return Client(connect_unix(socket_path));
}

Json Client::request(const Json& req) {
  if (!sock_.send_line(req.dump()))
    throw std::runtime_error("server connection lost while sending");
  for (;;) {
    const auto line = reader_.next();
    if (!line.has_value())
      throw std::runtime_error("server closed the connection before "
                               "responding");
    if (line->empty()) continue;
    Json doc = obs::parse_json(*line);
    if (doc.is_object() && doc.find("frame") != nullptr) {
      frames_.push_back(std::move(doc));
      continue;
    }
    return doc;
  }
}

std::optional<Json> Client::next_frame() {
  if (!frames_.empty()) {
    Json front = std::move(frames_.front());
    frames_.pop_front();
    return front;
  }
  for (;;) {
    const auto line = reader_.next();
    if (!line.has_value()) return std::nullopt;
    if (line->empty()) continue;
    return obs::parse_json(*line);
  }
}

Json Client::submit(Json doc) {
  return request(
      Json::object().set("op", Json("submit")).set("doc", std::move(doc)));
}

Json inline_campaign_base(Json doc, const std::string& dir) {
  if (!doc.is_object()) return doc;
  Json* base = doc.find("base");
  if (base == nullptr || !base->is_string()) return doc;
  const std::filesystem::path path =
      std::filesystem::path(dir) / base->as_string();
  *base = obs::parse_json(read_file(path.string()));
  return doc;
}

}  // namespace mhp::serve
