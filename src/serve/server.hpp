// Campaign service: a long-lived daemon (mhp_run --serve) that accepts
// scenario and campaign submissions over a local UNIX socket, executes
// their points on a shared worker pool behind a bounded admission queue,
// streams per-point results back to the submitting client, and persists
// every job under a durable per-job directory so the campaign layer's
// manifest-resume protocol works across server restarts.
//
// Admission model: a submission is validated (strict scenario parser —
// rejection carries the exact dotted-path error), expanded into points,
// reconciled against its job directory's manifest (completed points are
// replayed as "skipped" frames, not re-run), and admitted atomically:
// if the runnable points would push the in-system point count past
// `queue_capacity`, the whole submission is rejected with "queue_full"
// — the server never blocks a client on a full queue.
//
// Durability: a job's directory name is a pure function of the
// submission's canonical form (name + FNV-1a hash), so resubmitting the
// same document — to the same server or a restarted one — lands in the
// same directory and resumes from its manifest.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "scenario/campaign.hpp"
#include "serve/protocol.hpp"
#include "util/thread_pool.hpp"

namespace mhp::serve {

struct ServeConfig {
  /// UNIX socket path to listen on.
  std::string socket_path;
  /// Root for per-job output directories (created if missing).
  std::string out_root = ".";
  /// Worker threads executing points (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Max points in the system (queued + running) before submissions are
  /// rejected with "queue_full".
  std::size_t queue_capacity = 256;
  /// Progress log (nullable).
  std::FILE* log = nullptr;
  /// Test instrumentation: invoked on the worker thread immediately
  /// before a point executes.  Lets tests hold the queue at a known
  /// depth to exercise backpressure deterministically.
  std::function<void()> point_hook;
};

/// Monotonic counters over the server's lifetime (one snapshot under the
/// engine lock; safe to call from any thread).
struct ServeStats {
  std::uint64_t submissions_ok = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t points_ok = 0;
  std::uint64_t points_failed = 0;
  std::uint64_t points_skipped = 0;    // replayed from a manifest
  std::uint64_t points_cancelled = 0;  // cancel op or server stop
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the configured socket path.  Throws on failure;
  /// once it returns, clients can connect (the accept loop in run()
  /// drains the backlog).
  void start();

  /// Accept/serve loop.  Blocks until a shutdown request or
  /// request_stop(), then drains in-flight points, flushes every job's
  /// manifest and summary, and tears the listener down.
  void run();

  /// Graceful stop from outside the protocol (signal handlers): stop
  /// admitting, abandon queued-but-unstarted points (no manifest lines,
  /// so they rerun on resume), let in-flight points finish and flush.
  /// Only sets flags — safe to call from a signal handler.
  void request_stop();

  ServeStats stats() const;

 private:
  struct Connection {
    Socket sock;
    std::mutex write_mu;
    std::atomic<bool> closed{false};

    explicit Connection(Socket s) : sock(std::move(s)) {}

    /// One frame/response as a single line; a dead peer flips `closed`
    /// and further sends become no-ops (the job still completes to disk).
    bool send(const obs::Json& doc);
  };

  struct Job {
    std::string id;    // server-run handle ("j1", "j2", ...)
    std::string name;  // scenario/campaign name from the document
    std::string dir;   // durable output directory (stable across restarts)
    std::vector<scenario::CampaignPoint> runnable;  // points to execute
    std::size_t total = 0;  // expansion size incl. skipped points
    std::shared_ptr<Connection> client;
    std::mutex mu;  // guards counters + output streams
    std::ofstream results_out, manifest_out;
    std::size_t done = 0, ok = 0, failed = 0, skipped = 0, cancelled = 0;
    std::atomic<bool> cancel{false};
  };

  void handle_connection(const std::shared_ptr<Connection>& conn);
  obs::Json handle_request(const std::shared_ptr<Connection>& conn,
                           const obs::Json& request, bool& shutdown_after);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const obs::Json& request);
  obs::Json handle_status();
  obs::Json handle_cancel(const obs::Json& request);
  void run_point(const std::shared_ptr<Job>& job, std::size_t index);
  void finish_job(const std::shared_ptr<Job>& job);
  void wait_drained();
  void log_line(const char* fmt, ...);

  ServeConfig cfg_;
  Socket listener_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;  // engine state: pending count, jobs, stats
  std::condition_variable drained_cv_;
  std::size_t pending_ = 0;  // admitted, unfinished points (in-system)
  std::vector<std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  ServeStats stats_;

  std::atomic<bool> draining_{false};       // reject new submissions
  std::atomic<bool> stop_accept_{false};    // leave the accept loop
  std::atomic<bool> abort_pending_{false};  // skip queued, unstarted points

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
};

/// FNV-1a 64-bit over `text`, as 16 lowercase hex chars.  Job directory
/// names append this to the submission name.
std::string content_hash_hex(const std::string& text);

/// "name-<hash>" with the name sanitized to [A-Za-z0-9_-] (everything
/// else becomes '_'); empty names become "job".
std::string job_dir_name(const std::string& name, const std::string& hash);

}  // namespace mhp::serve
