#include "fault/fault_injector.hpp"

#include <algorithm>
#include <string>

#include "util/assertx.hpp"

namespace mhp {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan, Trace* trace)
    : sim_(sim), plan_(std::move(plan)), trace_(trace) {}

void FaultInjector::arm() {
  MHP_REQUIRE(!armed_, "fault injector armed twice");
  armed_ = true;
  for (const NodeDeath& d : plan_.deaths()) {
    if (d.cause != NodeDeath::Cause::kScripted) continue;
    MHP_REQUIRE(d.at >= sim_.now(), "scripted death in the past");
    sim_.at(d.at, [this, d] { fire(d); });
  }
}

void FaultInjector::battery_exhausted(NodeId node) {
  for (const NodeDeath& d : plan_.deaths())
    if (d.node == node && d.cause == NodeDeath::Cause::kBattery) {
      fire(d);
      return;
    }
  // Unplanned exhaustion (agent-side budget without a plan entry).
  NodeDeath d;
  d.node = node;
  d.cause = NodeDeath::Cause::kBattery;
  fire(d);
}

void FaultInjector::fire(const NodeDeath& d) {
  if (is_dead(d.node)) return;
  dead_.push_back(d.node);
  if (trace_ != nullptr)
    trace_->record(sim_.now(), TraceCat::kProtocol,
                   "fault: node " + std::to_string(d.node) + " died (" +
                       to_string(d.cause) + ")");
  if (on_death_) on_death_(d);
}

double FaultInjector::link_loss(NodeId from, NodeId to, Time now) const {
  double pass = 1.0;
  for (const LinkDegradation& w : plan_.degradations()) {
    if (now < w.begin || now >= w.end) continue;
    const bool match = (w.a == from && w.b == to) ||
                       (w.a == to && w.b == from);
    if (match) pass *= 1.0 - w.loss;
  }
  return 1.0 - pass;
}

bool FaultInjector::is_dead(NodeId node) const {
  return std::find(dead_.begin(), dead_.end(), node) != dead_.end();
}

}  // namespace mhp
