// Declarative fault plans: which nodes die (and when, or at what energy
// budget) and which links degrade (and for how long).  A FaultPlan is a
// value the experiment harness builds up-front and hands to a simulation
// stack through its config; the runtime-side FaultInjector turns it into
// scheduled events.
//
// An empty plan is the default everywhere and must be behaviourally
// invisible: stacks only install an injector when the plan is non-empty,
// so faults-disabled runs stay byte-identical to builds without this
// subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace mhp {

struct NodeDeath {
  enum class Cause {
    kScripted,  // dies at an absolute sim time
    kBattery,   // dies when cumulative radio energy reaches battery_j
  };
  NodeId node = kNoNode;
  Cause cause = Cause::kScripted;
  Time at = Time::zero();  // kScripted only
  double battery_j = 0.0;  // kBattery only; counted from boot
};

const char* to_string(NodeDeath::Cause cause);

/// Extra frame loss on a symmetric node pair during [begin, end).
struct LinkDegradation {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Time begin = Time::zero();
  Time end = Time::zero();
  double loss = 1.0;  // probability a frame on the link is dropped
};

class FaultPlan {
 public:
  /// Kill `node` at absolute sim time `at`.
  FaultPlan& kill_at(NodeId node, Time at);
  /// Kill `node` once its radio has consumed `battery_j` joules.
  FaultPlan& kill_on_battery(NodeId node, double battery_j);
  /// Drop frames between `a` and `b` (both directions) with probability
  /// `loss` during [begin, end).
  FaultPlan& degrade_link(NodeId a, NodeId b, Time begin, Time end,
                          double loss);

  bool empty() const { return deaths_.empty() && degradations_.empty(); }
  const std::vector<NodeDeath>& deaths() const { return deaths_; }
  const std::vector<LinkDegradation>& degradations() const {
    return degradations_;
  }

 private:
  std::vector<NodeDeath> deaths_;
  std::vector<LinkDegradation> degradations_;
};

/// What the faults did to a run; exported as the report's `degradation`
/// block (present only when a fault plan or recovery was configured).
struct DegradationReport {
  std::uint64_t deaths = 0;           // nodes that actually died
  std::uint64_t deaths_detected = 0;  // deaths the head declared
  std::uint64_t replans = 0;          // successful route repairs
  std::uint64_t orphaned_sensors = 0; // alive but unroutable after repair
  std::vector<NodeId> dead_nodes;     // in death order
  double delivery_before = 0.0;  // delivery ratio up to the first death
  double delivery_after = 0.0;   // from the last repair (or death) on
};

}  // namespace mhp
