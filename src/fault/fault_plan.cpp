#include "fault/fault_plan.hpp"

#include "util/assertx.hpp"

namespace mhp {

const char* to_string(NodeDeath::Cause cause) {
  switch (cause) {
    case NodeDeath::Cause::kScripted:
      return "scripted";
    case NodeDeath::Cause::kBattery:
      return "battery";
  }
  return "?";
}

FaultPlan& FaultPlan::kill_at(NodeId node, Time at) {
  MHP_REQUIRE(node != kNoNode, "death needs a node");
  NodeDeath d;
  d.node = node;
  d.cause = NodeDeath::Cause::kScripted;
  d.at = at;
  deaths_.push_back(d);
  return *this;
}

FaultPlan& FaultPlan::kill_on_battery(NodeId node, double battery_j) {
  MHP_REQUIRE(node != kNoNode, "death needs a node");
  MHP_REQUIRE(battery_j > 0.0, "battery budget must be positive");
  NodeDeath d;
  d.node = node;
  d.cause = NodeDeath::Cause::kBattery;
  d.battery_j = battery_j;
  deaths_.push_back(d);
  return *this;
}

FaultPlan& FaultPlan::degrade_link(NodeId a, NodeId b, Time begin, Time end,
                                   double loss) {
  MHP_REQUIRE(a != kNoNode && b != kNoNode && a != b,
              "degradation needs two distinct nodes");
  MHP_REQUIRE(end > begin, "degradation window must be non-empty");
  MHP_REQUIRE(loss > 0.0 && loss <= 1.0, "loss must be in (0,1]");
  LinkDegradation w;
  w.a = a;
  w.b = b;
  w.begin = begin;
  w.end = end;
  w.loss = loss;
  degradations_.push_back(w);
  return *this;
}

}  // namespace mhp
