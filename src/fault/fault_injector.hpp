// Runtime side of fault injection: schedules a FaultPlan's scripted
// deaths on the simulator, collects battery exhaustions reported by the
// agents, and answers link-degradation queries.
//
// The injector is deliberately stack-agnostic: it knows node ids and sim
// time, nothing about sensors or heads.  The owning simulation installs
// a death handler that applies the death to its own agents and does its
// degradation bookkeeping.
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace mhp {

class FaultInjector {
 public:
  /// `trace` (optional) receives kProtocol entries for each death.
  FaultInjector(Simulator& sim, FaultPlan plan, Trace* trace = nullptr);

  using DeathHandler = std::function<void(const NodeDeath&)>;
  /// Install before arm(); invoked exactly once per node that dies.
  void set_death_handler(DeathHandler fn) { on_death_ = std::move(fn); }

  /// Schedule the plan's scripted deaths.  Battery deaths are driven by
  /// the agents (wired by the owning stack) via battery_exhausted().
  void arm();

  /// An agent's battery budget ran out; fires the death handler.
  void battery_exhausted(NodeId node);

  /// Extra loss probability on the (from, to) link at `now`; 0 outside
  /// every degradation window.  Overlapping windows combine as
  /// independent drops.
  double link_loss(NodeId from, NodeId to, Time now) const;

  bool is_dead(NodeId node) const;
  const std::vector<NodeId>& dead_nodes() const { return dead_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void fire(const NodeDeath& d);

  Simulator& sim_;
  FaultPlan plan_;
  Trace* trace_ = nullptr;
  DeathHandler on_death_;
  bool armed_ = false;
  std::vector<NodeId> dead_;
};

}  // namespace mhp
