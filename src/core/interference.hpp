// Interference knowledge: which groups of transmissions are compatible
// (contention-free when concurrent).
//
// Per §III-B the paper refuses both the protocol (disc) model and the
// power-law physical model: coverage and interference are *arbitrary*, and
// the cluster head learns them by testing groups of at most M transmissions
// (M = 2 or 3).  The scheduler therefore never asks about groups larger
// than M and treats unknown groups as incompatible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "metrics/registry.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"
#include "radio/channel.hpp"
#include "util/geometry.hpp"

namespace mhp {

/// One single-hop transmission from→to.
struct Tx {
  NodeId from = kNoNode;
  NodeId to = kNoNode;

  friend auto operator<=>(const Tx&, const Tx&) = default;
};

/// Canonical key for a transmission group (sorted, duplicate-free).
using TxGroup = std::vector<Tx>;
TxGroup normalize(std::span<const Tx> txs);

/// FNV-1a over the group's endpoint ids — groups are normalized, so equal
/// sets hash equally.  Key type for the CachedOracle's memo table.
struct TxGroupHash {
  std::size_t operator()(const TxGroup& g) const {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const Tx& t : g) {
      mix(static_cast<std::uint64_t>(t.from));
      mix(static_cast<std::uint64_t>(t.to));
    }
    return static_cast<std::size_t>(h);
  }
};

/// Structural feasibility every oracle enforces before its own answer:
/// distinct senders, no node both sending and receiving (half-duplex),
/// no receiver hearing two group members addressed to it.
bool structurally_valid(std::span<const Tx> txs);

class CompatibilityOracle {
 public:
  virtual ~CompatibilityOracle() = default;

  /// Largest group size the oracle has knowledge of.
  virtual int order() const = 0;

  /// True iff the group can run concurrently with every transmission
  /// received.  Groups larger than order() are conservatively incompatible.
  /// Virtual so decorators (CachedOracle) can intercept the whole query.
  virtual bool compatible(std::span<const Tx> txs) const;

 protected:
  /// Answer for a structurally valid, normalized group of size in
  /// [2, order()].  (Singletons are compatible by definition; the empty
  /// group trivially so.)
  virtual bool compatible_impl(const TxGroup& group) const = 0;
};

/// Table-driven oracle for tests and the NP-hardness reductions: compatible
/// pairs (and optionally larger groups) are listed explicitly; a group is
/// compatible iff every subset of size <= `subset_order` that must be
/// checked is present.  By default the table lists *pairs* and a group is
/// compatible iff all its pairs are (exactly the pairwise knowledge the
/// reductions in §III-C construct).
class ExplicitOracle : public CompatibilityOracle {
 public:
  explicit ExplicitOracle(int order = 2) : order_(order) {}

  int order() const override { return order_; }

  /// Declare an unordered pair of transmissions compatible.
  void allow_pair(Tx a, Tx b);

  /// Declare a whole group compatible (adds all its pairs too, so pairwise
  /// screening passes).
  void allow_group(std::span<const Tx> txs);

  /// Mark a specific group incompatible even though its pairs are allowed
  /// (models accumulated interference, Fig. 3).
  void forbid_group(std::span<const Tx> txs);

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  int order_;
  std::set<TxGroup> pairs_;
  std::set<TxGroup> groups_;
  std::set<TxGroup> forbidden_;
};

/// Ground-truth oracle backed by the channel's SINR model: a group is
/// compatible iff every transmission in it decodes under the others'
/// summed interference.  Used as the "reality" the measured oracle probes.
class ChannelOracle : public CompatibilityOracle {
 public:
  ChannelOracle(const Channel& channel, int order)
      : channel_(channel), order_(order) {}

  int order() const override { return order_; }

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  const Channel& channel_;
  int order_;
};

/// The head's measured knowledge (§V-E): probe every group of at most M
/// transmissions drawn from a candidate universe (the transmissions the
/// relaying paths actually use) and memoize the outcomes.  Query cost is a
/// lookup; probing cost (number of groups tested) is what sectoring
/// reduces (§IV).
class MeasuredOracle : public CompatibilityOracle {
 public:
  /// Probes all size-2..M subsets of `universe` against `truth`.
  MeasuredOracle(const CompatibilityOracle& truth,
                 std::span<const Tx> universe, int order);

  int order() const override { return order_; }

  /// Number of groups probed during construction.
  std::uint64_t probes() const { return probes_; }

  /// The number of groups a full probe of a universe of `u` transmissions
  /// at order M would need (the paper's 1320-vs-85320 argument).
  static std::uint64_t probe_count(std::size_t universe_size, int order);

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  int order_;
  std::uint64_t probes_ = 0;
  std::set<TxGroup> compatible_;
};

/// Protocol-model (disc) ground truth: a group is compatible iff every
/// receiver is strictly farther than `interference_range` from every other
/// group member's sender.  The paper refuses this model for the *protocol*
/// (§III-B) — it exists as a cheap geometric stand-in for benches and
/// property tests that need an O(k²) oracle at deployments far larger than
/// SINR evaluation can afford.  `positions[id]` must cover every node a
/// query names (a Deployment's positions vector works as-is).
class DiscModelOracle : public CompatibilityOracle {
 public:
  DiscModelOracle(std::vector<Vec2> positions, double interference_range,
                  int order)
      : positions_(std::move(positions)),
        range_(interference_range),
        order_(order) {}

  int order() const override { return order_; }

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  std::vector<Vec2> positions_;
  double range_;
  int order_;
};

/// Memoizing decorator: caches normalized-group → verdict in a hash map so
/// repeated queries (the greedy scheduler asks about the same slot groups
/// every planning pass) cost one hash lookup instead of the inner oracle's
/// set search or SINR evaluation.  Verdicts are identical to the inner
/// oracle's by construction — wrapping an oracle never changes behaviour,
/// only speed.  Not thread-safe; one instance per simulation, like every
/// other oracle.  The inner oracle must outlive the cache.
class CachedOracle : public CompatibilityOracle {
 public:
  /// Opt-in pair screening and subset closure: before consulting the
  /// memo (or the inner oracle) for a group of three or more, check every
  /// pair of the group against the cache — a cached-incompatible pair
  /// proves the whole group incompatible without a new inner query.
  /// Symmetrically, when the inner oracle declares a larger group
  /// compatible, every pair inside it is seeded into the memo as
  /// compatible (subset closure), so first-plan pair queries hit.  Both
  /// directions are sound only for monotone oracles (a subset of a
  /// compatible group is compatible; a conflicting pair conflicts in
  /// every superset), which holds for SINR-style oracles and structural
  /// validity but NOT for, e.g., an ExplicitOracle that forbids a pair
  /// outright while allowing its supersets — hence opt-in.  Screen
  /// rejections count as hits (they are answered from cached data alone).
  enum class PairScreen { kOff, kOn };

  explicit CachedOracle(const CompatibilityOracle& inner,
                        PairScreen screen = PairScreen::kOff)
      : inner_(inner), screen_(screen) {}

  int order() const override { return inner_.order(); }

  bool compatible(std::span<const Tx> txs) const override;

  /// Additionally tally every hit/miss into registry counters (the sims
  /// bind metric::kOracleCacheHit / kOracleCacheMiss).  nullptr unbinds.
  void bind_counters(Counter* hits, Counter* misses) {
    hit_counter_ = hits;
    miss_counter_ = misses;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Hits answered by the pair screen (subset of hits()).
  std::uint64_t screened() const { return screened_; }
  /// Hits / total queries (0.0 before the first query).
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }
  std::size_t size() const { return cache_.size(); }

 protected:
  /// Unreached (compatible() is fully overridden); delegates for safety.
  bool compatible_impl(const TxGroup& group) const override;

 private:
  const CompatibilityOracle& inner_;
  PairScreen screen_ = PairScreen::kOff;
  mutable std::unordered_map<TxGroup, bool, TxGroupHash> cache_;
  mutable TxGroup norm_scratch_;
  mutable TxGroup pair_scratch_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t screened_ = 0;
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
};

/// Cache-effectiveness roll-up reports carry: one CachedOracle's tallies,
/// or several summed — the live cache plus every wrapper retired across
/// fault replans (multi-cluster stacks additionally sum over clusters).
struct OracleCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t screened = 0;  // subset of hits: pair-screen rejections
  std::uint64_t entries = 0;   // distinct memoized groups
  void add(const CachedOracle& cache) {
    hits += cache.hits();
    misses += cache.misses();
    screened += cache.screened();
    entries += cache.size();
  }
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// The set of single-hop transmissions used by a set of relaying paths —
/// the natural probe universe.
std::vector<Tx> transmissions_of_paths(
    const std::vector<std::vector<NodeId>>& paths);

}  // namespace mhp
