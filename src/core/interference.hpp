// Interference knowledge: which groups of transmissions are compatible
// (contention-free when concurrent).
//
// Per §III-B the paper refuses both the protocol (disc) model and the
// power-law physical model: coverage and interference are *arbitrary*, and
// the cluster head learns them by testing groups of at most M transmissions
// (M = 2 or 3).  The scheduler therefore never asks about groups larger
// than M and treats unknown groups as incompatible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "net/cluster.hpp"
#include "net/ids.hpp"
#include "radio/channel.hpp"

namespace mhp {

/// One single-hop transmission from→to.
struct Tx {
  NodeId from = kNoNode;
  NodeId to = kNoNode;

  friend auto operator<=>(const Tx&, const Tx&) = default;
};

/// Canonical key for a transmission group (sorted, duplicate-free).
using TxGroup = std::vector<Tx>;
TxGroup normalize(std::span<const Tx> txs);

/// Structural feasibility every oracle enforces before its own answer:
/// distinct senders, no node both sending and receiving (half-duplex),
/// no receiver hearing two group members addressed to it.
bool structurally_valid(std::span<const Tx> txs);

class CompatibilityOracle {
 public:
  virtual ~CompatibilityOracle() = default;

  /// Largest group size the oracle has knowledge of.
  virtual int order() const = 0;

  /// True iff the group can run concurrently with every transmission
  /// received.  Groups larger than order() are conservatively incompatible.
  bool compatible(std::span<const Tx> txs) const;

 protected:
  /// Answer for a structurally valid, normalized group of size in
  /// [2, order()].  (Singletons are compatible by definition; the empty
  /// group trivially so.)
  virtual bool compatible_impl(const TxGroup& group) const = 0;
};

/// Table-driven oracle for tests and the NP-hardness reductions: compatible
/// pairs (and optionally larger groups) are listed explicitly; a group is
/// compatible iff every subset of size <= `subset_order` that must be
/// checked is present.  By default the table lists *pairs* and a group is
/// compatible iff all its pairs are (exactly the pairwise knowledge the
/// reductions in §III-C construct).
class ExplicitOracle : public CompatibilityOracle {
 public:
  explicit ExplicitOracle(int order = 2) : order_(order) {}

  int order() const override { return order_; }

  /// Declare an unordered pair of transmissions compatible.
  void allow_pair(Tx a, Tx b);

  /// Declare a whole group compatible (adds all its pairs too, so pairwise
  /// screening passes).
  void allow_group(std::span<const Tx> txs);

  /// Mark a specific group incompatible even though its pairs are allowed
  /// (models accumulated interference, Fig. 3).
  void forbid_group(std::span<const Tx> txs);

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  int order_;
  std::set<TxGroup> pairs_;
  std::set<TxGroup> groups_;
  std::set<TxGroup> forbidden_;
};

/// Ground-truth oracle backed by the channel's SINR model: a group is
/// compatible iff every transmission in it decodes under the others'
/// summed interference.  Used as the "reality" the measured oracle probes.
class ChannelOracle : public CompatibilityOracle {
 public:
  ChannelOracle(const Channel& channel, int order)
      : channel_(channel), order_(order) {}

  int order() const override { return order_; }

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  const Channel& channel_;
  int order_;
};

/// The head's measured knowledge (§V-E): probe every group of at most M
/// transmissions drawn from a candidate universe (the transmissions the
/// relaying paths actually use) and memoize the outcomes.  Query cost is a
/// lookup; probing cost (number of groups tested) is what sectoring
/// reduces (§IV).
class MeasuredOracle : public CompatibilityOracle {
 public:
  /// Probes all size-2..M subsets of `universe` against `truth`.
  MeasuredOracle(const CompatibilityOracle& truth,
                 std::span<const Tx> universe, int order);

  int order() const override { return order_; }

  /// Number of groups probed during construction.
  std::uint64_t probes() const { return probes_; }

  /// The number of groups a full probe of a universe of `u` transmissions
  /// at order M would need (the paper's 1320-vs-85320 argument).
  static std::uint64_t probe_count(std::size_t universe_size, int order);

 protected:
  bool compatible_impl(const TxGroup& group) const override;

 private:
  int order_;
  std::uint64_t probes_ = 0;
  std::set<TxGroup> compatible_;
};

/// The set of single-hop transmissions used by a set of relaying paths —
/// the natural probe universe.
std::vector<Tx> transmissions_of_paths(
    const std::vector<std::vector<NodeId>>& paths);

}  // namespace mhp
