#include "core/multi_cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "core/ack_collection.hpp"
#include "core/coloring.hpp"
#include "core/route_repair.hpp"
#include "obs/profiler.hpp"
#include "sim/sampler.hpp"
#include "util/assertx.hpp"

namespace mhp {

const char* to_string(InterClusterMode mode) {
  switch (mode) {
    case InterClusterMode::kShared:
      return "shared";
    case InterClusterMode::kColored:
      return "colored";
    case InterClusterMode::kToken:
      return "token";
  }
  return "?";
}

MultiClusterSimulation::MultiClusterSimulation(
    std::vector<ClusterSpec> clusters, ProtocolConfig cfg,
    InterClusterMode mode, double rate_bps, double interference_range,
    const RuntimeOptions& rt_opts)
    : cfg_(cfg), mode_(mode), rt_(cfg.seed, rt_opts),
      route_workers_(rt_opts.route_workers), rate_bps_(rate_bps) {
  MHP_REQUIRE(!clusters.empty(), "need at least one cluster");
  build(std::move(clusters), rate_bps, interference_range);
}

void MultiClusterSimulation::build(std::vector<ClusterSpec> specs,
                                   double rate_bps,
                                   double interference_range) {
  MHP_SPAN("mc/setup");
  const std::size_t num_clusters = specs.size();
  rt_.adopt_propagation(std::make_unique<TwoRayGround>());

  // Channel groups.  kColored: colour the cluster adjacency graph; each
  // colour is an isolated channel.  Otherwise everyone shares channel 0.
  std::vector<int> group_of(num_clusters, 0);
  if (mode_ == InterClusterMode::kColored) {
    Graph adjacency(num_clusters);
    for (NodeId a = 0; a < num_clusters; ++a)
      for (NodeId b = a + 1; b < num_clusters; ++b) {
        const Vec2 ha = specs[a].origin + specs[a].deployment.head_pos();
        const Vec2 hb = specs[b].origin + specs[b].deployment.head_pos();
        if (distance(ha, hb) <= interference_range) adjacency.add_edge(a, b);
      }
    const auto colors = six_color_planar(adjacency);
    MHP_ENSURE(proper_coloring(adjacency, colors), "colouring failed");
    group_of = colors;
    channels_used_ = num_colors(colors);
  } else {
    channels_used_ = 1;
  }
  const int num_groups =
      1 + *std::max_element(group_of.begin(), group_of.end());

  // One Channel per group, nodes concatenated cluster by cluster.
  struct Placement {
    int group;
    NodeId base;  // first global id of this cluster on its channel
  };
  std::vector<Placement> placement(num_clusters);
  std::vector<std::vector<Vec2>> positions(num_groups);
  std::vector<std::vector<double>> powers(num_groups);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const int g = group_of[c];
    placement[c] = {g, static_cast<NodeId>(positions[g].size())};
    const auto& dep = specs[c].deployment;
    for (std::size_t i = 0; i < dep.positions.size(); ++i) {
      positions[g].push_back(specs[c].origin + dep.positions[i]);
      powers[g].push_back(i + 1 == dep.positions.size()
                              ? RadioParams::kHeadTxPowerW
                              : RadioParams::kSensorTxPowerW);
    }
  }
  for (int g = 0; g < num_groups; ++g)
    rt_.add_channel(cfg_.radio, positions[static_cast<std::size_t>(g)],
                    powers[static_cast<std::size_t>(g)]);

  // Token rotation: each head drains in its own window of the cycle.
  // (head_cfg_ is a member: the head agents hold a reference to it.)
  head_cfg_ = cfg_;
  if (mode_ == InterClusterMode::kToken)
    head_cfg_.max_drain_window = Time::ns(cfg_.cycle_period.nanos() /
                                          static_cast<std::int64_t>(
                                              num_clusters));

  // Field-wide distributions: one latency histogram shared by every
  // head, one queue-depth histogram shared by every sensor.
  MetricsRegistry& m = rt_.metrics();
  HistogramMetric& latency_hist = m.histogram(
      metric::kLatencyHistS, 0.0, 20.0 * cfg_.cycle_period.to_seconds(), 64);
  HistogramMetric& queue_hist = m.histogram(
      metric::kQueueDepth, 0.0,
      static_cast<double>(cfg_.queue_capacity + 1), cfg_.queue_capacity + 1);

  Rng& root = rt_.root_rng();
  clusters_.resize(num_clusters);

  // Pass 1: per-cluster topology and routing demand (sequential — the
  // connectivity predicate probes the shared channels).
  {
    MHP_SPAN("topology");
    for (std::size_t c = 0; c < num_clusters; ++c) {
      ClusterRt& rt = clusters_[c];
      Channel& channel =
          rt_.channel(static_cast<std::size_t>(placement[c].group));
      const std::size_t n = specs[c].deployment.num_sensors();
      const NodeId base = placement[c].base;
      rt.num_sensors = n;
      rt.base = base;
      rt.head = base + static_cast<NodeId>(n);

      // Local topology over this cluster's own nodes.
      rt.topo = std::make_unique<ClusterTopology>(topology_from_predicate(
          n, [&](NodeId a, NodeId b) {
            return channel.link_ok(base + a, base + b);
          }));
      MHP_REQUIRE(rt.topo->fully_connected(), "cluster not fully connected");

      const double cycle_s = cfg_.cycle_period.to_seconds();
      rt.demand.assign(n, 0);
      for (auto& d : rt.demand)
        d = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::llround(std::ceil(
                   rate_bps * cycle_s /
                   static_cast<double>(cfg_.data_bytes)))));
    }
  }

  // Pass 2: solve every cluster's balanced routing plan in one batch —
  // each solve is a pure function of its (topo, demand) job, so fanning
  // out on route_workers threads yields byte-identical plans in cluster
  // order regardless of worker count.
  {
    MHP_SPAN("routing");
    std::vector<route::ClusterRouteJob> jobs(num_clusters);
    for (std::size_t c = 0; c < num_clusters; ++c) {
      jobs[c].topo = clusters_[c].topo.get();
      jobs[c].demand = clusters_[c].demand;
    }
    std::vector<MinMaxLoadResult> solutions =
        route::solve_clusters(jobs, route_workers_);
    for (std::size_t c = 0; c < num_clusters; ++c)
      clusters_[c].plan = std::make_unique<RelayPlan>(
          *clusters_[c].topo, std::move(solutions[c]));
  }

  // Pass 3: sector/ack plans, oracles and agents (sequential: shared
  // uid source and deterministic rng-split order).
  {
    MHP_SPAN("sectors_and_agents");
    for (std::size_t c = 0; c < num_clusters; ++c) {
      ClusterRt& rt = clusters_[c];
      Channel& channel =
          rt_.channel(static_cast<std::size_t>(placement[c].group));
      const std::size_t n = rt.num_sensors;
      const NodeId base = rt.base;

      // Global (channel-id) paths: the local head is id n, so adding the
      // base translates sensors and head alike.
      auto globalize = [base](std::vector<NodeId> path) {
        for (NodeId& v : path) v = base + v;
        return path;
      };
      SectorPlan sp;
      sp.members.resize(n);
      std::vector<std::vector<NodeId>> candidates;
      for (NodeId s = 0; s < n; ++s) {
        sp.members[s] = base + s;
        auto path = globalize(rt.plan->path_for_cycle(s, 0).hops);
        sp.data_path[base + s] = path;
        candidates.push_back(std::move(path));
      }
      const AckPlan ack = plan_ack_cover(sp.members, candidates);
      MHP_ENSURE(ack.covers_all, "ack cover incomplete");
      sp.ack_paths = ack.poll_paths;

      std::vector<std::vector<NodeId>> all_paths = candidates;
      for (const auto& p : sp.ack_paths) all_paths.push_back(p);
      rt.truth = std::make_unique<ChannelOracle>(channel, cfg_.oracle_order);
      rt.oracle = std::make_unique<MeasuredOracle>(
          *rt.truth, transmissions_of_paths(all_paths), cfg_.oracle_order);

      rt.head_agent = std::make_unique<HeadAgent>(
          rt.head, rt_.sim(), channel, rt_.uids(), head_cfg_,
          scheduling_oracle(rt), std::vector<SectorPlan>{sp},
          root.split(1000 + c));
      rt.head_agent->set_latency_histogram(&latency_hist);
      rt.sensors.reserve(n);
      for (NodeId s = 0; s < n; ++s) {
        auto agent = std::make_unique<SensorAgent>(
            base + s, rt_.sim(), channel, rt_.uids(), cfg_,
            root.split(c * 1000 + s + 1));
        agent->set_head(rt.head);
        agent->set_queue_histogram(&queue_hist);
        agent->start_sampling(rate_bps);
        rt.sensors.push_back(std::move(agent));
      }

      // Staggered starts for token rotation; simultaneous otherwise (the
      // worst case for the shared channel).
      Time start = Time::ms(10);
      if (mode_ == InterClusterMode::kToken)
        start += Time::ns(static_cast<std::int64_t>(c) *
                          head_cfg_.max_drain_window.nanos());
      rt.head_agent->start(start);
    }
  }

  // Fault injection: deaths keyed by field-wide sensor id.  Repair is
  // per cluster — each head detects and re-routes only its own members.
  if (!cfg_.faults.empty()) {
    MHP_REQUIRE(cfg_.faults.degradations().empty(),
                "link-degradation windows are single-cluster only");
    FaultInjector& inj = rt_.install_faults(cfg_.faults);
    inj.set_death_handler(
        [this](const NodeDeath& d) { on_node_death(d); });
    for (const auto& d : cfg_.faults.deaths())
      if (d.cause == NodeDeath::Cause::kBattery)
        sensor_by_field_id(d.node).set_battery(
            d.battery_j,
            [this, node = d.node] { rt_.faults()->battery_exhausted(node); });
    inj.arm();
  }
  if (cfg_.recovery.enabled)
    for (std::size_t c = 0; c < clusters_.size(); ++c)
      clusters_[c].head_agent->set_replan_handler(
          [this, c](NodeId declared) { replan_cluster(c, declared); });

  // Live trajectory for the sampler, when one was requested: standard
  // counters are only mirrored into the registry at end of run, so push
  // the watched gauges from agent state before each tick.
  if (MetricsSampler* sp = rt_.sampler(); sp != nullptr) {
    sp->add_refresh_hook([this](Time now) {
      MetricsRegistry& reg = rt_.metrics();
      std::uint64_t alive = 0;
      double energy = 0.0;
      for (const auto& rt : clusters_)
        for (const auto& s : rt.sensors) {
          if (!s->dead()) ++alive;
          energy += s->meter().total_energy_j();
        }
      reg.gauge(sample::kAliveNodes).set(now, static_cast<double>(alive));
      reg.gauge(sample::kEnergyJ).set(now, energy);
      reg.gauge(sample::kDelivered)
          .set(now, static_cast<double>(sum_delivered()));
      reg.gauge(sample::kGenerated)
          .set(now, static_cast<double>(sum_generated()));
    });
  }
}

SensorAgent& MultiClusterSimulation::sensor_by_field_id(NodeId field_id) {
  std::uint64_t base = 0;
  for (auto& rt : clusters_) {
    if (field_id < base + rt.num_sensors)
      return *rt.sensors[field_id - base];
    base += rt.num_sensors;
  }
  MHP_REQUIRE(false, "fault plan kills a node outside the field");
  return *clusters_.front().sensors.front();  // unreachable
}

std::uint64_t MultiClusterSimulation::sum_generated() const {
  std::uint64_t total = 0;
  for (const auto& rt : clusters_)
    for (const auto& s : rt.sensors) total += s->packets_generated();
  return total;
}

std::uint64_t MultiClusterSimulation::sum_delivered() const {
  std::uint64_t total = 0;
  for (const auto& rt : clusters_)
    total += rt.head_agent->packets_received();
  return total;
}

const CompatibilityOracle& MultiClusterSimulation::scheduling_oracle(
    ClusterRt& rt) {
  if (!cfg_.cache_oracle) return *rt.oracle;
  if (rt.cached) rt.retired_caches.push_back(std::move(rt.cached));
  // Pair screening is sound here: the measured oracle inherits SINR
  // monotonicity (an interfering pair interferes in every superset).
  rt.cached = std::make_unique<CachedOracle>(
      *rt.oracle, CachedOracle::PairScreen::kOn);
  MetricsRegistry& m = rt_.metrics();
  rt.cached->bind_counters(&m.counter(metric::kOracleCacheHit),
                           &m.counter(metric::kOracleCacheMiss));
  return *rt.cached;
}

void MultiClusterSimulation::on_node_death(const NodeDeath& death) {
  sensor_by_field_id(death.node).fail();
  if (!have_first_death_) {
    have_first_death_ = true;
    death_gen_ = sum_generated();
    death_del_ = sum_delivered();
    repair_gen_ = death_gen_;
    repair_del_ = death_del_;
  }
}

void MultiClusterSimulation::replan_cluster(std::size_t c, NodeId declared) {
  MHP_SPAN("mc/replan");
  ClusterRt& rt = clusters_[c];
  MHP_REQUIRE(declared >= rt.base && declared < rt.base + rt.num_sensors,
              "head declared a node outside its cluster");
  rt.declared_dead.push_back(declared - rt.base);
  const RelayPlan* hint =
      rt.repair_plan ? rt.repair_plan.get() : rt.plan.get();
  RouteRepair repair = repair_routes(*rt.topo, rt.declared_dead, rt.demand,
                                     cfg_.routing, &engine_, hint);

  const NodeId base = rt.base;
  auto globalize = [base](std::vector<NodeId> path) {
    for (NodeId& v : path) v = base + v;
    return path;
  };
  SectorPlan sp;
  std::vector<std::vector<NodeId>> probe_paths;
  for (NodeId s : repair.sectors.front().members) {
    sp.members.push_back(base + s);
    auto path = globalize(repair.sectors.front().data_path.at(s));
    sp.data_path[base + s] = path;
    probe_paths.push_back(std::move(path));
  }
  for (const auto& p : repair.sectors.front().ack_paths) {
    sp.ack_paths.push_back(globalize(p));
    probe_paths.push_back(sp.ack_paths.back());
  }

  rt.retired_oracles.push_back(std::move(rt.oracle));
  rt.oracle = std::make_unique<MeasuredOracle>(
      *rt.truth, transmissions_of_paths(probe_paths), cfg_.oracle_order);
  rt.head_agent->set_oracle(scheduling_oracle(rt));
  rt.head_agent->replace_plans({std::move(sp)});
  rt.repair_plan = std::make_unique<RelayPlan>(std::move(repair.plan));
  rt.last_orphaned = repair.orphaned.size();
  repair_gen_ = sum_generated();
  repair_del_ = sum_delivered();
}

MultiClusterReport MultiClusterSimulation::run(Time duration, Time warmup) {
  MHP_REQUIRE(duration > warmup, "duration must exceed warmup");
  Simulator& sim = rt_.sim();
  {
    MHP_SPAN("mc/warmup");
    sim.run_until(warmup);
  }
  for (auto& rt : clusters_) {
    rt.head_agent->reset_stats(sim.now());
    for (auto& s : rt.sensors) s->reset_stats(sim.now());
  }
  rt_.begin_measurement();
  {
    MHP_SPAN("mc/measured");
    const std::uint64_t events_before = sim.events_executed();
    sim.run_until(duration);
    MHP_SPAN_COUNTER("events", sim.events_executed() - events_before);
    MHP_SPAN_COUNTER("oracle_hits",
                     rt_.metrics().counter(metric::kOracleCacheHit).value());
    MHP_SPAN_COUNTER("oracle_misses",
                     rt_.metrics().counter(metric::kOracleCacheMiss).value());
  }

  MHP_SPAN("mc/collect");
  MultiClusterReport rep;
  rep.channels_used = channels_used_;
  std::uint64_t total_generated = 0, total_delivered = 0, total_bytes = 0;
  double total_active = 0.0;
  std::size_t total_sensors = 0;
  MetricsRegistry& m = rt_.metrics();
  // Channel-local ids collide across colour groups, so per-node series
  // use field-wide ids: sensors numbered consecutively cluster by cluster.
  std::uint64_t field_base = 0;
  for (auto& rt : clusters_) {
    std::uint64_t generated = 0;
    double active = 0.0;
    for (std::size_t i = 0; i < rt.sensors.size(); ++i) {
      auto& s = rt.sensors[i];
      s->settle(sim.now());
      generated += s->packets_generated();
      active += s->meter().active_fraction();
      const std::uint64_t id = field_base + i;
      m.counter(node_metric(metric::kNodeRelayed, id))
          .add(s->packets_relayed());
      m.counter(node_metric(metric::kNodeFramesTx, id))
          .add(s->frames_sent());
      m.gauge(node_metric(metric::kNodeEnergyJ, id))
          .set(sim.now(), s->meter().total_energy_j());
      m.gauge(node_metric(metric::kNodeAwakeS, id))
          .set(sim.now(), (s->meter().total_time() -
                           s->meter().time_in(RadioState::kSleep))
                              .to_seconds());
    }
    field_base += rt.sensors.size();
    const std::uint64_t delivered = rt.head_agent->packets_received();
    rep.delivery_ratio.push_back(
        generated == 0 ? 1.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(generated));
    rep.mean_active.push_back(active /
                              static_cast<double>(rt.sensors.size()));
    total_generated += generated;
    total_delivered += delivered;
    total_bytes += rt.head_agent->bytes_received();
    total_active += active;
    total_sensors += rt.sensors.size();
  }
  rep.aggregate_delivery =
      total_generated == 0 ? 1.0
                           : static_cast<double>(total_delivered) /
                                 static_cast<double>(total_generated);
  rep.aggregate_throughput_bps =
      static_cast<double>(total_bytes) / (duration - warmup).to_seconds();

  // Field-wide totals via the shared registry.
  m.counter(metric::kPacketsGenerated).add(total_generated);
  m.counter(metric::kPacketsDelivered).add(total_delivered);
  m.counter(metric::kBytesDelivered).add(total_bytes);
  m.counter("clusters").add(clusters_.size());
  m.gauge(metric::kMeanActiveFraction)
      .set(sim.now(), total_active / static_cast<double>(total_sensors));

  // Degradation accounting — only when faults could occur, so fault-free
  // reports stay byte-identical to pre-fault builds.
  if (!cfg_.faults.empty() || cfg_.recovery.enabled) {
    const auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : std::uint64_t{0};
    };
    const auto ratio = [](std::uint64_t del, std::uint64_t gen) {
      return gen == 0 ? 1.0
                      : static_cast<double>(del) / static_cast<double>(gen);
    };
    DegradationReport deg;
    if (const FaultInjector* inj = rt_.faults(); inj != nullptr) {
      deg.dead_nodes = inj->dead_nodes();
      deg.deaths = deg.dead_nodes.size();
    }
    for (const auto& rt : clusters_) {
      deg.deaths_detected += rt.head_agent->deaths_detected();
      deg.replans += rt.head_agent->replans();
      deg.orphaned_sensors += rt.last_orphaned;
    }
    if (have_first_death_) {
      deg.delivery_before = ratio(death_del_, death_gen_);
      deg.delivery_after = ratio(sat(sum_delivered(), repair_del_),
                                 sat(sum_generated(), repair_gen_));
    } else {
      deg.delivery_before = ratio(total_delivered, total_generated);
      deg.delivery_after = deg.delivery_before;
    }
    rep.degradation = deg;
    m.counter("fault.deaths").add(deg.deaths);
    m.counter("fault.deaths_detected").add(deg.deaths_detected);
    m.counter("fault.replans").add(deg.replans);
    m.counter("fault.orphaned_sensors").add(deg.orphaned_sensors);
  }

  if (cfg_.cache_oracle) {
    OracleCacheStats oracle;
    for (const auto& rt : clusters_) {
      if (rt.cached != nullptr) oracle.add(*rt.cached);
      for (const auto& retired : rt.retired_caches) oracle.add(*retired);
    }
    rep.oracle = oracle;
  }

  rep.totals = rt_.collect_run_stats(duration - warmup, cfg_.data_bytes);
  return rep;
}

}  // namespace mhp
