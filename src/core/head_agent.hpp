// The cluster head's controller: runs the duty-cycle protocol of §II over
// the event-driven channel.
//
// Per duty cycle (per sector when sectoring is on): broadcast a wake-up
// inquiry, collect aggregated acknowledgements along set-cover paths
// (§V-F), turn the reported backlogs into polling requests, drive the
// on-line greedy scheduler slot by slot (§III-D) re-polling losses, then
// put the sector to sleep with its next wake time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "core/interference.hpp"
#include "core/protocol_config.hpp"
#include "core/protocol_messages.hpp"
#include "core/routing.hpp"
#include "core/sectors.hpp"
#include "metrics/registry.hpp"
#include "net/cluster.hpp"
#include "net/packet.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace mhp {

/// Everything the head decided at set-up time for one sector.
struct SectorPlan {
  std::vector<NodeId> members;
  /// Relaying path per member (member id → full path to head).
  std::map<NodeId, std::vector<NodeId>> data_path;
  /// Ack-collection cover paths (origin … head).
  std::vector<std::vector<NodeId>> ack_paths;
};

/// Supplies the per-cycle sector plans.  Multi-path rotation (§V-D)
/// changes relaying paths from cycle to cycle; sector *membership* must
/// stay fixed (the head's wake windows are sized at set-up).
class CyclePlanProvider {
 public:
  virtual ~CyclePlanProvider() = default;
  virtual const std::vector<SectorPlan>& plans(std::uint64_t cycle) = 0;
};

class HeadAgent : public ChannelListener {
 public:
  /// Static plans: every cycle uses the same paths.  `trace` (optional)
  /// receives kProtocol entries for cycle/phase transitions.
  HeadAgent(NodeId id, Simulator& sim, Channel& channel, FrameUidSource& uids,
            const ProtocolConfig& cfg, const CompatibilityOracle& oracle,
            std::vector<SectorPlan> sectors, Rng rng, Trace* trace = nullptr);

  /// Rotating plans: paths come from `provider` each cycle.  The
  /// provider must outlive the agent and keep sector membership stable.
  HeadAgent(NodeId id, Simulator& sim, Channel& channel, FrameUidSource& uids,
            const ProtocolConfig& cfg, const CompatibilityOracle& oracle,
            CyclePlanProvider& provider, Rng rng, Trace* trace = nullptr);

  /// Kick off the first duty cycle at `first_cycle_start`.
  void start(Time first_cycle_start);

  // --- fault recovery (cfg.recovery.enabled) ---
  /// Called when the head declares `dead` unresponsive (suspicion from
  /// unanswered polls crossed cfg.recovery.suspect_polls).  The handler
  /// re-routes the surviving topology and hands the result back via
  /// replace_plans() / set_oracle(); it runs at a cycle boundary, so no
  /// phase is in flight.
  using ReplanHandler = std::function<void(NodeId dead)>;
  void set_replan_handler(ReplanHandler h) { replan_handler_ = std::move(h); }
  /// Swap in repaired sector plans (drops any rotating provider — path
  /// rotation is suspended after a repair).  Call only from a
  /// ReplanHandler or before start().
  void replace_plans(std::vector<SectorPlan> sectors);
  /// Swap the compatibility oracle (the old one must stay alive until
  /// the current phase ends; takes effect from the next phase).
  void set_oracle(const CompatibilityOracle& oracle) { oracle_ = &oracle; }
  /// Consult `f`'s link-degradation windows on frame reception
  /// (nullptr = off).
  void set_fault_injector(const FaultInjector* f) { faults_ = f; }

  std::uint64_t deaths_detected() const { return deaths_detected_; }
  std::uint64_t replans() const { return replans_; }

  // --- ChannelListener ---
  void on_frame_begin(const Frame& frame, NodeId from, double rx_power_w,
                      Time end) override;
  void on_frame_end(const Frame& frame, NodeId from, bool phy_ok) override;

  // --- statistics ---
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t packets_lost_abort() const { return lost_abort_; }
  std::uint64_t packets_lost_retry() const { return lost_retry_; }
  std::uint64_t cycles_completed() const { return cycles_done_; }
  std::uint64_t polls_sent() const { return polls_sent_; }
  std::uint64_t reactivations() const { return reactivations_; }
  /// Duty time (wake-up to sleep broadcast) per sector drain.
  const Accumulator& duty_time_s() const { return duty_time_s_; }
  /// Mean packet delivery latency (generation to head reception).
  const Accumulator& latency_s() const { return latency_s_; }
  const EnergyMeter& meter() const { return tracker_.meter(); }

  /// Mirror each delivery latency into `h` as well (nullptr = off), so
  /// the registry gains a full distribution beside the Accumulator mean.
  /// Pure observation — never perturbs behaviour.
  void set_latency_histogram(HistogramMetric* h) { latency_hist_ = h; }

  void reset_stats(Time now);

 private:
  struct PhaseState {
    bool is_ack = false;
    std::optional<GreedyPollingScheduler> sched;
    /// wire request id = wire_base + scheduler-local id.
    std::uint32_t wire_base = 0;
    std::map<RequestId, std::uint32_t> attempts;
    std::uint32_t total = 0;
    std::uint32_t delivered = 0;
    std::uint32_t abandoned = 0;
  };

  void begin_cycle();
  void begin_sector(std::size_t k);
  void reset_phase(bool is_ack);
  const std::vector<SectorPlan>& current_plans() const;
  void init_windows();
  void start_ack_phase();
  void start_data_phase();
  void run_slot();
  void finish_slot();
  void end_sector();
  /// Cycle-boundary check of the suspicion table: declare at most one
  /// node dead and fire the replan handler.
  void evaluate_suspects();
  void broadcast(ControlPayload msg);
  Time window_start(std::uint64_t cycle, std::size_t sector) const;
  Time window_end() const;

  NodeId id_;
  Simulator& sim_;
  Channel& channel_;
  FrameUidSource& uids_;
  const ProtocolConfig& cfg_;
  const CompatibilityOracle* oracle_;      // swappable after a repair
  std::vector<SectorPlan> sectors_;        // static plans (unused when
  CyclePlanProvider* provider_ = nullptr;  // a provider is set)
  Rng rng_;
  Trace* trace_ = nullptr;
  RadioTracker tracker_;

  std::uint64_t cycle_ = 0;
  std::size_t sector_ = 0;
  Time t0_;
  Time cycle_start_;
  Time sector_began_;
  std::vector<Time> window_offset_;  // per sector, plus the period at back
  std::uint32_t next_wire_ = 1;
  PhaseState phase_;
  std::uint32_t slot_in_sector_ = 0;
  int rx_depth_ = 0;

  /// Record a wire request id arriving at the head this slot.
  void note_arrival(std::uint32_t wire);

  // Wire request ids that arrived at the head during the current slot:
  // a flat sorted set, cleared and refilled every slot without
  // reallocating.
  std::vector<std::uint32_t> arrived_wire_;
  std::vector<AckPayload> arrived_acks_;
  std::map<NodeId, std::uint32_t> backlog_;
  // Per-slot scratch reused by finish_slot().
  std::vector<RequestId> delivered_scratch_;
  std::vector<RequestId> due_scratch_;

  // Fault-recovery state.  A retry-exhausted request raises suspicion on
  // every non-head node of its path; hearing a node (any frame decoded
  // at the head) or a delivery over its path clears it.
  ReplanHandler replan_handler_;
  const FaultInjector* faults_ = nullptr;
  std::map<NodeId, std::uint32_t> suspicion_;
  /// Suspicion accounting is paused until this cycle after a repair
  /// (sensors that slept through the switch must not look dead).
  std::uint64_t suspicion_resume_cycle_ = 0;
  std::uint64_t deaths_detected_ = 0;
  std::uint64_t replans_ = 0;

  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t lost_abort_ = 0;
  std::uint64_t lost_retry_ = 0;
  std::uint64_t cycles_done_ = 0;
  std::uint64_t polls_sent_ = 0;
  std::uint64_t reactivations_ = 0;
  Accumulator duty_time_s_;
  Accumulator latency_s_;
  HistogramMetric* latency_hist_ = nullptr;
};

}  // namespace mhp
