#include "core/routing.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

RelayPlan::RelayPlan(const ClusterTopology& topo, MinMaxLoadResult solution)
    : head_(topo.head()) {
  MHP_REQUIRE(solution.feasible, "routing solution infeasible");
  paths_ = std::move(solution.paths);
  load_ = std::move(solution.load);
  max_load_ = solution.max_load;
  MHP_REQUIRE(paths_.size() == topo.num_sensors(), "plan size mismatch");
}

RelayPlan RelayPlan::balanced(const ClusterTopology& topo,
                              const std::vector<std::int64_t>& demand) {
  return RelayPlan(topo, solve_min_max_load(topo, demand));
}

RelayPlan RelayPlan::balanced_weighted(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand,
    const std::vector<std::int64_t>& weight) {
  return RelayPlan(topo, solve_min_max_load(topo, demand, weight));
}

RelayPlan RelayPlan::shortest(const ClusterTopology& topo,
                              const std::vector<std::int64_t>& demand) {
  return RelayPlan(topo, solve_shortest_path_routing(topo, demand));
}

const UnitPath& RelayPlan::path_for_cycle(NodeId s,
                                          std::uint64_t cycle) const {
  const auto& list = paths_.at(s);
  MHP_REQUIRE(!list.empty(), "sensor has no relaying path (zero demand)");
  if (list.size() == 1) return list.front();
  // Weighted round-robin: within a window of Σ units, path p owns `units`
  // consecutive cycles.
  std::int64_t window = 0;
  for (const auto& p : list) window += p.units;
  auto phase = static_cast<std::int64_t>(cycle % static_cast<std::uint64_t>(window));
  for (const auto& p : list) {
    if (phase < p.units) return p;
    phase -= p.units;
  }
  MHP_ENSURE(false, "rotation phase out of window");
  return list.front();
}

std::map<NodeId, NodeId> RelayPlan::one_hop_table(NodeId r,
                                                  std::uint64_t cycle) const {
  std::map<NodeId, NodeId> table;
  for (NodeId s = 0; s < paths_.size(); ++s) {
    if (paths_[s].empty()) continue;
    const UnitPath& p = path_for_cycle(s, cycle);
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      if (p.hops[i] == r) {
        table[s] = p.hops[i + 1];
        break;
      }
    }
  }
  return table;
}

std::vector<NodeId> RelayPlan::dependents(NodeId s,
                                          std::uint64_t cycle) const {
  std::vector<NodeId> deps;
  for (NodeId o = 0; o < paths_.size(); ++o) {
    if (o == s || paths_[o].empty()) continue;
    const UnitPath& p = path_for_cycle(o, cycle);
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      if (p.hops[i] == s) {
        deps.push_back(o);
        break;
      }
    }
  }
  return deps;
}

}  // namespace mhp
