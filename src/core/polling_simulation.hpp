// The public facade: set up and run a complete in-cluster polling
// simulation (the paper's §VI experiments are driven through this).
//
// Construction performs the head's set-up phases in one shot:
// connectivity discovery over the SINR channel (§V-B), load-balanced
// routing (§III-A), optional sector partitioning (§IV), ack-collection
// cover (§V-F) and M-wise interference probing (§V-E).  run() then
// executes duty cycles on the discrete-event simulator.
//
// All substrate (Simulator, Channel, Trace, metrics, RNG) is owned by a
// SimRuntime; this class only assembles the protocol agents on top.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/head_agent.hpp"
#include "fault/fault_plan.hpp"
#include "core/interference.hpp"
#include "core/protocol_config.hpp"
#include "core/routing.hpp"
#include "core/sectors.hpp"
#include "core/sensor_agent.hpp"
#include "net/cluster.hpp"
#include "net/deployment.hpp"
#include "route/routing_engine.hpp"
#include "sim/runtime.hpp"

namespace mhp {

/// Aggregated results of a measurement window.  The shared core
/// (throughput, delivery, activity, metrics snapshot) lives in RunStats;
/// the fields here are specific to the polling stack.
struct SimulationReport : RunStats {
  std::uint64_t packets_lost = 0;  // aborted + retry-exhausted + overflow
  double max_active_fraction = 0.0;
  double mean_sensor_power_w = 0.0;
  double max_sensor_power_w = 0.0;
  double mean_duty_seconds = 0.0;  // per sector drain
  std::size_t sectors = 1;

  /// Present iff the run had fault injection or recovery enabled
  /// (cfg.faults non-empty or cfg.recovery.enabled); absent reports keep
  /// fault-free runs byte-identical to pre-fault builds.
  std::optional<DegradationReport> degradation;

  /// Compatibility-oracle cache effectiveness, summed over the live
  /// cache and every wrapper retired by replans.  Present iff
  /// cfg.cache_oracle; deterministic (pure function of the schedule).
  std::optional<OracleCacheStats> oracle;

  /// Time until the first sensor exhausts `battery_j` joules at the
  /// measured power draw.  +infinity when no sensor drew any power — an
  /// idle cluster never exhausts a battery (callers that plot or rank
  /// lifetimes must expect the infinity, not a 0.0 sentinel).
  double lifetime_s(double battery_j) const {
    return max_sensor_power_w > 0.0
               ? battery_j / max_sensor_power_w
               : std::numeric_limits<double>::infinity();
  }
};

class PollingSimulation {
 public:
  /// `rates_bps[s]`: data generation rate of sensor s in bytes/s.
  PollingSimulation(const Deployment& deployment, ProtocolConfig cfg,
                    std::vector<double> rates_bps,
                    const RuntimeOptions& rt_opts = {});
  /// Same rate for every sensor.
  PollingSimulation(const Deployment& deployment, ProtocolConfig cfg,
                    double rate_bps, const RuntimeOptions& rt_opts = {});

  PollingSimulation(const PollingSimulation&) = delete;
  PollingSimulation& operator=(const PollingSimulation&) = delete;

  /// Run `duration` of simulated time; statistics cover everything after
  /// `warmup`.
  SimulationReport run(Time duration, Time warmup = Time::sec(10));

  // --- introspection (valid after construction) ---
  const ClusterTopology& topology() const { return *topo_; }
  const RelayPlan& relay_plan() const { return *plan_; }
  const std::optional<SectorPartition>& sector_partition() const {
    return partition_;
  }
  const MeasuredOracle& oracle() const { return *oracle_; }
  /// The memoizing wrapper the head schedules through; nullptr when
  /// cfg.cache_oracle is off.
  const CachedOracle* oracle_cache() const { return cached_oracle_.get(); }
  SimRuntime& runtime() { return rt_; }
  Simulator& simulator() { return rt_.sim(); }
  /// Protocol trace (enable categories before run() to collect entries).
  Trace& trace() { return rt_.trace(); }
  MetricsRegistry& metrics() { return rt_.metrics(); }
  const HeadAgent& head() const { return *head_; }
  const SensorAgent& sensor(NodeId s) const { return *sensors_.at(s); }
  std::size_t num_sensors() const { return sensors_.size(); }

 private:
  void setup(const Deployment& deployment);
  /// The oracle the head schedules through: `oracle_` itself, or a fresh
  /// CachedOracle wrapper over it when cfg.cache_oracle is on (counters
  /// bound to the runtime registry).  Call again after replacing oracle_.
  const CompatibilityOracle& scheduling_oracle();
  /// Fault-injector death handler: kill the agent, snapshot pre-fault
  /// delivery on the first death.
  void on_node_death(const NodeDeath& death);
  /// HeadAgent replan handler: re-route around every node the head has
  /// declared dead so far and hand the repaired plans/oracle back.
  void replan_after_death(NodeId declared);
  std::uint64_t sum_generated() const;

  /// Rebuilds the single-sector plan each cycle so multi-path sensors
  /// rotate per §V-D; caches the most recent cycle.
  class RotatingProvider : public CyclePlanProvider {
   public:
    RotatingProvider(const ClusterTopology& topo, const RelayPlan& plan);
    const std::vector<SectorPlan>& plans(std::uint64_t cycle) override;

   private:
    const ClusterTopology& topo_;
    const RelayPlan& plan_;
    std::uint64_t cached_cycle_ = UINT64_MAX;
    std::vector<SectorPlan> cached_;
  };

  ProtocolConfig cfg_;
  std::vector<double> rates_;
  SimRuntime rt_;
  /// Owns the flow arenas for set-up routing and every replan; replans
  /// warm-start from the previous plan's surviving flow.
  route::RoutingEngine engine_;
  std::unique_ptr<ClusterTopology> topo_;
  std::unique_ptr<RelayPlan> plan_;
  /// Latest repaired plan (kept as the warm hint for the next replan;
  /// `plan_` itself stays put because RotatingProvider references it).
  std::unique_ptr<RelayPlan> repair_plan_;
  std::optional<SectorPartition> partition_;
  std::unique_ptr<ChannelOracle> truth_;
  std::unique_ptr<MeasuredOracle> oracle_;
  std::unique_ptr<CachedOracle> cached_oracle_;
  std::unique_ptr<RotatingProvider> provider_;
  std::unique_ptr<HeadAgent> head_;
  std::vector<std::unique_ptr<SensorAgent>> sensors_;

  // Fault-recovery state (untouched when faults are off).
  std::vector<std::int64_t> demand_;      // set-up routing demand
  std::vector<NodeId> declared_dead_;     // head's cumulative declarations
  /// Oracles replaced by repairs; kept alive because the head's current
  /// phase may still hold a reference to the previous one.  Cache wrappers
  /// retire alongside the oracles they decorate.
  std::vector<std::unique_ptr<MeasuredOracle>> retired_oracles_;
  std::vector<std::unique_ptr<CachedOracle>> retired_caches_;
  std::uint64_t last_orphaned_ = 0;
  bool have_first_death_ = false;
  std::uint64_t death_gen_ = 0, death_del_ = 0;    // at first death
  std::uint64_t repair_gen_ = 0, repair_del_ = 0;  // at last repair
};

}  // namespace mhp
