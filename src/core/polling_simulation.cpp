#include "core/polling_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "core/ack_collection.hpp"
#include "core/route_repair.hpp"
#include "route/cell_grid.hpp"
#include "obs/profiler.hpp"
#include "sim/sampler.hpp"
#include "util/assertx.hpp"

namespace mhp {

PollingSimulation::RotatingProvider::RotatingProvider(
    const ClusterTopology& topo, const RelayPlan& plan)
    : topo_(topo), plan_(plan) {}

const std::vector<SectorPlan>& PollingSimulation::RotatingProvider::plans(
    std::uint64_t cycle) {
  if (cycle == cached_cycle_) return cached_;
  const std::size_t n = topo_.num_sensors();
  SectorPlan sp;
  sp.members.resize(n);
  for (NodeId s = 0; s < n; ++s) sp.members[s] = s;
  std::vector<std::vector<NodeId>> candidates;
  candidates.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    auto path = plan_.path_for_cycle(s, cycle).hops;
    sp.data_path[s] = path;
    candidates.push_back(std::move(path));
  }
  const AckPlan ack = plan_ack_cover(sp.members, candidates);
  MHP_ENSURE(ack.covers_all, "ack cover incomplete");
  sp.ack_paths = ack.poll_paths;
  cached_.clear();
  cached_.push_back(std::move(sp));
  cached_cycle_ = cycle;
  return cached_;
}

PollingSimulation::PollingSimulation(const Deployment& deployment,
                                     ProtocolConfig cfg,
                                     std::vector<double> rates_bps,
                                     const RuntimeOptions& rt_opts)
    : cfg_(cfg), rates_(std::move(rates_bps)), rt_(cfg.seed, rt_opts) {
  MHP_REQUIRE(rates_.size() == deployment.num_sensors(),
              "one rate per sensor required");
  // route_workers drives the engine's speculative δ-probe fan-out for the
  // set-up solve and every replan; the spatial cell hint tightens its δ
  // floor.  Neither changes the plan — solves are byte-identical for any
  // worker count.
  engine_.set_policy({MaxFlowAlgo::kDinic, /*warm_start=*/true,
                      rt_opts.route_workers});
  engine_.set_cell_hint(route::grid_cells(
      std::span(deployment.positions.data(), deployment.num_sensors())));
  setup(deployment);
}

PollingSimulation::PollingSimulation(const Deployment& deployment,
                                     ProtocolConfig cfg, double rate_bps,
                                     const RuntimeOptions& rt_opts)
    : PollingSimulation(deployment, cfg,
                        std::vector<double>(deployment.num_sensors(),
                                            rate_bps),
                        rt_opts) {}

void PollingSimulation::setup(const Deployment& deployment) {
  MHP_SPAN("polling/setup");
  const std::size_t n = deployment.num_sensors();
  MHP_REQUIRE(n >= 1, "need at least one sensor");

  switch (cfg_.propagation) {
    case PropagationModel::kTwoRayGround:
      rt_.adopt_propagation(std::make_unique<TwoRayGround>());
      break;
    case PropagationModel::kFreeSpace:
      rt_.adopt_propagation(std::make_unique<FreeSpace>());
      break;
    case PropagationModel::kLogNormalShadowing:
      rt_.adopt_propagation(std::make_unique<LogDistanceShadowing>(
          cfg_.shadowing_exponent, cfg_.shadowing_sigma_db, 1.0, 914e6,
          cfg_.environment_seed));
      break;
  }
  std::vector<double> powers(n + 1, RadioParams::kSensorTxPowerW);
  powers[n] = RadioParams::kHeadTxPowerW;
  Channel& channel =
      rt_.add_channel(cfg_.radio, deployment.positions, powers);

  // §V-B: the head discovers connectivity by probing, which amounts to the
  // channel's interference-free link test.
  {
    MHP_SPAN("topology");
    topo_ = std::make_unique<ClusterTopology>(topology_from_predicate(
        n, [&channel](NodeId a, NodeId b) { return channel.link_ok(a, b); }));
  }
  MHP_REQUIRE(topo_->fully_connected(),
              "cluster not fully connected; adjust deployment");

  // Routing demand: expected packets per duty cycle (at least 1 so every
  // sensor owns a relaying path).
  const double cycle_s = cfg_.cycle_period.to_seconds();
  std::vector<std::int64_t>& demand = demand_;
  demand.assign(n, 0);
  for (NodeId s = 0; s < n; ++s) {
    const double per_cycle =
        rates_[s] * cycle_s / static_cast<double>(cfg_.data_bytes);
    demand[s] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(std::ceil(per_cycle))));
  }
  {
    MHP_SPAN("routing");
    plan_ = std::make_unique<RelayPlan>(
        *topo_, cfg_.routing == RoutingPolicy::kShortestPath
                    ? engine_.solve_shortest(*topo_, demand)
                    : engine_.solve_balanced(*topo_, demand));
  }

  truth_ = std::make_unique<ChannelOracle>(channel, cfg_.oracle_order);

  // Assemble sector plans (one covering sector when sectoring is off).
  std::vector<SectorPlan> sector_plans;
  std::vector<int> sector_of(n, 0);
  {
    MHP_SPAN("sectors");
    if (cfg_.use_sectors) {
      SectorPartitioner partitioner(*topo_);
      partition_ = partitioner.partition(*plan_, demand, truth_.get());
      for (std::size_t k = 0; k < partition_->sectors.size(); ++k) {
        SectorPlan sp;
        sp.members = partition_->sectors[k].sensors;
        std::vector<std::vector<NodeId>> candidates;
        for (NodeId s : sp.members) {
          auto path = partition_->tree_path(s, topo_->head());
          sp.data_path[s] = path;
          candidates.push_back(std::move(path));
        }
        const AckPlan ack = plan_ack_cover(sp.members, candidates);
        MHP_ENSURE(ack.covers_all, "ack cover incomplete for sector");
        sp.ack_paths = ack.poll_paths;
        for (NodeId s : sp.members) sector_of[s] = static_cast<int>(k);
        sector_plans.push_back(std::move(sp));
      }
    } else {
      SectorPlan sp;
      sp.members.resize(n);
      for (NodeId s = 0; s < n; ++s) sp.members[s] = s;
      std::vector<std::vector<NodeId>> candidates;
      for (NodeId s = 0; s < n; ++s) {
        auto path = plan_->path_for_cycle(s, 0).hops;
        sp.data_path[s] = path;
        candidates.push_back(std::move(path));
      }
      const AckPlan ack = plan_ack_cover(sp.members, candidates);
      MHP_ENSURE(ack.covers_all, "ack cover incomplete");
      sp.ack_paths = ack.poll_paths;
      sector_plans.push_back(std::move(sp));
    }
  }

  // §V-E: probe the interference pattern over the transmissions the plans
  // actually use.  With rotation every unit path may be used, so the
  // probe universe covers them all.
  const bool rotate = cfg_.rotate_paths && !cfg_.use_sectors;
  std::vector<std::vector<NodeId>> all_paths;
  for (const auto& sp : sector_plans) {
    for (const auto& [s, path] : sp.data_path) all_paths.push_back(path);
    for (const auto& path : sp.ack_paths) all_paths.push_back(path);
  }
  if (rotate)
    for (NodeId s = 0; s < n; ++s)
      for (const auto& p : plan_->paths(s)) all_paths.push_back(p.hops);
  {
    MHP_SPAN("oracle_probe");
    oracle_ = std::make_unique<MeasuredOracle>(
        *truth_, transmissions_of_paths(all_paths), cfg_.oracle_order);
  }
  const CompatibilityOracle& sched_oracle = scheduling_oracle();

  Rng& root = rt_.root_rng();
  if (rotate) {
    provider_ = std::make_unique<RotatingProvider>(*topo_, *plan_);
    head_ = std::make_unique<HeadAgent>(topo_->head(), rt_.sim(), channel,
                                        rt_.uids(), cfg_, sched_oracle,
                                        *provider_, root.split(0),
                                        &rt_.trace());
  } else {
    head_ = std::make_unique<HeadAgent>(topo_->head(), rt_.sim(), channel,
                                        rt_.uids(), cfg_, sched_oracle,
                                        std::move(sector_plans),
                                        root.split(0), &rt_.trace());
  }
  // Distribution instrumentation: delivery latency at the head, queue
  // depth at every sensor.  Registry metrics reset in place on
  // begin_window, so these references stay valid for the run.
  MetricsRegistry& m = rt_.metrics();
  HistogramMetric& latency_hist = m.histogram(
      metric::kLatencyHistS, 0.0, 20.0 * cfg_.cycle_period.to_seconds(), 64);
  head_->set_latency_histogram(&latency_hist);
  HistogramMetric& queue_hist = m.histogram(
      metric::kQueueDepth, 0.0,
      static_cast<double>(cfg_.queue_capacity + 1), cfg_.queue_capacity + 1);

  sensors_.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    auto agent = std::make_unique<SensorAgent>(s, rt_.sim(), channel,
                                               rt_.uids(), cfg_,
                                               root.split(s + 1));
    agent->set_sector(sector_of[s]);
    agent->set_head(topo_->head());
    agent->set_queue_histogram(&queue_hist);
    agent->start_sampling(rates_[s]);
    sensors_.push_back(std::move(agent));
  }

  // Fault injection and head-driven recovery.  With an empty plan and
  // recovery off this installs nothing: no injector, no handlers, no
  // extra rng draws — fault-free runs stay byte-identical.
  if (!cfg_.faults.empty()) {
    FaultInjector& inj = rt_.install_faults(cfg_.faults);
    inj.set_death_handler(
        [this](const NodeDeath& d) { on_node_death(d); });
    for (const auto& d : cfg_.faults.deaths()) {
      MHP_REQUIRE(d.node < n, "fault plan kills a node outside the cluster");
      if (d.cause == NodeDeath::Cause::kBattery)
        sensors_[d.node]->set_battery(
            d.battery_j,
            [this, node = d.node] { rt_.faults()->battery_exhausted(node); });
    }
    if (!cfg_.faults.degradations().empty()) {
      head_->set_fault_injector(rt_.faults());
      for (auto& s : sensors_) s->set_fault_injector(rt_.faults());
    }
    inj.arm();
  }
  if (cfg_.recovery.enabled)
    head_->set_replan_handler(
        [this](NodeId declared) { replan_after_death(declared); });

  // Live trajectory for the sampler, when one was requested: standard
  // counters are only mirrored into the registry at end of run, so push
  // the watched gauges from agent state before each tick.
  if (MetricsSampler* sp = rt_.sampler(); sp != nullptr) {
    sp->add_refresh_hook([this](Time now) {
      MetricsRegistry& reg = rt_.metrics();
      std::uint64_t alive = 0;
      double energy = 0.0;
      for (const auto& s : sensors_) {
        if (!s->dead()) ++alive;
        energy += s->meter().total_energy_j();
      }
      reg.gauge(sample::kAliveNodes).set(now, static_cast<double>(alive));
      reg.gauge(sample::kEnergyJ).set(now, energy);
      reg.gauge(sample::kDelivered)
          .set(now, static_cast<double>(head_->packets_received()));
      reg.gauge(sample::kGenerated)
          .set(now, static_cast<double>(sum_generated()));
    });
  }

  head_->start(Time::ms(10));
}

const CompatibilityOracle& PollingSimulation::scheduling_oracle() {
  if (!cfg_.cache_oracle) return *oracle_;
  // A fresh wrapper per oracle generation: the head may still query the
  // previous one until its next phase, so it retires rather than resets.
  if (cached_oracle_) retired_caches_.push_back(std::move(cached_oracle_));
  // Pair screening is sound here: the measured oracle inherits SINR
  // monotonicity (an interfering pair interferes in every superset).
  cached_oracle_ = std::make_unique<CachedOracle>(
      *oracle_, CachedOracle::PairScreen::kOn);
  MetricsRegistry& m = rt_.metrics();
  cached_oracle_->bind_counters(&m.counter(metric::kOracleCacheHit),
                                &m.counter(metric::kOracleCacheMiss));
  return *cached_oracle_;
}

std::uint64_t PollingSimulation::sum_generated() const {
  std::uint64_t total = 0;
  for (const auto& s : sensors_) total += s->packets_generated();
  return total;
}

void PollingSimulation::on_node_death(const NodeDeath& death) {
  sensors_.at(death.node)->fail();
  if (!have_first_death_) {
    have_first_death_ = true;
    death_gen_ = sum_generated();
    death_del_ = head_->packets_received();
    // Until a repair happens, "after" also counts from the first death.
    repair_gen_ = death_gen_;
    repair_del_ = death_del_;
  }
}

void PollingSimulation::replan_after_death(NodeId declared) {
  MHP_SPAN("polling/replan");
  declared_dead_.push_back(declared);
  const RelayPlan* hint = repair_plan_ ? repair_plan_.get() : plan_.get();
  RouteRepair repair = repair_routes(*topo_, declared_dead_, demand_,
                                     cfg_.routing, &engine_, hint);

  // Re-probe interference over the transmissions the repaired plan uses.
  // The old oracle is retired, not destroyed: the head still references
  // it until its next phase begins.
  retired_oracles_.push_back(std::move(oracle_));
  oracle_ = std::make_unique<MeasuredOracle>(
      *truth_, transmissions_of_paths(repair.probe_paths),
      cfg_.oracle_order);
  head_->set_oracle(scheduling_oracle());

  // The repaired cluster drains as one sector; re-home every surviving
  // member so it follows sector-0 wake/sleep control.
  for (NodeId s : repair.sectors.front().members)
    sensors_[s]->set_sector(0);
  head_->replace_plans(std::move(repair.sectors));
  repair_plan_ = std::make_unique<RelayPlan>(std::move(repair.plan));
  last_orphaned_ = repair.orphaned.size();
  repair_gen_ = sum_generated();
  repair_del_ = head_->packets_received();
}

SimulationReport PollingSimulation::run(Time duration, Time warmup) {
  MHP_REQUIRE(duration > warmup, "duration must exceed warmup");
  Simulator& sim = rt_.sim();
  {
    MHP_SPAN("polling/warmup");
    sim.run_until(warmup);
  }
  head_->reset_stats(sim.now());
  for (auto& s : sensors_) s->reset_stats(sim.now());
  rt_.begin_measurement();

  {
    MHP_SPAN("polling/measured");
    const std::uint64_t events_before = sim.events_executed();
    sim.run_until(duration);
    MHP_SPAN_COUNTER("events", sim.events_executed() - events_before);
    MHP_SPAN_COUNTER("oracle_hits",
                     rt_.metrics().counter(metric::kOracleCacheHit).value());
    MHP_SPAN_COUNTER("oracle_misses",
                     rt_.metrics().counter(metric::kOracleCacheMiss).value());
  }

  MHP_SPAN("polling/collect");
  const Time measured = duration - warmup;
  SimulationReport rep;
  rep.sectors = partition_ ? partition_->sectors.size() : 1;

  std::uint64_t generated = 0;
  std::uint64_t overflow = 0;
  double active_sum = 0.0, power_sum = 0.0;
  MetricsRegistry& m = rt_.metrics();
  for (auto& s : sensors_) {
    s->settle(sim.now());
    generated += s->packets_generated();
    overflow += s->packets_dropped_overflow();
    const double active = s->meter().active_fraction();
    const double power = s->meter().average_power_w();
    active_sum += active;
    power_sum += power;
    rep.max_active_fraction = std::max(rep.max_active_fraction, active);
    rep.max_sensor_power_w = std::max(rep.max_sensor_power_w, power);
    // Per-node accounting (labeled series; see registry node_metric).
    const NodeId id = s->id();
    m.counter(node_metric(metric::kNodeRelayed, id))
        .add(s->packets_relayed());
    m.counter(node_metric(metric::kNodeFramesTx, id)).add(s->frames_sent());
    m.gauge(node_metric(metric::kNodeEnergyJ, id))
        .set(sim.now(), s->meter().total_energy_j());
    m.gauge(node_metric(metric::kNodeAwakeS, id))
        .set(sim.now(), (s->meter().total_time() -
                         s->meter().time_in(RadioState::kSleep))
                            .to_seconds());
  }
  const auto n = static_cast<double>(sensors_.size());
  rep.mean_sensor_power_w = power_sum / n;

  // Mirror the stack's totals into the runtime registry; the shared
  // report core is then populated from it.
  m.counter(metric::kPacketsGenerated).add(generated);
  m.counter(metric::kPacketsDelivered).add(head_->packets_received());
  m.counter(metric::kBytesDelivered).add(head_->bytes_received());
  m.counter(metric::kPacketsLost)
      .add(head_->packets_lost_abort() + head_->packets_lost_retry() +
           overflow);
  m.counter("polling.reactivations").add(head_->reactivations());
  m.counter("polling.cycles_completed").add(head_->cycles_completed());
  m.gauge(metric::kMeanActiveFraction).set(sim.now(), active_sum / n);
  m.gauge("sensors.mean_power_w").set(sim.now(), rep.mean_sensor_power_w);
  m.gauge(metric::kMeanLatencyS)
      .set(sim.now(),
           head_->latency_s().empty() ? 0.0 : head_->latency_s().mean());

  // Degradation accounting — only when the run could degrade at all, so
  // fault-free reports (keys and metrics snapshot included) stay
  // byte-identical to pre-fault builds.
  if (!cfg_.faults.empty() || cfg_.recovery.enabled) {
    const auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : std::uint64_t{0};
    };
    const auto ratio = [](std::uint64_t del, std::uint64_t gen) {
      return gen == 0 ? 1.0
                      : static_cast<double>(del) / static_cast<double>(gen);
    };
    DegradationReport deg;
    if (const FaultInjector* inj = rt_.faults(); inj != nullptr) {
      deg.dead_nodes = inj->dead_nodes();
      deg.deaths = deg.dead_nodes.size();
    }
    deg.deaths_detected = head_->deaths_detected();
    deg.replans = head_->replans();
    deg.orphaned_sensors = last_orphaned_;
    const std::uint64_t gen_end = sum_generated();
    const std::uint64_t del_end = head_->packets_received();
    if (have_first_death_) {
      deg.delivery_before = ratio(death_del_, death_gen_);
      deg.delivery_after =
          ratio(sat(del_end, repair_del_), sat(gen_end, repair_gen_));
    } else {
      deg.delivery_before = ratio(del_end, gen_end);
      deg.delivery_after = deg.delivery_before;
    }
    rep.degradation = deg;
    m.counter("fault.deaths").add(deg.deaths);
    m.counter("fault.deaths_detected").add(deg.deaths_detected);
    m.counter("fault.replans").add(deg.replans);
    m.counter("fault.orphaned_sensors").add(deg.orphaned_sensors);
  }

  if (cached_oracle_ != nullptr) {
    OracleCacheStats oracle;
    oracle.add(*cached_oracle_);
    for (const auto& retired : retired_caches_) oracle.add(*retired);
    rep.oracle = oracle;
  }

  static_cast<RunStats&>(rep) =
      rt_.collect_run_stats(measured, cfg_.data_bytes);
  rep.packets_lost = m.counter(metric::kPacketsLost).value();
  rep.mean_duty_seconds =
      head_->duty_time_s().empty() ? 0.0 : head_->duty_time_s().mean();
  return rep;
}

}  // namespace mhp
