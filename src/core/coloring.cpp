#include "core/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/assertx.hpp"

namespace mhp {

namespace {

int lowest_free_color(const Graph& g, const std::vector<int>& colors,
                      NodeId v) {
  std::vector<bool> taken;
  for (NodeId w : g.neighbors(v)) {
    const int c = colors[w];
    if (c < 0) continue;
    if (static_cast<std::size_t>(c) >= taken.size())
      taken.resize(static_cast<std::size_t>(c) + 1, false);
    taken[static_cast<std::size_t>(c)] = true;
  }
  for (std::size_t c = 0; c < taken.size(); ++c)
    if (!taken[c]) return static_cast<int>(c);
  return static_cast<int>(taken.size());
}

}  // namespace

std::vector<int> six_color_planar(const Graph& g) {
  const std::size_t n = g.size();
  // Elimination: repeatedly remove a vertex of minimum remaining degree
  // (<= 5 in planar graphs); colour in reverse removal order — at most 5
  // coloured neighbours exist at re-insertion, so 6 colours suffice.
  std::vector<std::size_t> degree(n);
  std::vector<bool> removed(n, false);
  for (NodeId v = 0; v < n; ++v) degree[v] = g.degree(v);

  std::vector<NodeId> order;
  order.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    NodeId pick = kNoNode;
    for (NodeId v = 0; v < n; ++v) {
      if (removed[v]) continue;
      if (pick == kNoNode || degree[v] < degree[pick]) pick = v;
    }
    MHP_ENSURE(pick != kNoNode, "elimination ran out of vertices");
    removed[pick] = true;
    order.push_back(pick);
    for (NodeId w : g.neighbors(pick))
      if (!removed[w]) --degree[w];
  }

  std::vector<int> colors(n, -1);
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    colors[*it] = lowest_free_color(g, colors, *it);
  return colors;
}

std::vector<int> greedy_color(const Graph& g) {
  const std::size_t n = g.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  std::vector<int> colors(n, -1);
  for (NodeId v : order) colors[v] = lowest_free_color(g, colors, v);
  return colors;
}

bool proper_coloring(const Graph& g, const std::vector<int>& colors) {
  MHP_REQUIRE(colors.size() == g.size(), "colour vector size mismatch");
  for (NodeId v = 0; v < g.size(); ++v) {
    if (colors[v] < 0) return false;
    for (NodeId w : g.neighbors(v))
      if (colors[v] == colors[w]) return false;
  }
  return true;
}

int num_colors(const std::vector<int>& colors) {
  int m = 0;
  for (int c : colors) m = std::max(m, c + 1);
  return m;
}

}  // namespace mhp
