#include "core/set_cover.hpp"

#include <algorithm>
#include <limits>

#include "util/assertx.hpp"

namespace mhp {

SetCoverResult greedy_set_cover(std::size_t universe,
                                const std::vector<WeightedSubset>& subsets) {
  for (const auto& s : subsets) {
    MHP_REQUIRE(s.cost >= 0.0, "negative subset cost");
    for (std::size_t e : s.elements)
      MHP_REQUIRE(e < universe, "element out of range");
  }
  SetCoverResult result;
  std::vector<bool> covered(universe, false);
  std::size_t remaining = universe;
  std::vector<bool> used(subsets.size(), false);

  while (remaining > 0) {
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best = subsets.size();
    std::size_t best_new = 0;
    for (std::size_t i = 0; i < subsets.size(); ++i) {
      if (used[i]) continue;
      std::size_t fresh = 0;
      for (std::size_t e : subsets[i].elements)
        if (!covered[e]) ++fresh;
      if (fresh == 0) continue;
      // Covering cost: subset cost per newly covered element.  Zero-cost
      // subsets are always taken first.
      const double ratio = subsets[i].cost / static_cast<double>(fresh);
      if (ratio < best_ratio ||
          (ratio == best_ratio && fresh > best_new)) {
        best_ratio = ratio;
        best = i;
        best_new = fresh;
      }
    }
    if (best == subsets.size()) {
      result.covered = false;  // leftovers are uncoverable
      return result;
    }
    used[best] = true;
    result.chosen.push_back(best);
    result.total_cost += subsets[best].cost;
    for (std::size_t e : subsets[best].elements) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
      }
    }
  }
  return result;
}

SetCoverResult exact_set_cover(std::size_t universe,
                               const std::vector<WeightedSubset>& subsets) {
  MHP_REQUIRE(subsets.size() <= 20, "exact cover capped at 20 subsets");
  MHP_REQUIRE(universe <= 63, "exact cover capped at 63 elements");
  const std::uint64_t full =
      universe == 0 ? 0 : (~std::uint64_t{0} >> (64 - universe));
  std::vector<std::uint64_t> mask(subsets.size(), 0);
  for (std::size_t i = 0; i < subsets.size(); ++i)
    for (std::size_t e : subsets[i].elements) mask[i] |= std::uint64_t{1} << e;

  SetCoverResult best;
  best.covered = false;
  best.total_cost = std::numeric_limits<double>::infinity();
  const std::uint32_t combos = 1u << subsets.size();
  for (std::uint32_t pick = 0; pick < combos; ++pick) {
    std::uint64_t cov = 0;
    double cost = 0.0;
    for (std::size_t i = 0; i < subsets.size(); ++i)
      if (pick & (1u << i)) {
        cov |= mask[i];
        cost += subsets[i].cost;
      }
    if (cov == full && cost < best.total_cost) {
      best.covered = true;
      best.total_cost = cost;
      best.chosen.clear();
      for (std::size_t i = 0; i < subsets.size(); ++i)
        if (pick & (1u << i)) best.chosen.push_back(i);
    }
  }
  if (!best.covered) best.total_cost = 0.0;
  return best;
}

}  // namespace mhp
