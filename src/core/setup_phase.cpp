#include "core/setup_phase.hpp"

#include <queue>

#include "net/deployment.hpp"
#include "util/assertx.hpp"

namespace mhp {

SetupResult run_setup_discovery(const Channel& channel, std::size_t n) {
  MHP_REQUIRE(channel.num_nodes() == n + 1, "channel must hold n+1 nodes");
  const auto head = static_cast<NodeId>(n);

  SetupCost cost;
  std::vector<NodeId> temp_parent(n, kNoNode);
  std::vector<bool> discovered(n, false);

  // --- §V-A: level-by-level membership discovery -----------------------
  // HELLO broadcast from the head (its downlink reaches everyone).
  cost.discovery_slots += 1;
  std::vector<NodeId> frontier;
  for (NodeId s = 0; s < n; ++s) {
    if (channel.link_ok(s, head)) {
      discovered[s] = true;
      temp_parent[s] = head;
      frontier.push_back(s);
      // Registration reply: first-level sensors answer directly.
      cost.discovery_slots += 1;
    }
  }
  while (!frontier.empty()) {
    ++cost.discovery_rounds;
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      // v broadcasts a discovery beacon in its own slot.
      cost.discovery_slots += 1;
      for (NodeId w = 0; w < n; ++w) {
        if (discovered[w] || !channel.link_ok(v, w) ||
            !channel.link_ok(w, v))
          continue;
        discovered[w] = true;
        temp_parent[w] = v;  // first discoverer becomes the temp parent
        next.push_back(w);
        // Registration relayed to the head along the temp tree: one slot
        // per hop.
        std::size_t hops = 1;
        for (NodeId u = v; u != head; u = temp_parent[u]) ++hops;
        cost.discovery_slots += hops;
      }
    }
    frontier = std::move(next);
  }

  // --- §V-B: connectivity learning -------------------------------------
  // Every discovered sensor broadcasts once...
  for (NodeId s = 0; s < n; ++s)
    if (discovered[s]) cost.connectivity_slots += 1;
  // ...then reports who it heard, relayed along the temp tree.
  for (NodeId s = 0; s < n; ++s) {
    if (!discovered[s]) continue;
    std::size_t hops = 0;
    for (NodeId u = s; u != head; u = temp_parent[u]) ++hops;
    cost.connectivity_slots += hops;
  }

  // The learned topology: symmetric sensor links + head-decodable uplinks
  // (identical to the ground-truth predicate — the procedures probe with
  // a silent channel).
  auto topo = topology_from_predicate(n, [&](NodeId a, NodeId b) {
    return channel.link_ok(a, b);
  });

  SetupResult result{std::move(topo), std::move(temp_parent), cost};
  return result;
}

ProbeResult run_interference_probing(
    const Channel& channel, const std::vector<std::vector<NodeId>>& paths,
    int order) {
  ChannelOracle truth(channel, order);
  const auto universe = transmissions_of_paths(paths);
  MeasuredOracle oracle(truth, universe, order);
  SetupCost cost;
  cost.probe_groups = oracle.probes();
  // One slot to fire the group, one for the receivers' verdict report.
  cost.probe_slots = static_cast<std::size_t>(2 * oracle.probes());
  return ProbeResult{std::move(oracle), cost};
}

}  // namespace mhp
