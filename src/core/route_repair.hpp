// Head-side route repair after a node death (fault-recovery subsystem).
//
// When the head declares a node dead it re-runs the same §III-A routing
// on the surviving topology: the dead node's edges disappear, sensors
// with no remaining relay path to the head are orphaned (demand dropped),
// and the result is a single covering sector plan with a fresh ack cover
// — the repaired cluster is drained whole; sectoring and path rotation
// are suspended after a repair.
#pragma once

#include <cstdint>
#include <vector>

#include "core/head_agent.hpp"
#include "core/protocol_config.hpp"
#include "core/routing.hpp"
#include "net/cluster.hpp"

namespace mhp::route {
class RoutingEngine;
}

namespace mhp {

/// Everything a repair produces.  The caller re-probes interference over
/// `probe_paths` (the transmissions the new plan uses) and hands
/// `sectors` plus the new oracle to the head.
struct RouteRepair {
  ClusterTopology topo;  // surviving topology (dead nodes isolated)
  RelayPlan plan;
  std::vector<SectorPlan> sectors;  // exactly one covering sector
  /// Alive sensors left without any relay path to the head.
  std::vector<NodeId> orphaned;
  std::vector<std::vector<NodeId>> probe_paths;
};

/// Re-route `topo` minus `dead`.  `demand[s]` is the per-cycle packet
/// demand used at set-up; dead and orphaned sensors are re-solved with
/// zero demand.  Requires at least one sensor to survive with a path.
///
/// `engine` (optional) solves on a caller-owned RoutingEngine so repeated
/// repairs reuse its arenas; `previous` (optional) is the plan being
/// repaired, whose surviving paths warm-start the balanced re-solve.
/// Both are pure accelerators: results are identical without them.
RouteRepair repair_routes(const ClusterTopology& topo,
                          const std::vector<NodeId>& dead,
                          std::vector<std::int64_t> demand,
                          RoutingPolicy routing,
                          route::RoutingEngine* engine = nullptr,
                          const RelayPlan* previous = nullptr);

}  // namespace mhp
