#include "core/reductions.hpp"

#include <algorithm>
#include <numeric>

#include "core/optimal_scheduler.hpp"
#include "util/assertx.hpp"

namespace mhp {

Tx TsrfInstance::uplink(std::size_t branch) const {
  return Tx{second_level(branch), first_level(branch)};
}

Tx TsrfInstance::relay(std::size_t branch) const {
  return Tx{first_level(branch), head()};
}

ClusterTopology TsrfInstance::topology() const {
  Graph g(num_sensors());
  std::vector<bool> head_hears(num_sensors(), false);
  for (std::size_t b = 0; b < branches; ++b) {
    g.add_edge(first_level(b), second_level(b));
    head_hears[first_level(b)] = true;
  }
  return ClusterTopology(std::move(g), std::move(head_hears));
}

std::vector<PollingRequest> TsrfInstance::requests() const {
  std::vector<PollingRequest> out;
  out.reserve(branches);
  for (std::size_t b = 0; b < branches; ++b) {
    PollingRequest r;
    r.id = static_cast<RequestId>(b);
    r.path = {second_level(b), first_level(b), head()};
    out.push_back(std::move(r));
  }
  return out;
}

TsrfReduction::TsrfReduction(const Graph& g) : oracle(2) {
  instance.branches = g.size();
  for (NodeId i = 0; i < g.size(); ++i) {
    for (NodeId j : g.neighbors(i)) {
      // Edge (vi, vj): branch i's uplink may overlap branch j's relay and
      // vice versa — the back-to-back hand-off of Lemma 1.
      oracle.allow_pair(instance.uplink(i), instance.relay(j));
      oracle.allow_pair(instance.uplink(j), instance.relay(i));
    }
  }
}

std::optional<std::vector<NodeId>> path_from_schedule(
    const TsrfInstance& inst, const Schedule& schedule) {
  // Record the slot in which each branch's relay (s_i → head) runs.
  std::vector<std::pair<std::size_t, NodeId>> relay_slots;
  for (std::size_t t = 0; t < schedule.slots.size(); ++t)
    for (const auto& s : schedule.slots[t])
      if (s.tx.to == inst.head())
        relay_slots.push_back({t, static_cast<NodeId>(s.tx.from / 2)});
  if (relay_slots.size() != inst.branches) return std::nullopt;
  std::sort(relay_slots.begin(), relay_slots.end());
  std::vector<NodeId> order;
  order.reserve(inst.branches);
  for (const auto& [slot, branch] : relay_slots) order.push_back(branch);
  return order;
}

std::optional<std::vector<NodeId>> hamiltonian_path_via_tsrfp(const Graph& g) {
  if (g.size() == 0) return std::vector<NodeId>{};
  if (g.size() == 1) return std::vector<NodeId>{0};
  TsrfReduction red(g);
  const auto requests = red.instance.requests();
  OptimalScheduler solver(red.oracle);
  // Lemma 1: schedule of length k+1 exists iff G has a Hamiltonian path.
  auto result = solver.solve(requests, g.size() + 1);
  if (!result || result->slots > g.size() + 1) return std::nullopt;
  auto order = path_from_schedule(red.instance, result->schedule);
  MHP_ENSURE(order.has_value(), "tight schedule without full relay order");
  // Sanity: consecutive branches must be adjacent in G.
  for (std::size_t i = 0; i + 1 < order->size(); ++i)
    MHP_ENSURE(g.has_edge((*order)[i], (*order)[i + 1]),
               "schedule order is not a path in G");
  return order;
}

bool has_hamiltonian_path(const Graph& g) {
  const std::size_t n = g.size();
  if (n <= 1) return true;
  MHP_REQUIRE(n <= 20, "exponential check capped at 20 vertices");
  // dp[mask][v]: a path visiting exactly `mask` ends at v.
  std::vector<std::vector<char>> dp(1u << n, std::vector<char>(n, 0));
  for (std::size_t v = 0; v < n; ++v) dp[1u << v][v] = 1;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    for (std::size_t v = 0; v < n; ++v) {
      if (!dp[mask][v]) continue;
      for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        if (mask & (1u << w)) continue;
        dp[mask | (1u << w)][w] = 1;
      }
    }
  }
  const std::uint32_t full = (1u << n) - 1;
  return std::any_of(dp[full].begin(), dp[full].end(),
                     [](char c) { return c != 0; });
}

std::vector<PollingRequest> X1mhpInstance::requests() const {
  std::vector<PollingRequest> out;
  RequestId id = 0;
  for (const auto& b : layout) {
    // Every sensor has exactly one packet (the X1MHP condition).
    out.push_back({id++, {b.s, head}});
    out.push_back({id++, {b.s_prime, b.s, head}});
    out.push_back({id++, {b.u, head}});
    out.push_back({id++, {b.u_prime, b.u, head}});
    out.push_back({id++, {b.u_dprime, b.u_prime, b.u, head}});
    out.push_back({id++, {b.u_tprime, b.u_dprime, b.u_prime, b.u, head}});
  }
  return out;
}

X1mhpReduction::X1mhpReduction(const TsrfReduction& base) : oracle(2) {
  const std::size_t k = base.instance.branches;
  instance.branches = k;
  NodeId next = 0;
  instance.layout.reserve(k);
  for (std::size_t b = 0; b < k; ++b) {
    X1mhpInstance::Branch br;
    br.s = next++;
    br.s_prime = next++;
    br.u = next++;
    br.u_prime = next++;
    br.u_dprime = next++;
    br.u_tprime = next++;
    instance.layout.push_back(br);
  }
  instance.head = next;

  // Carry over the TSRF interference pattern between main branches.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const Tx up_i{instance.layout[i].s_prime, instance.layout[i].s};
      const Tx rel_j{instance.layout[j].s, instance.head};
      // uplink(i) ∥ relay(j) compatible iff it was in the base oracle.
      if (base.oracle.compatible(
              std::vector<Tx>{base.instance.uplink(i),
                              base.instance.relay(j)}))
        oracle.allow_pair(up_i, rel_j);
    }
  }

  // Within each branch, the hand-offs that let the auxiliary chain pair up
  // with the main branch (Theorem 3's construction; see DESIGN.md for the
  // disambiguation of the garbled source):
  //   u'' → u'  compatible with  s' → s
  //   u'  → u   compatible with  s  → head
  // Everything else involving auxiliary sensors stays incompatible.
  for (const auto& b : instance.layout) {
    oracle.allow_pair(Tx{b.u_dprime, b.u_prime}, Tx{b.s_prime, b.s});
    oracle.allow_pair(Tx{b.u_prime, b.u}, Tx{b.s, instance.head});
  }
}

namespace {

ClusterTopology build_cpar_topology(const std::vector<std::int64_t>& ints,
                                    std::vector<int>& chain_of) {
  for (auto a : ints) MHP_REQUIRE(a >= 1, "Partition integers must be >= 1");
  // Sensors: gateway1 = 0, gateway2 = 1, then one chain per integer.
  std::size_t n = 2;
  for (auto a : ints) n += static_cast<std::size_t>(a);
  Graph g(n);
  std::vector<bool> head_hears(n, false);
  head_hears[0] = head_hears[1] = true;
  chain_of.assign(n, -1);

  NodeId next = 2;
  for (std::size_t i = 0; i < ints.size(); ++i) {
    const auto len = static_cast<std::size_t>(ints[i]);
    // Chain head connects to *both* gateways (the partition choice).
    g.add_edge(next, 0);
    g.add_edge(next, 1);
    for (std::size_t j = 0; j < len; ++j) {
      chain_of[next] = static_cast<int>(i);
      if (j + 1 < len) g.add_edge(next, next + 1);
      ++next;
    }
  }
  MHP_ENSURE(next == n, "chain layout mismatch");
  return ClusterTopology(std::move(g), std::move(head_hears));
}

}  // namespace

CparInstance::CparInstance(std::vector<std::int64_t> ints)
    : integers(std::move(ints)),
      topology(build_cpar_topology(integers, chain_of)) {}

std::optional<std::vector<std::size_t>> partition_via_cpar(
    const CparInstance& inst) {
  const std::size_t m = inst.integers.size();
  MHP_REQUIRE(m <= 24, "exponential search capped at 24 integers");
  const std::int64_t total =
      std::accumulate(inst.integers.begin(), inst.integers.end(),
                      std::int64_t{0});
  if (total % 2 != 0) return std::nullopt;

  // Pseudo power consumption rate of a gateway with assigned sum A (all
  // sensors generate one packet; α = β = 1):
  //   load = 1 + A (own packet plus every dependent's), sector size
  //   n' = 1 + A, so ρ' = (1 + A) + (1 + A) = 2(1 + A).
  // The CPAR bound B = 2(1 + total/2) is met iff both sectors balance.
  const std::int64_t bound = 2 * (1 + total / 2);
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::int64_t a = 0;
    for (std::size_t i = 0; i < m; ++i)
      if (mask & (1u << i)) a += inst.integers[i];
    const std::int64_t rho1 = 2 * (1 + a);
    const std::int64_t rho2 = 2 * (1 + (total - a));
    if (std::max(rho1, rho2) <= bound) {
      std::vector<std::size_t> chosen;
      for (std::size_t i = 0; i < m; ++i)
        if (mask & (1u << i)) chosen.push_back(i);
      return chosen;
    }
  }
  return std::nullopt;
}

}  // namespace mhp
