// Polling requests and schedules.
//
// A polling request is one data packet to be collected: its relaying path
// runs from the originating sensor to the cluster head.  A schedule maps
// time slots to the transmissions running in them.  Packets are never
// delayed (§III-C.2 shows delaying buys nothing): a request started in
// slot t performs hop j in slot t + j.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/interference.hpp"
#include "net/ids.hpp"

namespace mhp {

using RequestId = std::uint32_t;

struct PollingRequest {
  RequestId id = 0;
  /// path[0] = originating sensor, path.back() = cluster head.
  std::vector<NodeId> path;

  std::size_t hop_count() const { return path.size() - 1; }
  Tx hop(std::size_t j) const { return Tx{path[j], path[j + 1]}; }
};

struct ScheduledTx {
  Tx tx;
  RequestId request = 0;
  std::size_t hop = 0;  // which hop of the request's path this is

  friend bool operator==(const ScheduledTx&, const ScheduledTx&) = default;
};

struct Schedule {
  /// slots[t] = transmissions running in slot t.
  std::vector<std::vector<ScheduledTx>> slots;

  std::size_t length() const { return slots.size(); }
  std::size_t total_transmissions() const;

  /// Max concurrent transmissions in any slot.
  std::size_t peak_concurrency() const;

  std::string to_string() const;
};

struct ValidationResult {
  bool ok = true;
  std::string error;

  static ValidationResult failure(std::string msg) {
    return ValidationResult{false, std::move(msg)};
  }
};

/// Check that `schedule` delivers every request exactly once: consecutive
/// hops, correct hop transmissions, per-slot groups compatible under
/// `oracle` (which also enforces group size <= oracle order, half-duplex
/// and receiver uniqueness).
ValidationResult validate_schedule(std::span<const PollingRequest> requests,
                                   const Schedule& schedule,
                                   const CompatibilityOracle& oracle);

/// Lower bound on any schedule's length: every request needs at least
/// hop_count slots, and slot concurrency is capped by the oracle order.
std::size_t schedule_lower_bound(std::span<const PollingRequest> requests,
                                 int order);

}  // namespace mhp
