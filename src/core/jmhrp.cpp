#include "core/jmhrp.hpp"

#include <algorithm>

#include "core/greedy_scheduler.hpp"
#include "core/optimal_scheduler.hpp"
#include "core/routing.hpp"
#include "flow/min_max_load.hpp"
#include "util/assertx.hpp"

namespace mhp {

std::vector<std::vector<NodeId>> candidate_paths(const ClusterTopology& topo,
                                                 NodeId s,
                                                 std::size_t max_paths,
                                                 std::size_t max_hops) {
  std::vector<std::vector<NodeId>> found;
  std::vector<NodeId> current{s};
  std::vector<bool> visited(topo.num_sensors(), false);
  visited[s] = true;

  // DFS over simple paths, preferring neighbors closer to the head so the
  // shortest paths are discovered first.
  auto dfs = [&](auto&& self, NodeId v) -> void {
    if (found.size() >= max_paths) return;
    if (topo.head_hears(v)) {
      auto path = current;
      path.push_back(topo.head());
      found.push_back(std::move(path));
      // Keep exploring: v may also relay deeper paths.
    }
    if (current.size() > max_hops) return;
    auto neighbors = topo.sensor_links().neighbors(v);
    std::sort(neighbors.begin(), neighbors.end(), [&](NodeId a, NodeId b) {
      return topo.level(a) < topo.level(b);
    });
    for (NodeId w : neighbors) {
      if (visited[w] || found.size() >= max_paths) continue;
      visited[w] = true;
      current.push_back(w);
      self(self, w);
      current.pop_back();
      visited[w] = false;
    }
  };
  dfs(dfs, s);

  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return found;
}

namespace {

/// Score one routing choice: exact schedule + power rate.  Nullopt when
/// unschedulable.
std::optional<JmhrpResult> score(const ClusterTopology& topo,
                                 const CompatibilityOracle& oracle,
                                 const JmhrpParams& params,
                                 std::vector<std::size_t> choice,
                                 std::vector<std::vector<NodeId>> paths,
                                 bool exact) {
  std::vector<PollingRequest> requests;
  requests.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i)
    requests.push_back({static_cast<RequestId>(i), paths[i]});

  JmhrpResult result;
  if (exact) {
    OptimalScheduler solver(oracle);
    auto sched = solver.solve(requests);
    if (!sched) return std::nullopt;
    result.schedule = std::move(sched->schedule);
    result.slots = sched->slots;
  } else {
    const auto run = run_offline(oracle, paths);
    if (!run.all_delivered) return std::nullopt;
    result.schedule = run.schedule;
    result.slots = run.slots;
  }

  std::vector<double> load(topo.num_sensors(), 0.0);
  for (const auto& p : paths)
    for (std::size_t i = 0; i + 1 < p.size(); ++i) load[p[i]] += 1.0;
  double worst = 0.0;
  for (NodeId s = 0; s < topo.num_sensors(); ++s)
    worst = std::max(worst, params.alpha * load[s] +
                                params.beta * static_cast<double>(result.slots));
  result.max_power_rate = worst;
  result.choice = std::move(choice);
  result.paths = std::move(paths);
  return result;
}

}  // namespace

std::optional<JmhrpResult> solve_jmhrp_exact(const ClusterTopology& topo,
                                             const CompatibilityOracle& oracle,
                                             JmhrpParams params,
                                             std::size_t max_paths) {
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(n <= 8, "exact JMHRP capped at 8 sensors");
  std::vector<std::vector<std::vector<NodeId>>> cands(n);
  // Seed every sensor's candidate list with its flow-routed path so the
  // joint search space is a superset of the decomposition's choice.
  const auto flow_routing =
      solve_min_max_load(topo, std::vector<std::int64_t>(n, 1));
  std::uint64_t combos = 1;
  for (NodeId s = 0; s < n; ++s) {
    cands[s] = candidate_paths(topo, s, max_paths);
    if (flow_routing.feasible) {
      const auto& routed = flow_routing.paths[s][0].hops;
      if (std::find(cands[s].begin(), cands[s].end(), routed) ==
          cands[s].end())
        cands[s].push_back(routed);
    }
    if (cands[s].empty()) return std::nullopt;  // disconnected sensor
    combos *= cands[s].size();
  }
  MHP_REQUIRE(combos <= 100'000, "JMHRP instance too large");

  std::optional<JmhrpResult> best;
  std::vector<std::size_t> choice(n, 0);
  for (std::uint64_t k = 0; k < combos; ++k) {
    std::uint64_t rem = k;
    std::vector<std::vector<NodeId>> paths(n);
    for (NodeId s = 0; s < n; ++s) {
      choice[s] = rem % cands[s].size();
      rem /= cands[s].size();
      paths[s] = cands[s][choice[s]];
    }
    auto scored = score(topo, oracle, params, choice, std::move(paths),
                        /*exact=*/true);
    if (scored && (!best || scored->max_power_rate < best->max_power_rate))
      best = std::move(scored);
  }
  return best;
}

std::optional<JmhrpResult> solve_jmhrp_decomposed(
    const ClusterTopology& topo, const CompatibilityOracle& oracle,
    JmhrpParams params) {
  const std::size_t n = topo.num_sensors();
  const auto routing =
      solve_min_max_load(topo, std::vector<std::int64_t>(n, 1));
  if (!routing.feasible) return std::nullopt;
  std::vector<std::vector<NodeId>> paths(n);
  for (NodeId s = 0; s < n; ++s) paths[s] = routing.paths[s][0].hops;
  return score(topo, oracle, params, std::vector<std::size_t>(n, 0),
               std::move(paths), /*exact=*/false);
}

}  // namespace mhp
