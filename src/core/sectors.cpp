#include "core/sectors.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <set>

#include "util/assertx.hpp"

namespace mhp {

std::vector<NodeId> SectorPartition::tree_path(NodeId s, NodeId head) const {
  std::vector<NodeId> path{s};
  NodeId v = s;
  while (v != head) {
    v = parent.at(v);
    path.push_back(v);
  }
  return path;
}

void SectorPartitioner::merge_to_tree(
    const RelayPlan& plan, const std::vector<std::int64_t>& demand,
    std::vector<NodeId>& parent, std::vector<std::int64_t>& tree_load) const {
  const std::size_t n = topo_.num_sensors();
  const NodeId head = topo_.head();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");

  // Candidate next hops of each sensor: every successor it uses in any
  // unit path (its own or one it relays).
  std::vector<std::set<NodeId>> candidates(n);
  for (NodeId o = 0; o < n; ++o) {
    for (const auto& p : plan.paths(o)) {
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i)
        candidates[p.hops[i]].insert(p.hops[i + 1]);
    }
  }
  // Sensors untouched by any path (zero demand, never relaying) still need
  // a tree position: any neighbor one level closer, or the head.
  for (NodeId s = 0; s < n; ++s) {
    if (!candidates[s].empty()) continue;
    if (topo_.head_hears(s)) {
      candidates[s].insert(head);
      continue;
    }
    for (NodeId nb : topo_.sensor_links().neighbors(s))
      if (topo_.level(nb) + 1 == topo_.level(s)) candidates[s].insert(nb);
    MHP_REQUIRE(!candidates[s].empty(),
                "sensor unreachable from head; cluster not connected");
  }

  // Process sensors by level ascending ("start flow merging at flow
  // splitting sensors closest to the cluster head"): when sensor s picks
  // a parent, that parent's own tree path is already fixed.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (topo_.level(a) != topo_.level(b))
      return topo_.level(a) < topo_.level(b);
    return a < b;
  });

  parent.assign(n, kNoNode);
  // Provisional load estimate while choosing parents: the plan's loads.
  const std::vector<std::int64_t>& est = plan.loads();

  // Max estimated load along the fixed parent chain from `from` to the
  // head; nullopt when the chain is incomplete or would pass through
  // `avoid` (which would create a cycle once `avoid` adopts `from`).
  auto max_load_to_head = [&](NodeId from,
                              NodeId avoid) -> std::optional<std::int64_t> {
    std::int64_t m = 0;
    NodeId v = from;
    std::size_t steps = 0;
    while (v != head) {
      if (v == avoid || ++steps > n) return std::nullopt;
      m = std::max(m, est[v]);
      const NodeId p = parent[v];
      if (p == kNoNode) return std::nullopt;  // chain not yet fixed
      v = p;
    }
    return m;
  };

  for (NodeId s : order) {
    const auto& cand = candidates[s];
    MHP_ENSURE(!cand.empty(), "no parent candidate");
    NodeId best = kNoNode;
    std::int64_t best_metric = 0;
    for (NodeId c : cand) {
      if (c == head) {
        best = head;
        break;  // direct uplink always wins
      }
      const auto metric = max_load_to_head(c, s);
      if (!metric) continue;  // chain unfixed or cyclic — unusable
      if (best == kNoNode || *metric < best_metric) {
        best = c;
        best_metric = *metric;
      }
    }
    if (best == kNoNode) {
      // All candidates unprocessed (same-level chain): fall back to any
      // neighbor one level closer.
      for (NodeId nb : topo_.sensor_links().neighbors(s)) {
        if (topo_.level(nb) + 1 == topo_.level(s)) {
          best = nb;
          break;
        }
      }
      if (best == kNoNode && topo_.head_hears(s)) best = head;
    }
    MHP_ENSURE(best != kNoNode, "flow merging failed to pick a parent");
    parent[s] = best;
  }

  // Tree loads: demand flows up the tree.  Process by tree depth,
  // deepest first.
  tree_load.assign(n, 0);
  auto depth = [&](NodeId s) {
    std::size_t d = 0;
    for (NodeId v = s; v != head; v = parent[v]) ++d;
    return d;
  };
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return depth(a) > depth(b);
  });
  for (NodeId s : order) {
    tree_load[s] += demand[s];
    if (parent[s] != head) tree_load[parent[s]] += tree_load[s];
  }
}

namespace {

/// Branch b = gateway + all its tree descendants.
struct Branch {
  NodeId gateway;
  std::vector<NodeId> sensors;  // includes the gateway
  std::int64_t gateway_load = 0;
};

}  // namespace

SectorPartition SectorPartitioner::partition(
    const RelayPlan& plan, const std::vector<std::int64_t>& demand,
    const CompatibilityOracle* oracle) const {
  const std::size_t n = topo_.num_sensors();
  const NodeId head = topo_.head();

  SectorPartition out;
  merge_to_tree(plan, demand, out.parent, out.tree_load);

  // Collect first-level branches.
  std::vector<Branch> branches;
  std::map<NodeId, std::size_t> branch_of_gateway;
  for (NodeId s = 0; s < n; ++s) {
    if (out.parent[s] == head) {
      branch_of_gateway[s] = branches.size();
      branches.push_back(Branch{s, {s}, out.tree_load[s]});
    }
  }
  for (NodeId s = 0; s < n; ++s) {
    if (out.parent[s] == head) continue;
    NodeId v = s;
    while (out.parent[v] != head) v = out.parent[v];
    branches[branch_of_gateway[v]].sensors.push_back(s);
  }

  // Pairing.  Sort by size descending; repeatedly take the largest
  // unpaired branch and the *smallest* compatible partner (rule ii).
  std::vector<std::size_t> order(branches.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return branches[a].sensors.size() > branches[b].sensors.size();
  });

  auto linked = [&](const Branch& a, const Branch& b) {
    // Rule (i): some sensor of a hears some sensor of b.
    for (NodeId x : a.sensors)
      for (NodeId y : b.sensors)
        if (topo_.sensors_linked(x, y)) return true;
    return false;
  };
  auto can_alternate = [&](const Branch& a, const Branch& b) {
    if (oracle == nullptr) return true;  // rule (iii) needs measurements
    // While gateway A sends to the head, gateway B should be able to
    // receive from one of its children, and vice versa.
    auto one_way = [&](const Branch& tx, const Branch& rx) {
      const Tx up{tx.gateway, head};
      for (NodeId c : rx.sensors) {
        if (c == rx.gateway) continue;
        if (out.parent[c] == rx.gateway &&
            oracle->compatible(std::vector<Tx>{up, Tx{c, rx.gateway}}))
          return true;
      }
      // A leaf-only branch has nothing to receive; that is fine.
      return rx.sensors.size() == 1;
    };
    return one_way(a, b) && one_way(b, a);
  };

  std::vector<bool> used(branches.size(), false);
  out.sectors.clear();
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const std::size_t i = order[oi];
    if (used[i]) continue;
    used[i] = true;
    Sector sec;
    sec.gateways = {branches[i].gateway};
    sec.sensors = branches[i].sensors;
    if (params_.max_branches_per_sector >= 2) {
      // Smallest compatible partner: scan from the tail of the order.
      for (std::size_t oj = order.size(); oj-- > oi + 1;) {
        const std::size_t j = order[oj];
        if (used[j]) continue;
        if (!linked(branches[i], branches[j])) continue;
        if (!can_alternate(branches[i], branches[j])) continue;
        used[j] = true;
        sec.gateways.push_back(branches[j].gateway);
        sec.sensors.insert(sec.sensors.end(), branches[j].sensors.begin(),
                           branches[j].sensors.end());
        break;
      }
    }
    std::sort(sec.sensors.begin(), sec.sensors.end());
    out.sectors.push_back(std::move(sec));
  }

  out.sector_of.assign(n, -1);
  for (std::size_t k = 0; k < out.sectors.size(); ++k)
    for (NodeId s : out.sectors[k].sensors)
      out.sector_of[s] = static_cast<int>(k);
  for (NodeId s = 0; s < n; ++s)
    MHP_ENSURE(out.sector_of[s] >= 0, "sensor not covered by any sector");
  return out;
}

SectorPartition SectorPartitioner::single_sector(
    const RelayPlan& plan, const std::vector<std::int64_t>& demand) const {
  const std::size_t n = topo_.num_sensors();
  SectorPartition out;
  merge_to_tree(plan, demand, out.parent, out.tree_load);
  Sector sec;
  sec.sensors.resize(n);
  std::iota(sec.sensors.begin(), sec.sensors.end(), 0);
  for (NodeId s = 0; s < n; ++s)
    if (out.parent[s] == topo_.head()) sec.gateways.push_back(s);
  out.sectors.push_back(std::move(sec));
  out.sector_of.assign(n, 0);
  return out;
}

double SectorPartitioner::max_pseudo_rate(const SectorPartition& p) const {
  double worst = 0.0;
  for (const auto& sec : p.sectors) {
    for (NodeId s : sec.sensors) {
      const double rate =
          params_.alpha * static_cast<double>(p.tree_load[s]) +
          params_.beta * static_cast<double>(sec.sensors.size());
      worst = std::max(worst, rate);
    }
  }
  return worst;
}

}  // namespace mhp
