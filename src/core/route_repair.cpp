#include "core/route_repair.hpp"

#include <algorithm>

#include "core/ack_collection.hpp"
#include "obs/profiler.hpp"
#include "route/routing_engine.hpp"
#include "util/assertx.hpp"

namespace mhp {

RouteRepair repair_routes(const ClusterTopology& topo,
                          const std::vector<NodeId>& dead,
                          std::vector<std::int64_t> demand,
                          RoutingPolicy routing,
                          route::RoutingEngine* engine,
                          const RelayPlan* previous) {
  MHP_SPAN("fault/repair_routes");
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  std::vector<bool> alive(n, true);
  for (NodeId d : dead) {
    MHP_REQUIRE(d < n, "dead node outside the cluster");
    alive[d] = false;
  }

  // Surviving topology: drop every edge touching a dead node and the
  // head's uplinks from dead nodes; ids stay stable.
  Graph links(n);
  std::vector<bool> hears(n, false);
  for (NodeId a = 0; a < n; ++a) {
    if (!alive[a]) continue;
    hears[a] = topo.head_hears(a);
    for (NodeId b : topo.sensor_links().neighbors(a))
      if (a < b && alive[b]) links.add_edge(a, b);
  }
  ClusterTopology survived(std::move(links), std::move(hears));

  std::vector<NodeId> orphaned;
  for (NodeId s = 0; s < n; ++s) {
    if (!alive[s]) {
      demand[s] = 0;
    } else if (survived.level(s) == ClusterTopology::kUnreachable) {
      demand[s] = 0;
      orphaned.push_back(s);
    }
  }
  MHP_REQUIRE(std::any_of(demand.begin(), demand.end(),
                          [](std::int64_t d) { return d > 0; }),
              "no sensor survives with a relay path");

  route::RoutingEngine local_engine;
  route::RoutingEngine& eng = engine != nullptr ? *engine : local_engine;
  // The repaired plan's surviving paths seed the re-solve's first
  // feasibility probe; paths through dead nodes are skipped by the
  // engine.  This never changes the solution (see RoutingEngine docs).
  if (previous != nullptr && routing != RoutingPolicy::kShortestPath)
    eng.set_warm_hint(&previous->all_paths());
  RelayPlan plan(survived,
                 routing == RoutingPolicy::kShortestPath
                     ? eng.solve_shortest(survived, demand)
                     : eng.solve_balanced(survived, demand));

  // One covering sector over the survivors, fixed cycle-0 paths.
  SectorPlan sp;
  std::vector<std::vector<NodeId>> candidates;
  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] <= 0) continue;
    sp.members.push_back(s);
    auto path = plan.path_for_cycle(s, 0).hops;
    sp.data_path[s] = path;
    candidates.push_back(std::move(path));
  }
  const AckPlan ack = plan_ack_cover(sp.members, candidates);
  MHP_ENSURE(ack.covers_all, "ack cover incomplete after repair");
  sp.ack_paths = ack.poll_paths;

  RouteRepair out{std::move(survived), std::move(plan), {}, std::move(orphaned),
                  std::move(candidates)};
  for (const auto& p : sp.ack_paths) out.probe_paths.push_back(p);
  out.sectors.push_back(std::move(sp));
  return out;
}

}  // namespace mhp
