// Inter-cluster interference removal (§V-G).
//
// Two mechanisms: (a) rotate a token among cluster heads so only one
// cluster transmits at a time; (b) assign radio channels by colouring the
// cluster adjacency graph — planar, so six colours always suffice via the
// minimum-degree elimination argument (every planar graph has a vertex of
// degree <= 5).
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"

namespace mhp {

/// Colour `g` with the degree<=5 elimination algorithm.  Guaranteed to use
/// at most 6 colours on planar graphs (and max-degree+1 in general).
/// Returns one colour (0-based) per vertex.
std::vector<int> six_color_planar(const Graph& g);

/// Simple greedy colouring in Welsh–Powell (degree-descending) order.
std::vector<int> greedy_color(const Graph& g);

/// True iff adjacent vertices always have different colours.
bool proper_coloring(const Graph& g, const std::vector<int>& colors);

int num_colors(const std::vector<int>& colors);

/// Round-robin token rotation among `clusters` cluster heads: which
/// cluster may transmit in global round `round`.
class TokenRotation {
 public:
  explicit TokenRotation(std::size_t clusters) : clusters_(clusters) {}

  std::size_t holder(std::uint64_t round) const {
    return clusters_ == 0 ? 0 : round % clusters_;
  }
  bool may_transmit(std::size_t cluster, std::uint64_t round) const {
    return holder(round) == cluster;
  }

 private:
  std::size_t clusters_;
};

}  // namespace mhp
