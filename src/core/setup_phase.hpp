// The cluster's one-time set-up procedures (§V-A, §V-B, §V-E) with
// explicit cost accounting.
//
// Before the duty-cycle regime can start the head must learn, by
// airtime-consuming procedures, (1) which sensors belong to the cluster
// and how to reach them, (2) the full connectivity pattern, and (3) the
// M-wise interference pattern of the transmissions its relaying plans
// use.  Each procedure transmits in dedicated slots with nothing else on
// the air, so outcomes follow the channel's interference-free link test;
// what this module adds is the *slot budget* each phase costs — the
// set-up price the paper's sectoring argument (§IV) is about.
#pragma once

#include <cstdint>
#include <vector>

#include "core/interference.hpp"
#include "net/cluster.hpp"
#include "radio/channel.hpp"
#include "sim/time.hpp"

namespace mhp {

struct SetupCost {
  /// §V-A level-by-level membership discovery: one HELLO slot, one
  /// broadcast slot per discovered sensor, and one relayed registration
  /// per newly found sensor (its hop count in slots).
  std::size_t discovery_slots = 0;
  std::size_t discovery_rounds = 0;  // BFS levels walked

  /// §V-B connectivity learning: every member broadcasts once, then its
  /// neighbor list is relayed to the head along the temporary tree.
  std::size_t connectivity_slots = 0;

  /// §V-E interference probing: per group one test slot plus one result
  /// slot (receivers report what they decoded).
  std::uint64_t probe_groups = 0;
  std::size_t probe_slots = 0;

  std::size_t total_slots() const {
    return discovery_slots + connectivity_slots + probe_slots;
  }
};

struct SetupResult {
  ClusterTopology topology;  // as discovered (== ground truth links)
  /// Temporary relaying parent per sensor from the discovery BFS
  /// (first discoverer, §V-A); head for first-level sensors.
  std::vector<NodeId> temp_parent;
  SetupCost cost;
};

/// Run membership discovery + connectivity learning against the channel.
/// `n` = number of sensors (ids 0..n-1; the head is node n).
SetupResult run_setup_discovery(const Channel& channel, std::size_t n);

/// Account the probing cost for a set of relaying paths at order M and
/// build the measured oracle the head ends up with.
struct ProbeResult {
  MeasuredOracle oracle;
  SetupCost cost;  // only the probe fields are populated
};
ProbeResult run_interference_probing(
    const Channel& channel, const std::vector<std::vector<NodeId>>& paths,
    int order);

}  // namespace mhp
