// Greedy weighted set cover (§V-F uses it to pick acknowledgement paths).
//
// Classic ln(n)-approximation: repeatedly take the subset with the lowest
// covering cost (cost divided by newly covered elements).
#pragma once

#include <cstdint>
#include <vector>

namespace mhp {

struct WeightedSubset {
  std::vector<std::size_t> elements;
  double cost = 0.0;
};

struct SetCoverResult {
  bool covered = true;              // false if elements remain uncoverable
  std::vector<std::size_t> chosen;  // indices into the subset list
  double total_cost = 0.0;
};

/// Cover elements 0..universe-1.  Subsets may overlap; elements no subset
/// contains leave `covered == false` (the chosen list still covers what it
/// can).
SetCoverResult greedy_set_cover(std::size_t universe,
                                const std::vector<WeightedSubset>& subsets);

/// Exact minimum-cost cover by exhaustive search (tests/ablations only;
/// capped at 20 subsets).
SetCoverResult exact_set_cover(std::size_t universe,
                               const std::vector<WeightedSubset>& subsets);

}  // namespace mhp
