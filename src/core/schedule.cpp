#include "core/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assertx.hpp"

namespace mhp {

std::size_t Schedule::total_transmissions() const {
  std::size_t n = 0;
  for (const auto& slot : slots) n += slot.size();
  return n;
}

std::size_t Schedule::peak_concurrency() const {
  std::size_t peak = 0;
  for (const auto& slot : slots) peak = std::max(peak, slot.size());
  return peak;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (std::size_t t = 0; t < slots.size(); ++t) {
    os << "slot " << t << ":";
    for (const auto& s : slots[t])
      os << "  r" << s.request << "[" << s.tx.from << "->" << s.tx.to << "]";
    os << "\n";
  }
  return os.str();
}

ValidationResult validate_schedule(std::span<const PollingRequest> requests,
                                   const Schedule& schedule,
                                   const CompatibilityOracle& oracle) {
  std::map<RequestId, const PollingRequest*> by_id;
  for (const auto& r : requests) {
    MHP_REQUIRE(r.path.size() >= 2, "request path needs >= 1 hop");
    by_id[r.id] = &r;
  }

  // Collect each request's (slot, hop) placements.
  std::map<RequestId, std::vector<std::pair<std::size_t, std::size_t>>> seen;
  for (std::size_t t = 0; t < schedule.slots.size(); ++t) {
    for (const auto& s : schedule.slots[t]) {
      auto it = by_id.find(s.request);
      if (it == by_id.end())
        return ValidationResult::failure("unknown request in schedule");
      const PollingRequest& r = *it->second;
      if (s.hop >= r.hop_count())
        return ValidationResult::failure("hop index out of range");
      if (!(s.tx == r.hop(s.hop)))
        return ValidationResult::failure("transmission mismatches path hop");
      seen[s.request].push_back({t, s.hop});
    }
  }

  for (const auto& r : requests) {
    auto it = seen.find(r.id);
    if (it == seen.end())
      return ValidationResult::failure("request never scheduled");
    auto& placements = it->second;
    std::sort(placements.begin(), placements.end());
    if (placements.size() != r.hop_count())
      return ValidationResult::failure(
          "request scheduled with wrong number of hops");
    for (std::size_t j = 0; j < placements.size(); ++j) {
      if (placements[j].second != j)
        return ValidationResult::failure("request hops out of order");
      if (j > 0 && placements[j].first != placements[j - 1].first + 1)
        return ValidationResult::failure(
            "request hops not in consecutive slots (packet delayed)");
    }
  }

  for (std::size_t t = 0; t < schedule.slots.size(); ++t) {
    std::vector<Tx> group;
    group.reserve(schedule.slots[t].size());
    for (const auto& s : schedule.slots[t]) group.push_back(s.tx);
    // The oracle judges the set of concurrent transmissions; duplicate
    // Tx entries (one radio sending two frames in a slot) are a
    // scheduler bug it can no longer see, so reject them here.
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        if (group[i] == group[j]) {
          std::ostringstream os;
          os << "slot " << t << " schedules the same transmission twice";
          return ValidationResult::failure(os.str());
        }
    if (!oracle.compatible(group)) {
      std::ostringstream os;
      os << "slot " << t << " group incompatible";
      return ValidationResult::failure(os.str());
    }
  }
  return ValidationResult{};
}

std::size_t schedule_lower_bound(std::span<const PollingRequest> requests,
                                 int order) {
  MHP_REQUIRE(order >= 1, "order must be >= 1");
  std::size_t total = 0;
  std::size_t longest = 0;
  for (const auto& r : requests) {
    total += r.hop_count();
    longest = std::max(longest, r.hop_count());
  }
  const std::size_t by_capacity =
      (total + static_cast<std::size_t>(order) - 1) /
      static_cast<std::size_t>(order);
  return std::max(longest, by_capacity);
}

}  // namespace mhp
