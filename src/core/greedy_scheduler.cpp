#include "core/greedy_scheduler.hpp"

#include <algorithm>
#include <set>

#include "obs/profiler.hpp"
#include "util/assertx.hpp"

namespace mhp {

RequestId GreedyPollingScheduler::add_request(std::vector<NodeId> path) {
  MHP_REQUIRE(path.size() >= 2, "request path needs at least one hop");
  const auto id = static_cast<RequestId>(requests_.size());
  Request r;
  r.req.id = id;
  r.req.path = std::move(path);
  requests_.push_back(std::move(r));
  ++pending_active_;
  return id;
}

std::vector<ScheduledTx>& GreedyPollingScheduler::occupancy(std::size_t slot) {
  MHP_REQUIRE(slot >= slot_, "occupancy of a past slot");
  const std::size_t k = slot - slot_;
  while (future_.size() <= k) future_.emplace_back();
  return future_[k];
}

bool GreedyPollingScheduler::admissible(const PollingRequest& r) const {
  const auto order = static_cast<std::size_t>(oracle_.order());
  // scratch_ is reused across hops and calls: this runs for every pending
  // request every slot, so a per-hop vector allocation dominates at scale.
  std::vector<Tx>& group = scratch_;
  for (std::size_t j = 0; j < r.hop_count(); ++j) {
    const std::size_t k = j;  // hop j runs in slot slot_ + j
    group.clear();
    if (k < future_.size()) {
      for (const auto& s : future_[k]) {
        // The oracle answers for *sets* of transmissions, so a hop that
        // is already committed to this slot would vanish under its
        // dedup — but one radio sends one frame per slot, so two
        // requests can never share a hop in the same slot.
        if (s.tx == r.hop(j)) return false;
        group.push_back(s.tx);
      }
    }
    if (group.size() + 1 > order) return false;
    group.push_back(r.hop(j));
    if (!oracle_.compatible(group)) return false;
  }
  return true;
}

std::vector<ScheduledTx> GreedyPollingScheduler::plan_slot() {
  MHP_REQUIRE(!planned_, "plan_slot called twice without complete_slot");
  planned_ = true;
  const auto order = static_cast<std::size_t>(oracle_.order());
  for (auto& r : requests_) {
    if (!r.active) continue;
    if (slot_ < r.eligible_slot) continue;  // deferred by backoff
    if (!future_.empty() && future_[0].size() >= order) break;
    if (!admissible(r.req)) continue;
    r.active = false;
    r.in_flight = true;
    r.start_slot = slot_;
    --pending_active_;
    ++in_flight_;
    for (std::size_t j = 0; j < r.req.hop_count(); ++j)
      occupancy(slot_ + j).push_back(ScheduledTx{r.req.hop(j), r.req.id, j});
  }
  std::vector<ScheduledTx> now =
      future_.empty() ? std::vector<ScheduledTx>{} : future_[0];
  attempts_ += now.size();
  return now;
}

std::vector<RequestId> GreedyPollingScheduler::due_now() const {
  std::vector<RequestId> due;
  for (const auto& r : requests_)
    if (r.in_flight && r.start_slot + r.req.hop_count() == slot_ + 1)
      due.push_back(r.req.id);
  return due;
}

void GreedyPollingScheduler::complete_slot(
    std::span<const RequestId> delivered) {
  MHP_REQUIRE(planned_, "complete_slot without plan_slot");
  planned_ = false;

  // Commit this slot to history.
  if (!future_.empty()) {
    history_.slots.push_back(std::move(future_.front()));
    future_.pop_front();
  } else {
    history_.slots.emplace_back();
  }

  const std::set<RequestId> got(delivered.begin(), delivered.end());
  for (auto& r : requests_) {
    if (!r.in_flight) continue;
    if (r.start_slot + r.req.hop_count() != slot_ + 1) continue;
    r.in_flight = false;
    --in_flight_;
    if (!got.contains(r.req.id)) {
      r.active = true;
      ++pending_active_;
      ++reactivations_;
    }
  }
  ++slot_;
}

void GreedyPollingScheduler::abandon(RequestId id) {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  Request& r = requests_[id];
  MHP_REQUIRE(!r.in_flight, "cannot abandon an in-flight request");
  if (!r.active) return;  // already done
  r.active = false;
  --pending_active_;
}

void GreedyPollingScheduler::defer(RequestId id, std::size_t slots) {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  Request& r = requests_[id];
  if (!r.active || r.in_flight) return;
  r.eligible_slot = slot_ + slots;
}

bool GreedyPollingScheduler::has_deferred() const {
  for (const auto& r : requests_)
    if (r.active && slot_ < r.eligible_slot) return true;
  return false;
}

const std::vector<NodeId>& GreedyPollingScheduler::request_path(
    RequestId id) const {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  return requests_[id].req.path;
}

OfflineRunResult run_offline(const CompatibilityOracle& oracle,
                             std::span<const std::vector<NodeId>> paths,
                             const HopLossModel& loss,
                             std::size_t max_slots) {
  MHP_SPAN("sched/run_offline");
  GreedyPollingScheduler sched(oracle);
  for (const auto& p : paths) sched.add_request(p);

  OfflineRunResult result;
  // A request's packet arrives iff no hop transmission was lost.
  std::vector<bool> hop_failed(paths.size(), false);
  while (!sched.finished()) {
    if (sched.current_slot() >= max_slots) {
      result.slots = sched.current_slot();
      result.schedule = sched.history();
      result.transmissions = sched.total_attempted_transmissions();
      result.reactivations = sched.reactivations();
      return result;  // all_delivered stays false
    }
    const auto txs = sched.plan_slot();
    for (const auto& s : txs) {
      if (s.hop == 0) hop_failed[s.request] = false;  // fresh attempt
      if (loss && !loss(s, sched.current_slot()))
        hop_failed[s.request] = true;
    }
    std::vector<RequestId> delivered;
    for (RequestId id : sched.due_now())
      if (!hop_failed[id]) delivered.push_back(id);
    sched.complete_slot(delivered);
  }
  result.schedule = sched.history();
  result.slots = sched.current_slot();
  result.all_delivered = true;
  result.transmissions = sched.total_attempted_transmissions();
  result.reactivations = sched.reactivations();
  MHP_SPAN_COUNTER("slots", result.slots);
  MHP_SPAN_COUNTER("transmissions", result.transmissions);
  return result;
}

OfflineRunResult best_of_orders(const CompatibilityOracle& oracle,
                                std::span<const std::vector<NodeId>> paths,
                                std::size_t restarts, Rng& rng) {
  MHP_SPAN("sched/best_of_orders");
  OfflineRunResult best = run_offline(oracle, paths);
  std::vector<std::vector<NodeId>> order(paths.begin(), paths.end());
  for (std::size_t r = 0; r < restarts; ++r) {
    rng.shuffle(order);
    OfflineRunResult candidate = run_offline(oracle, order);
    if (candidate.all_delivered &&
        (!best.all_delivered || candidate.slots < best.slots))
      best = std::move(candidate);
  }
  return best;
}

HopLossModel bernoulli_loss(double loss_rate, Rng& rng) {
  MHP_REQUIRE(loss_rate >= 0.0 && loss_rate < 1.0,
              "loss rate must be in [0,1)");
  return [loss_rate, &rng](const ScheduledTx&, std::size_t) {
    return !rng.bernoulli(loss_rate);
  };
}

}  // namespace mhp
