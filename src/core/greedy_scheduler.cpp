#include "core/greedy_scheduler.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "util/assertx.hpp"

namespace mhp {

RequestId GreedyPollingScheduler::add_request(std::vector<NodeId> path) {
  MHP_REQUIRE(path.size() >= 2, "request path needs at least one hop");
  const auto id = static_cast<RequestId>(requests_.size());
  Request r;
  r.req.id = id;
  r.req.path = std::move(path);
  requests_.push_back(std::move(r));
  active_next_.push_back(kNil);
  active_prev_.push_back(kNil);
  active_push_back(id);
  ++pending_active_;
  return id;
}

void GreedyPollingScheduler::active_push_back(std::uint32_t id) {
  active_prev_[id] = active_tail_;
  active_next_[id] = kNil;
  if (active_tail_ != kNil)
    active_next_[active_tail_] = id;
  else
    active_head_ = id;
  active_tail_ = id;
}

void GreedyPollingScheduler::active_unlink(std::uint32_t id) {
  const std::uint32_t prev = active_prev_[id];
  const std::uint32_t next = active_next_[id];
  if (prev != kNil)
    active_next_[prev] = next;
  else
    active_head_ = next;
  if (next != kNil)
    active_prev_[next] = prev;
  else
    active_tail_ = prev;
  active_prev_[id] = active_next_[id] = kNil;
}

void GreedyPollingScheduler::active_insert_sorted(std::uint32_t id) {
  // Re-activations (loss recovery) are rare; a forward walk to the first
  // larger id keeps the list in the paper's fixed scan order.
  std::uint32_t at = active_head_;
  while (at != kNil && at < id) at = active_next_[at];
  if (at == kNil) {
    active_push_back(id);
    return;
  }
  const std::uint32_t prev = active_prev_[at];
  active_prev_[id] = prev;
  active_next_[id] = at;
  active_prev_[at] = id;
  if (prev != kNil)
    active_next_[prev] = id;
  else
    active_head_ = id;
}

std::vector<ScheduledTx>& GreedyPollingScheduler::occupancy(std::size_t slot) {
  MHP_REQUIRE(slot >= slot_, "occupancy of a past slot");
  const std::size_t k = slot - slot_;
  while (future_.size() <= k) future_.emplace_back();
  return future_[k];
}

std::vector<RequestId>& GreedyPollingScheduler::due_list(std::size_t k) {
  while (due_.size() <= k) due_.emplace_back();
  return due_[k];
}

bool GreedyPollingScheduler::admissible(const PollingRequest& r) const {
  const auto order = static_cast<std::size_t>(oracle_.order());
  // scratch_ is reused across hops and calls: this runs for every pending
  // request every slot, so a per-hop vector allocation dominates at scale.
  std::vector<Tx>& group = scratch_;
  for (std::size_t j = 0; j < r.hop_count(); ++j) {
    const std::size_t k = j;  // hop j runs in slot slot_ + j
    group.clear();
    if (k < future_.size()) {
      for (const auto& s : future_[k]) {
        // The oracle answers for *sets* of transmissions, so a hop that
        // is already committed to this slot would vanish under its
        // dedup — but one radio sends one frame per slot, so two
        // requests can never share a hop in the same slot.
        if (s.tx == r.hop(j)) return false;
        group.push_back(s.tx);
      }
    }
    if (group.size() + 1 > order) return false;
    group.push_back(r.hop(j));
    if (!oracle_.compatible(group)) return false;
  }
  return true;
}

const std::vector<ScheduledTx>& GreedyPollingScheduler::plan_slot() {
  MHP_REQUIRE(!planned_, "plan_slot called twice without complete_slot");
  planned_ = true;
  const auto order = static_cast<std::size_t>(oracle_.order());
  if (future_.empty()) future_.emplace_back();
  for (std::uint32_t id = active_head_; id != kNil;) {
    const std::uint32_t next = active_next_[id];  // survives the unlink
    if (future_[0].size() >= order) break;
    Request& r = requests_[id];
    if (slot_ >= r.eligible_slot && admissible(r.req)) {
      r.active = false;
      r.in_flight = true;
      r.start_slot = slot_;
      --pending_active_;
      ++in_flight_;
      active_unlink(id);
      for (std::size_t j = 0; j < r.req.hop_count(); ++j)
        occupancy(slot_ + j).push_back(ScheduledTx{r.req.hop(j), r.req.id, j});
      auto& due = due_list(r.req.hop_count() - 1);
      due.insert(std::upper_bound(due.begin(), due.end(), id), id);
    }
    id = next;
  }
  attempts_ += future_[0].size();
  return future_[0];
}

const std::vector<RequestId>& GreedyPollingScheduler::due_now() const {
  return due_.empty() ? no_due_ : due_[0];
}

void GreedyPollingScheduler::complete_slot(
    std::span<const RequestId> delivered) {
  MHP_REQUIRE(planned_, "complete_slot without plan_slot");
  planned_ = false;

  // Commit this slot to history.
  if (!future_.empty()) {
    history_.slots.push_back(std::move(future_.front()));
    future_.pop_front();
  } else {
    history_.slots.emplace_back();
  }

  // Only requests whose last hop ran in this slot resolve now; due_[0]
  // holds exactly those.  `delivered` may alias due_[0] (the caller often
  // passes due_now()'s buffer), so it is only read before the pop.
  if (!due_.empty()) {
    for (RequestId id : due_[0]) {
      Request& r = requests_[id];
      r.in_flight = false;
      --in_flight_;
      if (std::find(delivered.begin(), delivered.end(), id) ==
          delivered.end()) {
        r.active = true;
        ++pending_active_;
        ++reactivations_;
        active_insert_sorted(id);
      }
    }
    due_.pop_front();
  }
  ++slot_;
}

void GreedyPollingScheduler::abandon(RequestId id) {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  Request& r = requests_[id];
  MHP_REQUIRE(!r.in_flight, "cannot abandon an in-flight request");
  if (!r.active) return;  // already done
  r.active = false;
  --pending_active_;
  active_unlink(id);
}

void GreedyPollingScheduler::defer(RequestId id, std::size_t slots) {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  Request& r = requests_[id];
  if (!r.active || r.in_flight) return;
  r.eligible_slot = slot_ + slots;
}

bool GreedyPollingScheduler::has_deferred() const {
  for (std::uint32_t id = active_head_; id != kNil; id = active_next_[id])
    if (slot_ < requests_[id].eligible_slot) return true;
  return false;
}

const std::vector<NodeId>& GreedyPollingScheduler::request_path(
    RequestId id) const {
  MHP_REQUIRE(id < requests_.size(), "unknown request");
  return requests_[id].req.path;
}

OfflineRunResult run_offline(const CompatibilityOracle& oracle,
                             std::span<const std::vector<NodeId>> paths,
                             const HopLossModel& loss,
                             std::size_t max_slots) {
  MHP_SPAN("sched/run_offline");
  GreedyPollingScheduler sched(oracle);
  for (const auto& p : paths) sched.add_request(p);

  OfflineRunResult result;
  // A request's packet arrives iff no hop transmission was lost.
  std::vector<bool> hop_failed(paths.size(), false);
  std::vector<RequestId> delivered;  // reused across slots
  while (!sched.finished()) {
    if (sched.current_slot() >= max_slots) {
      result.slots = sched.current_slot();
      result.schedule = sched.history();
      result.transmissions = sched.total_attempted_transmissions();
      result.reactivations = sched.reactivations();
      return result;  // all_delivered stays false
    }
    const auto& txs = sched.plan_slot();
    for (const auto& s : txs) {
      if (s.hop == 0) hop_failed[s.request] = false;  // fresh attempt
      if (loss && !loss(s, sched.current_slot()))
        hop_failed[s.request] = true;
    }
    delivered.clear();
    for (RequestId id : sched.due_now())
      if (!hop_failed[id]) delivered.push_back(id);
    sched.complete_slot(delivered);
  }
  result.schedule = sched.history();
  result.slots = sched.current_slot();
  result.all_delivered = true;
  result.transmissions = sched.total_attempted_transmissions();
  result.reactivations = sched.reactivations();
  MHP_SPAN_COUNTER("slots", result.slots);
  MHP_SPAN_COUNTER("transmissions", result.transmissions);
  return result;
}

OfflineRunResult best_of_orders(const CompatibilityOracle& oracle,
                                std::span<const std::vector<NodeId>> paths,
                                std::size_t restarts, Rng& rng) {
  MHP_SPAN("sched/best_of_orders");
  OfflineRunResult best = run_offline(oracle, paths);
  std::vector<std::vector<NodeId>> order(paths.begin(), paths.end());
  for (std::size_t r = 0; r < restarts; ++r) {
    rng.shuffle(order);
    OfflineRunResult candidate = run_offline(oracle, order);
    if (candidate.all_delivered &&
        (!best.all_delivered || candidate.slots < best.slots))
      best = std::move(candidate);
  }
  return best;
}

HopLossModel bernoulli_loss(double loss_rate, Rng& rng) {
  MHP_REQUIRE(loss_rate >= 0.0 && loss_rate < 1.0,
              "loss rate must be in [0,1)");
  return [loss_rate, &rng](const ScheduledTx&, std::size_t) {
    return !rng.bernoulli(loss_rate);
  };
}

}  // namespace mhp
