// Relaying-path management on top of the min-max-load flow solver.
//
// A RelayPlan holds every sensor's load-balanced relaying paths, rotates
// multi-path sensors across duty cycles in proportion to path flow
// (§V-D), and materialises the per-relay one-hop routing tables the paper
// proposes instead of source routes (§V-C).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "flow/min_max_load.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"

namespace mhp {

class RelayPlan {
 public:
  /// Build from a solved routing problem.  Throws if infeasible.
  RelayPlan(const ClusterTopology& topo, MinMaxLoadResult solution);

  /// Convenience: solve min-max-load with `demand` and wrap the result.
  static RelayPlan balanced(const ClusterTopology& topo,
                            const std::vector<std::int64_t>& demand);

  /// Energy-aware variant (§III-A): sensor s may carry `weight[s]`×
  /// the base load — richer batteries take proportionally more relaying.
  static RelayPlan balanced_weighted(const ClusterTopology& topo,
                                     const std::vector<std::int64_t>& demand,
                                     const std::vector<std::int64_t>& weight);

  /// Convenience: hop-count shortest paths (the ablation baseline).
  static RelayPlan shortest(const ClusterTopology& topo,
                            const std::vector<std::int64_t>& demand);

  std::size_t num_sensors() const { return paths_.size(); }

  /// Minimized maximum per-cycle sensor load.
  std::int64_t max_load() const { return max_load_; }
  std::int64_t load(NodeId s) const { return load_.at(s); }
  const std::vector<std::int64_t>& loads() const { return load_; }

  const std::vector<UnitPath>& paths(NodeId s) const { return paths_.at(s); }

  /// Every sensor's path list.  Feed to RoutingEngine::set_warm_hint so a
  /// post-fault replan starts from this plan's surviving flow.
  const std::vector<std::vector<UnitPath>>& all_paths() const {
    return paths_;
  }

  /// The path sensor s uses in duty cycle `cycle` — weighted round-robin
  /// over its paths in proportion to their flow units (§V-D).  Sensors
  /// with one path always get it.  Requires the sensor to have demand.
  const UnitPath& path_for_cycle(NodeId s, std::uint64_t cycle) const;

  /// One-hop routing table for relay `r`: origin sensor → next hop, for
  /// every dependent whose cycle-`cycle` path passes through r (§V-C).
  std::map<NodeId, NodeId> one_hop_table(NodeId r, std::uint64_t cycle) const;

  /// Dependents of sensor s under cycle `cycle`: sensors whose chosen
  /// path relays through s (used by sectoring, §IV).
  std::vector<NodeId> dependents(NodeId s, std::uint64_t cycle) const;

 private:
  std::vector<std::vector<UnitPath>> paths_;
  std::vector<std::int64_t> load_;
  std::int64_t max_load_ = 0;
  NodeId head_;
};

}  // namespace mhp
