// Cluster capacity model (§VI-A).
//
// Fig 7(a) shows that for a given data rate there is a maximum cluster
// size; beyond it sensors are awake full-time and packets are lost.  The
// paper leaves "choose a suitable size" to the operator.  This module
// predicts the duty fraction analytically — by *scheduling* one cycle's
// workload offline (ack cover + data requests through the greedy
// scheduler) and pricing the slots — so deployments can be sized without
// running the event simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/interference.hpp"
#include "core/protocol_config.hpp"
#include "core/routing.hpp"
#include "net/cluster.hpp"

namespace mhp {

struct CapacityEstimate {
  std::size_t ack_slots = 0;
  std::size_t data_slots = 0;
  double duty_seconds = 0.0;    // wake-up + ack + data + sleep airtime
  double duty_fraction = 0.0;   // duty_seconds / cycle period
  bool saturated = false;       // the cycle cannot drain in one period
};

/// Predict one steady-state duty cycle for `rate_bps` per sensor.
/// `oracle` is the compatibility knowledge the head would schedule with.
CapacityEstimate estimate_capacity(const ClusterTopology& topo,
                                   const RelayPlan& plan,
                                   const CompatibilityOracle& oracle,
                                   double rate_bps,
                                   const ProtocolConfig& cfg);

/// Largest cluster size (sensors drawn uniformly from the standard
/// evaluation square) whose predicted duty fraction stays below
/// `max_duty`.  Scans n = 10, 20, … up to `limit`.
std::size_t max_cluster_size(double rate_bps, const ProtocolConfig& cfg,
                             double max_duty = 0.99,
                             std::size_t limit = 150,
                             std::uint64_t seed = 1);

}  // namespace mhp
