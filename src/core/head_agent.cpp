#include "core/head_agent.hpp"

#include <algorithm>
#include <string>

#include "obs/profiler.hpp"
#include "util/assertx.hpp"

namespace mhp {

HeadAgent::HeadAgent(NodeId id, Simulator& sim, Channel& channel,
                     FrameUidSource& uids, const ProtocolConfig& cfg,
                     const CompatibilityOracle& oracle,
                     std::vector<SectorPlan> sectors, Rng rng,
                     Trace* trace)
    : id_(id),
      sim_(sim),
      channel_(channel),
      uids_(uids),
      cfg_(cfg),
      oracle_(&oracle),
      sectors_(std::move(sectors)),
      rng_(rng),
      trace_(trace),
      tracker_(cfg.head_energy, sim.now(), RadioState::kIdle) {
  MHP_REQUIRE(!sectors_.empty(), "head needs at least one sector plan");
  channel_.set_listener(id_, this);
  init_windows();
}

HeadAgent::HeadAgent(NodeId id, Simulator& sim, Channel& channel,
                     FrameUidSource& uids, const ProtocolConfig& cfg,
                     const CompatibilityOracle& oracle,
                     CyclePlanProvider& provider, Rng rng, Trace* trace)
    : id_(id),
      sim_(sim),
      channel_(channel),
      uids_(uids),
      cfg_(cfg),
      oracle_(&oracle),
      provider_(&provider),
      rng_(rng),
      trace_(trace),
      tracker_(cfg.head_energy, sim.now(), RadioState::kIdle) {
  MHP_REQUIRE(!provider.plans(0).empty(),
              "head needs at least one sector plan");
  channel_.set_listener(id_, this);
  init_windows();
}

const std::vector<SectorPlan>& HeadAgent::current_plans() const {
  return provider_ != nullptr ? provider_->plans(cycle_) : sectors_;
}

void HeadAgent::replace_plans(std::vector<SectorPlan> sectors) {
  MHP_REQUIRE(!sectors.empty(), "head needs at least one sector plan");
  sectors_ = std::move(sectors);
  provider_ = nullptr;
  init_windows();
}

void HeadAgent::init_windows() {
  // Sector windows proportional to member count (at least one share
  // each), packed into the drain window (the whole cycle unless token
  // rotation caps it).
  const auto& plans = provider_ != nullptr ? provider_->plans(0) : sectors_;
  Time drain = cfg_.cycle_period;
  if (cfg_.max_drain_window > Time::zero())
    drain = std::min(drain, cfg_.max_drain_window);
  double total = 0.0;
  for (const auto& s : plans)
    total += static_cast<double>(std::max<std::size_t>(s.members.size(), 1));
  window_offset_.resize(plans.size() + 1);
  double acc = 0.0;
  for (std::size_t k = 0; k < plans.size(); ++k) {
    window_offset_[k] = Time::seconds(drain.to_seconds() * acc);
    acc += static_cast<double>(
               std::max<std::size_t>(plans[k].members.size(), 1)) /
           total;
  }
  window_offset_.back() = drain;
}

void HeadAgent::start(Time first_cycle_start) {
  MHP_REQUIRE(first_cycle_start >= sim_.now(), "start time in the past");
  t0_ = first_cycle_start;
  sim_.at(first_cycle_start, [this] { begin_cycle(); });
}

Time HeadAgent::window_start(std::uint64_t cycle, std::size_t sector) const {
  return t0_ + cfg_.cycle_period * static_cast<std::int64_t>(cycle) +
         window_offset_[sector];
}

Time HeadAgent::window_end() const {
  if (sector_ + 1 < current_plans().size())
    return window_start(cycle_, sector_ + 1);
  return window_start(cycle_ + 1, 0);
}

void HeadAgent::begin_cycle() {
  cycle_start_ = sim_.now();
  sector_ = 0;
  begin_sector(0);
}

void HeadAgent::begin_sector(std::size_t k) {
  sector_ = k;
  sector_began_ = sim_.now();
  backlog_.clear();
  if (current_plans()[k].members.empty()) {
    end_sector();
    return;
  }
  if (trace_ != nullptr)
    trace_->record(sim_.now(), TraceCat::kProtocol,
                   "cycle " + std::to_string(cycle_) + " sector " +
                       std::to_string(k) + " wake");
  broadcast(WakeupMsg{cycle_, static_cast<int>(k)});
  const Time setup = channel_.airtime(cfg_.control_bytes) + cfg_.turnaround +
                     cfg_.slot_guard;
  sim_.after(setup, [this] { start_ack_phase(); });
}

void HeadAgent::reset_phase(bool is_ack) {
  // PhaseState is not assignable (the scheduler holds an oracle
  // reference); reset fields in place.
  phase_.is_ack = is_ack;
  phase_.sched.emplace(*oracle_);
  phase_.wire_base = next_wire_;
  phase_.attempts.clear();
  phase_.total = 0;
  phase_.delivered = 0;
  phase_.abandoned = 0;
}

void HeadAgent::start_ack_phase() {
  reset_phase(/*is_ack=*/true);
  const auto& plan = current_plans()[sector_];
  for (const auto& path : plan.ack_paths) {
    phase_.sched->add_request(path);
    ++phase_.total;
  }
  next_wire_ += static_cast<std::uint32_t>(plan.ack_paths.size());
  run_slot();
}

void HeadAgent::start_data_phase() {
  reset_phase(/*is_ack=*/false);
  const auto& plan = current_plans()[sector_];
  std::uint32_t count = 0;
  for (NodeId s : plan.members) {
    const auto it = backlog_.find(s);
    if (it == backlog_.end()) continue;  // ack lost: unknown, skip cycle
    const std::uint32_t n =
        std::min(it->second, cfg_.max_packets_per_cycle);
    const auto path_it = plan.data_path.find(s);
    MHP_ENSURE(path_it != plan.data_path.end(), "member without data path");
    for (std::uint32_t i = 0; i < n; ++i) {
      phase_.sched->add_request(path_it->second);
      ++phase_.total;
      ++count;
    }
  }
  next_wire_ += count;
  run_slot();
}

void HeadAgent::run_slot() {
  MHP_ENSURE(phase_.sched.has_value(), "slot without a phase");
  if (phase_.sched->finished()) {
    if (phase_.is_ack) {
      start_data_phase();
    } else {
      end_sector();
    }
    return;
  }
  // Window guard: a slot that cannot finish before the window closes is
  // not started; whatever is undelivered counts as lost (§VI-A: above the
  // cluster-size threshold packets are lost).
  if (sim_.now() + cfg_.slot_duration() +
          channel_.airtime(cfg_.control_bytes) >
      window_end()) {
    lost_abort_ += phase_.is_ack ? 0 : (phase_.total - phase_.delivered -
                                        phase_.abandoned);
    if (trace_ != nullptr)
      trace_->record(sim_.now(), TraceCat::kProtocol,
                     "window overrun: sector aborted");
    end_sector();
    return;
  }

  const std::vector<ScheduledTx>* planned = nullptr;
  {
    MHP_SPAN("head/plan_slot");
    planned = &phase_.sched->plan_slot();
    MHP_SPAN_COUNTER("scheduled", planned->size());
  }
  const std::vector<ScheduledTx>& txs = *planned;
  if (txs.empty()) {
    // Every active request is held back by retry backoff: let the slot
    // pass idle and try again.  Only possible under fault recovery.
    MHP_ENSURE(phase_.sched->has_deferred(),
               "scheduler planned an empty slot while busy");
    ++slot_in_sector_;
    arrived_wire_.clear();
    arrived_acks_.clear();
    sim_.after(cfg_.slot_duration(), [this] { finish_slot(); });
    return;
  }
  PollMsg poll;
  poll.cycle = cycle_;
  poll.slot = slot_in_sector_++;
  poll.assignments.reserve(txs.size());
  for (const auto& s : txs) {
    PollAssignment a;
    a.from = s.tx.from;
    a.to = s.tx.to;
    a.request = phase_.wire_base + s.request;
    a.is_ack = phase_.is_ack;
    a.is_origin = (s.hop == 0);
    poll.assignments.push_back(a);
  }
  ++polls_sent_;
  arrived_wire_.clear();
  arrived_acks_.clear();
  broadcast(std::move(poll));
  sim_.after(cfg_.slot_duration(), [this] { finish_slot(); });
}

void HeadAgent::finish_slot() {
  // Fold arrived acks into the backlog map.
  for (const auto& ack : arrived_acks_)
    for (const auto& [sensor, count] : ack.backlog) backlog_[sensor] = count;

  std::vector<RequestId>& delivered = delivered_scratch_;
  delivered.clear();
  for (std::uint32_t wire : arrived_wire_) {
    if (wire < phase_.wire_base) continue;
    const std::uint32_t local = wire - phase_.wire_base;
    if (local < phase_.total) delivered.push_back(local);
  }
  phase_.delivered += static_cast<std::uint32_t>(delivered.size());

  // Copy: the retry-budget loop below needs the due set after
  // complete_slot() has recycled the scheduler's buffer.
  std::vector<RequestId>& due = due_scratch_;
  {
    const auto& due_ref = phase_.sched->due_now();
    due.assign(due_ref.begin(), due_ref.end());
  }

  // A delivery vouches for every node on its path.
  if (cfg_.recovery.enabled && !suspicion_.empty())
    for (RequestId id : delivered)
      for (NodeId n : phase_.sched->request_path(id)) suspicion_.erase(n);

  phase_.sched->complete_slot(delivered);

  // Retry budget: abandon requests that keep failing (e.g. a reported
  // backlog the sensor no longer holds).
  for (RequestId id : due) {
    if (std::find(delivered.begin(), delivered.end(), id) != delivered.end())
      continue;
    ++reactivations_;
    if (++phase_.attempts[id] >= cfg_.max_retries) {
      phase_.sched->abandon(id);
      ++phase_.abandoned;
      if (!phase_.is_ack) ++lost_retry_;
      // A retry-exhausted request is evidence against its whole path
      // (minus the head); the dead node accumulates across paths while
      // innocents get cleared by their own deliveries.
      if (cfg_.recovery.enabled && cycle_ >= suspicion_resume_cycle_)
        for (NodeId n : phase_.sched->request_path(id))
          if (n != id_) ++suspicion_[n];
    } else if (cfg_.recovery.enabled && cfg_.recovery.backoff_slots > 0) {
      // Exponential backoff before the re-poll: a dead relay must not
      // monopolise the drain window.
      const std::uint32_t shift = std::min(phase_.attempts[id] - 1, 16u);
      const auto delay = std::min<std::size_t>(
          static_cast<std::size_t>(cfg_.recovery.backoff_slots) << shift,
          cfg_.recovery.max_backoff_slots);
      phase_.sched->defer(id, delay);
    }
  }
  run_slot();
}

void HeadAgent::end_sector() {
  duty_time_s_.add((sim_.now() - sector_began_).to_seconds());
  if (trace_ != nullptr)
    trace_->record(sim_.now(), TraceCat::kProtocol,
                   "cycle " + std::to_string(cycle_) + " sector " +
                       std::to_string(sector_) + " sleep (drained in " +
                       std::to_string(
                           (sim_.now() - sector_began_).to_millis()) +
                       " ms)");
  SleepMsg sleep;
  sleep.cycle = cycle_;
  sleep.sector = static_cast<int>(sector_);
  sleep.next_wakeup = window_start(cycle_ + 1, sector_);
  if (!current_plans()[sector_].members.empty()) broadcast(sleep);
  const Time after_tx = channel_.airtime(cfg_.control_bytes);

  if (sector_ + 1 < current_plans().size()) {
    const Time next = std::max(window_start(cycle_, sector_ + 1),
                               sim_.now() + after_tx);
    const std::size_t k = sector_ + 1;
    sim_.at(next, [this, k] { begin_sector(k); });
  } else {
    evaluate_suspects();
    ++cycles_done_;
    ++cycle_;
    slot_in_sector_ = 0;
    const Time next =
        std::max(window_start(cycle_, 0), sim_.now() + after_tx);
    sim_.at(next, [this] { begin_cycle(); });
  }
}

void HeadAgent::evaluate_suspects() {
  MHP_SPAN("head/detect");
  if (!cfg_.recovery.enabled) return;
  if (replans_ >= cfg_.recovery.max_replans) return;
  // One declaration per cycle: the strongest suspect (ties go to the
  // lowest id — a wrong pick re-accumulates and is corrected next time).
  NodeId worst = kNoNode;
  std::uint32_t votes = 0;
  for (const auto& [node, count] : suspicion_)
    if (count > votes) {
      worst = node;
      votes = count;
    }
  if (worst == kNoNode || votes < cfg_.recovery.suspect_polls) return;
  ++deaths_detected_;
  ++replans_;
  suspicion_.clear();
  // Sensors already asleep keep their pre-repair wake times for one
  // cycle; do not read their silence as death.
  suspicion_resume_cycle_ = cycle_ + 2;
  if (trace_ != nullptr)
    trace_->record(sim_.now(), TraceCat::kProtocol,
                   "head declares node " + std::to_string(worst) +
                       " dead (" + std::to_string(votes) +
                       " failed polls), replanning routes");
  if (replan_handler_) replan_handler_(worst);
}

void HeadAgent::broadcast(ControlPayload msg) {
  Frame f;
  f.uid = uids_.next();
  f.kind = FrameKind::kControl;
  f.src = id_;
  f.dst = kBroadcast;
  f.origin = id_;
  f.size_bytes = cfg_.control_bytes;
  f.payload = std::move(msg);
  tracker_.set_state(sim_.now(), RadioState::kTx);
  channel_.transmit(id_, f);
  sim_.after(channel_.airtime(cfg_.control_bytes), [this] {
    tracker_.set_state(sim_.now(),
                       rx_depth_ > 0 ? RadioState::kRx : RadioState::kIdle);
  });
}

void HeadAgent::on_frame_begin(const Frame&, NodeId, double, Time) {
  if (tracker_.state() == RadioState::kTx) return;
  if (rx_depth_++ == 0) tracker_.set_state(sim_.now(), RadioState::kRx);
}

void HeadAgent::on_frame_end(const Frame& frame, NodeId from, bool phy_ok) {
  if (tracker_.state() != RadioState::kTx && rx_depth_ > 0) {
    if (--rx_depth_ == 0) tracker_.set_state(sim_.now(), RadioState::kIdle);
  }
  if (!phy_ok) return;
  // Any frame decoded at the head vouches for its sender — including
  // overheard relay traffic addressed elsewhere.
  if (cfg_.recovery.enabled && !suspicion_.empty()) suspicion_.erase(from);
  if (faults_ != nullptr) {
    const double loss = faults_->link_loss(from, id_, sim_.now());
    if (loss > 0.0 && rng_.bernoulli(loss)) return;  // degraded link
  }
  if (frame.dst != id_ && frame.dst != kBroadcast) return;
  if (cfg_.random_loss > 0.0 &&
      (frame.kind == FrameKind::kData || frame.kind == FrameKind::kAck) &&
      rng_.bernoulli(cfg_.random_loss))
    return;

  switch (frame.kind) {
    case FrameKind::kData: {
      const auto& p = std::any_cast<const DataPayload&>(frame.payload);
      note_arrival(p.request);
      ++packets_received_;
      bytes_received_ += frame.size_bytes;
      latency_s_.add((sim_.now() - p.generated_at).to_seconds());
      if (latency_hist_ != nullptr)
        latency_hist_->observe((sim_.now() - p.generated_at).to_seconds());
      break;
    }
    case FrameKind::kAck: {
      const auto& p = std::any_cast<const AckPayload&>(frame.payload);
      note_arrival(p.request);
      arrived_acks_.push_back(p);
      break;
    }
    default:
      break;
  }
  (void)from;
}

void HeadAgent::note_arrival(std::uint32_t wire) {
  const auto it =
      std::lower_bound(arrived_wire_.begin(), arrived_wire_.end(), wire);
  if (it == arrived_wire_.end() || *it != wire) arrived_wire_.insert(it, wire);
}

void HeadAgent::reset_stats(Time now) {
  tracker_.reset(now);
  packets_received_ = 0;
  bytes_received_ = 0;
  lost_abort_ = 0;
  lost_retry_ = 0;
  cycles_done_ = 0;
  polls_sent_ = 0;
  reactivations_ = 0;
  duty_time_s_ = Accumulator{};
  latency_s_ = Accumulator{};
}

}  // namespace mhp
