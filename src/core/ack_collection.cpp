#include "core/ack_collection.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/assertx.hpp"

namespace mhp {

namespace {

/// Fallback path for a sensor without a demand path: climb the level
/// structure (lowest-id neighbor one level closer each hop).
std::vector<NodeId> level_path(const ClusterTopology& topo, NodeId s) {
  std::vector<NodeId> path{s};
  NodeId v = s;
  while (!topo.head_hears(v)) {
    NodeId next = kNoNode;
    for (NodeId nb : topo.sensor_links().neighbors(v)) {
      if (topo.level(nb) + 1 == topo.level(v)) {
        next = nb;
        break;
      }
    }
    MHP_REQUIRE(next != kNoNode, "sensor has no path to head");
    path.push_back(next);
    v = next;
  }
  path.push_back(topo.head());
  return path;
}

std::vector<std::vector<NodeId>> candidate_paths(
    const ClusterTopology& topo, const RelayPlan& plan, std::uint64_t cycle,
    const std::vector<NodeId>& sensors) {
  std::vector<std::vector<NodeId>> cands;
  cands.reserve(sensors.size());
  for (NodeId s : sensors) {
    if (!plan.paths(s).empty())
      cands.push_back(plan.path_for_cycle(s, cycle).hops);
    else
      cands.push_back(level_path(topo, s));
  }
  return cands;
}

std::vector<NodeId> all_sensors(const ClusterTopology& topo) {
  std::vector<NodeId> v(topo.num_sensors());
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace

AckPlan plan_ack_cover(const std::vector<NodeId>& targets,
                       const std::vector<std::vector<NodeId>>& candidates) {
  // Element ids: position of each sensor in `targets`.
  std::map<NodeId, std::size_t> elem_of;
  for (std::size_t i = 0; i < targets.size(); ++i) elem_of[targets[i]] = i;

  std::vector<WeightedSubset> subsets;
  subsets.reserve(candidates.size());
  for (const auto& path : candidates) {
    WeightedSubset sub;
    sub.cost = static_cast<double>(path.size() - 1);  // hop count
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      auto it = elem_of.find(path[i]);
      if (it != elem_of.end()) sub.elements.push_back(it->second);
    }
    subsets.push_back(std::move(sub));
  }

  const auto cover = greedy_set_cover(targets.size(), subsets);
  AckPlan out;
  out.covers_all = cover.covered;
  out.total_hops = cover.total_cost;
  for (std::size_t i : cover.chosen) out.poll_paths.push_back(candidates[i]);
  return out;
}

AckPlan plan_ack_collection(const ClusterTopology& topo,
                            const RelayPlan& plan, std::uint64_t cycle,
                            const std::vector<NodeId>& sensors) {
  const std::vector<NodeId> targets =
      sensors.empty() ? all_sensors(topo) : sensors;
  return plan_ack_cover(targets,
                        candidate_paths(topo, plan, cycle, targets));
}

AckPlan ack_poll_everyone(const ClusterTopology& topo, const RelayPlan& plan,
                          std::uint64_t cycle,
                          const std::vector<NodeId>& sensors) {
  const std::vector<NodeId> targets =
      sensors.empty() ? all_sensors(topo) : sensors;
  AckPlan out;
  out.covers_all = true;
  out.poll_paths = candidate_paths(topo, plan, cycle, targets);
  for (const auto& p : out.poll_paths)
    out.total_hops += static_cast<double>(p.size() - 1);
  return out;
}

}  // namespace mhp
