#include "core/capacity.hpp"

#include <cmath>

#include "core/ack_collection.hpp"
#include "core/greedy_scheduler.hpp"
#include "net/deployment.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {

CapacityEstimate estimate_capacity(const ClusterTopology& topo,
                                   const RelayPlan& plan,
                                   const CompatibilityOracle& oracle,
                                   double rate_bps,
                                   const ProtocolConfig& cfg) {
  const std::size_t n = topo.num_sensors();
  CapacityEstimate est;

  // Ack phase: schedule the set-cover paths.
  const AckPlan ack = plan_ack_collection(topo, plan, 0);
  MHP_REQUIRE(ack.covers_all, "ack cover incomplete");
  est.ack_slots = run_offline(oracle, ack.poll_paths).slots;

  // Data phase: the per-cycle packet workload, each packet one request
  // along its sensor's path.
  const double per_cycle = rate_bps * cfg.cycle_period.to_seconds() /
                           static_cast<double>(cfg.data_bytes);
  // Fractional packets alternate cycle by cycle; the steady-state mean
  // uses the expected integer count (ceil on the heavy cycles): schedule
  // with round-to-nearest and correct the duty linearly below.
  std::vector<std::vector<NodeId>> requests;
  for (NodeId s = 0; s < n; ++s) {
    const auto count = static_cast<std::size_t>(std::llround(
        std::max(1.0, per_cycle)));
    for (std::size_t k = 0; k < count; ++k)
      requests.push_back(plan.path_for_cycle(s, 0).hops);
  }
  est.data_slots = run_offline(oracle, requests).slots;

  const double slot_s = cfg.slot_duration().to_seconds();
  const double ctrl_s =
      static_cast<double>(cfg.control_bytes) * 8.0 / cfg.radio.bandwidth_bps;
  // Wake-up broadcast + guard, slots, sleep broadcast.
  est.duty_seconds = ctrl_s + cfg.turnaround.to_seconds() +
                     cfg.slot_guard.to_seconds() +
                     slot_s * static_cast<double>(est.ack_slots +
                                                  est.data_slots) +
                     ctrl_s;
  // If the per-cycle packet count was rounded up from a fraction < 1,
  // scale the data term back to its steady-state average.
  if (per_cycle < 1.0 && per_cycle > 0.0) {
    const double data_s = slot_s * static_cast<double>(est.data_slots);
    est.duty_seconds -= data_s * (1.0 - per_cycle);
  }
  est.duty_fraction = est.duty_seconds / cfg.cycle_period.to_seconds();
  est.saturated = est.duty_fraction >= 1.0;
  return est;
}

std::size_t max_cluster_size(double rate_bps, const ProtocolConfig& cfg,
                             double max_duty, std::size_t limit,
                             std::uint64_t seed) {
  std::size_t best = 0;
  for (std::size_t n = 10; n <= limit; n += 10) {
    Rng rng(seed + n);
    Deployment dep;
    try {
      dep = deploy_connected_uniform_square(n, 200.0, 60.0, rng);
    } catch (const ContractViolation&) {
      break;
    }
    const ClusterTopology topo = disc_topology(dep, 60.0);
    const double per_cycle = rate_bps * cfg.cycle_period.to_seconds() /
                             static_cast<double>(cfg.data_bytes);
    std::vector<std::int64_t> demand(
        n, std::max<std::int64_t>(
               1, static_cast<std::int64_t>(std::llround(
                      std::ceil(per_cycle)))));
    const RelayPlan plan = RelayPlan::balanced(topo, demand);

    // Pairwise-permissive oracle over the plan's own transmissions — the
    // measured oracle's typical shape at M = cfg.oracle_order.
    ExplicitOracle oracle(cfg.oracle_order);
    std::vector<std::vector<NodeId>> paths;
    for (NodeId s = 0; s < n; ++s) paths.push_back(plan.path_for_cycle(s, 0).hops);
    const auto txs = transmissions_of_paths(paths);
    for (std::size_t i = 0; i < txs.size(); ++i)
      for (std::size_t j = i + 1; j < txs.size(); ++j)
        oracle.allow_pair(txs[i], txs[j]);

    const auto est = estimate_capacity(topo, plan, oracle, rate_bps, cfg);
    if (est.duty_fraction <= max_duty)
      best = n;
    else
      break;
  }
  return best;
}

}  // namespace mhp
