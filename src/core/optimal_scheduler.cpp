#include "core/optimal_scheduler.hpp"

#include <algorithm>

#include "core/greedy_scheduler.hpp"
#include "obs/profiler.hpp"
#include "util/assertx.hpp"

namespace mhp {

std::optional<OptimalResult> OptimalScheduler::solve(
    std::span<const PollingRequest> requests, std::size_t slot_budget) {
  MHP_SPAN("sched/optimal");
  MHP_REQUIRE(requests.size() <= 32, "optimal solver capped at 32 requests");
  requests_ = requests;
  nodes_ = 0;
  best_slots_.clear();

  if (requests.empty()) return OptimalResult{Schedule{}, 0};

  // Seed the bound with the greedy solution (always valid).
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(requests.size());
  for (const auto& r : requests) paths.push_back(r.path);
  const auto greedy = run_offline(oracle_, paths);
  best_ = greedy.all_delivered ? greedy.slots : SIZE_MAX;

  std::uint32_t pending = 0;
  for (std::size_t i = 0; i < requests.size(); ++i)
    pending |= 1u << i;
  std::vector<std::vector<ScheduledTx>> current;
  dfs(pending, {}, 0, current);

  if (best_ == SIZE_MAX || best_ > slot_budget) return std::nullopt;
  Schedule s;
  // Fall back to the greedy slots if DFS never improved on it but greedy
  // met the budget (best_slots_ empty means greedy was already optimal
  // and no strictly better schedule was recorded).
  s.slots = best_slots_.empty() ? greedy.schedule.slots : best_slots_;
  // Trim trailing empty slots.
  while (!s.slots.empty() && s.slots.back().empty()) s.slots.pop_back();
  return OptimalResult{std::move(s), best_};
}

std::size_t OptimalScheduler::remaining_hops(
    std::uint32_t pending, const std::vector<InFlight>& in_flight) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i)
    if (pending & (1u << i)) total += requests_[i].hop_count();
  for (const auto& f : in_flight)
    total += requests_[f.request].hop_count() - f.next_hop;
  return total;
}

void OptimalScheduler::dfs(std::uint32_t pending,
                           std::vector<InFlight> in_flight, std::size_t slot,
                           std::vector<std::vector<ScheduledTx>>& current) {
  ++nodes_;
  if (pending == 0 && in_flight.empty()) {
    if (slot < best_) {
      best_ = slot;
      best_slots_ = current;
    }
    return;
  }
  // Bound: every remaining hop needs slot capacity <= oracle order.
  const std::size_t rem = remaining_hops(pending, in_flight);
  const auto order = static_cast<std::size_t>(oracle_.order());
  std::size_t lb = slot + (rem + order - 1) / order;
  // A pending request also needs its full hop count from here.
  for (std::size_t i = 0; i < requests_.size(); ++i)
    if (pending & (1u << i))
      lb = std::max(lb, slot + requests_[i].hop_count());
  for (const auto& f : in_flight)
    lb = std::max(lb, slot + requests_[f.request].hop_count() - f.next_hop);
  if (lb >= best_) return;  // cannot strictly improve

  // The slot must carry every in-flight request's next hop (no delay).
  std::vector<ScheduledTx> base;
  base.reserve(in_flight.size());
  for (const auto& f : in_flight)
    base.push_back(ScheduledTx{requests_[f.request].hop(f.next_hop),
                               requests_[f.request].id, f.next_hop});

  // Enumerate subsets of pending requests to start now.  Iterate subsets
  // of the pending mask; reject those that break compatibility.
  std::vector<std::size_t> pending_ids;
  for (std::size_t i = 0; i < requests_.size(); ++i)
    if (pending & (1u << i)) pending_ids.push_back(i);

  const std::uint32_t subsets = 1u << pending_ids.size();
  for (std::uint32_t sub = 0; sub < subsets; ++sub) {
    // Starting nothing while nothing is in flight only wastes the slot.
    if (sub == 0 && in_flight.empty()) continue;
    std::vector<ScheduledTx> group = base;
    bool ok = true;
    for (std::size_t b = 0; b < pending_ids.size() && ok; ++b) {
      if (!(sub & (1u << b))) continue;
      const auto& r = requests_[pending_ids[b]];
      group.push_back(ScheduledTx{r.hop(0), r.id, 0});
      if (group.size() > order) ok = false;
    }
    if (!ok) continue;
    std::vector<Tx> txs;
    txs.reserve(group.size());
    for (const auto& g : group) txs.push_back(g.tx);
    // Distinct packets never share a transmission: the oracle judges the
    // *set* of concurrent transmissions, so duplicate Tx entries (one
    // radio, two frames, one slot) must be rejected here.
    for (std::size_t i = 0; i < txs.size() && ok; ++i)
      for (std::size_t j = i + 1; j < txs.size(); ++j)
        if (txs[i] == txs[j]) {
          ok = false;
          break;
        }
    if (!ok) continue;
    if (!group.empty() && !oracle_.compatible(txs)) continue;

    // Look ahead: started requests' *future* hops must also be compatible
    // with each other (they will share slots); checked recursively as the
    // DFS advances, so nothing extra here.
    std::uint32_t next_pending = pending;
    std::vector<InFlight> next_flight;
    for (const auto& f : in_flight)
      if (f.next_hop + 1 < requests_[f.request].hop_count())
        next_flight.push_back({f.request, f.next_hop + 1});
    for (std::size_t b = 0; b < pending_ids.size(); ++b) {
      if (!(sub & (1u << b))) continue;
      const std::size_t i = pending_ids[b];
      next_pending &= ~(1u << i);
      if (requests_[i].hop_count() > 1)
        next_flight.push_back({static_cast<std::uint32_t>(i), 1});
    }
    current.push_back(group);
    dfs(next_pending, std::move(next_flight), slot + 1, current);
    current.pop_back();
  }
}

}  // namespace mhp
