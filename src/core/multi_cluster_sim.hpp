// Multiple clusters in one field (§V-G): quantify inter-cluster
// interference and the paper's two remedies.
//
//  * kShared  — every cluster polls on one radio channel; boundary
//    sensors of neighboring clusters collide (the problem).
//  * kColored — clusters get channels from a colouring of the cluster
//    adjacency graph (≤6 needed, planar); same-colour clusters are far
//    apart, different colours are modelled as isolated channels.
//  * kToken   — one shared channel, but heads take turns: head k drains
//    in window k of each cycle (period/K each), so no two clusters are
//    ever on the air together.
//
// Substrate (simulator, per-group channels, trace, metrics, RNG) comes
// from one shared SimRuntime; one channel is added per colour group.
#pragma once

#include <memory>
#include <vector>

#include "core/head_agent.hpp"
#include "core/polling_simulation.hpp"
#include "core/protocol_config.hpp"
#include "core/sensor_agent.hpp"
#include "net/deployment.hpp"
#include "sim/runtime.hpp"

namespace mhp {

enum class InterClusterMode { kShared, kColored, kToken };

const char* to_string(InterClusterMode mode);

struct ClusterSpec {
  Deployment deployment;  // positions relative to the cluster's own frame
  Vec2 origin;            // where this cluster sits in the field
};

struct MultiClusterReport {
  std::vector<double> delivery_ratio;  // per cluster
  std::vector<double> mean_active;     // per cluster
  double aggregate_delivery = 0.0;
  double aggregate_throughput_bps = 0.0;
  int channels_used = 1;
  /// Field-wide totals populated from the runtime's MetricsRegistry.
  RunStats totals;
  /// Present iff the run had fault injection or recovery enabled.
  /// Fault-plan node ids (and dead_nodes here) are *field-wide* sensor
  /// ids: sensors numbered consecutively cluster by cluster, heads
  /// excluded.  Repairs happen per cluster at the owning head.
  std::optional<DegradationReport> degradation;
  /// Field-wide oracle-cache effectiveness, summed over every cluster's
  /// live cache plus wrappers retired by replans.  Present iff
  /// cfg.cache_oracle.
  std::optional<OracleCacheStats> oracle;
};

class MultiClusterSimulation {
 public:
  MultiClusterSimulation(std::vector<ClusterSpec> clusters,
                         ProtocolConfig cfg, InterClusterMode mode,
                         double rate_bps,
                         double interference_range = 400.0,
                         const RuntimeOptions& rt_opts = {});

  MultiClusterSimulation(const MultiClusterSimulation&) = delete;
  MultiClusterSimulation& operator=(const MultiClusterSimulation&) = delete;

  MultiClusterReport run(Time duration, Time warmup = Time::sec(10));

  int channels_used() const { return channels_used_; }
  SimRuntime& runtime() { return rt_; }
  MetricsRegistry& metrics() { return rt_.metrics(); }

 private:
  struct ClusterRt {
    std::size_t num_sensors = 0;
    NodeId base = 0;                     // first global id on its channel
    NodeId head = kNoNode;               // global id on its channel
    std::unique_ptr<ClusterTopology> topo;
    std::unique_ptr<RelayPlan> plan;
    /// Latest repaired plan: warm hint for this cluster's next replan.
    std::unique_ptr<RelayPlan> repair_plan;
    std::unique_ptr<ChannelOracle> truth;
    std::unique_ptr<MeasuredOracle> oracle;
    std::unique_ptr<CachedOracle> cached;
    std::unique_ptr<HeadAgent> head_agent;
    std::vector<std::unique_ptr<SensorAgent>> sensors;
    // Fault-recovery state (local sensor ids).
    std::vector<std::int64_t> demand;
    std::vector<NodeId> declared_dead;
    std::vector<std::unique_ptr<MeasuredOracle>> retired_oracles;
    std::vector<std::unique_ptr<CachedOracle>> retired_caches;
    std::uint64_t last_orphaned = 0;
  };

  void build(std::vector<ClusterSpec> clusters, double rate_bps,
             double interference_range);
  /// Cluster c's scheduling oracle: its measured oracle, or a fresh
  /// CachedOracle wrapper when cfg.cache_oracle is on (hit/miss counters
  /// aggregate field-wide in the shared runtime registry).
  const CompatibilityOracle& scheduling_oracle(ClusterRt& rt);
  SensorAgent& sensor_by_field_id(NodeId field_id);
  void on_node_death(const NodeDeath& death);
  void replan_cluster(std::size_t c, NodeId declared);
  std::uint64_t sum_generated() const;
  std::uint64_t sum_delivered() const;

  ProtocolConfig cfg_;
  ProtocolConfig head_cfg_;  // cfg_ plus the token drain window; the
                             // head agents keep a reference to it
  InterClusterMode mode_;
  SimRuntime rt_;
  /// Arena-reusing engine for replans (set-up solves fan out through
  /// route::solve_clusters on `route_workers_` threads instead).
  route::RoutingEngine engine_;
  std::size_t route_workers_ = 1;
  std::vector<ClusterRt> clusters_;
  int channels_used_ = 1;
  double rate_bps_ = 0.0;

  // Field-wide degradation snapshots (untouched when faults are off).
  bool have_first_death_ = false;
  std::uint64_t death_gen_ = 0, death_del_ = 0;    // at first death
  std::uint64_t repair_gen_ = 0, repair_del_ = 0;  // at last repair
};

}  // namespace mhp
