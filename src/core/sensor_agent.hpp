// The basic sensor node's protocol logic (§II).
//
// Sensors are deliberately dumb: they sample data on their own schedule,
// sleep whenever told to, and transmit only when a polling message names
// them.  All coordination lives in the cluster head.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "core/protocol_config.hpp"
#include "fault/fault_injector.hpp"
#include "core/protocol_messages.hpp"
#include "metrics/registry.hpp"
#include "net/packet.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mhp {

class SensorAgent : public ChannelListener {
 public:
  SensorAgent(NodeId id, Simulator& sim, Channel& channel,
              FrameUidSource& uids, const ProtocolConfig& cfg, Rng rng);

  NodeId id() const { return id_; }

  /// Start periodic data generation at `rate_bytes_per_s` (0 = no data).
  void start_sampling(double rate_bytes_per_s);

  /// Which sector this sensor belongs to (0 when sectoring is off); the
  /// head assigns it during cluster set-up and the sensor filters
  /// wake/sleep messages by it.
  void set_sector(int sector) { sector_ = sector; }
  int sector() const { return sector_; }

  /// Accept control messages only from this cluster head (needed when
  /// several clusters share a radio channel, §V-G).  kNoNode = any.
  void set_head(NodeId head) { head_ = head; }

  /// Queue length the sensor would report in an ack right now.
  std::uint32_t backlog() const;

  // --- fault injection ---
  /// Kill the node: radio off for good, every pending callback becomes a
  /// no-op.  Idempotent.  The head only learns of it from unanswered
  /// polls — there is no out-of-band death notification.
  void fail();
  bool dead() const { return dead_; }
  /// Give the node a finite battery; once its total consumed energy
  /// (across reset_stats() rebasing) reaches `budget_j` it fail()s and
  /// `on_exhausted` fires once.  0 = unlimited (the default).
  void set_battery(double budget_j, std::function<void()> on_exhausted);
  /// Consult `f`'s link-degradation windows on frame reception
  /// (nullptr = off).  Draws from this agent's rng only while a matching
  /// window is active, so an empty plan perturbs nothing.
  void set_fault_injector(const FaultInjector* f) { faults_ = f; }

  // --- ChannelListener ---
  void on_frame_begin(const Frame& frame, NodeId from, double rx_power_w,
                      Time end) override;
  void on_frame_end(const Frame& frame, NodeId from, bool phy_ok) override;

  // --- accounting ---
  const EnergyMeter& meter() const { return tracker_.meter(); }
  /// Settle the tracker at `now` (call before reading the meter).
  void settle(Time now) { tracker_.settle(now); }
  /// Zero counters and energy after a warm-up period.
  void reset_stats(Time now);

  std::uint64_t packets_generated() const { return generated_; }
  std::uint64_t packets_dropped_overflow() const { return dropped_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  /// Data frames this sensor forwarded on behalf of other origins.
  std::uint64_t packets_relayed() const { return relayed_; }
  bool asleep() const { return asleep_; }

  /// Observe each post-sample queue depth into `h` (nullptr = off).  Safe
  /// across begin_window: the registry resets metrics in place, so the
  /// pointer stays valid.  Pure observation — never perturbs behaviour.
  void set_queue_histogram(HistogramMetric* h) { queue_hist_ = h; }

 private:
  void handle_control(const ControlPayload& ctrl);
  void handle_poll(const PollMsg& poll);
  void transmit_data(const PollAssignment& a);
  void transmit_ack(const PollAssignment& a);
  void go_to_sleep(const SleepMsg& sleep);
  void wake_up();
  void generate_packet();
  void send_frame(FrameKind kind, NodeId dst, std::uint32_t bytes,
                  std::any payload);
  /// Settle energy and fail() if the battery budget is spent.  Returns
  /// true when the node (just) died.
  bool maybe_die();

  NodeId id_;
  Simulator& sim_;
  Channel& channel_;
  FrameUidSource& uids_;
  const ProtocolConfig& cfg_;
  Rng rng_;

  RadioTracker tracker_;
  bool asleep_ = true;
  bool transmitting_ = false;
  bool dead_ = false;
  int rx_depth_ = 0;
  Time awake_since_ = Time::zero();
  const FaultInjector* faults_ = nullptr;
  double battery_j_ = 0.0;  // 0 = unlimited
  std::function<void()> on_battery_exhausted_;
  /// Energy spent before the last reset_stats() — the meter is rebased
  /// at warmup but the battery drains over the node's whole life.
  double consumed_before_reset_ = 0.0;

  std::deque<DataPayload> queue_;              // sampled, not yet polled
  std::map<std::uint32_t, DataPayload> in_flight_;  // polled this cycle
  std::map<std::uint32_t, DataPayload> relay_data_;
  std::map<std::uint32_t, AckPayload> relay_ack_;
  std::uint64_t seq_ = 0;

  double rate_bytes_per_s_ = 0.0;
  int sector_ = 0;
  NodeId head_ = kNoNode;

  std::uint64_t generated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t relayed_ = 0;
  HistogramMetric* queue_hist_ = nullptr;
};

}  // namespace mhp
