// The Joint Multi-Hop Routing and Polling problem (§III-E).
//
// The paper decomposes routing and scheduling because the joint problem
// — pick relaying paths *and* a schedule minimizing the worst sensor's
// power rate α·load + β·polling_time — is NP-hard (it contains TSRFP).
// This module provides the exact joint optimum by exhaustive search over
// per-sensor path choices (tiny instances only), so the decomposition's
// optimality gap can be measured (see bench/ablation_joint.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/interference.hpp"
#include "core/schedule.hpp"
#include "net/cluster.hpp"

namespace mhp {

struct JmhrpParams {
  double alpha = 1.0;  // weight of per-sensor transmission load
  double beta = 0.1;   // weight of the schedule length (polling time)
};

struct JmhrpResult {
  /// Chosen relaying path per sensor (index into its candidate list).
  std::vector<std::size_t> choice;
  std::vector<std::vector<NodeId>> paths;
  Schedule schedule;
  std::size_t slots = 0;
  /// max over sensors of α·load + β·slots — the §III-E power rate.
  double max_power_rate = 0.0;
};

/// All simple relaying paths of `s` to the head, shortest-first, capped
/// at `max_paths` per sensor and `max_hops` length.
std::vector<std::vector<NodeId>> candidate_paths(const ClusterTopology& topo,
                                                 NodeId s,
                                                 std::size_t max_paths = 4,
                                                 std::size_t max_hops = 5);

/// Exact joint optimum: every combination of candidate paths is routed,
/// scheduled exactly, and scored.  Exponential in sensors × candidates —
/// instances of at most ~6 sensors.  Returns nullopt if no combination
/// is schedulable.
std::optional<JmhrpResult> solve_jmhrp_exact(const ClusterTopology& topo,
                                             const CompatibilityOracle& oracle,
                                             JmhrpParams params = {},
                                             std::size_t max_paths = 3);

/// The paper's decomposition on the same instance: min-max-load routing
/// then the greedy schedule, scored with the same power rate.
std::optional<JmhrpResult> solve_jmhrp_decomposed(
    const ClusterTopology& topo, const CompatibilityOracle& oracle,
    JmhrpParams params = {});

}  // namespace mhp
