// Tunables of the polling protocol simulation.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "sim/time.hpp"

namespace mhp {

/// Which propagation model the simulation's channel uses.  The protocol
/// never assumes a model — it measures connectivity and interference —
/// so switching to shadowed (non-disc, §III-B) coverage must not break
/// correctness, only change the discovered topology.
enum class PropagationModel {
  kTwoRayGround,  // NS-2's default; the paper's evaluation setting
  kFreeSpace,
  kLogNormalShadowing,
};

/// How the head computes relaying paths.  The paper's scheme is the
/// min-max-load max-flow routing (§III-A); hop-count shortest paths are
/// the ablation baseline whose worst relay carries measurably more load.
enum class RoutingPolicy {
  kBalancedMaxFlow,
  kShortestPath,
};

/// Head-driven fault recovery: detect dead relays from unanswered polls
/// and re-run the balanced max-flow routing on the surviving topology.
/// Off by default — with recovery disabled (and an empty fault plan) the
/// protocol behaves bit-for-bit as before this subsystem existed.
struct FaultRecoveryConfig {
  bool enabled = false;
  /// Accumulated failed-poll evidence against a node before the head
  /// declares it dead (each retry-exhausted request increments every
  /// non-head node on its path; a heard or delivering node is cleared).
  std::uint32_t suspect_polls = 3;
  /// Base re-poll backoff after an unanswered poll, in slots; doubles
  /// per consecutive failure of the same request.
  std::uint32_t backoff_slots = 2;
  std::uint32_t max_backoff_slots = 16;
  /// Hard cap on route repairs per run (guards against a noisy channel
  /// triggering repeated false declarations).
  std::uint32_t max_replans = 8;
};

struct ProtocolConfig {
  /// Wake-up period (time between consecutive duty cycles).
  Time cycle_period = Time::ms(1000);

  /// Frame sizes.  80-byte data packets as in the paper's evaluation.
  std::uint32_t data_bytes = 80;
  std::uint32_t control_bytes = 16;
  std::uint32_t ack_bytes = 80;

  /// Radio turnaround between hearing a poll and transmitting.
  Time turnaround = Time::us(20);
  /// Idle margin at the end of each slot.
  Time slot_guard = Time::us(100);
  /// Sensors wake this much before their window to absorb clock drift.
  Time wake_margin = Time::ms(1);
  /// Max absolute clock drift applied to sensor wake-ups.
  Time wake_jitter = Time::us(500);

  /// Compatibility knowledge order M (§III-B suggests 2 or 3).
  int oracle_order = 3;

  /// Wrap the measured oracle in a CachedOracle (memoized verdicts).
  /// Verdicts are unchanged — this is purely a hot-path speedup — so
  /// reports are identical either way; off exists for A/B measurement.
  bool cache_oracle = true;

  /// Relaying-path computation (kBalancedMaxFlow is the paper's §III-A
  /// scheme; kShortestPath the ablation baseline).
  RoutingPolicy routing = RoutingPolicy::kBalancedMaxFlow;

  /// Divide the cluster into sectors (§IV) instead of draining it whole.
  bool use_sectors = false;

  /// Rotate multi-path sensors across their relaying paths in proportion
  /// to path flow (§V-D).  Only meaningful without sectors (sector trees
  /// fix one path per sensor).
  bool rotate_paths = true;

  /// Per-sensor packet queue capacity; overflow drops oldest packets.
  std::size_t queue_capacity = 64;
  /// Cap on data requests per sensor per duty cycle.
  std::uint32_t max_packets_per_cycle = 128;
  /// Re-polls before the head gives a request up as lost.
  std::uint32_t max_retries = 8;

  /// Cap on how much of the cycle the head may spend draining (token
  /// rotation between clusters, §V-G, gives each head period/K).  Zero
  /// means the whole cycle period is available.
  Time max_drain_window = Time::zero();

  /// Uniform random per-frame loss injected on sensor data/ack frames
  /// (models fading the SINR schedule cannot foresee).  0 disables.
  double random_loss = 0.0;

  std::uint64_t seed = 1;

  /// Injected faults (node deaths, link-degradation windows).  An empty
  /// plan — the default — installs nothing and changes nothing.
  FaultPlan faults;
  /// Head-driven detection and route repair (see FaultRecoveryConfig).
  FaultRecoveryConfig recovery;

  PropagationModel propagation = PropagationModel::kTwoRayGround;
  /// Shadowing parameters (kLogNormalShadowing only).
  double shadowing_sigma_db = 4.0;
  double shadowing_exponent = 2.3;
  std::uint64_t environment_seed = 1;

  RadioParams radio{};
  EnergyModel sensor_energy = EnergyModel::typical_sensor();
  EnergyModel head_energy = EnergyModel::cluster_head();

  /// Duration of one polling slot: poll broadcast + turnaround + data
  /// frame + guard.
  Time slot_duration() const {
    const double bits_ctrl = static_cast<double>(control_bytes) * 8.0;
    const double bits_data = static_cast<double>(data_bytes) * 8.0;
    return Time::seconds(bits_ctrl / radio.bandwidth_bps) + turnaround +
           Time::seconds(bits_data / radio.bandwidth_bps) + slot_guard;
  }
};

}  // namespace mhp
