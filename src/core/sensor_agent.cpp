#include "core/sensor_agent.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

SensorAgent::SensorAgent(NodeId id, Simulator& sim, Channel& channel,
                         FrameUidSource& uids, const ProtocolConfig& cfg,
                         Rng rng)
    : id_(id),
      sim_(sim),
      channel_(channel),
      uids_(uids),
      cfg_(cfg),
      rng_(rng),
      tracker_(cfg.sensor_energy, sim.now(), RadioState::kIdle) {
  // Sensors boot awake (initialisation phase); the first SleepMsg puts
  // them on the duty-cycle regime.
  asleep_ = false;
  channel_.set_listener(id_, this);
}

void SensorAgent::start_sampling(double rate_bytes_per_s) {
  MHP_REQUIRE(rate_bytes_per_s >= 0.0, "negative data rate");
  rate_bytes_per_s_ = rate_bytes_per_s;
  if (rate_bytes_per_s_ <= 0.0) return;
  const double interval_s =
      static_cast<double>(cfg_.data_bytes) / rate_bytes_per_s_;
  // Desynchronise sources with a random initial phase.
  sim_.after(Time::seconds(interval_s * rng_.uniform()),
             [this] { generate_packet(); });
}

void SensorAgent::generate_packet() {
  if (dead_) return;  // a dead node stops sampling (and rescheduling)
  ++generated_;
  if (queue_.size() >= cfg_.queue_capacity) {
    // Overflow: drop the oldest sample (freshest data is worth more).
    queue_.pop_front();
    ++dropped_;
  }
  DataPayload p;
  p.origin = id_;
  p.seq = seq_++;
  p.generated_at = sim_.now();
  queue_.push_back(std::move(p));
  if (queue_hist_ != nullptr)
    queue_hist_->observe(static_cast<double>(queue_.size()));
  const double interval_s =
      static_cast<double>(cfg_.data_bytes) / rate_bytes_per_s_;
  sim_.after(Time::seconds(interval_s), [this] { generate_packet(); });
}

std::uint32_t SensorAgent::backlog() const {
  return static_cast<std::uint32_t>(queue_.size());
}

void SensorAgent::on_frame_begin(const Frame&, NodeId, double, Time) {
  if (dead_ || asleep_ || transmitting_) return;
  if (rx_depth_++ == 0) tracker_.set_state(sim_.now(), RadioState::kRx);
}

void SensorAgent::on_frame_end(const Frame& frame, NodeId from, bool phy_ok) {
  if (dead_) return;
  if (!asleep_ && !transmitting_ && rx_depth_ > 0) {
    if (--rx_depth_ == 0) tracker_.set_state(sim_.now(), RadioState::kIdle);
  }
  if (maybe_die()) return;    // receiving spent the last of the battery
  if (asleep_) return;        // radio off: frame never decoded
  if (transmitting_) return;  // half-duplex
  if (!phy_ok) return;
  if (faults_ != nullptr) {
    const double loss = faults_->link_loss(from, id_, sim_.now());
    if (loss > 0.0 && rng_.bernoulli(loss)) return;  // degraded link
  }
  if (frame.dst != kBroadcast && frame.dst != id_) return;

  switch (frame.kind) {
    case FrameKind::kControl:
      if (head_ != kNoNode && from != head_) break;  // foreign cluster
      handle_control(std::any_cast<const ControlPayload&>(frame.payload));
      break;
    case FrameKind::kData: {
      if (cfg_.random_loss > 0.0 && rng_.bernoulli(cfg_.random_loss)) break;
      const auto& p = std::any_cast<const DataPayload&>(frame.payload);
      relay_data_[p.request] = p;
      break;
    }
    case FrameKind::kAck: {
      if (cfg_.random_loss > 0.0 && rng_.bernoulli(cfg_.random_loss)) break;
      const auto& p = std::any_cast<const AckPayload&>(frame.payload);
      relay_ack_[p.request] = p;
      break;
    }
    default:
      break;  // probes / baseline traffic: not ours
  }
  (void)from;
}

void SensorAgent::handle_control(const ControlPayload& ctrl) {
  if (const auto* poll = std::get_if<PollMsg>(&ctrl)) {
    handle_poll(*poll);
  } else if (const auto* sleep = std::get_if<SleepMsg>(&ctrl)) {
    if (sleep->sector == sector_) go_to_sleep(*sleep);
  } else if (const auto* wake = std::get_if<WakeupMsg>(&ctrl)) {
    if (wake->sector == sector_) {
      // New duty cycle: forget last cycle's relay state.
      relay_data_.clear();
      relay_ack_.clear();
      in_flight_.clear();
    }
  }
}

void SensorAgent::handle_poll(const PollMsg& poll) {
  for (const auto& a : poll.assignments) {
    if (a.from != id_) continue;
    if (a.is_ack)
      transmit_ack(a);
    else
      transmit_data(a);
    break;  // a sensor is never named twice in one slot
  }
}

void SensorAgent::transmit_data(const PollAssignment& a) {
  std::optional<DataPayload> payload;
  if (a.is_origin) {
    auto it = in_flight_.find(a.request);
    if (it != in_flight_.end()) {
      payload = it->second;  // re-poll after loss
    } else if (!queue_.empty()) {
      payload = queue_.front();
      queue_.pop_front();
      payload->request = a.request;
      in_flight_[a.request] = *payload;
    }
  } else {
    auto it = relay_data_.find(a.request);
    if (it != relay_data_.end()) payload = it->second;
  }
  if (!payload) return;  // nothing to send: upstream loss or empty queue
  if (!a.is_origin) ++relayed_;
  send_frame(FrameKind::kData, a.to, cfg_.data_bytes, *payload);
}

void SensorAgent::transmit_ack(const PollAssignment& a) {
  AckPayload payload;
  if (a.is_origin) {
    payload.request = a.request;
  } else {
    auto it = relay_ack_.find(a.request);
    if (it == relay_ack_.end()) return;  // upstream ack lost
    payload = it->second;
  }
  // Aggregate own backlog while forwarding (§V-F).
  payload.backlog.push_back({id_, backlog()});
  send_frame(FrameKind::kAck, a.to, cfg_.ack_bytes, payload);
}

void SensorAgent::send_frame(FrameKind kind, NodeId dst, std::uint32_t bytes,
                             std::any payload) {
  // Transmit after the radio turnaround.
  sim_.after(cfg_.turnaround, [this, kind, dst, bytes,
                               payload = std::move(payload)]() mutable {
    if (dead_ || asleep_) return;
    Frame f;
    f.uid = uids_.next();
    f.kind = kind;
    f.src = id_;
    f.dst = dst;
    f.origin = id_;
    f.size_bytes = bytes;
    f.payload = std::move(payload);
    transmitting_ = true;
    tracker_.set_state(sim_.now(), RadioState::kTx);
    ++frames_sent_;
    channel_.transmit(id_, f);
    sim_.after(channel_.airtime(bytes), [this] {
      if (dead_) return;
      transmitting_ = false;
      if (!asleep_)
        tracker_.set_state(sim_.now(),
                           rx_depth_ > 0 ? RadioState::kRx : RadioState::kIdle);
      maybe_die();  // transmitting may have spent the last of the battery
    });
  });
}

void SensorAgent::go_to_sleep(const SleepMsg& sleep) {
  asleep_ = true;
  rx_depth_ = 0;
  tracker_.set_state(sim_.now(), RadioState::kSleep);
  // Unconfirmed in-flight packets die with the cycle (§II: the head
  // re-polls within a cycle only).
  in_flight_.clear();
  relay_data_.clear();
  relay_ack_.clear();
  // Wake early by the configured margin, plus bounded clock drift.
  const auto jitter_ns = static_cast<std::int64_t>(
      rng_.uniform(-1.0, 1.0) *
      static_cast<double>(cfg_.wake_jitter.nanos()));
  Time wake = sleep.next_wakeup - cfg_.wake_margin + Time::ns(jitter_ns);
  if (wake < sim_.now()) wake = sim_.now();
  sim_.at(wake, [this] { wake_up(); });
}

void SensorAgent::wake_up() {
  if (dead_ || !asleep_) return;
  if (maybe_die()) return;  // battery emptied during the night
  asleep_ = false;
  awake_since_ = sim_.now();
  tracker_.set_state(sim_.now(), RadioState::kIdle);
}

void SensorAgent::fail() {
  if (dead_) return;
  dead_ = true;
  asleep_ = true;
  transmitting_ = false;
  rx_depth_ = 0;
  tracker_.set_state(sim_.now(), RadioState::kSleep);
}

void SensorAgent::set_battery(double budget_j,
                              std::function<void()> on_exhausted) {
  MHP_REQUIRE(budget_j > 0.0, "battery budget must be positive");
  battery_j_ = budget_j;
  on_battery_exhausted_ = std::move(on_exhausted);
}

bool SensorAgent::maybe_die() {
  if (dead_ || battery_j_ <= 0.0) return false;
  tracker_.settle(sim_.now());
  const double used =
      consumed_before_reset_ + tracker_.meter().total_energy_j();
  if (used < battery_j_) return false;
  fail();
  if (on_battery_exhausted_) on_battery_exhausted_();
  return true;
}

void SensorAgent::reset_stats(Time now) {
  tracker_.settle(now);
  consumed_before_reset_ += tracker_.meter().total_energy_j();
  tracker_.reset(now);
  generated_ = 0;
  dropped_ = 0;
  frames_sent_ = 0;
  relayed_ = 0;
}

}  // namespace mhp
