// Acknowledgement collection planning (§V-F).
//
// At the start of a duty cycle the head must hear one ack (with backlog
// count) from every awake sensor.  Acks aggregate along relay paths —
// the outermost sensor of a path is polled, and each relay appends its own
// ack while forwarding — so the head only needs a set of paths *covering*
// all sensors, chosen with minimum total hop count: a weighted set cover,
// solved greedily.  The chosen paths are then scheduled with the same
// multi-hop polling algorithm as data.
#pragma once

#include <cstdint>
#include <vector>

#include "core/routing.hpp"
#include "core/set_cover.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"

namespace mhp {

struct AckPlan {
  /// Paths to poll, each origin → … → head; every sensor in the cluster
  /// (or sector) appears on at least one of them.
  std::vector<std::vector<NodeId>> poll_paths;
  double total_hops = 0.0;
  bool covers_all = false;
};

/// Build the candidate paths for `sensors` (default: the whole cluster)
/// from the relay plan's cycle paths, with tree fallbacks for zero-demand
/// sensors, and pick a minimum-hop cover.
AckPlan plan_ack_collection(const ClusterTopology& topo,
                            const RelayPlan& plan, std::uint64_t cycle,
                            const std::vector<NodeId>& sensors = {});

/// Core cover step with explicit candidates: pick a minimum-total-hop
/// subset of `candidates` whose on-path sensors cover every target.
AckPlan plan_ack_cover(const std::vector<NodeId>& targets,
                       const std::vector<std::vector<NodeId>>& candidates);

/// The naive baseline (ablation): poll every sensor's own path.
AckPlan ack_poll_everyone(const ClusterTopology& topo, const RelayPlan& plan,
                          std::uint64_t cycle,
                          const std::vector<NodeId>& sensors = {});

}  // namespace mhp
