// Wire messages of the in-cluster polling protocol (§II, §V).
//
// These travel as std::any payloads on link-layer frames.  Sizes are
// configured in ProtocolConfig; the content here is what the simulation
// logic needs, not a bit-exact encoding.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace mhp {

/// One entry of a polling message: `from` transmits the packet of
/// `request` to `to` in this slot.
struct PollAssignment {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t request = 0;
  bool is_ack = false;   // ack-collection phase vs data phase
  bool is_origin = false;  // hop 0: sender transmits its own packet
};

/// Head → cluster: a duty cycle (for one sector) begins.
struct WakeupMsg {
  std::uint64_t cycle = 0;
  int sector = 0;
};

/// Head → cluster: slot assignments (the "clock" of the pipeline).
struct PollMsg {
  std::uint64_t cycle = 0;
  std::uint32_t slot = 0;
  std::vector<PollAssignment> assignments;
};

/// Head → cluster: sector is drained; sleep until your next wake time.
struct SleepMsg {
  std::uint64_t cycle = 0;
  int sector = 0;
  Time next_wakeup;
};

using ControlPayload = std::variant<WakeupMsg, PollMsg, SleepMsg>;

/// Sensor → head (relayed, aggregated): per-sensor backlog reports.
struct AckPayload {
  std::uint32_t request = 0;
  std::vector<std::pair<NodeId, std::uint32_t>> backlog;
};

/// A sensor data packet in flight.
struct DataPayload {
  std::uint32_t request = 0;
  NodeId origin = kNoNode;
  std::uint64_t seq = 0;        // origin-local sequence number
  Time generated_at;            // for latency accounting
};

}  // namespace mhp
