// The on-line greedy polling scheduler (Table 1 of the paper).
//
// The head plans one slot at a time: scan the active requests in a fixed
// order and admit each one whose transmissions (consecutive slots, one per
// hop) stay compatible with everything already committed, stopping at M
// concurrent transmissions per slot.  After each slot the head knows which
// packets were due (start slot + hop count); a missing packet re-activates
// its request — this on-line loop is what absorbs wireless loss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "core/interference.hpp"
#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace mhp {

class GreedyPollingScheduler {
 public:
  explicit GreedyPollingScheduler(const CompatibilityOracle& oracle)
      : oracle_(oracle) {}

  /// Register a packet to collect; requests are scanned in insertion
  /// order (the paper's "arbitrary predetermined order").
  RequestId add_request(std::vector<NodeId> path);

  bool finished() const { return pending_active_ == 0 && in_flight_ == 0; }
  std::size_t current_slot() const { return slot_; }

  /// Plan the current slot: admit active requests, return every
  /// transmission running in it (newly started and relays).  The
  /// reference stays valid until complete_slot().
  const std::vector<ScheduledTx>& plan_slot();

  /// Requests whose packet is due at the head at the end of the current
  /// slot (last hop runs now), ascending id.  The reference stays valid
  /// until complete_slot().
  const std::vector<RequestId>& due_now() const;

  /// Report the outcome of the current slot and advance to the next one:
  /// due requests present in `delivered` complete, the rest re-activate.
  void complete_slot(std::span<const RequestId> delivered);

  /// Give up on an *active* (not in-flight) request — e.g. after too many
  /// re-polls.  No-op if it already completed.
  void abandon(RequestId id);

  /// Hold an *active* request out of planning for the next `slots` slots
  /// (fault-recovery backoff after an unanswered poll).  No-op on
  /// in-flight or completed requests.
  void defer(RequestId id, std::size_t slots);

  /// Any active request currently held back by defer()?  When true,
  /// plan_slot() may legitimately return an empty slot while !finished().
  bool has_deferred() const;

  /// Path of a request (for the head's per-node failure accounting).
  const std::vector<NodeId>& request_path(RequestId id) const;

  /// Slots holding at least one transmission so far (committed history).
  const Schedule& history() const { return history_; }

  std::size_t total_attempted_transmissions() const { return attempts_; }

  /// How many times requests were re-activated after a loss.
  std::size_t reactivations() const { return reactivations_; }

 private:
  struct Request {
    PollingRequest req;
    bool active = true;      // waiting to be admitted
    bool in_flight = false;  // admitted, not yet resolved
    std::size_t start_slot = 0;
    std::size_t eligible_slot = 0;  // earliest slot defer() allows
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Transmissions already committed to `slot` (relays of in-flight
  /// requests and requests admitted earlier in this planning pass).
  std::vector<ScheduledTx>& occupancy(std::size_t slot);

  /// Requests whose last hop runs in slot `slot_ + k` (ascending id).
  std::vector<RequestId>& due_list(std::size_t k);

  bool admissible(const PollingRequest& r) const;

  // Intrusive doubly-linked list over requests with active == true, kept
  // in ascending id order (the paper's fixed scan order).  plan_slot()
  // walks only this list instead of every request ever registered.
  void active_push_back(std::uint32_t id);
  void active_unlink(std::uint32_t id);
  void active_insert_sorted(std::uint32_t id);

  const CompatibilityOracle& oracle_;
  /// Group buffer admissible() refills per hop instead of allocating.
  mutable std::vector<Tx> scratch_;
  std::vector<Request> requests_;
  std::vector<std::uint32_t> active_next_, active_prev_;
  std::uint32_t active_head_ = kNil;
  std::uint32_t active_tail_ = kNil;
  std::deque<std::vector<ScheduledTx>> future_;  // future_[k] = slot_+k
  std::deque<std::vector<RequestId>> due_;       // due_[k]: last hop at slot_+k
  std::vector<RequestId> no_due_;                // (always empty)
  Schedule history_;
  std::size_t slot_ = 0;
  std::size_t pending_active_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t attempts_ = 0;
  std::size_t reactivations_ = 0;
  bool planned_ = false;
};

/// Per-hop loss model for offline runs: returns true when the hop's
/// transmission succeeds.  The default delivers everything.
using HopLossModel = std::function<bool(const ScheduledTx&, std::size_t slot)>;

struct OfflineRunResult {
  Schedule schedule;        // what actually ran, slot by slot
  std::size_t slots = 0;    // schedule length (including loss recovery)
  bool all_delivered = false;
  std::size_t transmissions = 0;
  std::size_t reactivations = 0;
};

/// Drive the scheduler to completion without a simulator: every planned
/// hop succeeds unless `loss` says otherwise; a request whose any hop
/// failed does not arrive and is re-polled.  `max_slots` guards against
/// pathological loss models.
OfflineRunResult run_offline(const CompatibilityOracle& oracle,
                             std::span<const std::vector<NodeId>> paths,
                             const HopLossModel& loss = {},
                             std::size_t max_slots = 1'000'000);

/// Bernoulli per-hop loss model with probability `loss_rate`.
HopLossModel bernoulli_loss(double loss_rate, Rng& rng);

/// The paper scans requests in an "arbitrary predetermined order"; the
/// order matters.  Run the greedy scheduler under `restarts` random
/// permutations (plus the given order) and keep the shortest schedule.
/// Offline-only: an on-line head cannot reshuffle mid-cycle, but it can
/// precompute a good order for the *expected* workload.
OfflineRunResult best_of_orders(const CompatibilityOracle& oracle,
                                std::span<const std::vector<NodeId>> paths,
                                std::size_t restarts, Rng& rng);

}  // namespace mhp
