// Exact minimum-makespan polling schedules via branch and bound.
//
// The MHP problem is NP-hard (§III-C), so this solver is exponential and
// intended for small instances: validating the greedy heuristic's quality
// (ablation bench) and executing the Hamiltonian-path reduction.  Requests
// are capped at 32 (bitmask state).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/interference.hpp"
#include "core/schedule.hpp"

namespace mhp {

struct OptimalResult {
  Schedule schedule;
  std::size_t slots = 0;
};

class OptimalScheduler {
 public:
  /// `slot_budget`: abandon the search when even the best schedule would
  /// exceed it (returns nullopt).  Useful for decision-problem queries
  /// ("is there a schedule of length <= T?" — the TSRFP question).
  explicit OptimalScheduler(const CompatibilityOracle& oracle)
      : oracle_(oracle) {}

  std::optional<OptimalResult> solve(
      std::span<const PollingRequest> requests,
      std::size_t slot_budget = SIZE_MAX);

  /// Nodes expanded in the last solve (search effort metric).
  std::uint64_t nodes_expanded() const { return nodes_; }

 private:
  struct InFlight {
    std::uint32_t request;
    std::size_t next_hop;  // hop index to run in the current slot
  };

  void dfs(std::uint32_t pending, std::vector<InFlight> in_flight,
           std::size_t slot, std::vector<std::vector<ScheduledTx>>& current);

  std::size_t remaining_hops(std::uint32_t pending,
                             const std::vector<InFlight>& in_flight) const;

  const CompatibilityOracle& oracle_;
  std::span<const PollingRequest> requests_;
  std::size_t best_ = SIZE_MAX;
  std::vector<std::vector<ScheduledTx>> best_slots_;
  std::uint64_t nodes_ = 0;
};

}  // namespace mhp
