// Executable versions of the paper's NP-hardness constructions (§III-C,
// §IV-A).  These are not needed to *run* the system — they demonstrate and
// test the reductions:
//
//  * TSRF ("two-level star with relaying only in the first level"):
//    k branches s'ᵢ → sᵢ → head, one packet per second-level sensor.
//  * Hamiltonian Path ⇒ TSRFP: graph G on k vertices becomes a TSRF whose
//    interference pattern mirrors G's edges; a 2k-slot schedule exists iff
//    G has a Hamiltonian path (Lemma 1).
//  * X1MHP: auxiliary branches force every sensor to hold exactly one
//    packet while preserving hardness (Theorem 3).
//  * CPAR ⇔ Partition: a two-gateway cluster whose balanced sector split
//    solves the Partition instance (Theorem 5).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/interference.hpp"
#include "core/schedule.hpp"
#include "net/cluster.hpp"
#include "net/graph.hpp"

namespace mhp {

/// A TSRF instance: branch i is second-level sensor 2i+1 relaying through
/// first-level sensor 2i to the head (node 2k).
struct TsrfInstance {
  std::size_t branches = 0;

  std::size_t num_sensors() const { return 2 * branches; }
  NodeId head() const { return static_cast<NodeId>(num_sensors()); }
  NodeId first_level(std::size_t branch) const {
    return static_cast<NodeId>(2 * branch);
  }
  NodeId second_level(std::size_t branch) const {
    return static_cast<NodeId>(2 * branch + 1);
  }

  /// The transmission s'ᵢ → sᵢ (second-level uplink of branch i).
  Tx uplink(std::size_t branch) const;
  /// The transmission sᵢ → head (first-level relay of branch i).
  Tx relay(std::size_t branch) const;

  ClusterTopology topology() const;

  /// One polling request per branch: the second-level packet.
  std::vector<PollingRequest> requests() const;
};

/// The reduction of Lemma 1: interference pattern from graph `g`.
/// Transmissions uplink(i) ∥ relay(j) are compatible iff (vᵢ, vⱼ) ∈ E(G).
struct TsrfReduction {
  TsrfInstance instance;
  ExplicitOracle oracle;  // order 2

  explicit TsrfReduction(const Graph& g);
};

/// Decide Hamiltonian Path on `g` by asking whether the reduced TSRFP
/// instance schedules in 2k slots; returns the vertex order when yes.
/// Exponential (runs the exact scheduler) — small graphs only.
std::optional<std::vector<NodeId>> hamiltonian_path_via_tsrfp(const Graph& g);

/// Extract the Hamiltonian path implied by a back-to-back TSRF schedule
/// (the order in which branch relays reach the head).
std::optional<std::vector<NodeId>> path_from_schedule(
    const TsrfInstance& inst, const Schedule& schedule);

/// Direct exponential Hamiltonian-path check (oracle for the tests).
bool has_hamiltonian_path(const Graph& g);

/// The X1MHP construction of Theorem 3: each TSRF branch gains an
/// auxiliary chain so that every sensor has exactly one packet to send.
struct X1mhpInstance {
  std::size_t branches = 0;
  /// Per-branch node ids: main branch (s, s') plus auxiliaries
  /// (u, u', u'', u''').  Head is the last id.
  struct Branch {
    NodeId s, s_prime;
    NodeId u, u_prime, u_dprime, u_tprime;
  };
  std::vector<Branch> layout;
  NodeId head = kNoNode;

  std::vector<PollingRequest> requests() const;
};

/// Build the X1MHP instance and its oracle from a TSRF reduction.
struct X1mhpReduction {
  X1mhpInstance instance;
  ExplicitOracle oracle;  // order 2

  explicit X1mhpReduction(const TsrfReduction& base);
};

/// CPAR ⇔ Partition (Theorem 5): integers a₁..aₘ become chains hanging
/// off two gateway sensors S₁, S₂.
struct CparInstance {
  std::vector<std::int64_t> integers;
  NodeId gateway1 = 0, gateway2 = 1;
  /// chain_of[s]: which integer's chain sensor s belongs to (or -1 for
  /// the gateways).
  std::vector<int> chain_of;
  /// NOTE: declared after chain_of — construction fills chain_of while
  /// building the topology.
  ClusterTopology topology;

  explicit CparInstance(std::vector<std::int64_t> integers);
};

/// Solve the Partition instance via sector partitioning of the CPAR
/// cluster: returns the indices of integers assigned to gateway-1's
/// sector, or nullopt when no equal partition exists.  Exponential.
std::optional<std::vector<std::size_t>> partition_via_cpar(
    const CparInstance& inst);

}  // namespace mhp
