// Dividing a cluster into sectors (§IV).
//
// Sectors wake and drain in turn, so a sensor is awake only while its own
// sector is polled — the main lever for cutting idle-listening time.  The
// optimal partition is NP-complete (CPAR, Theorem 5); this is the paper's
// heuristic (§IV-B):
//
//  1. *Flow merging*: turn the union of relaying paths into a tree.  Flow
//     splitting sensors (more than one next hop) pick the parent whose
//     path to the head has the smallest maximum load, processed closest
//     to the head first.
//  2. Each first-level branch of the tree is a candidate sector.
//  3. Branches are paired under the paper's three rules: (i) the two
//     branches are linked so traffic can be redirected toward the
//     less-loaded gateway, (ii) big branches pair with small ones,
//     (iii) the two gateways can alternate head transmissions (checked
//     against the compatibility oracle when one is supplied).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/interference.hpp"
#include "core/routing.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"

namespace mhp {

struct Sector {
  std::vector<NodeId> sensors;      // every sensor in the sector
  std::vector<NodeId> gateways;     // its first-level sensors (1 or 2)
};

struct SectorPartition {
  std::vector<Sector> sectors;
  std::vector<int> sector_of;    // per sensor
  std::vector<NodeId> parent;    // relay tree (parent of gateways = head)
  std::vector<std::int64_t> tree_load;  // per-sensor load on the tree

  std::size_t size() const { return sectors.size(); }

  /// Relaying path of sensor s induced by the tree.
  std::vector<NodeId> tree_path(NodeId s, NodeId head) const;
};

struct SectorParams {
  double alpha = 1.0;  // weight of transmission load in the power rate
  double beta = 1.0;   // weight of awake time (∝ sector size)
  /// Maximum branches per sector (the paper pairs at most two).
  std::size_t max_branches_per_sector = 2;
};

class SectorPartitioner {
 public:
  SectorPartitioner(const ClusterTopology& topo, SectorParams params = {})
      : topo_(topo), params_(params) {}

  /// Run the heuristic.  `demand` drives tree loads; `oracle` (optional)
  /// enables pairing rule (iii).
  SectorPartition partition(const RelayPlan& plan,
                            const std::vector<std::int64_t>& demand,
                            const CompatibilityOracle* oracle = nullptr) const;

  /// Trivial partition: the whole cluster as one sector (the baseline the
  /// paper's Fig 7(c) divides against), using the same merged tree.
  SectorPartition single_sector(const RelayPlan& plan,
                                const std::vector<std::int64_t>& demand) const;

  /// ρ' of the worst sensor: α·load + β·(sector size) — the paper's
  /// pseudo power consumption rate (§IV-A).
  double max_pseudo_rate(const SectorPartition& p) const;

 private:
  /// Flow merging (§IV-B): returns per-sensor tree parent (head for
  /// first-level sensors) and the resulting tree loads.
  void merge_to_tree(const RelayPlan& plan,
                     const std::vector<std::int64_t>& demand,
                     std::vector<NodeId>& parent,
                     std::vector<std::int64_t>& tree_load) const;

  const ClusterTopology& topo_;
  SectorParams params_;
};

}  // namespace mhp
