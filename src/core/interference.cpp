#include "core/interference.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

TxGroup normalize(std::span<const Tx> txs) {
  TxGroup g(txs.begin(), txs.end());
  std::sort(g.begin(), g.end());
  g.erase(std::unique(g.begin(), g.end()), g.end());
  return g;
}

bool structurally_valid(std::span<const Tx> txs) {
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (txs[i].from == txs[i].to) return false;
    for (std::size_t j = 0; j < txs.size(); ++j) {
      if (i == j) continue;
      if (txs[i].from == txs[j].from) return false;  // duplicate sender
      if (txs[i].from == txs[j].to) return false;    // half-duplex
      if (txs[i].to == txs[j].to) return false;      // receiver contention
    }
  }
  return true;
}

bool CompatibilityOracle::compatible(std::span<const Tx> txs) const {
  // Normalize first: a group listing the same transmission twice is the
  // same *set* of transmissions, not a duplicate-sender violation — the
  // structural screen runs on the deduped group.  (Callers that must
  // forbid double-booking a sender in one slot, like the greedy
  // scheduler, enforce that themselves.)
  const TxGroup g = normalize(txs);
  if (g.size() <= 1) return g.empty() || g[0].from != g[0].to;
  if (static_cast<int>(g.size()) > order()) return false;
  if (!structurally_valid(g)) return false;
  return compatible_impl(g);
}

void ExplicitOracle::allow_pair(Tx a, Tx b) {
  pairs_.insert(normalize(std::vector<Tx>{a, b}));
}

void ExplicitOracle::allow_group(std::span<const Tx> txs) {
  const TxGroup g = normalize(txs);
  MHP_REQUIRE(static_cast<int>(g.size()) <= order_,
              "group larger than oracle order");
  for (std::size_t i = 0; i < g.size(); ++i)
    for (std::size_t j = i + 1; j < g.size(); ++j)
      allow_pair(g[i], g[j]);
  if (g.size() > 2) groups_.insert(g);
}

void ExplicitOracle::forbid_group(std::span<const Tx> txs) {
  forbidden_.insert(normalize(txs));
}

bool ExplicitOracle::compatible_impl(const TxGroup& group) const {
  if (forbidden_.contains(group)) return false;
  if (group.size() == 2) return pairs_.contains(group);
  // Larger groups: explicitly listed, or all pairs allowed and nothing
  // forbidden (pairwise screen — exactly what a pair-only table knows).
  if (groups_.contains(group)) return true;
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = i + 1; j < group.size(); ++j)
      if (!pairs_.contains(normalize(std::vector<Tx>{group[i], group[j]})))
        return false;
  return true;
}

bool ChannelOracle::compatible_impl(const TxGroup& group) const {
  std::vector<Channel::TxRx> txs;
  txs.reserve(group.size());
  for (const Tx& t : group) txs.push_back({t.from, t.to});
  const auto outcome = channel_.concurrent_outcome(txs);
  return std::all_of(outcome.begin(), outcome.end(),
                     [](bool ok) { return ok; });
}

MeasuredOracle::MeasuredOracle(const CompatibilityOracle& truth,
                               std::span<const Tx> universe, int order)
    : order_(order) {
  MHP_REQUIRE(order >= 1, "order must be at least 1");
  const TxGroup all = normalize(universe);
  const std::size_t u = all.size();
  // Enumerate subsets of size 2..order via index combinations.
  std::vector<std::size_t> idx;
  auto probe_combinations = [&](auto&& self, std::size_t start,
                                std::size_t k) -> void {
    if (idx.size() == k) {
      TxGroup g;
      g.reserve(k);
      for (std::size_t i : idx) g.push_back(all[i]);
      ++probes_;
      if (truth.compatible(g)) compatible_.insert(std::move(g));
      return;
    }
    for (std::size_t i = start; i + (k - idx.size()) <= u; ++i) {
      idx.push_back(i);
      self(self, i + 1, k);
      idx.pop_back();
    }
  };
  for (int k = 2; k <= order; ++k)
    probe_combinations(probe_combinations, 0, static_cast<std::size_t>(k));
}

bool MeasuredOracle::compatible_impl(const TxGroup& group) const {
  return compatible_.contains(group);
}

bool DiscModelOracle::compatible_impl(const TxGroup& group) const {
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = 0; j < group.size(); ++j) {
      if (i == j) continue;
      if (distance(positions_.at(group[i].to),
                   positions_.at(group[j].from)) <= range_)
        return false;  // receiver i hears sender j: collision
    }
  return true;
}

bool CachedOracle::compatible(std::span<const Tx> txs) const {
  // Mirror the base class's trivial-group handling so cached and uncached
  // answers agree on every input; only non-trivial groups hit the memo.
  // The scheduler asks about a group per hop per candidate per slot, so
  // normalization runs in a reusable scratch buffer: the memo key is
  // copied out only on a miss.
  TxGroup& g = norm_scratch_;
  g.assign(txs.begin(), txs.end());
  std::sort(g.begin(), g.end());
  g.erase(std::unique(g.begin(), g.end()), g.end());
  if (g.size() <= 1) return g.empty() || g[0].from != g[0].to;
  if (static_cast<int>(g.size()) > order()) return false;
  if (screen_ == PairScreen::kOn && g.size() > 2) {
    // A pair already known incompatible dooms every group containing it
    // (monotone oracles only; see the header).  `g` is sorted/unique, so
    // each {g[i], g[j]} with i<j is itself a normalized group.
    pair_scratch_.resize(2);
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
      pair_scratch_[0] = g[i];
      for (std::size_t j = i + 1; j < g.size(); ++j) {
        pair_scratch_[1] = g[j];
        const auto it = cache_.find(pair_scratch_);
        if (it != cache_.end() && !it->second) {
          ++hits_;
          ++screened_;
          if (hit_counter_) hit_counter_->add();
          return false;
        }
      }
    }
  }
  if (const auto it = cache_.find(g); it != cache_.end()) {
    ++hits_;
    if (hit_counter_) hit_counter_->add();
    return it->second;
  }
  ++misses_;
  if (miss_counter_) miss_counter_->add();
  const bool ok = inner_.compatible(g);
  cache_.emplace(g, ok);
  if (screen_ == PairScreen::kOn && ok && g.size() > 2) {
    // Subset closure (monotone oracles only, like the screen): a
    // compatible group proves every pair inside it compatible, so seed
    // those pairs now — the scheduler's first planning pass asks about
    // pairs before it grows them into triples, and this turns such
    // queries into hits without an inner-oracle probe.
    pair_scratch_.resize(2);
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
      pair_scratch_[0] = g[i];
      for (std::size_t j = i + 1; j < g.size(); ++j) {
        pair_scratch_[1] = g[j];
        cache_.try_emplace(pair_scratch_, true);
      }
    }
  }
  return ok;
}

bool CachedOracle::compatible_impl(const TxGroup& group) const {
  return inner_.compatible(group);
}

std::uint64_t MeasuredOracle::probe_count(std::size_t universe_size,
                                          int order) {
  std::uint64_t total = 0;
  for (int k = 2; k <= order; ++k) {
    if (static_cast<std::size_t>(k) > universe_size) break;
    // C(u, k), computed with exact intermediate divisibility.
    std::uint64_t c = 1;
    for (int i = 0; i < k; ++i)
      c = c * (universe_size - static_cast<std::size_t>(i)) /
          static_cast<std::uint64_t>(i + 1);
    total += c;
  }
  return total;
}

std::vector<Tx> transmissions_of_paths(
    const std::vector<std::vector<NodeId>>& paths) {
  std::vector<Tx> txs;
  for (const auto& path : paths)
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      txs.push_back(Tx{path[i], path[i + 1]});
  return normalize(txs);
}

}  // namespace mhp
