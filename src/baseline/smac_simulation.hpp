// Facade for the S-MAC + AODV baseline runs of Fig 7(b): same deployment
// and channel as the polling simulation, but every node contends with
// S-MAC and routes with AODV toward the cluster head (sink).
//
// Substrate (simulator, channel, trace, metrics, RNG) comes from the
// same SimRuntime layer the polling stacks use, so cross-stack features
// and report cores stay uniform.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baseline/smac_config.hpp"
#include "baseline/smac_node.hpp"
#include "net/deployment.hpp"
#include "sim/runtime.hpp"

namespace mhp {

/// Shared report core in RunStats; baseline-specific overheads here.
struct SmacReport : RunStats {
  std::uint64_t packets_dropped = 0;
  std::uint64_t control_frames = 0;   // RTS/CTS/ACK + routing
  std::uint64_t rreq_floods = 0;
  std::uint64_t mac_failures = 0;
  /// Present iff cfg.faults is non-empty.  The baseline performs no
  /// explicit detection or replanning (deaths_detected/replans/
  /// orphaned_sensors stay 0); delivery before/after brackets the first
  /// injected death, with AODV re-discovery as the only recovery.
  std::optional<DegradationReport> degradation;
};

class SmacSimulation {
 public:
  /// `rates_bps[s]`: CBR rate of sensor s in bytes/s; the head (last node
  /// of the deployment) is the always-on sink.
  SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                 std::vector<double> rates_bps,
                 const RuntimeOptions& rt_opts = {});
  SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                 double rate_bps, const RuntimeOptions& rt_opts = {});

  SmacSimulation(const SmacSimulation&) = delete;
  SmacSimulation& operator=(const SmacSimulation&) = delete;

  SmacReport run(Time duration, Time warmup = Time::sec(10));

  SimRuntime& runtime() { return rt_; }
  Simulator& simulator() { return rt_.sim(); }
  Trace& trace() { return rt_.trace(); }
  MetricsRegistry& metrics() { return rt_.metrics(); }
  const SmacNode& node(NodeId i) const { return *nodes_.at(i); }
  std::size_t num_sensors() const { return nodes_.size() - 1; }

 private:
  void on_node_death(const NodeDeath& death);
  std::uint64_t sum_generated() const;

  SmacConfig cfg_;
  std::vector<double> rates_;
  SimRuntime rt_;
  std::vector<std::unique_ptr<SmacNode>> nodes_;  // sensors then sink

  // Degradation snapshots (untouched when faults are off).
  bool have_first_death_ = false;
  std::uint64_t death_gen_ = 0, death_del_ = 0;  // at first death
};

}  // namespace mhp
