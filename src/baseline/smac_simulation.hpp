// Facade for the S-MAC + AODV baseline runs of Fig 7(b): same deployment
// and channel as the polling simulation, but every node contends with
// S-MAC and routes with AODV toward the cluster head (sink).
#pragma once

#include <memory>
#include <vector>

#include "baseline/smac_config.hpp"
#include "baseline/smac_node.hpp"
#include "net/deployment.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"

namespace mhp {

struct SmacReport {
  double measured_seconds = 0.0;
  double offered_bps = 0.0;
  double throughput_bps = 0.0;
  double delivery_ratio = 0.0;
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t control_frames = 0;   // RTS/CTS/ACK + routing
  std::uint64_t rreq_floods = 0;
  std::uint64_t mac_failures = 0;
  double mean_active_fraction = 0.0;
  double mean_latency_s = 0.0;
};

class SmacSimulation {
 public:
  /// `rates_bps[s]`: CBR rate of sensor s in bytes/s; the head (last node
  /// of the deployment) is the always-on sink.
  SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                 std::vector<double> rates_bps);
  SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                 double rate_bps);

  SmacSimulation(const SmacSimulation&) = delete;
  SmacSimulation& operator=(const SmacSimulation&) = delete;

  SmacReport run(Time duration, Time warmup = Time::sec(10));

  Simulator& simulator() { return sim_; }
  const SmacNode& node(NodeId i) const { return *nodes_.at(i); }
  std::size_t num_sensors() const { return nodes_.size() - 1; }

 private:
  SmacConfig cfg_;
  std::vector<double> rates_;
  Simulator sim_;
  FrameUidSource uids_;
  std::unique_ptr<Propagation> propagation_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<SmacNode>> nodes_;  // sensors then sink
};

}  // namespace mhp
