// Configuration of the S-MAC + AODV baseline (the comparison system of
// Fig 7(b); S-MAC follows Ye, Heidemann & Estrin, INFOCOM 2002).
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "sim/time.hpp"

namespace mhp {

struct SmacConfig {
  /// S-MAC frame: a listen period followed by a sleep period.
  Time frame_period = Time::ms(1000);
  /// Fraction of the frame spent listening (1.0 = no sleep cycle).
  double duty_cycle = 0.5;
  /// Number of distinct schedule phases ("virtual clusters", Ye et al.
  /// §IV-A): nodes are randomly assigned a phase, so a duty-cycled
  /// neighbor may be asleep while the sender is awake — the mechanism
  /// that breaks AODV paths in the paper's comparison.  1 = perfectly
  /// synchronized schedules.
  std::uint32_t schedule_groups = 4;

  /// SYNC maintenance: every `sync_every_frames` frames a node broadcasts
  /// its schedule (Ye et al. periodic SYNC).  0 disables.
  std::uint32_t sync_every_frames = 10;
  std::uint32_t sync_bytes = 9;

  /// Contention parameters.
  Time difs = Time::us(400);       // initial idle sensing window
  Time sifs = Time::us(100);       // gap between handshake frames
  Time backoff_slot = Time::us(200);
  std::uint32_t contention_window = 64;  // backoff in [0, cw) slots
  std::uint32_t cw_max = 1024;           // cap for exponential backoff
  std::uint32_t retry_limit = 5;         // RTS attempts per packet

  /// Frame sizes (bytes).
  std::uint32_t rts_bytes = 10;
  std::uint32_t cts_bytes = 10;
  std::uint32_t ack_bytes = 10;
  std::uint32_t data_bytes = 80;

  /// AODV parameters.
  Time route_lifetime = Time::sec(60);
  Time rreq_retry_interval = Time::ms(500);
  std::uint32_t rreq_retries = 3;
  std::uint32_t rreq_bytes = 24;
  std::uint32_t rrep_bytes = 20;
  /// RREQ rebroadcast jitter (de-synchronises the flood).
  Time rreq_jitter = Time::ms(20);

  std::size_t queue_capacity = 64;

  std::uint64_t seed = 1;

  /// Node deaths to inject (sensor ids only; the sink cannot die).  The
  /// baseline has no replanning head — AODV's route re-discovery is its
  /// organic recovery — so link-degradation windows are rejected here.
  FaultPlan faults;

  RadioParams radio{};
  EnergyModel energy = EnergyModel::typical_sensor();
};

}  // namespace mhp
