#include "baseline/aodv.hpp"

#include "util/assertx.hpp"

namespace mhp {

std::optional<NodeId> Aodv::next_hop(NodeId dest, Time now) const {
  auto it = table_.find(dest);
  if (it == table_.end() || it->second.expires < now) return std::nullopt;
  return it->second.next_hop;
}

RreqMsg Aodv::make_rreq(NodeId dest) {
  RreqMsg r;
  r.id = next_rreq_id_++;
  r.origin = self_;
  r.dest = dest;
  r.origin_seq = ++seq_;
  r.hops = 0;
  return r;
}

void Aodv::install(NodeId dest, NodeId via, std::uint32_t hops,
                   std::uint32_t seq, Time now, Time lifetime) {
  auto it = table_.find(dest);
  if (it != table_.end() && it->second.expires >= now) {
    // Keep a fresher (higher seq) or shorter route.
    if (it->second.seq > seq) return;
    if (it->second.seq == seq && it->second.hops <= hops) {
      it->second.expires = now + lifetime;
      return;
    }
  }
  table_[dest] = Route{via, hops, seq, now + lifetime};
}

Aodv::RreqAction Aodv::on_rreq(const RreqMsg& rreq, NodeId from, Time now,
                               Time lifetime) {
  RreqAction action;
  if (rreq.origin == self_) return action;  // our own flood echoed back
  if (!seen_rreqs_.insert({rreq.origin, rreq.id}).second) return action;

  // Reverse route to the origin through the sender.
  install(rreq.origin, from, rreq.hops + 1, rreq.origin_seq, now, lifetime);

  if (rreq.dest == self_) {
    action.reply = true;
    action.rep.origin = rreq.origin;
    action.rep.dest = self_;
    action.rep.dest_seq = ++seq_;
    action.rep.hops = 0;
    return action;
  }
  // Intermediate-node reply: a fresh route to the destination lets us
  // answer on its behalf (standard AODV; keeps regional RREQ storms from
  // starving origins of replies).
  if (auto it = table_.find(rreq.dest);
      it != table_.end() && it->second.expires >= now) {
    action.reply = true;
    action.rep.origin = rreq.origin;
    action.rep.dest = rreq.dest;
    action.rep.dest_seq = it->second.seq;
    action.rep.hops = it->second.hops;
    return action;
  }
  action.forward = true;
  action.fwd = rreq;
  action.fwd.hops += 1;
  return action;
}

std::optional<NodeId> Aodv::on_rrep(const RrepMsg& rrep, NodeId from,
                                    Time now, Time lifetime) {
  // Forward route to the destination through the sender.
  install(rrep.dest, from, rrep.hops + 1, rrep.dest_seq, now, lifetime);
  if (rrep.origin == self_) return std::nullopt;  // discovery complete
  return next_hop(rrep.origin, now);              // reverse path onward
}

std::vector<NodeId> Aodv::on_link_failure(NodeId neighbor) {
  std::vector<NodeId> lost;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.next_hop == neighbor) {
      lost.push_back(it->first);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return lost;
}

void Aodv::touch(NodeId dest, Time now, Time lifetime) {
  auto it = table_.find(dest);
  if (it != table_.end()) it->second.expires = now + lifetime;
}

}  // namespace mhp
