// One node running S-MAC with an AODV routing agent on top.
//
// Mechanisms modelled (Ye/Heidemann/Estrin, INFOCOM 2002):
//  * periodic listen/sleep with a configurable duty cycle (schedules are
//    assumed synchronised — the virtual-cluster steady state; SYNC packet
//    overhead is not modelled),
//  * physical carrier sense (energy detect) + random backoff contention,
//  * RTS/CTS/DATA/ACK unicast handshake with retry limit,
//  * virtual carrier sense (NAV) from overheard RTS/CTS and the S-MAC
//    overhearing-avoidance sleep during other nodes' exchanges,
//  * exchanges in progress continue into the sleep period.
//
// Data packets address the sink; AODV supplies next hops, discovering
// routes with RREQ floods and RREP unicasts, re-discovering after MAC
// failures — the control traffic the paper blames for S-MAC+AODV's poor
// throughput (§VI-B).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>

#include "baseline/aodv.hpp"
#include "baseline/smac_config.hpp"
#include "metrics/registry.hpp"
#include "net/packet.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mhp {

/// MAC control payloads.
struct MacCtrl {
  enum Type { kRts, kCts, kAck, kSync } type = kRts;
  Time nav;  // how long the exchange occupies the medium after this frame
};

/// A routed data packet.
struct BaselineData {
  NodeId final_dest = kNoNode;
  NodeId origin = kNoNode;
  std::uint64_t seq = 0;
  Time generated_at;
};

class SmacNode : public ChannelListener {
 public:
  /// `phase`: offset of this node's listen/sleep schedule within the
  /// frame (its virtual cluster's schedule).
  SmacNode(NodeId id, NodeId sink, Simulator& sim, Channel& channel,
           FrameUidSource& uids, const SmacConfig& cfg, Rng rng,
           bool always_on, Time phase = Time::zero());

  NodeId id() const { return id_; }

  /// Begin duty cycling (call once, at t=0).
  void start();

  /// Generate CBR data for the sink at `rate_bytes_per_s`.
  void start_cbr(double rate_bytes_per_s);

  // --- fault injection ---
  /// Kill the node: radio off for good, timers cancelled, every pending
  /// callback becomes a no-op.  Idempotent.  Neighbors recover through
  /// AODV's normal link-failure re-discovery — no extra signalling.
  void fail();
  bool dead() const { return dead_; }
  /// Finite battery (joules across reset_stats() rebasing); exhaustion
  /// fail()s the node and fires `on_exhausted` once.  0 = unlimited.
  void set_battery(double budget_j, std::function<void()> on_exhausted);

  // --- ChannelListener ---
  void on_frame_begin(const Frame& frame, NodeId from, double rx_power_w,
                      Time end) override;
  void on_frame_end(const Frame& frame, NodeId from, bool phy_ok) override;

  // --- statistics ---
  std::uint64_t packets_generated() const { return generated_; }
  std::uint64_t packets_delivered() const { return delivered_; }  // at sink
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  std::uint64_t control_frames_sent() const { return control_sent_; }
  std::uint64_t data_frames_sent() const { return data_sent_; }
  std::uint64_t mac_failures() const { return mac_failures_; }
  std::uint64_t rreqs_sent() const { return rreq_sent_; }
  /// Routing agent state (read-only; for tests and diagnostics).
  const Aodv& aodv() const { return aodv_; }
  std::size_t queue_length() const { return data_queue_.size(); }
  const EnergyMeter& meter() const { return tracker_.meter(); }
  void settle(Time now) { tracker_.settle(now); }
  void reset_stats(Time now);
  const Accumulator& latency_s() const { return latency_s_; }
  /// Data frames this node forwarded for other origins.
  std::uint64_t packets_relayed() const { return relayed_; }

  /// Registry distributions, mirrored on observation (nullptr = off;
  /// pure observation — never perturbs behaviour).  Latency is observed
  /// at the sink, queue depth whenever a data packet enters the queue.
  void set_latency_histogram(HistogramMetric* h) { latency_hist_ = h; }
  void set_queue_histogram(HistogramMetric* h) { queue_hist_ = h; }

 private:
  // kWaitCtrlAck: a routing unicast (RREP) awaiting its MAC ACK — routing
  // control gets the same link-layer reliability data enjoys.
  enum class Op { kNone, kWaitCts, kWaitData, kWaitAck, kWaitCtrlAck };

  // Duty cycle.
  void on_frame_boundary();
  bool in_listen(Time t) const;
  void radio_wake();
  void radio_sleep_until(Time until);

  // Send pipeline.
  void try_send();
  void contention_step();
  void contention_fire();
  void send_reliable_ctrl();
  void send_rts();
  void send_data_to(NodeId to, const BaselineData& data, bool expects_ack);
  void send_mac(MacCtrl::Type type, NodeId to, Time nav, Time delay);
  void transmit(Frame f, Time delay);
  void mac_success();
  void mac_failure();
  void cancel_timer();
  void arm_timer(Time delay, EventFn fn);

  // Routing.
  void dispatch_data(BaselineData data);  // route or buffer + discover
  void start_discovery();
  void send_rreq();
  void handle_rreq(const RreqMsg& rreq, NodeId from);
  void handle_rrep(const RrepMsg& rrep, NodeId from);
  void generate_packet();
  bool maybe_die();

  NodeId id_;
  NodeId sink_;
  Simulator& sim_;
  Channel& channel_;
  FrameUidSource& uids_;
  const SmacConfig& cfg_;
  Rng rng_;
  bool always_on_;
  Time phase_;
  RadioTracker tracker_;

  bool asleep_ = false;
  bool transmitting_ = false;
  bool dead_ = false;
  int rx_depth_ = 0;
  Time nav_until_;
  double battery_j_ = 0.0;  // 0 = unlimited
  std::function<void()> on_battery_exhausted_;
  double consumed_before_reset_ = 0.0;

  // Outgoing queues: broadcasts (RREQ) first, then reliable routing
  // unicasts (RREP), then data.
  std::deque<Frame> ctrl_queue_;
  std::deque<Frame> reliable_queue_;
  std::deque<BaselineData> data_queue_;
  Op op_ = Op::kNone;
  std::optional<NodeId> op_peer_;
  std::optional<BaselineData> op_data_;
  std::optional<Frame> op_frame_;  // in-flight reliable unicast (retries)
  std::uint32_t attempts_ = 0;
  std::uint32_t backoff_remaining_ = 0;  // frozen across busy periods
  bool contending_ = false;
  std::optional<EventId> timer_;
  std::set<std::uint64_t> seen_ctrl_uids_;  // dedupe re-received RREPs

  // Discovery state.
  Aodv aodv_;
  bool discovering_ = false;
  std::uint32_t discovery_tries_ = 0;
  std::optional<EventId> discovery_timer_;

  double rate_bytes_per_s_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t frames_seen_ = 0;

  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t control_sent_ = 0;
  std::uint64_t data_sent_ = 0;
  std::uint64_t mac_failures_ = 0;
  std::uint64_t rreq_sent_ = 0;
  std::uint64_t relayed_ = 0;
  Accumulator latency_s_;
  HistogramMetric* latency_hist_ = nullptr;
  HistogramMetric* queue_hist_ = nullptr;
};

}  // namespace mhp
