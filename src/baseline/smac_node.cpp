#include "baseline/smac_node.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

namespace {
constexpr Time kSlack = Time::us(300);  // timeout margin beyond airtimes
}

SmacNode::SmacNode(NodeId id, NodeId sink, Simulator& sim, Channel& channel,
                   FrameUidSource& uids, const SmacConfig& cfg, Rng rng,
                   bool always_on, Time phase)
    : id_(id),
      sink_(sink),
      sim_(sim),
      channel_(channel),
      uids_(uids),
      cfg_(cfg),
      rng_(rng),
      always_on_(always_on),
      phase_(phase),
      tracker_(cfg.energy, sim.now(), RadioState::kIdle),
      aodv_(id) {
  channel_.set_listener(id_, this);
}

void SmacNode::start() {
  // First frame boundary at this node's schedule phase.
  sim_.after(phase_, [this] { on_frame_boundary(); });
}

void SmacNode::start_cbr(double rate_bytes_per_s) {
  MHP_REQUIRE(rate_bytes_per_s >= 0.0, "negative rate");
  rate_bytes_per_s_ = rate_bytes_per_s;
  if (rate_bytes_per_s_ <= 0.0) return;
  const double interval =
      static_cast<double>(cfg_.data_bytes) / rate_bytes_per_s_;
  sim_.after(Time::seconds(interval * rng_.uniform()),
             [this] { generate_packet(); });
}

void SmacNode::fail() {
  if (dead_) return;
  dead_ = true;
  asleep_ = true;
  transmitting_ = false;
  rx_depth_ = 0;
  contending_ = false;
  discovering_ = false;
  cancel_timer();
  if (discovery_timer_) {
    sim_.cancel(*discovery_timer_);
    discovery_timer_.reset();
  }
  op_ = Op::kNone;
  op_peer_.reset();
  op_data_.reset();
  op_frame_.reset();
  tracker_.set_state(sim_.now(), RadioState::kSleep);
}

void SmacNode::set_battery(double budget_j,
                           std::function<void()> on_exhausted) {
  MHP_REQUIRE(budget_j > 0.0, "battery budget must be positive");
  battery_j_ = budget_j;
  on_battery_exhausted_ = std::move(on_exhausted);
}

bool SmacNode::maybe_die() {
  if (dead_ || battery_j_ <= 0.0) return false;
  tracker_.settle(sim_.now());
  const double used =
      consumed_before_reset_ + tracker_.meter().total_energy_j();
  if (used < battery_j_) return false;
  fail();
  if (on_battery_exhausted_) on_battery_exhausted_();
  return true;
}

void SmacNode::generate_packet() {
  if (dead_) return;  // stops the CBR reschedule chain
  ++generated_;
  BaselineData d;
  d.final_dest = sink_;
  d.origin = id_;
  d.seq = seq_++;
  d.generated_at = sim_.now();
  dispatch_data(std::move(d));
  const double interval =
      static_cast<double>(cfg_.data_bytes) / rate_bytes_per_s_;
  sim_.after(Time::seconds(interval), [this] { generate_packet(); });
}

bool SmacNode::in_listen(Time t) const {
  if (always_on_) return true;
  const std::int64_t period = cfg_.frame_period.nanos();
  const auto listen =
      static_cast<std::int64_t>(cfg_.duty_cycle *
                                static_cast<double>(period));
  const std::int64_t local =
      (t.nanos() - phase_.nanos()) % period;
  return (local >= 0 ? local : local + period) < listen;
}

void SmacNode::on_frame_boundary() {
  if (dead_) return;  // stops the duty-cycle reschedule chain
  const Time boundary = sim_.now();
  radio_wake();
  if (maybe_die()) return;
  // Periodic SYNC maintenance (schedule broadcast) — pure overhead in
  // the steady state, but it contends for the medium like everything
  // else.
  if (cfg_.sync_every_frames > 0 && !always_on_ &&
      ++frames_seen_ % cfg_.sync_every_frames == 0) {
    Frame f;
    f.uid = uids_.next();
    f.kind = FrameKind::kMac;
    f.src = id_;
    f.dst = kBroadcast;
    f.origin = id_;
    f.size_bytes = cfg_.sync_bytes;
    f.payload = MacCtrl{MacCtrl::kSync, Time::zero()};
    ctrl_queue_.push_back(std::move(f));
  }
  try_send();
  if (!always_on_ && cfg_.duty_cycle < 1.0) {
    const auto listen = Time::seconds(cfg_.duty_cycle *
                                      cfg_.frame_period.to_seconds());
    const Time next_boundary = boundary + cfg_.frame_period;
    sim_.after(listen, [this, next_boundary] {
      // Listen period over: sleep unless an exchange keeps us up.
      if (op_ == Op::kNone && !transmitting_)
        radio_sleep_until(next_boundary);
    });
  }
  sim_.after(cfg_.frame_period, [this] { on_frame_boundary(); });
}

void SmacNode::radio_wake() {
  if (dead_ || !asleep_) return;
  asleep_ = false;
  tracker_.set_state(sim_.now(), RadioState::kIdle);
}

void SmacNode::radio_sleep_until(Time until) {
  if (always_on_) return;
  if (asleep_ || until <= sim_.now()) return;
  asleep_ = true;
  rx_depth_ = 0;
  if (contending_) {
    contending_ = false;
    cancel_timer();
  }
  tracker_.set_state(sim_.now(), RadioState::kSleep);
  sim_.at(until, [this] {
    if (!asleep_) return;
    // Wake only if we are inside a listen period (NAV sleep ending) —
    // otherwise stay down until the next frame boundary wakes us.
    if (in_listen(sim_.now())) {
      radio_wake();
      try_send();
    }
  });
}

void SmacNode::cancel_timer() {
  if (timer_) {
    sim_.cancel(*timer_);
    timer_.reset();
  }
}

void SmacNode::arm_timer(Time delay, EventFn fn) {
  cancel_timer();
  timer_ = sim_.after(delay, std::move(fn));
}

void SmacNode::try_send() {
  if (dead_ || asleep_ || transmitting_ || op_ != Op::kNone || contending_)
    return;
  if (ctrl_queue_.empty() && reliable_queue_.empty() && data_queue_.empty())
    return;
  if (!in_listen(sim_.now())) return;
  if (sim_.now() < nav_until_) {
    arm_timer(nav_until_ - sim_.now() + Time::us(1), [this] { try_send(); });
    return;
  }
  contending_ = true;
  // Draw a fresh backoff only when none is pending: 802.11-style
  // freeze-and-resume, so congested (central) nodes still drain their
  // counters and are not starved by fresh redraws on every busy sense.
  if (backoff_remaining_ == 0) {
    std::uint32_t cw = cfg_.contention_window << attempts_;
    cw = std::min(cw, cfg_.cw_max);
    backoff_remaining_ = 1 + static_cast<std::uint32_t>(rng_.below(cw));
  }
  arm_timer(cfg_.difs, [this] { contention_step(); });
}

void SmacNode::contention_step() {
  timer_.reset();
  if (dead_ || asleep_ || transmitting_ || op_ != Op::kNone) {
    contending_ = false;
    return;
  }
  if (!in_listen(sim_.now()) || sim_.now() < nav_until_) {
    contending_ = false;
    try_send();  // re-enters via the NAV/listen wait paths
    return;
  }
  if (channel_.carrier_sensed(id_)) {
    // Busy: freeze the counter, re-sense a DIFS later.
    arm_timer(cfg_.difs, [this] { contention_step(); });
    return;
  }
  if (--backoff_remaining_ > 0) {
    arm_timer(cfg_.backoff_slot, [this] { contention_step(); });
    return;
  }
  contention_fire();
}

void SmacNode::contention_fire() {
  contending_ = false;
  timer_.reset();
  if (dead_ || asleep_ || transmitting_ || op_ != Op::kNone) return;
  if (!ctrl_queue_.empty()) {
    Frame f = std::move(ctrl_queue_.front());
    ctrl_queue_.pop_front();
    ++control_sent_;
    transmit(std::move(f), Time::zero());
    return;
  }
  if (!reliable_queue_.empty() || op_frame_.has_value()) {
    send_reliable_ctrl();
    return;
  }
  if (data_queue_.empty()) return;
  const BaselineData& head = data_queue_.front();
  const auto hop = aodv_.next_hop(head.final_dest, sim_.now());
  if (!hop) {
    start_discovery();
    return;
  }
  op_peer_ = *hop;
  op_data_ = head;
  send_rts();
}

void SmacNode::send_reliable_ctrl() {
  if (!op_frame_) {
    op_frame_ = std::move(reliable_queue_.front());
    reliable_queue_.pop_front();
  }
  op_ = Op::kWaitCtrlAck;
  op_peer_ = op_frame_->dst;
  ++attempts_;
  ++control_sent_;
  Frame copy = *op_frame_;  // keep the original for retries
  transmit(std::move(copy), Time::zero());
  const Time dur = channel_.airtime(op_frame_->size_bytes) + cfg_.sifs +
                   channel_.airtime(cfg_.ack_bytes) + kSlack;
  arm_timer(dur, [this] {
    op_ = Op::kNone;
    if (attempts_ >= cfg_.retry_limit) {
      // Routing control exhausted its retries: give up on this frame.
      op_frame_.reset();
      op_peer_.reset();
      attempts_ = 0;
      ++mac_failures_;
    }
    try_send();
  });
}

void SmacNode::send_rts() {
  op_ = Op::kWaitCts;
  ++attempts_;
  const Time cts = channel_.airtime(cfg_.cts_bytes);
  const Time data = channel_.airtime(cfg_.data_bytes);
  const Time ack = channel_.airtime(cfg_.ack_bytes);
  const Time nav = cfg_.sifs * 3 + cts + data + ack;
  send_mac(MacCtrl::kRts, *op_peer_, nav, Time::zero());
  arm_timer(channel_.airtime(cfg_.rts_bytes) + cfg_.sifs + cts + kSlack,
            [this] {
              // CTS never came.
              op_ = Op::kNone;
              if (attempts_ >= cfg_.retry_limit)
                mac_failure();
              else
                try_send();
            });
}

void SmacNode::send_data_to(NodeId to, const BaselineData& data,
                            bool expects_ack) {
  Frame f;
  f.uid = uids_.next();
  f.kind = FrameKind::kData;
  f.src = id_;
  f.dst = to;
  f.origin = data.origin;
  f.size_bytes = cfg_.data_bytes;
  f.payload = data;
  ++data_sent_;
  transmit(std::move(f), cfg_.sifs);
  if (expects_ack) {
    const Time dur = cfg_.sifs + channel_.airtime(cfg_.data_bytes) +
                     cfg_.sifs + channel_.airtime(cfg_.ack_bytes) + kSlack;
    arm_timer(dur, [this] {
      op_ = Op::kNone;
      if (attempts_ >= cfg_.retry_limit)
        mac_failure();
      else
        try_send();
    });
  }
}

void SmacNode::send_mac(MacCtrl::Type type, NodeId to, Time nav, Time delay) {
  Frame f;
  f.uid = uids_.next();
  f.kind = FrameKind::kMac;
  f.src = id_;
  f.dst = to;
  f.origin = id_;
  f.size_bytes = type == MacCtrl::kRts   ? cfg_.rts_bytes
                 : type == MacCtrl::kCts ? cfg_.cts_bytes
                                         : cfg_.ack_bytes;
  f.payload = MacCtrl{type, nav};
  ++control_sent_;
  transmit(std::move(f), delay);
}

void SmacNode::transmit(Frame f, Time delay) {
  const auto bytes = f.size_bytes;
  sim_.after(delay, [this, f = std::move(f), bytes]() mutable {
    if (dead_ || asleep_) return;
    if (transmitting_) return;  // should not happen; drop defensively
    transmitting_ = true;
    tracker_.set_state(sim_.now(), RadioState::kTx);
    channel_.transmit(id_, std::move(f));
    sim_.after(channel_.airtime(bytes), [this] {
      if (dead_) return;
      transmitting_ = false;
      if (!asleep_)
        tracker_.set_state(sim_.now(), rx_depth_ > 0 ? RadioState::kRx
                                                     : RadioState::kIdle);
      if (maybe_die()) return;
      if (op_ == Op::kNone) try_send();
    });
  });
}

void SmacNode::mac_success() {
  cancel_timer();
  MHP_ENSURE(!data_queue_.empty(), "ack without a pending packet");
  aodv_.touch(data_queue_.front().final_dest, sim_.now(),
              cfg_.route_lifetime);
  data_queue_.pop_front();
  op_ = Op::kNone;
  op_peer_.reset();
  op_data_.reset();
  attempts_ = 0;
  try_send();
}

void SmacNode::mac_failure() {
  ++mac_failures_;
  if (op_peer_) aodv_.on_link_failure(*op_peer_);
  if (!data_queue_.empty()) {
    data_queue_.pop_front();  // drop; AODV re-discovers for the next one
    ++dropped_;
  }
  op_ = Op::kNone;
  op_peer_.reset();
  op_data_.reset();
  attempts_ = 0;
  try_send();
}

void SmacNode::dispatch_data(BaselineData data) {
  if (data_queue_.size() >= cfg_.queue_capacity) {
    data_queue_.pop_front();
    ++dropped_;
  }
  const NodeId dest = data.final_dest;
  data_queue_.push_back(std::move(data));
  if (queue_hist_ != nullptr)
    queue_hist_->observe(static_cast<double>(data_queue_.size()));
  if (!aodv_.next_hop(dest, sim_.now())) start_discovery();
  try_send();
}

void SmacNode::start_discovery() {
  if (discovering_) return;
  discovering_ = true;
  discovery_tries_ = 0;
  send_rreq();
}

void SmacNode::send_rreq() {
  ++discovery_tries_;
  ++rreq_sent_;
  Frame f;
  f.uid = uids_.next();
  f.kind = FrameKind::kRouting;
  f.src = id_;
  f.dst = kBroadcast;
  f.origin = id_;
  f.size_bytes = cfg_.rreq_bytes;
  f.payload = RoutingPayload{aodv_.make_rreq(sink_)};
  ctrl_queue_.push_back(std::move(f));
  try_send();
  discovery_timer_ = sim_.after(cfg_.rreq_retry_interval, [this] {
    if (!discovering_) return;
    if (aodv_.next_hop(sink_, sim_.now())) {
      discovering_ = false;
      return;
    }
    if (discovery_tries_ >= cfg_.rreq_retries) {
      discovering_ = false;
      if (!data_queue_.empty()) {
        data_queue_.pop_front();
        ++dropped_;
      }
      return;
    }
    send_rreq();
  });
}

void SmacNode::handle_rreq(const RreqMsg& rreq, NodeId from) {
  const auto action =
      aodv_.on_rreq(rreq, from, sim_.now(), cfg_.route_lifetime);
  if (action.reply) {
    Frame f;
    f.uid = uids_.next();
    f.kind = FrameKind::kRouting;
    f.src = id_;
    f.dst = from;
    f.origin = id_;
    f.size_bytes = cfg_.rrep_bytes;
    f.payload = RoutingPayload{action.rep};
    reliable_queue_.push_back(std::move(f));
    try_send();
  } else if (action.forward) {
    // Re-broadcast after a random jitter to de-synchronise the flood.
    const Time jitter = Time::ns(static_cast<std::int64_t>(
        rng_.uniform(0.0, static_cast<double>(cfg_.rreq_jitter.nanos()))));
    sim_.after(jitter, [this, fwd = action.fwd] {
      if (dead_) return;
      Frame f;
      f.uid = uids_.next();
      f.kind = FrameKind::kRouting;
      f.src = id_;
      f.dst = kBroadcast;
      f.origin = id_;
      f.size_bytes = cfg_.rreq_bytes;
      f.payload = RoutingPayload{fwd};
      ctrl_queue_.push_back(std::move(f));
      try_send();
    });
  }
}

void SmacNode::handle_rrep(const RrepMsg& rrep, NodeId from) {
  const auto onward =
      aodv_.on_rrep(rrep, from, sim_.now(), cfg_.route_lifetime);
  if (rrep.origin == id_) {
    discovering_ = false;
    try_send();
    return;
  }
  if (!onward) return;  // reverse route gone; flood will retry
  Frame f;
  f.uid = uids_.next();
  f.kind = FrameKind::kRouting;
  f.src = id_;
  f.dst = *onward;
  f.origin = id_;
  f.size_bytes = cfg_.rrep_bytes;
  RrepMsg fwd = rrep;
  fwd.hops += 1;
  f.payload = RoutingPayload{fwd};
  reliable_queue_.push_back(std::move(f));
  try_send();
}

void SmacNode::on_frame_begin(const Frame&, NodeId, double, Time) {
  if (dead_ || asleep_ || transmitting_) return;
  if (rx_depth_++ == 0) tracker_.set_state(sim_.now(), RadioState::kRx);
}

void SmacNode::on_frame_end(const Frame& frame, NodeId from, bool phy_ok) {
  if (dead_) return;
  if (!asleep_ && !transmitting_ && rx_depth_ > 0) {
    if (--rx_depth_ == 0) tracker_.set_state(sim_.now(), RadioState::kIdle);
  }
  if (maybe_die()) return;
  if (asleep_ || transmitting_) return;
  if (!phy_ok) return;

  const bool mine = frame.dst == id_ || frame.dst == kBroadcast;

  if (frame.kind == FrameKind::kMac) {
    const auto& ctrl = std::any_cast<const MacCtrl&>(frame.payload);
    if (frame.dst != id_) {
      // Virtual carrier sense from overheard RTS/CTS, plus S-MAC's
      // overhearing-avoidance sleep.
      if (ctrl.type == MacCtrl::kRts || ctrl.type == MacCtrl::kCts) {
        nav_until_ = std::max(nav_until_, sim_.now() + ctrl.nav);
        if (op_ == Op::kNone && !contending_)
          radio_sleep_until(std::min(nav_until_, sim_.now() + ctrl.nav));
      }
      return;
    }
    switch (ctrl.type) {
      case MacCtrl::kRts: {
        if (op_ != Op::kNone || sim_.now() < nav_until_) return;  // busy
        // Receiver role preempts any contention in progress (arm_timer
        // below cancels the contention timer; the frozen backoff counter
        // survives for the next attempt).
        contending_ = false;
        op_ = Op::kWaitData;
        op_peer_ = from;
        const Time data = channel_.airtime(cfg_.data_bytes);
        const Time ack = channel_.airtime(cfg_.ack_bytes);
        send_mac(MacCtrl::kCts, from, cfg_.sifs * 2 + data + ack, cfg_.sifs);
        arm_timer(cfg_.sifs + channel_.airtime(cfg_.cts_bytes) + cfg_.sifs +
                      data + kSlack,
                  [this] {
                    op_ = Op::kNone;  // data never came
                    op_peer_.reset();
                    try_send();
                  });
        break;
      }
      case MacCtrl::kCts: {
        if (op_ != Op::kWaitCts || from != *op_peer_) return;
        cancel_timer();
        op_ = Op::kWaitAck;
        send_data_to(*op_peer_, *op_data_, /*expects_ack=*/true);
        break;
      }
      case MacCtrl::kAck: {
        if (op_ == Op::kWaitAck && from == *op_peer_) {
          mac_success();
        } else if (op_ == Op::kWaitCtrlAck && from == *op_peer_) {
          cancel_timer();
          op_ = Op::kNone;
          op_frame_.reset();
          op_peer_.reset();
          attempts_ = 0;
          try_send();
        }
        break;
      }
      case MacCtrl::kSync:
        break;  // schedules are assigned at start-up; SYNC is overhead
    }
    return;
  }

  if (frame.kind == FrameKind::kData && frame.dst == id_) {
    const auto data = std::any_cast<BaselineData>(frame.payload);
    if (op_ == Op::kWaitData && from == *op_peer_) {
      cancel_timer();
      op_ = Op::kNone;
      op_peer_.reset();
    }
    send_mac(MacCtrl::kAck, from, Time::zero(), cfg_.sifs);
    if (data.final_dest == id_) {
      ++delivered_;
      bytes_delivered_ += cfg_.data_bytes;
      latency_s_.add((sim_.now() - data.generated_at).to_seconds());
      if (latency_hist_ != nullptr)
        latency_hist_->observe((sim_.now() - data.generated_at).to_seconds());
    } else {
      ++relayed_;
      dispatch_data(data);  // forward toward the sink
    }
    return;
  }

  if (frame.kind == FrameKind::kRouting && mine) {
    if (frame.dst == id_) {
      // Reliable routing unicast: always ACK, process each uid once (the
      // sender retries with the same uid when our ACK is lost).
      send_mac(MacCtrl::kAck, from, Time::zero(), cfg_.sifs);
      if (!seen_ctrl_uids_.insert(frame.uid).second) return;
    }
    const auto& routing = std::any_cast<const RoutingPayload&>(frame.payload);
    if (const auto* rreq = std::get_if<RreqMsg>(&routing))
      handle_rreq(*rreq, from);
    else if (const auto* rrep = std::get_if<RrepMsg>(&routing))
      handle_rrep(*rrep, from);
    return;
  }
}

void SmacNode::reset_stats(Time now) {
  // Rebase the meter but keep the battery's view of lifetime consumption.
  tracker_.settle(now);
  consumed_before_reset_ += tracker_.meter().total_energy_j();
  tracker_.reset(now);
  generated_ = 0;
  delivered_ = 0;
  bytes_delivered_ = 0;
  dropped_ = 0;
  control_sent_ = 0;
  data_sent_ = 0;
  mac_failures_ = 0;
  rreq_sent_ = 0;
  relayed_ = 0;
  latency_s_ = Accumulator{};
}

}  // namespace mhp
