// AODV routing agent (per node), as used on top of S-MAC for the paper's
// Fig 7(b) comparison.
//
// Implements on-demand route discovery: RREQ flooding with duplicate
// suppression and reverse-route installation, RREP unicast back along the
// reverse path, route lifetimes, and invalidation on link failure.  The
// MAC layer owns transmission; this class only decides *what* to send and
// learns from what arrives.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace mhp {

struct RreqMsg {
  std::uint32_t id = 0;       // (origin, id) identifies the flood
  NodeId origin = kNoNode;
  NodeId dest = kNoNode;
  std::uint32_t origin_seq = 0;
  std::uint32_t hops = 0;
};

struct RrepMsg {
  NodeId origin = kNoNode;  // who asked
  NodeId dest = kNoNode;    // route target
  std::uint32_t dest_seq = 0;
  std::uint32_t hops = 0;
};

/// What rides on FrameKind::kRouting frames.
using RoutingPayload = std::variant<RreqMsg, RrepMsg>;

class Aodv {
 public:
  Aodv(NodeId self, std::uint32_t self_seq = 0) : self_(self), seq_(self_seq) {}

  struct Route {
    NodeId next_hop = kNoNode;
    std::uint32_t hops = 0;
    std::uint32_t seq = 0;
    Time expires;
  };

  /// Valid next hop toward `dest` at time `now`, if a fresh route exists.
  std::optional<NodeId> next_hop(NodeId dest, Time now) const;

  /// Build a new route request for `dest` (bumps the local sequence
  /// number and flood id).
  RreqMsg make_rreq(NodeId dest);

  /// Process an overheard RREQ arriving from neighbor `from`.
  struct RreqAction {
    bool forward = false;   // rebroadcast (hops incremented)
    bool reply = false;     // we are the destination: send RREP to `from`
    RreqMsg fwd;            // forward payload when forward
    RrepMsg rep;            // reply payload when reply
  };
  RreqAction on_rreq(const RreqMsg& rreq, NodeId from, Time now,
                     Time lifetime);

  /// Process an RREP arriving from neighbor `from`.  Returns the next hop
  /// to forward it to (reverse route toward the origin), or nullopt if we
  /// are the origin / the reverse route is gone.
  std::optional<NodeId> on_rrep(const RrepMsg& rrep, NodeId from, Time now,
                                Time lifetime);

  /// The MAC exhausted retries toward `neighbor`: invalidate every route
  /// through it.  Returns the destinations lost (for RERR propagation).
  std::vector<NodeId> on_link_failure(NodeId neighbor);

  /// Refresh a route's lifetime on use.
  void touch(NodeId dest, Time now, Time lifetime);

  std::uint32_t sequence() const { return seq_; }
  const std::map<NodeId, Route>& table() const { return table_; }

 private:
  void install(NodeId dest, NodeId via, std::uint32_t hops,
               std::uint32_t seq, Time now, Time lifetime);

  NodeId self_;
  std::uint32_t seq_;
  std::uint32_t next_rreq_id_ = 1;
  std::map<NodeId, Route> table_;
  std::set<std::pair<NodeId, std::uint32_t>> seen_rreqs_;
};

}  // namespace mhp
