#include "baseline/smac_simulation.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

SmacSimulation::SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                               std::vector<double> rates_bps)
    : cfg_(cfg), rates_(std::move(rates_bps)) {
  const std::size_t n = deployment.num_sensors();
  MHP_REQUIRE(rates_.size() == n, "one rate per sensor required");

  propagation_ = std::make_unique<TwoRayGround>();
  // In the S-MAC comparison every node is a peer; all use sensor power.
  std::vector<double> powers(n + 1, RadioParams::kSensorTxPowerW);
  channel_ = std::make_unique<Channel>(sim_, *propagation_, cfg_.radio,
                                       deployment.positions, powers);

  Rng root(cfg_.seed);
  const auto sink = static_cast<NodeId>(n);
  nodes_.reserve(n + 1);
  // Schedule phases: nodes land in one of `schedule_groups` virtual
  // clusters, each with its own listen/sleep offset.
  const std::uint32_t groups = std::max(1u, cfg_.schedule_groups);
  for (NodeId i = 0; i < n; ++i) {
    const auto group = root.below(groups);
    const Time phase =
        Time::ns(static_cast<std::int64_t>(group) *
                 (cfg_.frame_period.nanos() /
                  static_cast<std::int64_t>(groups)));
    nodes_.push_back(std::make_unique<SmacNode>(
        i, sink, sim_, *channel_, uids_, cfg_, root.split(i + 1),
        /*always_on=*/false, phase));
  }
  nodes_.push_back(std::make_unique<SmacNode>(sink, sink, sim_, *channel_,
                                              uids_, cfg_, root.split(0),
                                              /*always_on=*/true));
  for (auto& node : nodes_) node->start();
  for (NodeId i = 0; i < n; ++i) nodes_[i]->start_cbr(rates_[i]);
}

SmacSimulation::SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                               double rate_bps)
    : SmacSimulation(deployment, cfg,
                     std::vector<double>(deployment.num_sensors(),
                                         rate_bps)) {}

SmacReport SmacSimulation::run(Time duration, Time warmup) {
  MHP_REQUIRE(duration > warmup, "duration must exceed warmup");
  sim_.run_until(warmup);
  for (auto& node : nodes_) node->reset_stats(sim_.now());

  sim_.run_until(duration);

  SmacReport rep;
  rep.measured_seconds = (duration - warmup).to_seconds();
  const auto& sink = *nodes_.back();
  double active_sum = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = *nodes_[i];
    node.settle(sim_.now());
    if (i + 1 < nodes_.size()) {  // sensors only
      rep.packets_generated += node.packets_generated();
      rep.packets_dropped += node.packets_dropped();
      active_sum += node.meter().active_fraction();
    }
    rep.control_frames += node.control_frames_sent();
    rep.rreq_floods += node.rreqs_sent();
    rep.mac_failures += node.mac_failures();
  }
  rep.packets_delivered = sink.packets_delivered();
  rep.mean_active_fraction =
      active_sum / static_cast<double>(num_sensors());
  rep.offered_bps =
      static_cast<double>(rep.packets_generated * cfg_.data_bytes) /
      rep.measured_seconds;
  rep.throughput_bps = static_cast<double>(sink.bytes_delivered()) /
                       rep.measured_seconds;
  rep.delivery_ratio =
      rep.packets_generated == 0
          ? 1.0
          : static_cast<double>(rep.packets_delivered) /
                static_cast<double>(rep.packets_generated);
  rep.mean_latency_s =
      sink.latency_s().empty() ? 0.0 : sink.latency_s().mean();
  return rep;
}

}  // namespace mhp
