#include "baseline/smac_simulation.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "util/assertx.hpp"

namespace mhp {

SmacSimulation::SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                               std::vector<double> rates_bps,
                               const RuntimeOptions& rt_opts)
    : cfg_(cfg), rates_(std::move(rates_bps)), rt_(cfg.seed, rt_opts) {
  const std::size_t n = deployment.num_sensors();
  MHP_REQUIRE(rates_.size() == n, "one rate per sensor required");

  rt_.adopt_propagation(std::make_unique<TwoRayGround>());
  // In the S-MAC comparison every node is a peer; all use sensor power.
  std::vector<double> powers(n + 1, RadioParams::kSensorTxPowerW);
  Channel& channel =
      rt_.add_channel(cfg_.radio, deployment.positions, powers);

  Rng& root = rt_.root_rng();
  const auto sink = static_cast<NodeId>(n);
  nodes_.reserve(n + 1);
  // Schedule phases: nodes land in one of `schedule_groups` virtual
  // clusters, each with its own listen/sleep offset.
  const std::uint32_t groups = std::max(1u, cfg_.schedule_groups);
  for (NodeId i = 0; i < n; ++i) {
    const auto group = root.below(groups);
    const Time phase =
        Time::ns(static_cast<std::int64_t>(group) *
                 (cfg_.frame_period.nanos() /
                  static_cast<std::int64_t>(groups)));
    nodes_.push_back(std::make_unique<SmacNode>(
        i, sink, rt_.sim(), channel, rt_.uids(), cfg_, root.split(i + 1),
        /*always_on=*/false, phase));
  }
  nodes_.push_back(std::make_unique<SmacNode>(sink, sink, rt_.sim(),
                                              channel, rt_.uids(), cfg_,
                                              root.split(0),
                                              /*always_on=*/true));
  // Distribution instrumentation: sink-side delivery latency, per-node
  // queue depth.  References stay valid — begin_window resets in place.
  MetricsRegistry& m = rt_.metrics();
  HistogramMetric& latency_hist =
      m.histogram(metric::kLatencyHistS, 0.0, 10.0, 64);
  HistogramMetric& queue_hist = m.histogram(
      metric::kQueueDepth, 0.0,
      static_cast<double>(cfg_.queue_capacity + 1), cfg_.queue_capacity + 1);
  for (auto& node : nodes_) {
    node->set_latency_histogram(&latency_hist);
    node->set_queue_histogram(&queue_hist);
  }

  if (!cfg_.faults.empty()) {
    MHP_REQUIRE(cfg_.faults.degradations().empty(),
                "link-degradation windows are not modelled in the S-MAC "
                "baseline; schedule node deaths only");
    FaultInjector& inj = rt_.install_faults(cfg_.faults);
    inj.set_death_handler(
        [this](const NodeDeath& death) { on_node_death(death); });
    for (const NodeDeath& d : cfg_.faults.deaths()) {
      MHP_REQUIRE(d.node < n, "fault plan kills an unknown sensor");
      if (d.cause == NodeDeath::Cause::kBattery)
        nodes_[d.node]->set_battery(d.battery_j, [this, node = d.node] {
          rt_.faults()->battery_exhausted(node);
        });
    }
    inj.arm();
  }

  for (auto& node : nodes_) node->start();
  for (NodeId i = 0; i < n; ++i) nodes_[i]->start_cbr(rates_[i]);
}

void SmacSimulation::on_node_death(const NodeDeath& death) {
  nodes_.at(death.node)->fail();
  if (!have_first_death_) {
    have_first_death_ = true;
    death_gen_ = sum_generated();
    death_del_ = nodes_.back()->packets_delivered();
  }
}

std::uint64_t SmacSimulation::sum_generated() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i)
    total += nodes_[i]->packets_generated();
  return total;
}

SmacSimulation::SmacSimulation(const Deployment& deployment, SmacConfig cfg,
                               double rate_bps,
                               const RuntimeOptions& rt_opts)
    : SmacSimulation(deployment, cfg,
                     std::vector<double>(deployment.num_sensors(),
                                         rate_bps),
                     rt_opts) {}

SmacReport SmacSimulation::run(Time duration, Time warmup) {
  MHP_REQUIRE(duration > warmup, "duration must exceed warmup");
  Simulator& sim = rt_.sim();
  sim.run_until(warmup);
  for (auto& node : nodes_) node->reset_stats(sim.now());
  rt_.begin_measurement();

  sim.run_until(duration);

  SmacReport rep;
  const auto& sink = *nodes_.back();
  std::uint64_t generated = 0;
  double active_sum = 0.0;
  MetricsRegistry& m = rt_.metrics();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = *nodes_[i];
    node.settle(sim.now());
    if (i + 1 < nodes_.size()) {  // sensors only
      generated += node.packets_generated();
      rep.packets_dropped += node.packets_dropped();
      active_sum += node.meter().active_fraction();
      m.counter(node_metric(metric::kNodeRelayed, i))
          .add(node.packets_relayed());
      m.counter(node_metric(metric::kNodeFramesTx, i))
          .add(node.data_frames_sent() + node.control_frames_sent());
      m.gauge(node_metric(metric::kNodeEnergyJ, i))
          .set(sim.now(), node.meter().total_energy_j());
      m.gauge(node_metric(metric::kNodeAwakeS, i))
          .set(sim.now(), (node.meter().total_time() -
                           node.meter().time_in(RadioState::kSleep))
                              .to_seconds());
    }
    rep.control_frames += node.control_frames_sent();
    rep.rreq_floods += node.rreqs_sent();
    rep.mac_failures += node.mac_failures();
  }

  m.counter(metric::kPacketsGenerated).add(generated);
  m.counter(metric::kPacketsDelivered).add(sink.packets_delivered());
  m.counter(metric::kBytesDelivered).add(sink.bytes_delivered());
  m.counter(metric::kPacketsLost).add(rep.packets_dropped);
  m.counter("smac.control_frames").add(rep.control_frames);
  m.counter("smac.rreq_floods").add(rep.rreq_floods);
  m.counter("smac.mac_failures").add(rep.mac_failures);
  m.gauge(metric::kMeanActiveFraction)
      .set(sim.now(), active_sum / static_cast<double>(num_sensors()));
  m.gauge(metric::kMeanLatencyS)
      .set(sim.now(),
           sink.latency_s().empty() ? 0.0 : sink.latency_s().mean());

  if (!cfg_.faults.empty()) {
    const FaultInjector& inj = *rt_.faults();
    DegradationReport deg;
    deg.dead_nodes = inj.dead_nodes();
    deg.deaths = deg.dead_nodes.size();
    // No head-driven detection or replanning here: those counters stay
    // zero and AODV re-discovery is the only recovery.
    const std::uint64_t gen_end = generated;
    const std::uint64_t del_end = sink.packets_delivered();
    const auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : std::uint64_t{0};
    };
    const auto ratio = [](std::uint64_t del, std::uint64_t gen) {
      return gen == 0 ? 1.0
                      : static_cast<double>(del) / static_cast<double>(gen);
    };
    if (have_first_death_) {
      deg.delivery_before = ratio(death_del_, death_gen_);
      deg.delivery_after =
          ratio(sat(del_end, death_del_), sat(gen_end, death_gen_));
    } else {
      deg.delivery_before = ratio(del_end, gen_end);
      deg.delivery_after = deg.delivery_before;
    }
    rep.degradation = deg;
    m.counter("fault.deaths").add(deg.deaths);
    m.counter("fault.deaths_detected").add(deg.deaths_detected);
    m.counter("fault.replans").add(deg.replans);
    m.counter("fault.orphaned_sensors").add(deg.orphaned_sensors);
  }

  static_cast<RunStats&>(rep) =
      rt_.collect_run_stats(duration - warmup, cfg_.data_bytes);
  return rep;
}

}  // namespace mhp
