#include "scenario/campaign.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>

#include "exp/sweep.hpp"
#include "obs/profiler.hpp"
#include "obs/report_json.hpp"
#include "scenario/json_cursor.hpp"
#include "scenario/run_scenario.hpp"
#include "util/stats.hpp"

namespace mhp::scenario {

namespace {

using obs::Json;

/// Split "protocol.oracle_order" into segments.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::string current;
  for (const char c : path) {
    if (c == '.') {
      segments.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  segments.push_back(current);
  return segments;
}

}  // namespace

void set_by_path(Json& doc, const std::string& path, Json value) {
  Json* node = &doc;
  for (const std::string& segment : split_path(path)) {
    Json* next = node->find(segment);
    if (next == nullptr)
      throw ScenarioError(
          "campaign.sweep: path \"" + path +
          "\" not found in the base scenario (no key \"" + segment +
          "\" — sweeps can only override fields the schema defines)");
    node = next;
  }
  *node = std::move(value);
}

Campaign parse_campaign(
    const Json& doc,
    const std::function<std::string(const std::string&)>& load_file) {
  ObjectReader r(doc, "campaign");
  Campaign out;
  r.read_string("name", out.name);

  const Json* base = r.take("base");
  if (base == nullptr)
    throw ScenarioError(
        "campaign.base: missing (inline scenario object or file path)");
  Json base_doc;
  if (base->is_object()) {
    base_doc = *base;
  } else if (base->is_string()) {
    if (!load_file)
      throw ScenarioError(
          "campaign.base: file path given but no loader available");
    base_doc = obs::parse_json(load_file(base->as_string()));
  } else {
    r.error("base", std::string("expected object or string, got ") +
                        json_type_name(base->type()));
  }

  if (const Json* sweep = r.take("sweep")) {
    if (!sweep->is_object())
      r.error("sweep", std::string("expected object, got ") +
                           json_type_name(sweep->type()));
    for (const auto& [path, values] : sweep->items()) {
      if (!values.is_array())
        throw ScenarioError("campaign.sweep." + path +
                            ": expected array of values, got " +
                            json_type_name(values.type()));
      if (values.size() == 0)
        throw ScenarioError("campaign.sweep." + path +
                            ": value list must not be empty");
      std::vector<Json> list;
      for (std::size_t i = 0; i < values.size(); ++i)
        list.push_back(values.at(i));
      out.sweep.emplace_back(path, std::move(list));
    }
  }
  r.finish();

  // Canonicalize: parse + full re-dump, so every schema field exists in
  // the document and sweep paths resolve against the complete form.
  out.base = scenario_to_json(parse_scenario(base_doc));

  // Fail fast on misspelled sweep paths — before any point runs.
  for (const auto& [path, values] : out.sweep) {
    Json probe = out.base;
    set_by_path(probe, path, values.front());
  }
  return out;
}

std::vector<CampaignPoint> expand_campaign(const Campaign& campaign) {
  std::vector<CampaignPoint> points;
  std::size_t total = 1;
  for (const auto& [path, values] : campaign.sweep) total *= values.size();
  points.reserve(total);

  // Mixed-radix counter over the value lists, last key fastest.  Point
  // documents are *not* validated here: a sweep value that fails
  // parse_scenario is a per-point failure the campaign runner records,
  // not a reason to abort the whole batch.
  std::vector<std::size_t> index(campaign.sweep.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    CampaignPoint point;
    point.doc = campaign.base;
    for (std::size_t k = 0; k < campaign.sweep.size(); ++k) {
      const auto& [path, values] = campaign.sweep[k];
      const Json& value = values[index[k]];
      set_by_path(point.doc, path, value);
      if (!point.key.empty()) point.key += ',';
      point.key += path + "=" + value.dump();
    }
    if (campaign.sweep.empty()) point.key = "base";
    points.push_back(std::move(point));
    for (std::size_t k = campaign.sweep.size(); k-- > 0;) {
      if (++index[k] < campaign.sweep[k].second.size()) break;
      index[k] = 0;
    }
  }
  return points;
}

std::vector<std::pair<std::string, Json>> read_keyed_jsonl(
    const std::string& path) {
  std::vector<std::pair<std::string, Json>> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      Json doc = obs::parse_json(line);
      const Json* key = doc.find("key");
      if (key == nullptr || !key->is_string()) continue;
      const std::string k = key->as_string();
      bool replaced = false;
      for (auto& [existing, value] : entries) {
        if (existing == k) {
          value = std::move(doc);
          replaced = true;
          break;
        }
      }
      if (!replaced) entries.emplace_back(k, std::move(doc));
    } catch (const obs::JsonParseError&) {
      continue;
    }
  }
  return entries;
}

namespace {

struct Agg {
  std::size_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  Json to_json() const {
    return Json::object()
        .set("count", Json(count))
        .set("mean", Json(count > 0 ? sum / static_cast<double>(count) : 0.0))
        .set("min", Json(count > 0 ? min : 0.0))
        .set("max", Json(count > 0 ? max : 0.0));
  }
};

/// Point wall-time roll-up: Agg-style stats plus quantiles from a
/// fixed-bin Histogram over the observed range.  All-zero samples (every
/// point ran with run.record_perf false) still produce a valid block.
Json wall_ms_to_json(const std::vector<double>& samples) {
  Agg agg;
  for (const double v : samples) agg.add(v);
  Json out = agg.to_json();
  // All-zero samples (every point ran with run.record_perf false) report
  // exact zero quantiles rather than the histogram's bin-0 midpoint.
  const bool all_zero = agg.count == 0 || agg.max <= 0.0;
  const double hi = all_zero ? 1.0 : agg.max;  // Histogram needs lo < hi
  Histogram h(0.0, hi * 1.0001, 64);
  for (const double v : samples) h.add(v);
  out.set("p50_ms", Json(all_zero ? 0.0 : h.quantile(0.50)))
      .set("p95_ms", Json(all_zero ? 0.0 : h.quantile(0.95)))
      .set("p99_ms", Json(all_zero ? 0.0 : h.quantile(0.99)));
  return out;
}

}  // namespace

/// Roll delivery / throughput / energy / lifetime-proxy aggregates up
/// from every ok result on record (this run and previous ones).
Json build_campaign_summary(const std::string& campaign_name,
                            const std::string& out_dir, std::size_t total) {
  const auto results = read_keyed_jsonl(out_dir + "/results.jsonl");
  const auto manifest = read_keyed_jsonl(out_dir + "/manifest.jsonl");

  std::size_t failed = 0;
  for (const auto& [key, entry] : manifest) {
    const Json* status = entry.find("status");
    if (status != nullptr && status->is_string() &&
        status->as_string() != "ok")
      ++failed;
  }

  Agg delivery, throughput, energy, max_power;
  std::vector<double> wall_ms;
  for (const auto& [key, entry] : results) {
    const Json* ms = entry.find("point_wall_ms");
    if (ms != nullptr && ms->is_number()) wall_ms.push_back(ms->as_double());
    const Json* report = entry.find("report");
    if (report == nullptr) continue;
    const Json* kind = report->find("kind");
    const Json* body = report->find("report");
    if (kind == nullptr || body == nullptr) continue;
    const bool multi = kind->as_string() == "multi_cluster";

    const Json* d = body->find(multi ? "aggregate_delivery"
                                     : "delivery_ratio");
    if (d != nullptr && d->is_number()) delivery.add(d->as_double());
    const Json* t = body->find(multi ? "aggregate_throughput_bps"
                                     : "throughput_bps");
    if (t != nullptr && t->is_number()) throughput.add(t->as_double());

    // Total sensor energy: sum of the per-node node.energy_j series.
    const Json* stats = multi ? body->find("totals") : body;
    if (const Json* metrics = stats ? stats->find("metrics") : nullptr) {
      if (const Json* per_node = metrics->find("per_node")) {
        if (const Json* series = per_node->find("node.energy_j")) {
          double joules = 0.0;
          for (const auto& [node, value] : series->items())
            joules += value.as_double();
          energy.add(joules);
        }
      }
    }

    // Lifetime proxy (polling only): worst sensor's power draw.
    const Json* p = body->find("max_sensor_power_w");
    if (p != nullptr && p->is_number()) max_power.add(p->as_double());
  }

  Json aggregates = Json::object()
                        .set("delivery_ratio", delivery.to_json())
                        .set("throughput_bps", throughput.to_json())
                        .set("sensor_energy_j", energy.to_json());
  if (max_power.count > 0)
    aggregates.set("max_sensor_power_w", max_power.to_json());

  Json body = Json::object()
                  .set("campaign", Json(campaign_name))
                  .set("points", Json::object()
                                     .set("total", Json(total))
                                     .set("ok", Json(results.size()))
                                     .set("failed", Json(failed)))
                  .set("point_wall_ms", wall_ms_to_json(wall_ms))
                  .set("aggregates", std::move(aggregates));
  return obs::report_envelope("campaign_summary", std::move(body));
}

CampaignResult run_campaign(const Campaign& campaign,
                            const std::string& out_dir, std::size_t workers,
                            std::FILE* log, const std::atomic<bool>* stop) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);

  const std::string results_path = out_dir + "/results.jsonl";
  const std::string manifest_path = out_dir + "/manifest.jsonl";

  const std::vector<CampaignPoint> points = expand_campaign(campaign);
  CampaignResult result;
  result.total = points.size();

  // Resume: the manifest's last word per key decides.  "ok" points are
  // skipped; failed (or unrecorded) points run.
  std::vector<const CampaignPoint*> to_run;
  const auto manifest_state = read_keyed_jsonl(manifest_path);
  for (const CampaignPoint& point : points) {
    bool done = false;
    for (const auto& [key, entry] : manifest_state) {
      if (key != point.key) continue;
      const Json* status = entry.find("status");
      done = status != nullptr && status->is_string() &&
             status->as_string() == "ok";
      break;
    }
    if (done) {
      ++result.skipped;
      if (log != nullptr)
        std::fprintf(log, "campaign: skipping completed point %s\n",
                     point.key.c_str());
    } else {
      to_run.push_back(&point);
    }
  }

  std::ofstream results_out(results_path, std::ios::app);
  std::ofstream manifest_out(manifest_path, std::ios::app);
  if (!results_out.is_open() || !manifest_out.is_open())
    throw std::runtime_error("campaign: cannot open output files in " +
                             out_dir);

  std::mutex mu;
  std::size_t finished = 0;
  std::vector<std::size_t> order(to_run.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // One simulation per sweep point across the shared thread pool; each
  // point is isolated — a throwing point records a failed manifest line
  // and the rest of the batch keeps going.
  const std::vector<int> outcomes = exp::sweep<std::size_t, int>(
      order,
      [&](const std::size_t& i) -> int {
        // An interrupt (SIGINT/SIGTERM in mhp_run) stops dispatching:
        // this point is abandoned without a manifest line, so a resume
        // reruns it.  Points already past this check finish and flush.
        if (stop != nullptr && stop->load(std::memory_order_relaxed))
          return 2;
        const CampaignPoint& point = *to_run[i];
        MHP_SPAN("campaign/point");
        Json report;
        std::string error;
        bool record_perf = true;
        const auto t0 = std::chrono::steady_clock::now();
        try {
          Scenario s = parse_scenario(point.doc);
          record_perf = s.run.record_perf;
          // Per-point profiling is off: the profiler's enable/drain
          // cycle is process-global, so concurrent points would corrupt
          // each other's summaries.  Profile a single scenario instead.
          s.profile = false;
          report = run_scenario(s);
        } catch (const std::exception& e) {
          error = e.what();
          if (error.empty()) error = "unknown error";
        }
        // Zeroed with run.record_perf false so the results document
        // stays a pure function of the scenario (byte-stable goldens).
        const double wall_ms =
            record_perf
                ? std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count()
                : 0.0;

        const std::scoped_lock lock(mu);
        ++finished;
        if (error.empty()) {
          results_out << Json::object()
                             .set("key", Json(point.key))
                             .set("scenario", point.doc)
                             .set("point_wall_ms", Json(wall_ms))
                             .set("report", std::move(report))
                             .dump()
                      << '\n'
                      << std::flush;
          manifest_out << Json::object()
                              .set("key", Json(point.key))
                              .set("status", Json("ok"))
                              .dump()
                       << '\n'
                       << std::flush;
          if (log != nullptr)
            std::fprintf(log, "campaign: [%zu/%zu] ok %s\n", finished,
                         to_run.size(), point.key.c_str());
          return 0;
        }
        manifest_out << Json::object()
                            .set("key", Json(point.key))
                            .set("status", Json("failed"))
                            .set("error", Json(error))
                            .dump()
                     << '\n'
                     << std::flush;
        if (log != nullptr)
          std::fprintf(log, "campaign: [%zu/%zu] FAILED %s: %s\n", finished,
                       to_run.size(), point.key.c_str(), error.c_str());
        return 1;
      },
      workers);

  for (const int outcome : outcomes) {
    if (outcome == 0)
      ++result.ok;
    else if (outcome == 1)
      ++result.failed;
    else
      ++result.interrupted;
  }

  obs::save_json(out_dir + "/summary.json",
                 build_campaign_summary(campaign.name, out_dir,
                                        points.size()));
  return result;
}

}  // namespace mhp::scenario
