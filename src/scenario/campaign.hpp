// Campaigns: one base scenario × a parameter grid, executed as a batch
// with durable, resumable results.
//
// A campaign document names a base scenario (inline or by file path)
// and a "sweep" object mapping dotted scenario paths to value lists:
//
//   { "name": "order_sweep",
//     "base": "fig7a.json",
//     "sweep": { "protocol.oracle_order": [2, 3],
//                "deployment.n_sensors": [20, 30, 40] } }
//
// Expansion is the cross product in declaration order (last key varies
// fastest).  Every point gets a stable key string; execution appends one
// line per finished point to results.jsonl and manifest.jsonl (flushed
// under a mutex), so a killed campaign re-run skips every point the
// manifest already records.  Per-point failures are isolated: the error
// text lands in the manifest and the remaining points still run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

struct CampaignPoint {
  /// Stable identity: "path=value,path=value" in sweep declaration
  /// order.  Manifest keys match on this across runs.
  std::string key;
  /// The base scenario document with this point's overrides applied.
  obs::Json doc;
};

struct Campaign {
  std::string name;
  /// The base scenario, canonicalized (parsed and re-dumped in full
  /// form) so every sweep path resolves against the complete schema.
  obs::Json base;
  /// (dotted path, values) in declaration order.
  std::vector<std::pair<std::string, std::vector<obs::Json>>> sweep;
};

/// Parse a campaign document.  `load_file` resolves a "base" given as a
/// file path (relative to the campaign file's directory is the caller's
/// concern); an inline object base needs no loader.
Campaign parse_campaign(
    const obs::Json& doc,
    const std::function<std::string(const std::string&)>& load_file);

/// Set the value at a dotted path ("protocol.oracle_order") inside a
/// scenario document.  The full path must already exist — sweeping an
/// unknown or misspelled path is an error, not a new key.
void set_by_path(obs::Json& doc, const std::string& path, obs::Json value);

/// Cross-product expansion in declaration order (last key fastest).
/// Every point's document has been validated by parse_scenario.
std::vector<CampaignPoint> expand_campaign(const Campaign& campaign);

struct CampaignResult {
  std::size_t total = 0;        // points in the expansion
  std::size_t skipped = 0;      // already completed per the manifest
  std::size_t ok = 0;           // run and succeeded this invocation
  std::size_t failed = 0;       // run and failed this invocation
  std::size_t interrupted = 0;  // not dispatched (stop flag was raised)
};

/// Execute `campaign` into `out_dir` (created if missing) using
/// `workers` threads (0 = hardware concurrency).  Writes:
///   results.jsonl  — one envelope {"key","scenario","point_wall_ms",
///                    "report"} per ok point, appended as points finish
///                    (point_wall_ms is zeroed when run.record_perf is
///                    false, keeping the document deterministic);
///   manifest.jsonl — one {"key","status"[,"error"]} per finished point;
///   summary.json   — aggregate roll-up over every ok point on record,
///                    including a point_wall_ms latency histogram.
/// Points whose key the manifest already records as "ok" are skipped
/// (resume); failed points are retried.  `log` (nullable FILE*) receives
/// one progress line per point.  When `stop` is non-null and becomes
/// true (e.g. from a SIGINT handler), points not yet dispatched are
/// abandoned without manifest lines — in-flight points finish and flush,
/// so a later run resumes having lost nothing that completed.
CampaignResult run_campaign(const Campaign& campaign,
                            const std::string& out_dir, std::size_t workers,
                            std::FILE* log,
                            const std::atomic<bool>* stop = nullptr);

/// Last-wins key→document map from a JSONL file whose lines carry a
/// string "key".  Lines that fail to parse (the torn tail of a killed
/// run) are skipped, not fatal — the affected point simply reruns.
/// Shared by the campaign runner and the campaign service (serve layer).
std::vector<std::pair<std::string, obs::Json>> read_keyed_jsonl(
    const std::string& path);

/// Roll up every ok point recorded in `out_dir`'s results.jsonl /
/// manifest.jsonl into the standard campaign_summary envelope (delivery/
/// throughput/energy aggregates plus the point_wall_ms histogram).
/// `total` is the expansion size the points/total field reports.
obs::Json build_campaign_summary(const std::string& campaign_name,
                                 const std::string& out_dir,
                                 std::size_t total);

}  // namespace mhp::scenario
