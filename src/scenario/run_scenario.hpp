// Execute a parsed Scenario: build the deployment, construct the
// selected simulation stack, run the measurement window and return the
// standard report envelope ({"schema":1,"kind":...,"report":...}).
#pragma once

#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

/// Materialize the node placement a DeploymentSpec describes.  Random
/// kinds draw from an Rng seeded with `spec.seed + seed_offset` (the
/// offset is how multi-cluster fields vary placement per cluster).
Deployment build_deployment(const DeploymentSpec& spec,
                            std::uint64_t seed_offset = 0);

/// Run the scenario to completion.  With run.record_perf false the
/// report's host-side perf fields (wall_seconds, events_per_sec) are
/// zeroed, making the document a pure function of the scenario.
/// Simulation-level failures surface as the stacks' own exceptions
/// (ContractViolation, std::runtime_error); campaign runners catch them
/// per point.
obs::Json run_scenario(const Scenario& s);

}  // namespace mhp::scenario
