// Execute a parsed Scenario: build the deployment, construct the
// selected simulation stack, run the measurement window and return the
// standard report envelope ({"schema":1,"kind":...,"report":...}).
#pragma once

#include <iosfwd>

#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

/// Materialize the node placement a DeploymentSpec describes.  Random
/// kinds draw from an Rng seeded with `spec.seed + seed_offset` (the
/// offset is how multi-cluster fields vary placement per cluster).
Deployment build_deployment(const DeploymentSpec& spec,
                            std::uint64_t seed_offset = 0);

/// Host-side sinks for the observability artifacts a run can emit
/// beyond its report document.  Both are optional; a null sink simply
/// drops that artifact.
struct RunScenarioOptions {
  /// Chrome trace-event JSON of the profiled run (runtime.profile
  /// true); loads in Perfetto / chrome://tracing.
  std::ostream* trace_out = nullptr;
  /// Sim-time metric samples, one JSON object per line, on the
  /// runtime.sample_period cadence (when that period is non-zero).
  std::ostream* samples_out = nullptr;
};

/// Run the scenario to completion.  With run.record_perf false the
/// report's host-side perf fields (wall_seconds, events_per_sec) are
/// zeroed, making the document a pure function of the scenario.
/// With runtime.profile true the envelope gains a "profile" span
/// summary (wall times zeroed too when record_perf is false).
/// Simulation-level failures surface as the stacks' own exceptions
/// (ContractViolation, std::runtime_error); campaign runners catch them
/// per point.
obs::Json run_scenario(const Scenario& s, const RunScenarioOptions& opts = {});

}  // namespace mhp::scenario
