// Internal helper for the scenario/campaign parsers: a strict,
// path-tracking reader over one obs::Json object.
//
// Every getter records the key it consumed; finish() then rejects any
// key that was never consumed ("scenario.protocol.oracl_order: unknown
// key"), which is how the schema stays closed without maintaining a
// separate allow-list.  All errors are ScenarioError with the dotted
// path of the offending field as the message prefix.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

inline const char* json_type_name(obs::Json::Type t) {
  switch (t) {
    case obs::Json::Type::kNull:
      return "null";
    case obs::Json::Type::kBool:
      return "boolean";
    case obs::Json::Type::kInt:
      return "integer";
    case obs::Json::Type::kDouble:
      return "number";
    case obs::Json::Type::kString:
      return "string";
    case obs::Json::Type::kArray:
      return "array";
    case obs::Json::Type::kObject:
      return "object";
  }
  return "?";
}

class ObjectReader {
 public:
  /// `path` is the dotted location of `node` ("scenario.protocol").
  ObjectReader(const obs::Json& node, std::string path)
      : node_(node), path_(std::move(path)) {
    if (!node_.is_object())
      throw ScenarioError(path_ + ": expected object, got " +
                          json_type_name(node_.type()));
  }

  const std::string& path() const { return path_; }

  bool has(const std::string& key) const {
    return node_.find(key) != nullptr;
  }

  [[noreturn]] void error(const std::string& key,
                          const std::string& what) const {
    throw ScenarioError(path_ + "." + key + ": " + what);
  }

  /// Consume `key` without reading it (sections handled elsewhere).
  const obs::Json* take(const std::string& key) {
    const obs::Json* v = node_.find(key);
    if (v != nullptr) consumed_.push_back(key);
    return v;
  }

  void read_bool(const std::string& key, bool& out) {
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_bool())
      error(key, std::string("expected boolean, got ") +
                     json_type_name(v->type()));
    out = v->as_bool();
  }

  void read_double(const std::string& key, double& out) {
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_number())
      error(key, std::string("expected number, got ") +
                     json_type_name(v->type()));
    out = v->as_double();
  }

  template <typename T>
  void read_int(const std::string& key, T& out) {
    static_assert(std::is_integral_v<T>);
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_int())
      error(key, std::string("expected integer, got ") +
                     json_type_name(v->type()));
    const std::int64_t raw = v->as_int();
    if constexpr (std::is_unsigned_v<T>) {
      if (raw < 0)
        error(key, "expected a non-negative integer, got " +
                       std::to_string(raw));
      if (static_cast<std::uint64_t>(raw) >
          static_cast<std::uint64_t>(std::numeric_limits<T>::max()))
        error(key, "value " + std::to_string(raw) + " out of range");
    } else {
      if (raw < static_cast<std::int64_t>(std::numeric_limits<T>::min()) ||
          raw > static_cast<std::int64_t>(std::numeric_limits<T>::max()))
        error(key, "value " + std::to_string(raw) + " out of range");
    }
    out = static_cast<T>(raw);
  }

  void read_string(const std::string& key, std::string& out) {
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_string())
      error(key, std::string("expected string, got ") +
                     json_type_name(v->type()));
    out = v->as_string();
  }

  void read_duration(const std::string& key, Time& out) {
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_string())
      error(key, std::string("expected duration string, got ") +
                     json_type_name(v->type()));
    try {
      out = parse_duration(v->as_string());
    } catch (const ScenarioError& e) {
      error(key, e.what());
    }
  }

  /// Map a string field onto an enum through (name, value) pairs.
  template <typename E>
  void read_enum(const std::string& key, E& out,
                 std::initializer_list<std::pair<const char*, E>> names) {
    const obs::Json* v = take(key);
    if (v == nullptr) return;
    if (!v->is_string())
      error(key, std::string("expected string, got ") +
                     json_type_name(v->type()));
    const std::string& got = v->as_string();
    std::string expected;
    for (const auto& [name, value] : names) {
      if (got == name) {
        out = value;
        return;
      }
      if (!expected.empty()) expected += ", ";
      expected += std::string("\"") + name + "\"";
    }
    error(key, "expected one of " + expected + ", got \"" + got + "\"");
  }

  /// The consumed sub-object under `key`, or nullptr when absent.
  const obs::Json* child_object(const std::string& key) {
    const obs::Json* v = take(key);
    if (v == nullptr) return nullptr;
    if (!v->is_object())
      error(key, std::string("expected object, got ") +
                     json_type_name(v->type()));
    return v;
  }

  /// The consumed array under `key`, or nullptr when absent.
  const obs::Json* child_array(const std::string& key) {
    const obs::Json* v = take(key);
    if (v == nullptr) return nullptr;
    if (!v->is_array())
      error(key, std::string("expected array, got ") +
                     json_type_name(v->type()));
    return v;
  }

  /// Reject every key no getter consumed.
  void finish() const {
    for (const auto& [key, value] : node_.items()) {
      bool seen = false;
      for (const std::string& c : consumed_)
        if (c == key) {
          seen = true;
          break;
        }
      if (!seen) error(key, "unknown key");
    }
  }

 private:
  const obs::Json& node_;
  std::string path_;
  std::vector<std::string> consumed_;
};

}  // namespace mhp::scenario
