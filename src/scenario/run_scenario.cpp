#include "scenario/run_scenario.hpp"

#include <utility>
#include <vector>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"
#include "obs/report_json.hpp"
#include "util/rng.hpp"

namespace mhp::scenario {

Deployment build_deployment(const DeploymentSpec& spec,
                            std::uint64_t seed_offset) {
  using Kind = DeploymentSpec::Kind;
  switch (spec.kind) {
    case Kind::kConnectedUniformSquare: {
      Rng rng(spec.seed + seed_offset);
      return deploy_connected_uniform_square(spec.n_sensors, spec.side,
                                             spec.sensor_range, rng);
    }
    case Kind::kUniformSquare: {
      Rng rng(spec.seed + seed_offset);
      return deploy_uniform_square(spec.n_sensors, spec.side, rng);
    }
    case Kind::kGrid:
      return deploy_grid(spec.n_sensors, spec.side);
    case Kind::kRings:
      return deploy_rings(spec.rings, spec.per_ring, spec.spacing);
    case Kind::kExplicit: {
      Deployment d;
      d.positions = spec.sensors;
      d.positions.push_back(spec.head);
      return d;
    }
  }
  throw ScenarioError("scenario.deployment.kind: unhandled kind");
}

namespace {

RuntimeOptions runtime_options(const Scenario& s) {
  RuntimeOptions rt;
  rt.trace_max_entries = s.trace_max_entries;
  rt.route_workers = s.route_workers;
  return rt;
}

/// Strip the non-deterministic host-side perf figures (the same fields
/// the golden tests zero) so the report depends only on the scenario.
void strip_perf(RunStats& stats) {
  stats.wall_seconds = 0.0;
  stats.events_per_sec = 0.0;
}

obs::Json run_polling(const Scenario& s) {
  const Deployment dep = build_deployment(s.deployment);
  PollingSimulation sim(dep, s.protocol,
                        s.traffic.rates_bps.empty()
                            ? std::vector<double>(s.deployment.sensor_count(),
                                                  s.traffic.rate_bps)
                            : s.traffic.rates_bps,
                        runtime_options(s));
  SimulationReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report);
  return obs::to_json(report);
}

obs::Json run_multi_cluster(const Scenario& s) {
  std::vector<ClusterSpec> clusters;
  clusters.reserve(s.clusters.grid_x * s.clusters.grid_y);
  for (std::size_t gy = 0; gy < s.clusters.grid_y; ++gy) {
    for (std::size_t gx = 0; gx < s.clusters.grid_x; ++gx) {
      const std::size_t index = gy * s.clusters.grid_x + gx;
      ClusterSpec spec;
      spec.deployment = build_deployment(s.deployment, index);
      spec.origin = Vec2{static_cast<double>(gx) * s.clusters.pitch,
                         static_cast<double>(gy) * s.clusters.pitch};
      clusters.push_back(std::move(spec));
    }
  }
  MultiClusterSimulation sim(std::move(clusters), s.protocol, s.clusters.mode,
                             s.traffic.rate_bps,
                             s.clusters.interference_range,
                             runtime_options(s));
  MultiClusterReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report.totals);
  return obs::to_json(report);
}

obs::Json run_smac(const Scenario& s) {
  const Deployment dep = build_deployment(s.deployment);
  SmacSimulation sim(dep, s.smac,
                     s.traffic.rates_bps.empty()
                         ? std::vector<double>(s.deployment.sensor_count(),
                                               s.traffic.rate_bps)
                         : s.traffic.rates_bps,
                     runtime_options(s));
  SmacReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report);
  return obs::to_json(report);
}

}  // namespace

obs::Json run_scenario(const Scenario& s) {
  switch (s.stack) {
    case StackKind::kPolling:
      return run_polling(s);
    case StackKind::kMultiCluster:
      return run_multi_cluster(s);
    case StackKind::kSmac:
      return run_smac(s);
  }
  throw ScenarioError("scenario.stack: unhandled stack");
}

}  // namespace mhp::scenario
