#include "scenario/run_scenario.hpp"

#include <ostream>
#include <utility>
#include <vector>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"
#include "obs/profiler.hpp"
#include "obs/report_json.hpp"
#include "util/rng.hpp"

namespace mhp::scenario {

Deployment build_deployment(const DeploymentSpec& spec,
                            std::uint64_t seed_offset) {
  using Kind = DeploymentSpec::Kind;
  switch (spec.kind) {
    case Kind::kConnectedUniformSquare: {
      Rng rng(spec.seed + seed_offset);
      return deploy_connected_uniform_square(spec.n_sensors, spec.side,
                                             spec.sensor_range, rng);
    }
    case Kind::kUniformSquare: {
      Rng rng(spec.seed + seed_offset);
      return deploy_uniform_square(spec.n_sensors, spec.side, rng);
    }
    case Kind::kGrid:
      return deploy_grid(spec.n_sensors, spec.side);
    case Kind::kRings:
      return deploy_rings(spec.rings, spec.per_ring, spec.spacing);
    case Kind::kExplicit: {
      Deployment d;
      d.positions = spec.sensors;
      d.positions.push_back(spec.head);
      return d;
    }
  }
  throw ScenarioError("scenario.deployment.kind: unhandled kind");
}

namespace {

RuntimeOptions runtime_options(const Scenario& s,
                               const RunScenarioOptions& opts) {
  RuntimeOptions rt;
  rt.trace_max_entries = s.trace_max_entries;
  rt.route_workers = s.route_workers;
  if (opts.samples_out != nullptr && s.sample_period > Time::zero()) {
    rt.samples_stream = opts.samples_out;
    rt.sample_period = s.sample_period;
  }
  return rt;
}

/// Strip the non-deterministic host-side perf figures (the same fields
/// the golden tests zero) so the report depends only on the scenario.
void strip_perf(RunStats& stats) {
  stats.wall_seconds = 0.0;
  stats.events_per_sec = 0.0;
}

obs::Json run_polling(const Scenario& s, const RunScenarioOptions& opts) {
  const Deployment dep = build_deployment(s.deployment);
  PollingSimulation sim(dep, s.protocol,
                        s.traffic.rates_bps.empty()
                            ? std::vector<double>(s.deployment.sensor_count(),
                                                  s.traffic.rate_bps)
                            : s.traffic.rates_bps,
                        runtime_options(s, opts));
  SimulationReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report);
  return obs::to_json(report);
}

obs::Json run_multi_cluster(const Scenario& s, const RunScenarioOptions& opts) {
  std::vector<ClusterSpec> clusters;
  clusters.reserve(s.clusters.grid_x * s.clusters.grid_y);
  for (std::size_t gy = 0; gy < s.clusters.grid_y; ++gy) {
    for (std::size_t gx = 0; gx < s.clusters.grid_x; ++gx) {
      const std::size_t index = gy * s.clusters.grid_x + gx;
      ClusterSpec spec;
      spec.deployment = build_deployment(s.deployment, index);
      spec.origin = Vec2{static_cast<double>(gx) * s.clusters.pitch,
                         static_cast<double>(gy) * s.clusters.pitch};
      clusters.push_back(std::move(spec));
    }
  }
  MultiClusterSimulation sim(std::move(clusters), s.protocol, s.clusters.mode,
                             s.traffic.rate_bps,
                             s.clusters.interference_range,
                             runtime_options(s, opts));
  MultiClusterReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report.totals);
  return obs::to_json(report);
}

obs::Json run_smac(const Scenario& s, const RunScenarioOptions& opts) {
  const Deployment dep = build_deployment(s.deployment);
  SmacSimulation sim(dep, s.smac,
                     s.traffic.rates_bps.empty()
                         ? std::vector<double>(s.deployment.sensor_count(),
                                               s.traffic.rate_bps)
                         : s.traffic.rates_bps,
                     runtime_options(s, opts));
  SmacReport report = sim.run(s.run.duration, s.run.warmup);
  if (!s.run.record_perf) strip_perf(report);
  return obs::to_json(report);
}

obs::Json run_stack(const Scenario& s, const RunScenarioOptions& opts) {
  switch (s.stack) {
    case StackKind::kPolling:
      return run_polling(s, opts);
    case StackKind::kMultiCluster:
      return run_multi_cluster(s, opts);
    case StackKind::kSmac:
      return run_smac(s, opts);
  }
  throw ScenarioError("scenario.stack: unhandled stack");
}

}  // namespace

obs::Json run_scenario(const Scenario& s, const RunScenarioOptions& opts) {
  if (!s.profile) return run_stack(s, opts);

  // Discard anything recorded before this run so the summary covers
  // exactly this scenario, even when several runs share the process.
  obs::Profiler& prof = obs::Profiler::instance();
  prof.drain();
  prof.enable();
  obs::Json envelope;
  try {
    envelope = run_stack(s, opts);
  } catch (...) {
    prof.disable();
    prof.drain();
    throw;
  }
  prof.disable();
  const obs::ProfileData data = prof.drain();
  envelope.set("profile", obs::to_json(
                              summarize_profile(data, !s.run.record_perf)));
  if (opts.trace_out != nullptr)
    *opts.trace_out << obs::chrome_trace_json(data).dump() << "\n";
  return envelope;
}

}  // namespace mhp::scenario
