// Declarative scenarios: a JSON document that fully describes one
// simulation run — deployment, stack, protocol/S-MAC overrides, fault
// plan, run window and runtime knobs — so experiments are launched from
// files instead of recompiled C++ (ns-3 style).
//
// The schema is strict both ways:
//  * parse_scenario rejects unknown keys and wrong types with
//    path-qualified messages ("scenario.protocol.oracle_order: expected
//    integer, got string"), so a typo can never silently fall back to a
//    default;
//  * scenario_to_json emits every field of every relevant section in a
//    fixed canonical order, so `--dump-defaults | parse | dump` is
//    byte-identical and a dumped scenario is a complete, self-describing
//    record of the run.
//
// Time fields are strings ("20us", "1s", "1.5ms"); see parse_duration.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/smac_config.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/protocol_config.hpp"
#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "sim/trace.hpp"
#include "util/geometry.hpp"

namespace mhp::scenario {

/// Any schema violation: unknown key, wrong type, bad duration, value
/// out of range, section not valid for the selected stack.  The message
/// always starts with the dotted path of the offending field.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which simulation facade the scenario drives.
enum class StackKind { kPolling, kMultiCluster, kSmac };

const char* to_string(StackKind stack);

/// Node placement.  Which keys are valid depends on `kind`; the parser
/// rejects keys that do not apply (e.g. `spacing` outside "rings").
struct DeploymentSpec {
  enum class Kind {
    kConnectedUniformSquare,  // redraw until every sensor has a relay path
    kUniformSquare,
    kGrid,
    kRings,
    kExplicit,  // positions listed in the file
  };
  Kind kind = Kind::kConnectedUniformSquare;
  std::size_t n_sensors = 30;
  double side = 200.0;         // square kinds
  double sensor_range = 60.0;  // connectivity check (connected kind only)
  std::uint64_t seed = 1;      // random kinds
  std::size_t rings = 3;       // rings kind
  std::size_t per_ring = 8;
  double spacing = 40.0;
  std::vector<Vec2> sensors;  // explicit kind: [x, y] pairs
  Vec2 head{0.0, 0.0};

  /// Sensor count implied by the spec, whatever the kind.
  std::size_t sensor_count() const {
    switch (kind) {
      case Kind::kRings:
        return rings * per_ring;
      case Kind::kExplicit:
        return sensors.size();
      default:
        return n_sensors;
    }
  }
};

const char* to_string(DeploymentSpec::Kind kind);

/// Offered load: one uniform per-sensor rate, or an explicit per-sensor
/// list (mutually exclusive keys).
struct TrafficSpec {
  double rate_bps = 20.0;
  std::vector<double> rates_bps;  // non-empty → overrides rate_bps
};

/// The measurement window.
struct RunSpec {
  Time duration = Time::sec(40);
  Time warmup = Time::sec(10);
  /// When false, the report's host-side perf numbers (wall_seconds,
  /// events_per_sec) are zeroed so the document is fully deterministic —
  /// the same scenario always produces byte-identical output.
  bool record_perf = true;
};

/// Field layout for the multi_cluster stack: a grid_x × grid_y grid of
/// clusters, each deployed from the shared DeploymentSpec with seed
/// `deployment.seed + cluster_index`.
struct ClusterFieldSpec {
  std::size_t grid_x = 2;
  std::size_t grid_y = 2;
  double pitch = 220.0;
  InterClusterMode mode = InterClusterMode::kColored;
  double interference_range = 400.0;
};

struct Scenario {
  std::string name;
  StackKind stack = StackKind::kPolling;
  DeploymentSpec deployment;
  TrafficSpec traffic;
  RunSpec run;
  /// "runtime" section (SimRuntime substrate knobs expressible in JSON).
  std::size_t trace_max_entries = Trace::kDefaultMaxEntries;
  /// Worker threads for routing solves (0 = all cores): per-cluster
  /// fan-out on the multi_cluster stack, speculative parallel δ-probes
  /// inside the single-cluster solve on the polling stack.  Reports are
  /// byte-identical for any value.
  std::size_t route_workers = 1;
  /// Record hierarchical profiler spans for this run; the report
  /// envelope gains a "profile" summary and run_scenario's trace sink
  /// (mhp_run --profile-out) receives Chrome trace-event JSON.  With
  /// run.record_perf false the summary's wall times are zeroed (span
  /// counts and counters kept) so the document stays deterministic.
  bool profile = false;
  /// Sim-time metrics sampling cadence; zero = sampling off.  Takes
  /// effect only when a samples sink is provided (mhp_run
  /// --samples-out).  The sampler's recurring event makes
  /// events_processed differ from an unsampled run.
  Time sample_period = Time::zero();
  /// polling / multi_cluster stacks; carries the fault plan and recovery
  /// config parsed from the top-level "faults" / "recovery" sections.
  ProtocolConfig protocol;
  /// smac stack; carries the fault plan from the "faults" section.
  SmacConfig smac;
  /// multi_cluster stack only.
  ClusterFieldSpec clusters;
};

/// The fully-defaulted scenario for `stack` (`mhp_run --dump-defaults`).
Scenario default_scenario(StackKind stack);

/// Strict parse + validation of a scenario document.  Throws
/// ScenarioError with a path-qualified message on any violation.
Scenario parse_scenario(const obs::Json& doc);

/// Convenience: parse the JSON text first (JsonParseError carries
/// line:column), then the scenario.
Scenario parse_scenario_text(std::string_view text);

/// Canonical serialization: every field of every section relevant to the
/// scenario's stack, fixed order.  parse(scenario_to_json(s)) == s and
/// the dump of a parsed dump is byte-identical.
obs::Json scenario_to_json(const Scenario& s);

/// Parse a duration string: a non-negative number followed immediately
/// by one of ns/us/ms/s ("20us", "1s", "1.5ms").  Throws ScenarioError
/// (message not path-qualified; callers prefix their path).
Time parse_duration(std::string_view text);

/// Canonical duration format: integer count in the largest unit that
/// divides the value exactly ("1s", "1500us"), so re-parsing is exact.
std::string format_duration(Time t);

}  // namespace mhp::scenario
