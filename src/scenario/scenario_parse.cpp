// parse_scenario: strict JSON → Scenario with path-qualified errors.
//
// Every section is read through an ObjectReader, so an unknown or
// misspelled key anywhere in the document is an error naming the exact
// path — never a silently ignored field.  Semantic checks (ranges,
// cross-field consistency, per-stack section validity) run after the
// structural read so their messages carry the same path discipline.
#include <string>

#include "scenario/json_cursor.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

const char* to_string(StackKind stack) {
  switch (stack) {
    case StackKind::kPolling:
      return "polling";
    case StackKind::kMultiCluster:
      return "multi_cluster";
    case StackKind::kSmac:
      return "smac";
  }
  return "?";
}

const char* to_string(DeploymentSpec::Kind kind) {
  switch (kind) {
    case DeploymentSpec::Kind::kConnectedUniformSquare:
      return "connected_uniform_square";
    case DeploymentSpec::Kind::kUniformSquare:
      return "uniform_square";
    case DeploymentSpec::Kind::kGrid:
      return "grid";
    case DeploymentSpec::Kind::kRings:
      return "rings";
    case DeploymentSpec::Kind::kExplicit:
      return "explicit";
  }
  return "?";
}

Scenario default_scenario(StackKind stack) {
  Scenario s;
  s.stack = stack;
  s.name = std::string("default_") + to_string(stack);
  return s;
}

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw ScenarioError(path + ": " + why);
}

void check_positive(double v, const std::string& path) {
  if (!(v > 0.0)) fail(path, "must be positive");
}

void check_fraction(double v, const std::string& path) {
  if (!(v >= 0.0 && v <= 1.0)) fail(path, "must be in [0, 1]");
}

void parse_radio(const obs::Json& node, const std::string& path,
                 RadioParams& out) {
  ObjectReader r(node, path);
  r.read_double("bandwidth_bps", out.bandwidth_bps);
  r.read_double("noise_w", out.noise_w);
  r.read_double("sinr_threshold", out.sinr_threshold);
  r.read_double("sensitivity_w", out.sensitivity_w);
  r.read_double("cs_threshold_w", out.cs_threshold_w);
  r.finish();
  check_positive(out.bandwidth_bps, path + ".bandwidth_bps");
}

void parse_energy(const obs::Json& node, const std::string& path,
                  EnergyModel& out) {
  ObjectReader r(node, path);
  r.read_double("tx_w", out.tx_w);
  r.read_double("rx_w", out.rx_w);
  r.read_double("idle_w", out.idle_w);
  r.read_double("sleep_w", out.sleep_w);
  r.finish();
}

Vec2 parse_point(const obs::Json& node, const std::string& path) {
  if (!node.is_array() || node.size() != 2 || !node.at(0).is_number() ||
      !node.at(1).is_number())
    fail(path, "expected an [x, y] pair of numbers");
  return Vec2{node.at(0).as_double(), node.at(1).as_double()};
}

void parse_deployment(const obs::Json& node, const std::string& path,
                      DeploymentSpec& out) {
  ObjectReader r(node, path);
  r.read_enum(
      "kind", out.kind,
      {{"connected_uniform_square",
        DeploymentSpec::Kind::kConnectedUniformSquare},
       {"uniform_square", DeploymentSpec::Kind::kUniformSquare},
       {"grid", DeploymentSpec::Kind::kGrid},
       {"rings", DeploymentSpec::Kind::kRings},
       {"explicit", DeploymentSpec::Kind::kExplicit}});

  // Which keys apply depends on the kind; anything else is rejected by
  // finish() below, so a "spacing" on a square deployment cannot be
  // silently ignored.
  using Kind = DeploymentSpec::Kind;
  const bool square = out.kind == Kind::kConnectedUniformSquare ||
                      out.kind == Kind::kUniformSquare ||
                      out.kind == Kind::kGrid;
  if (square) {
    r.read_int("n_sensors", out.n_sensors);
    r.read_double("side", out.side);
  }
  if (out.kind == Kind::kConnectedUniformSquare)
    r.read_double("sensor_range", out.sensor_range);
  if (out.kind == Kind::kConnectedUniformSquare ||
      out.kind == Kind::kUniformSquare)
    r.read_int("seed", out.seed);
  if (out.kind == Kind::kRings) {
    r.read_int("rings", out.rings);
    r.read_int("per_ring", out.per_ring);
    r.read_double("spacing", out.spacing);
  }
  if (out.kind == Kind::kExplicit) {
    if (const obs::Json* arr = r.child_array("sensors")) {
      out.sensors.clear();
      for (std::size_t i = 0; i < arr->size(); ++i)
        out.sensors.push_back(parse_point(
            arr->at(i), path + ".sensors[" + std::to_string(i) + "]"));
    }
    if (const obs::Json* head = r.take("head"))
      out.head = parse_point(*head, path + ".head");
  }
  r.finish();

  if (square && out.n_sensors == 0) fail(path + ".n_sensors", "must be >= 1");
  if (square) check_positive(out.side, path + ".side");
  if (out.kind == Kind::kConnectedUniformSquare)
    check_positive(out.sensor_range, path + ".sensor_range");
  if (out.kind == Kind::kRings) {
    if (out.rings == 0) fail(path + ".rings", "must be >= 1");
    if (out.per_ring == 0) fail(path + ".per_ring", "must be >= 1");
    check_positive(out.spacing, path + ".spacing");
  }
  if (out.kind == Kind::kExplicit && out.sensors.empty())
    fail(path + ".sensors", "explicit deployment needs at least one sensor");
}

void parse_traffic(const obs::Json& node, const std::string& path,
                   TrafficSpec& out) {
  ObjectReader r(node, path);
  const bool has_uniform = r.has("rate_bps");
  const bool has_list = r.has("rates_bps");
  if (has_uniform && has_list)
    fail(path, "rate_bps and rates_bps are mutually exclusive");
  r.read_double("rate_bps", out.rate_bps);
  if (const obs::Json* arr = r.child_array("rates_bps")) {
    out.rates_bps.clear();
    for (std::size_t i = 0; i < arr->size(); ++i) {
      const std::string at = path + ".rates_bps[" + std::to_string(i) + "]";
      if (!arr->at(i).is_number())
        fail(at, std::string("expected number, got ") +
                     json_type_name(arr->at(i).type()));
      out.rates_bps.push_back(arr->at(i).as_double());
      if (out.rates_bps.back() < 0.0) fail(at, "must be >= 0");
    }
  }
  r.finish();
  if (out.rate_bps < 0.0) fail(path + ".rate_bps", "must be >= 0");
}

void parse_run(const obs::Json& node, const std::string& path, RunSpec& out) {
  ObjectReader r(node, path);
  r.read_duration("duration", out.duration);
  r.read_duration("warmup", out.warmup);
  r.read_bool("record_perf", out.record_perf);
  r.finish();
  if (out.duration <= Time::zero()) fail(path + ".duration", "must be > 0");
  if (out.warmup >= out.duration)
    fail(path + ".warmup", "must be shorter than duration");
}

void parse_runtime(const obs::Json& node, const std::string& path,
                   Scenario& out) {
  ObjectReader r(node, path);
  r.read_int("trace_max_entries", out.trace_max_entries);
  r.read_int("route_workers", out.route_workers);
  r.read_bool("profile", out.profile);
  r.read_duration("sample_period", out.sample_period);
  r.finish();
  if (out.trace_max_entries == 0)
    fail(path + ".trace_max_entries", "must be >= 1");
}

void parse_protocol(const obs::Json& node, const std::string& path,
                    ProtocolConfig& out) {
  ObjectReader r(node, path);
  r.read_duration("cycle_period", out.cycle_period);
  r.read_int("data_bytes", out.data_bytes);
  r.read_int("control_bytes", out.control_bytes);
  r.read_int("ack_bytes", out.ack_bytes);
  r.read_duration("turnaround", out.turnaround);
  r.read_duration("slot_guard", out.slot_guard);
  r.read_duration("wake_margin", out.wake_margin);
  r.read_duration("wake_jitter", out.wake_jitter);
  r.read_int("oracle_order", out.oracle_order);
  r.read_bool("cache_oracle", out.cache_oracle);
  r.read_enum("routing", out.routing,
              {{"balanced_max_flow", RoutingPolicy::kBalancedMaxFlow},
               {"shortest_path", RoutingPolicy::kShortestPath}});
  r.read_bool("use_sectors", out.use_sectors);
  r.read_bool("rotate_paths", out.rotate_paths);
  r.read_int("queue_capacity", out.queue_capacity);
  r.read_int("max_packets_per_cycle", out.max_packets_per_cycle);
  r.read_int("max_retries", out.max_retries);
  r.read_duration("max_drain_window", out.max_drain_window);
  r.read_double("random_loss", out.random_loss);
  r.read_int("seed", out.seed);
  r.read_enum("propagation", out.propagation,
              {{"two_ray_ground", PropagationModel::kTwoRayGround},
               {"free_space", PropagationModel::kFreeSpace},
               {"log_normal_shadowing", PropagationModel::kLogNormalShadowing}});
  r.read_double("shadowing_sigma_db", out.shadowing_sigma_db);
  r.read_double("shadowing_exponent", out.shadowing_exponent);
  r.read_int("environment_seed", out.environment_seed);
  if (const obs::Json* radio = r.child_object("radio"))
    parse_radio(*radio, path + ".radio", out.radio);
  if (const obs::Json* e = r.child_object("sensor_energy"))
    parse_energy(*e, path + ".sensor_energy", out.sensor_energy);
  if (const obs::Json* e = r.child_object("head_energy"))
    parse_energy(*e, path + ".head_energy", out.head_energy);
  r.finish();

  if (out.data_bytes == 0) fail(path + ".data_bytes", "must be >= 1");
  if (out.oracle_order < 1) fail(path + ".oracle_order", "must be >= 1");
  if (out.queue_capacity == 0) fail(path + ".queue_capacity", "must be >= 1");
  check_fraction(out.random_loss, path + ".random_loss");
  if (out.cycle_period <= Time::zero())
    fail(path + ".cycle_period", "must be > 0");
}

void parse_recovery(const obs::Json& node, const std::string& path,
                    FaultRecoveryConfig& out) {
  ObjectReader r(node, path);
  r.read_bool("enabled", out.enabled);
  r.read_int("suspect_polls", out.suspect_polls);
  r.read_int("backoff_slots", out.backoff_slots);
  r.read_int("max_backoff_slots", out.max_backoff_slots);
  r.read_int("max_replans", out.max_replans);
  r.finish();
  if (out.suspect_polls == 0) fail(path + ".suspect_polls", "must be >= 1");
}

void parse_smac(const obs::Json& node, const std::string& path,
                SmacConfig& out) {
  ObjectReader r(node, path);
  r.read_duration("frame_period", out.frame_period);
  r.read_double("duty_cycle", out.duty_cycle);
  r.read_int("schedule_groups", out.schedule_groups);
  r.read_int("sync_every_frames", out.sync_every_frames);
  r.read_int("sync_bytes", out.sync_bytes);
  r.read_duration("difs", out.difs);
  r.read_duration("sifs", out.sifs);
  r.read_duration("backoff_slot", out.backoff_slot);
  r.read_int("contention_window", out.contention_window);
  r.read_int("cw_max", out.cw_max);
  r.read_int("retry_limit", out.retry_limit);
  r.read_int("rts_bytes", out.rts_bytes);
  r.read_int("cts_bytes", out.cts_bytes);
  r.read_int("ack_bytes", out.ack_bytes);
  r.read_int("data_bytes", out.data_bytes);
  r.read_duration("route_lifetime", out.route_lifetime);
  r.read_duration("rreq_retry_interval", out.rreq_retry_interval);
  r.read_int("rreq_retries", out.rreq_retries);
  r.read_int("rreq_bytes", out.rreq_bytes);
  r.read_int("rrep_bytes", out.rrep_bytes);
  r.read_duration("rreq_jitter", out.rreq_jitter);
  r.read_int("queue_capacity", out.queue_capacity);
  r.read_int("seed", out.seed);
  if (const obs::Json* radio = r.child_object("radio"))
    parse_radio(*radio, path + ".radio", out.radio);
  if (const obs::Json* e = r.child_object("energy"))
    parse_energy(*e, path + ".energy", out.energy);
  r.finish();

  if (!(out.duty_cycle > 0.0 && out.duty_cycle <= 1.0))
    fail(path + ".duty_cycle", "must be in (0, 1]");
  if (out.schedule_groups == 0)
    fail(path + ".schedule_groups", "must be >= 1");
  if (out.data_bytes == 0) fail(path + ".data_bytes", "must be >= 1");
  if (out.queue_capacity == 0) fail(path + ".queue_capacity", "must be >= 1");
  if (out.contention_window == 0)
    fail(path + ".contention_window", "must be >= 1");
  if (out.cw_max < out.contention_window)
    fail(path + ".cw_max", "must be >= contention_window");
  if (out.frame_period <= Time::zero())
    fail(path + ".frame_period", "must be > 0");
}

void parse_clusters(const obs::Json& node, const std::string& path,
                    ClusterFieldSpec& out) {
  ObjectReader r(node, path);
  r.read_int("grid_x", out.grid_x);
  r.read_int("grid_y", out.grid_y);
  r.read_double("pitch", out.pitch);
  r.read_enum("mode", out.mode,
              {{"shared", InterClusterMode::kShared},
               {"colored", InterClusterMode::kColored},
               {"token", InterClusterMode::kToken}});
  r.read_double("interference_range", out.interference_range);
  r.finish();
  if (out.grid_x == 0) fail(path + ".grid_x", "must be >= 1");
  if (out.grid_y == 0) fail(path + ".grid_y", "must be >= 1");
  check_positive(out.pitch, path + ".pitch");
  check_positive(out.interference_range, path + ".interference_range");
}

/// `num_sensors` is the count faultable node ids must stay below
/// (field-wide for multi_cluster; heads/sink cannot be faulted).
void parse_faults(const obs::Json& node, const std::string& path,
                  StackKind stack, std::size_t num_sensors, FaultPlan& out) {
  ObjectReader r(node, path);
  const auto check_node = [&](const obs::Json& v, const std::string& at) {
    if (!v.is_int())
      fail(at, std::string("expected integer, got ") +
                   json_type_name(v.type()));
    const std::int64_t id = v.as_int();
    if (id < 0 || static_cast<std::size_t>(id) >= num_sensors)
      fail(at, "sensor id " + std::to_string(id) + " out of range (" +
               std::to_string(num_sensors) + " sensors)");
    return static_cast<NodeId>(id);
  };

  if (const obs::Json* deaths = r.child_array("deaths")) {
    for (std::size_t i = 0; i < deaths->size(); ++i) {
      const std::string at = path + ".deaths[" + std::to_string(i) + "]";
      ObjectReader d(deaths->at(i), at);
      const obs::Json* node_id = d.take("node");
      if (node_id == nullptr) fail(at, "missing \"node\"");
      const NodeId id = check_node(*node_id, at + ".node");
      const bool scripted = d.has("at");
      const bool battery = d.has("battery_j");
      if (scripted == battery)
        fail(at, "expected exactly one of \"at\" (scripted death) or "
                 "\"battery_j\" (battery exhaustion)");
      if (scripted) {
        Time when = Time::zero();
        d.read_duration("at", when);
        out.kill_at(id, when);
      } else {
        double joules = 0.0;
        d.read_double("battery_j", joules);
        if (!(joules > 0.0)) fail(at + ".battery_j", "must be positive");
        out.kill_on_battery(id, joules);
      }
      d.finish();
    }
  }

  if (const obs::Json* links = r.child_array("degrade_links")) {
    if (links->size() > 0 && stack == StackKind::kSmac)
      fail(path + ".degrade_links",
           "not supported by the smac stack (AODV re-discovery is its only "
           "recovery; see SmacConfig::faults)");
    for (std::size_t i = 0; i < links->size(); ++i) {
      const std::string at = path + ".degrade_links[" + std::to_string(i) + "]";
      ObjectReader l(links->at(i), at);
      const obs::Json* a = l.take("a");
      const obs::Json* b = l.take("b");
      if (a == nullptr || b == nullptr) fail(at, "missing \"a\" or \"b\"");
      const NodeId na = check_node(*a, at + ".a");
      const NodeId nb = check_node(*b, at + ".b");
      Time begin = Time::zero(), end = Time::zero();
      double loss = 1.0;
      l.read_duration("begin", begin);
      l.read_duration("end", end);
      l.read_double("loss", loss);
      l.finish();
      if (end <= begin) fail(at + ".end", "must be after begin");
      check_fraction(loss, at + ".loss");
      out.degrade_link(na, nb, begin, end, loss);
    }
  }
  r.finish();
}

}  // namespace

Scenario parse_scenario(const obs::Json& doc) {
  ObjectReader r(doc, "scenario");
  Scenario s;
  r.read_string("name", s.name);
  r.read_enum("stack", s.stack,
              {{"polling", StackKind::kPolling},
               {"multi_cluster", StackKind::kMultiCluster},
               {"smac", StackKind::kSmac}});

  if (const obs::Json* d = r.child_object("deployment"))
    parse_deployment(*d, "scenario.deployment", s.deployment);
  if (const obs::Json* t = r.child_object("traffic"))
    parse_traffic(*t, "scenario.traffic", s.traffic);
  if (const obs::Json* run = r.child_object("run"))
    parse_run(*run, "scenario.run", s.run);
  if (const obs::Json* rt = r.child_object("runtime"))
    parse_runtime(*rt, "scenario.runtime", s);

  const bool polling_family = s.stack != StackKind::kSmac;
  const auto gate = [&](const char* key, bool valid) {
    if (r.has(key) && !valid)
      r.error(key, std::string("section not valid for the \"") +
                       to_string(s.stack) + "\" stack");
  };
  gate("protocol", polling_family);
  gate("recovery", polling_family);
  gate("clusters", s.stack == StackKind::kMultiCluster);
  gate("smac", s.stack == StackKind::kSmac);

  if (const obs::Json* p = r.child_object("protocol"))
    parse_protocol(*p, "scenario.protocol", s.protocol);
  if (const obs::Json* rec = r.child_object("recovery"))
    parse_recovery(*rec, "scenario.recovery", s.protocol.recovery);
  if (const obs::Json* c = r.child_object("clusters"))
    parse_clusters(*c, "scenario.clusters", s.clusters);
  if (const obs::Json* m = r.child_object("smac"))
    parse_smac(*m, "scenario.smac", s.smac);

  std::size_t faultable = s.deployment.sensor_count();
  if (s.stack == StackKind::kMultiCluster)
    faultable *= s.clusters.grid_x * s.clusters.grid_y;
  if (const obs::Json* f = r.child_object("faults")) {
    FaultPlan& plan =
        s.stack == StackKind::kSmac ? s.smac.faults : s.protocol.faults;
    parse_faults(*f, "scenario.faults", s.stack, faultable, plan);
  }
  r.finish();

  // Cross-section checks that need the deployment and stack together.
  if (!s.traffic.rates_bps.empty()) {
    if (s.stack == StackKind::kMultiCluster)
      fail("scenario.traffic.rates_bps",
           "not supported by the multi_cluster stack (clusters share one "
           "uniform rate)");
    if (s.traffic.rates_bps.size() != s.deployment.sensor_count())
      fail("scenario.traffic.rates_bps",
           "expected " + std::to_string(s.deployment.sensor_count()) +
               " entries (one per sensor), got " +
               std::to_string(s.traffic.rates_bps.size()));
  }
  return s;
}

Scenario parse_scenario_text(std::string_view text) {
  return parse_scenario(obs::parse_json(text));
}

}  // namespace mhp::scenario
