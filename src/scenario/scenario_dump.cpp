// scenario_to_json: the canonical, complete serialization.
//
// Every field of every section relevant to the scenario's stack is
// emitted in a fixed order, so a dump is a full record of the run and
// dump(parse(dump(s))) is byte-identical to dump(s).  Keys that are
// invalid for the deployment kind or stack are omitted entirely —
// emitting them would make the dump un-parseable under the strict
// schema.
#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace mhp::scenario {

namespace {

using obs::Json;

Json dump_point(Vec2 p) {
  Json arr = Json::array();
  arr.push_back(Json(p.x));
  arr.push_back(Json(p.y));
  return arr;
}

Json dump_radio(const RadioParams& r) {
  return Json::object()
      .set("bandwidth_bps", Json(r.bandwidth_bps))
      .set("noise_w", Json(r.noise_w))
      .set("sinr_threshold", Json(r.sinr_threshold))
      .set("sensitivity_w", Json(r.sensitivity_w))
      .set("cs_threshold_w", Json(r.cs_threshold_w));
}

Json dump_energy(const EnergyModel& e) {
  return Json::object()
      .set("tx_w", Json(e.tx_w))
      .set("rx_w", Json(e.rx_w))
      .set("idle_w", Json(e.idle_w))
      .set("sleep_w", Json(e.sleep_w));
}

Json dump_deployment(const DeploymentSpec& d) {
  using Kind = DeploymentSpec::Kind;
  Json out = Json::object();
  out.set("kind", Json(to_string(d.kind)));
  const bool square = d.kind == Kind::kConnectedUniformSquare ||
                      d.kind == Kind::kUniformSquare ||
                      d.kind == Kind::kGrid;
  if (square) {
    out.set("n_sensors", Json(d.n_sensors));
    out.set("side", Json(d.side));
  }
  if (d.kind == Kind::kConnectedUniformSquare)
    out.set("sensor_range", Json(d.sensor_range));
  if (d.kind == Kind::kConnectedUniformSquare ||
      d.kind == Kind::kUniformSquare)
    out.set("seed", Json(d.seed));
  if (d.kind == Kind::kRings) {
    out.set("rings", Json(d.rings));
    out.set("per_ring", Json(d.per_ring));
    out.set("spacing", Json(d.spacing));
  }
  if (d.kind == Kind::kExplicit) {
    Json sensors = Json::array();
    for (const Vec2& p : d.sensors) sensors.push_back(dump_point(p));
    out.set("sensors", std::move(sensors));
    out.set("head", dump_point(d.head));
  }
  return out;
}

Json dump_traffic(const TrafficSpec& t) {
  Json out = Json::object();
  if (t.rates_bps.empty()) {
    out.set("rate_bps", Json(t.rate_bps));
  } else {
    Json rates = Json::array();
    for (const double r : t.rates_bps) rates.push_back(Json(r));
    out.set("rates_bps", std::move(rates));
  }
  return out;
}

Json dump_run(const RunSpec& r) {
  return Json::object()
      .set("duration", Json(format_duration(r.duration)))
      .set("warmup", Json(format_duration(r.warmup)))
      .set("record_perf", Json(r.record_perf));
}

Json dump_protocol(const ProtocolConfig& p) {
  return Json::object()
      .set("cycle_period", Json(format_duration(p.cycle_period)))
      .set("data_bytes", Json(p.data_bytes))
      .set("control_bytes", Json(p.control_bytes))
      .set("ack_bytes", Json(p.ack_bytes))
      .set("turnaround", Json(format_duration(p.turnaround)))
      .set("slot_guard", Json(format_duration(p.slot_guard)))
      .set("wake_margin", Json(format_duration(p.wake_margin)))
      .set("wake_jitter", Json(format_duration(p.wake_jitter)))
      .set("oracle_order", Json(p.oracle_order))
      .set("cache_oracle", Json(p.cache_oracle))
      .set("routing", Json(p.routing == RoutingPolicy::kBalancedMaxFlow
                               ? "balanced_max_flow"
                               : "shortest_path"))
      .set("use_sectors", Json(p.use_sectors))
      .set("rotate_paths", Json(p.rotate_paths))
      .set("queue_capacity", Json(p.queue_capacity))
      .set("max_packets_per_cycle", Json(p.max_packets_per_cycle))
      .set("max_retries", Json(p.max_retries))
      .set("max_drain_window", Json(format_duration(p.max_drain_window)))
      .set("random_loss", Json(p.random_loss))
      .set("seed", Json(p.seed))
      .set("propagation",
           Json(p.propagation == PropagationModel::kTwoRayGround
                    ? "two_ray_ground"
                    : (p.propagation == PropagationModel::kFreeSpace
                           ? "free_space"
                           : "log_normal_shadowing")))
      .set("shadowing_sigma_db", Json(p.shadowing_sigma_db))
      .set("shadowing_exponent", Json(p.shadowing_exponent))
      .set("environment_seed", Json(p.environment_seed))
      .set("radio", dump_radio(p.radio))
      .set("sensor_energy", dump_energy(p.sensor_energy))
      .set("head_energy", dump_energy(p.head_energy));
}

Json dump_recovery(const FaultRecoveryConfig& r) {
  return Json::object()
      .set("enabled", Json(r.enabled))
      .set("suspect_polls", Json(r.suspect_polls))
      .set("backoff_slots", Json(r.backoff_slots))
      .set("max_backoff_slots", Json(r.max_backoff_slots))
      .set("max_replans", Json(r.max_replans));
}

Json dump_smac(const SmacConfig& s) {
  return Json::object()
      .set("frame_period", Json(format_duration(s.frame_period)))
      .set("duty_cycle", Json(s.duty_cycle))
      .set("schedule_groups", Json(s.schedule_groups))
      .set("sync_every_frames", Json(s.sync_every_frames))
      .set("sync_bytes", Json(s.sync_bytes))
      .set("difs", Json(format_duration(s.difs)))
      .set("sifs", Json(format_duration(s.sifs)))
      .set("backoff_slot", Json(format_duration(s.backoff_slot)))
      .set("contention_window", Json(s.contention_window))
      .set("cw_max", Json(s.cw_max))
      .set("retry_limit", Json(s.retry_limit))
      .set("rts_bytes", Json(s.rts_bytes))
      .set("cts_bytes", Json(s.cts_bytes))
      .set("ack_bytes", Json(s.ack_bytes))
      .set("data_bytes", Json(s.data_bytes))
      .set("route_lifetime", Json(format_duration(s.route_lifetime)))
      .set("rreq_retry_interval",
           Json(format_duration(s.rreq_retry_interval)))
      .set("rreq_retries", Json(s.rreq_retries))
      .set("rreq_bytes", Json(s.rreq_bytes))
      .set("rrep_bytes", Json(s.rrep_bytes))
      .set("rreq_jitter", Json(format_duration(s.rreq_jitter)))
      .set("queue_capacity", Json(s.queue_capacity))
      .set("seed", Json(s.seed))
      .set("radio", dump_radio(s.radio))
      .set("energy", dump_energy(s.energy));
}

Json dump_clusters(const ClusterFieldSpec& c) {
  return Json::object()
      .set("grid_x", Json(c.grid_x))
      .set("grid_y", Json(c.grid_y))
      .set("pitch", Json(c.pitch))
      .set("mode", Json(to_string(c.mode)))
      .set("interference_range", Json(c.interference_range));
}

Json dump_faults(const FaultPlan& plan) {
  Json deaths = Json::array();
  for (const NodeDeath& d : plan.deaths()) {
    Json entry = Json::object();
    entry.set("node", Json(static_cast<std::int64_t>(d.node)));
    if (d.cause == NodeDeath::Cause::kScripted)
      entry.set("at", Json(format_duration(d.at)));
    else
      entry.set("battery_j", Json(d.battery_j));
    deaths.push_back(std::move(entry));
  }
  Json links = Json::array();
  for (const LinkDegradation& l : plan.degradations()) {
    links.push_back(Json::object()
                        .set("a", Json(static_cast<std::int64_t>(l.a)))
                        .set("b", Json(static_cast<std::int64_t>(l.b)))
                        .set("begin", Json(format_duration(l.begin)))
                        .set("end", Json(format_duration(l.end)))
                        .set("loss", Json(l.loss)));
  }
  return Json::object()
      .set("deaths", std::move(deaths))
      .set("degrade_links", std::move(links));
}

}  // namespace

obs::Json scenario_to_json(const Scenario& s) {
  Json doc = Json::object();
  doc.set("name", Json(s.name));
  doc.set("stack", Json(to_string(s.stack)));
  doc.set("deployment", dump_deployment(s.deployment));
  doc.set("traffic", dump_traffic(s.traffic));
  doc.set("run", dump_run(s.run));
  doc.set("runtime",
          Json::object()
              .set("trace_max_entries", Json(s.trace_max_entries))
              .set("route_workers", Json(s.route_workers))
              .set("profile", Json(s.profile))
              .set("sample_period", Json(format_duration(s.sample_period))));
  if (s.stack != StackKind::kSmac) {
    doc.set("protocol", dump_protocol(s.protocol));
    doc.set("recovery", dump_recovery(s.protocol.recovery));
  }
  if (s.stack == StackKind::kMultiCluster)
    doc.set("clusters", dump_clusters(s.clusters));
  if (s.stack == StackKind::kSmac) doc.set("smac", dump_smac(s.smac));
  doc.set("faults", dump_faults(s.stack == StackKind::kSmac
                                    ? s.smac.faults
                                    : s.protocol.faults));
  return doc;
}

}  // namespace mhp::scenario
