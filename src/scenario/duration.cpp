// Duration strings: the scenario schema writes Time fields as "20us" /
// "1s" / "1.5ms" instead of raw nanosecond integers.  Parsing is exact
// (digit arithmetic, no floating point), so any value format_duration
// can emit re-parses to the identical Time.
#include <cctype>
#include <cstdint>
#include <string>

#include "scenario/scenario.hpp"
#include "util/assertx.hpp"

namespace mhp::scenario {

namespace {

[[noreturn]] void bad(std::string_view text, const std::string& why) {
  throw ScenarioError("bad duration \"" + std::string(text) + "\": " + why);
}

}  // namespace

Time parse_duration(std::string_view text) {
  if (text.empty()) bad(text, "empty string");
  std::size_t pos = 0;

  // Integer part.
  if (pos >= text.size() ||
      !std::isdigit(static_cast<unsigned char>(text[pos])))
    bad(text, "expected digits then one of ns/us/ms/s");
  std::int64_t whole = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    const int digit = text[pos] - '0';
    if (whole > (INT64_MAX - digit) / 10) bad(text, "value too large");
    whole = whole * 10 + digit;
    ++pos;
  }

  // Optional fraction.
  std::int64_t frac = 0;       // fraction digits as an integer
  std::int64_t frac_den = 1;   // 10^(number of fraction digits)
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos])))
      bad(text, "expected digits after '.'");
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (frac_den > INT64_MAX / 10) bad(text, "too many fraction digits");
      frac = frac * 10 + (text[pos] - '0');
      frac_den *= 10;
      ++pos;
    }
  }

  // Unit suffix (must end the string).
  const std::string_view unit = text.substr(pos);
  std::int64_t ns_per_unit = 0;
  if (unit == "ns")
    ns_per_unit = 1;
  else if (unit == "us")
    ns_per_unit = 1'000;
  else if (unit == "ms")
    ns_per_unit = 1'000'000;
  else if (unit == "s")
    ns_per_unit = 1'000'000'000;
  else
    bad(text, unit.empty() ? "missing unit (ns/us/ms/s)"
                           : "unknown unit \"" + std::string(unit) + "\"");

  if (whole > INT64_MAX / ns_per_unit) bad(text, "value too large");
  std::int64_t total = whole * ns_per_unit;

  // frac/frac_den units → frac * (ns_per_unit / frac_den) ns, exactly.
  // Reduce *before* multiplying: frac * ns_per_unit overflows 64 bits for
  // long fractions (e.g. "0.999999999999999999s" ≈ 1e18 · 1e9).  After
  // stripping trailing zeros, frac < frac_den ≤ ns_per_unit ≤ 1e9, so
  // frac_ns < ns_per_unit and nothing below can overflow.
  if (frac != 0) {
    while (frac % 10 == 0) {
      frac /= 10;
      frac_den /= 10;
    }
    if (frac_den > ns_per_unit) bad(text, "not a whole number of nanoseconds");
    const std::int64_t frac_ns = frac * (ns_per_unit / frac_den);
    if (total > INT64_MAX - frac_ns) bad(text, "value too large");
    total += frac_ns;
  }
  return Time::ns(total);
}

std::string format_duration(Time t) {
  // Durations are unsigned in the scenario schema (parse_duration accepts
  // no sign), so formatting a negative Time would break the documented
  // dump→parse round-trip — reject it here instead of emitting "-5ms".
  MHP_REQUIRE(t >= Time::zero(), "cannot format a negative duration");
  const std::int64_t ns = t.nanos();
  if (ns == 0) return "0s";
  if (ns % 1'000'000'000 == 0)
    return std::to_string(ns / 1'000'000'000) + "s";
  if (ns % 1'000'000 == 0) return std::to_string(ns / 1'000'000) + "ms";
  if (ns % 1'000 == 0) return std::to_string(ns / 1'000) + "us";
  return std::to_string(ns) + "ns";
}

}  // namespace mhp::scenario
