// Sensor/cluster lifetime estimation.
//
// §III-E models a sensor's power consumption rate as α·(transmission load)
// + β·(polling time); measured simulations integrate the radio energy
// meters instead.  Cluster lifetime uses the first-death criterion: the
// battery of the worst-drained sensor bounds the network's useful life.
#pragma once

#include <span>
#include <vector>

namespace mhp {

struct BatteryModel {
  /// Energy budget in joules.  Default ≈ one CR2477 coin cell.
  double capacity_j = 2400.0;
};

/// Time (seconds) until the first sensor dies, given per-sensor average
/// power draws in watts.
double lifetime_first_death_s(std::span<const double> sensor_power_w,
                              const BatteryModel& battery = {});

/// Time until half the sensors have died (median-death criterion).
double lifetime_median_death_s(std::span<const double> sensor_power_w,
                               const BatteryModel& battery = {});

/// The paper's analytic power consumption rate: α·load + β·polling_time.
double analytic_power_rate(double alpha, double beta, double load,
                           double polling_time);

}  // namespace mhp
