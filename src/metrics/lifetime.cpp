#include "metrics/lifetime.hpp"

#include <algorithm>

#include "util/assertx.hpp"

namespace mhp {

double lifetime_first_death_s(std::span<const double> sensor_power_w,
                              const BatteryModel& battery) {
  MHP_REQUIRE(!sensor_power_w.empty(), "no sensors");
  const double worst =
      *std::max_element(sensor_power_w.begin(), sensor_power_w.end());
  MHP_REQUIRE(worst > 0.0, "non-positive power draw");
  return battery.capacity_j / worst;
}

double lifetime_median_death_s(std::span<const double> sensor_power_w,
                               const BatteryModel& battery) {
  MHP_REQUIRE(!sensor_power_w.empty(), "no sensors");
  std::vector<double> sorted(sensor_power_w.begin(), sensor_power_w.end());
  std::sort(sorted.begin(), sorted.end());
  // The (n/2)-th highest draw dies at the median time.
  const double p = sorted[sorted.size() / 2];
  MHP_REQUIRE(p > 0.0, "non-positive power draw");
  return battery.capacity_j / p;
}

double analytic_power_rate(double alpha, double beta, double load,
                           double polling_time) {
  return alpha * load + beta * polling_time;
}

}  // namespace mhp
