#include "metrics/registry.hpp"

#include <charconv>
#include <ostream>

namespace mhp {

void Gauge::set(Time now, double value) {
  if (ever_set_) {
    integral_ += value_ * (now - last_set_).to_seconds();
  } else {
    window_start_ = now;
    ever_set_ = true;
  }
  value_ = value;
  last_set_ = now;
}

double Gauge::mean(Time now) const {
  if (!ever_set_) return 0.0;
  const double width = (now - window_start_).to_seconds();
  if (width <= 0.0) return value_;
  const double tail = value_ * (now - last_set_).to_seconds();
  return (integral_ + tail) / width;
}

void Gauge::restart(Time now) {
  integral_ = 0.0;
  window_start_ = now;
  last_set_ = now;
}

std::string node_metric(std::string_view base, std::uint64_t node) {
  std::string out;
  out.reserve(base.size() + 16);
  out.append(base);
  out.append("{node=");
  out.append(std::to_string(node));
  out.push_back('}');
  return out;
}

namespace {

/// Matches "base{node=N}" and extracts N; nullopt-style via bool return.
bool parse_node_label(const std::string& name, std::string_view base,
                      std::uint64_t& node) {
  if (name.size() <= base.size() || name.compare(0, base.size(), base) != 0)
    return false;
  std::string_view rest(name.c_str() + base.size(),
                        name.size() - base.size());
  constexpr std::string_view kPrefix = "{node=";
  if (rest.size() < kPrefix.size() + 2 ||
      rest.substr(0, kPrefix.size()) != kPrefix || rest.back() != '}')
    return false;
  const char* first = rest.data() + kPrefix.size();
  const char* last = rest.data() + rest.size() - 1;
  const auto [ptr, ec] = std::from_chars(first, last, node);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge_last(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.last;
}

double MetricsSnapshot::gauge_mean(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.mean;
}

MetricsSnapshot::HistogramValue MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? HistogramValue{} : it->second;
}

std::map<std::uint64_t, std::uint64_t> MetricsSnapshot::labeled_counters(
    std::string_view base) const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const auto& [name, value] : counters) {
    std::uint64_t node = 0;
    if (parse_node_label(name, base, node)) out[node] = value;
  }
  return out;
}

std::map<std::uint64_t, double> MetricsSnapshot::labeled_gauges(
    std::string_view base) const {
  std::map<std::uint64_t, double> out;
  for (const auto& [name, value] : gauges) {
    std::uint64_t node = 0;
    if (parse_node_label(name, base, node)) out[node] = value.last;
  }
  return out;
}

void MetricsSnapshot::print(std::ostream& os) const {
  for (const auto& [name, value] : counters)
    os << name << " = " << value << "\n";
  for (const auto& [name, g] : gauges)
    os << name << " = " << g.last << " (mean " << g.mean << ")\n";
  for (const auto& [name, h] : histograms)
    os << name << " = n " << h.count << " mean " << h.mean << " p50 "
       << h.p50 << " p95 " << h.p95 << " p99 " << h.p99 << "\n";
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double lo, double hi,
                                            std::size_t bins) {
  return histograms_.try_emplace(name, lo, hi, bins).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::begin_window(Time now) {
  // Reset in place: erasing nodes would dangle Counter&/HistogramMetric&
  // references agents cached before the warmup ended.
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.restart(now);
  for (auto& [name, h] : histograms_) h.reset();
}

MetricsSnapshot MetricsRegistry::snapshot(Time now) const {
  MetricsSnapshot snap;
  snap.at = now;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_)
    snap.gauges[name] = {g.last(), g.mean(now)};
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = {h.count(),        h.mean(),
                             h.min(),          h.max(),
                             h.quantile(0.5),  h.quantile(0.95),
                             h.quantile(0.99), h.dropped()};
  return snap;
}

}  // namespace mhp
