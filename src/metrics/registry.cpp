#include "metrics/registry.hpp"

#include <ostream>

namespace mhp {

void Gauge::set(Time now, double value) {
  if (ever_set_) {
    integral_ += value_ * (now - last_set_).to_seconds();
  } else {
    window_start_ = now;
    ever_set_ = true;
  }
  value_ = value;
  last_set_ = now;
}

double Gauge::mean(Time now) const {
  if (!ever_set_) return 0.0;
  const double width = (now - window_start_).to_seconds();
  if (width <= 0.0) return value_;
  const double tail = value_ * (now - last_set_).to_seconds();
  return (integral_ + tail) / width;
}

void Gauge::restart(Time now) {
  integral_ = 0.0;
  window_start_ = now;
  last_set_ = now;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge_last(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.last;
}

double MetricsSnapshot::gauge_mean(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.mean;
}

void MetricsSnapshot::print(std::ostream& os) const {
  for (const auto& [name, value] : counters)
    os << name << " = " << value << "\n";
  for (const auto& [name, g] : gauges)
    os << name << " = " << g.last << " (mean " << g.mean << ")\n";
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

void MetricsRegistry::begin_window(Time now) {
  counters_.clear();
  for (auto& [name, g] : gauges_) g.restart(now);
}

MetricsSnapshot MetricsRegistry::snapshot(Time now) const {
  MetricsSnapshot snap;
  snap.at = now;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_)
    snap.gauges[name] = {g.last(), g.mean(now)};
  return snap;
}

}  // namespace mhp
