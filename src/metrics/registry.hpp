// Named runtime metrics shared by every simulation stack.
//
// A MetricsRegistry holds monotonic counters (event totals: packets
// generated, frames transmitted, ...), time-weighted gauges (sampled
// values whose average must weight each sample by how long it was
// current: queue depth, mean active fraction, ...) and sampled
// distributions (fixed-bin histograms with exact moments: per-packet
// latency, instantaneous queue depth, ...).  Simulations write into the
// registry while they run; reports embed a MetricsSnapshot so downstream
// tooling sees one uniform name→value view regardless of which stack
// produced it.  Lookups use std::map so snapshots iterate in a
// deterministic order.
//
// Per-node series use labeled names: node_metric("node.energy_j", 7)
// yields "node.energy_j{node=7}", and MetricsSnapshot::labeled_* collect
// every node's value of one base name back into an id→value map.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mhp {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Time-weighted gauge: set() stamps a new value at a simulation time;
/// mean() weights each value by how long it stayed current.
class Gauge {
 public:
  void set(Time now, double value);

  double last() const { return value_; }

  /// Time-weighted mean over [window start, now].  Equals last() when the
  /// window has zero width (a single end-of-run summary sample).
  double mean(Time now) const;

  /// Start a new averaging window at `now`, keeping the current value.
  void restart(Time now);

  bool ever_set() const { return ever_set_; }

 private:
  bool ever_set_ = false;
  double value_ = 0.0;
  double integral_ = 0.0;  // ∫ value dt over the current window, in seconds
  Time window_start_ = Time::zero();
  Time last_set_ = Time::zero();
};

/// Sampled distribution: a fixed-bin Histogram (for quantiles) plus a
/// Welford Accumulator (for exact count/mean/min/max).  Out-of-range
/// samples clamp to the edge bins, so counts are always preserved.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}

  void observe(double x) {
    hist_.add(x);
    // NaN would poison the Welford moments; the histogram tallies it in
    // dropped() and the accumulator never sees it.
    if (!std::isnan(x)) acc_.add(x);
  }

  std::uint64_t count() const { return acc_.count(); }
  /// NaN observations rejected (see Histogram::dropped).
  std::uint64_t dropped() const { return hist_.dropped(); }
  double mean() const { return acc_.empty() ? 0.0 : acc_.mean(); }
  double min() const { return acc_.empty() ? 0.0 : acc_.min(); }
  double max() const { return acc_.empty() ? 0.0 : acc_.max(); }
  /// Approximate quantile from bin midpoints; 0 when empty.
  double quantile(double q) const {
    return acc_.empty() ? 0.0 : hist_.quantile(q);
  }

  const Histogram& bins() const { return hist_; }

  /// Forget all samples, keeping the bin shape (begin_window support).
  void reset() {
    hist_.clear();
    acc_ = Accumulator{};
  }

 private:
  Histogram hist_;
  Accumulator acc_;
};

/// Labeled per-node metric name: "base{node=7}".  The convention every
/// stack uses for per-sensor series (energy, relayed packets, awake time).
std::string node_metric(std::string_view base, std::uint64_t node);

/// Point-in-time copy of a registry, embeddable in reports.
struct MetricsSnapshot {
  struct GaugeValue {
    double last = 0.0;
    double mean = 0.0;
  };

  struct HistogramValue {
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// NaN observations rejected by the histogram (0 in healthy runs;
    /// exporters only emit it when non-zero).
    std::uint64_t dropped = 0;
  };

  Time at = Time::zero();
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;

  bool has_counter(const std::string& name) const {
    return counters.count(name) != 0;
  }
  /// 0 for absent names (absent and never-incremented are equivalent).
  std::uint64_t counter(const std::string& name) const;
  double gauge_last(const std::string& name) const;
  double gauge_mean(const std::string& name) const;
  /// Zero-filled for absent names.
  HistogramValue histogram(const std::string& name) const;

  /// Per-node series of one base name: every "base{node=N}" counter
  /// (resp. gauge last value), keyed by node id.
  std::map<std::uint64_t, std::uint64_t> labeled_counters(
      std::string_view base) const;
  std::map<std::uint64_t, double> labeled_gauges(std::string_view base) const;

  void print(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name.  References stay valid for the registry's
  /// lifetime (std::map nodes do not move, and begin_window resets
  /// metrics in place rather than erasing them).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Find-or-create; lo/hi/bins shape the histogram on first use only.
  HistogramMetric& histogram(const std::string& name, double lo = 0.0,
                             double hi = 1.0, std::size_t bins = 32);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const HistogramMetric* find_histogram(const std::string& name) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_gauges() const { return gauges_.size(); }
  std::size_t num_histograms() const { return histograms_.size(); }

  /// Zero every counter, restart every gauge window at `now` and forget
  /// every histogram's samples: the registry then covers the measurement
  /// window only (simulations call this when their warmup ends).  Metrics
  /// are reset in place — references handed out earlier stay valid.
  void begin_window(Time now);

  MetricsSnapshot snapshot(Time now) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace mhp
