// Named runtime metrics shared by every simulation stack.
//
// A MetricsRegistry holds monotonic counters (event totals: packets
// generated, frames transmitted, ...) and time-weighted gauges (sampled
// values whose average must weight each sample by how long it was
// current: queue depth, mean active fraction, ...).  Simulations write
// into the registry while they run; reports embed a MetricsSnapshot so
// downstream tooling sees one uniform name→value view regardless of
// which stack produced it.  Lookups use std::map so snapshots iterate
// in a deterministic order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/time.hpp"

namespace mhp {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Time-weighted gauge: set() stamps a new value at a simulation time;
/// mean() weights each value by how long it stayed current.
class Gauge {
 public:
  void set(Time now, double value);

  double last() const { return value_; }

  /// Time-weighted mean over [window start, now].  Equals last() when the
  /// window has zero width (a single end-of-run summary sample).
  double mean(Time now) const;

  /// Start a new averaging window at `now`, keeping the current value.
  void restart(Time now);

  bool ever_set() const { return ever_set_; }

 private:
  bool ever_set_ = false;
  double value_ = 0.0;
  double integral_ = 0.0;  // ∫ value dt over the current window, in seconds
  Time window_start_ = Time::zero();
  Time last_set_ = Time::zero();
};

/// Point-in-time copy of a registry, embeddable in reports.
struct MetricsSnapshot {
  struct GaugeValue {
    double last = 0.0;
    double mean = 0.0;
  };

  Time at = Time::zero();
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;

  bool has_counter(const std::string& name) const {
    return counters.count(name) != 0;
  }
  /// 0 for absent names (absent and never-incremented are equivalent).
  std::uint64_t counter(const std::string& name) const;
  double gauge_last(const std::string& name) const;
  double gauge_mean(const std::string& name) const;

  void print(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name.  References stay valid for the registry's
  /// lifetime (std::map nodes do not move).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_gauges() const { return gauges_.size(); }

  /// Zero every counter and restart every gauge window at `now`: the
  /// registry then covers the measurement window only (simulations call
  /// this when their warmup ends).
  void begin_window(Time now);

  MetricsSnapshot snapshot(Time now) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace mhp
