// JSON bench reports: every figure/ablation harness writes a
// BENCH_<name>.json beside its CSV so tooling can diff sweeps without
// scraping ASCII.  Layout:
//   {"schema":1,"bench":<name>,
//    "run":{"wall_seconds":..,"events_processed":..,"events_per_sec":..},
//    "points":[{<header>:<cell>, ...}, ...]}
// Cells keep their Table type: strings stay strings, integers integers.
#pragma once

#include <cstdio>
#include <string>
#include <variant>

#include "obs/json.hpp"
#include "obs/report_json.hpp"
#include "obs/run_recorder.hpp"
#include "util/table.hpp"

namespace mhp::exp {

inline obs::Json bench_json(const std::string& bench, const Table& table,
                            const obs::RunRecorder& recorder) {
  obs::Json points = obs::Json::array();
  for (std::size_t r = 0; r < table.rows(); ++r) {
    obs::Json row = obs::Json::object();
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const Cell& cell = table.at(r, c);
      obs::Json value;
      if (const auto* s = std::get_if<std::string>(&cell))
        value = obs::Json(*s);
      else if (const auto* i = std::get_if<long long>(&cell))
        value = obs::Json(*i);
      else
        value = obs::Json(std::get<double>(cell));
      row.set(table.headers().at(c), std::move(value));
    }
    points.push_back(std::move(row));
  }
  return obs::Json::object()
      .set("schema", obs::Json(obs::kReportSchemaVersion))
      .set("bench", obs::Json(bench))
      .set("run", recorder.to_json())
      .set("points", std::move(points));
}

/// Write BENCH_<bench>.json (or to `path` when given).  Best-effort like
/// save_csv: a one-line note either way, false on failure.
inline bool save_bench_json(const std::string& bench, const Table& table,
                            const obs::RunRecorder& recorder,
                            std::string path = {}) {
  if (path.empty()) path = "BENCH_" + bench + ".json";
  const bool ok = obs::save_json(path, bench_json(bench, table, recorder));
  if (ok) std::printf("(bench report saved to %s)\n", path.c_str());
  return ok;
}

}  // namespace mhp::exp
