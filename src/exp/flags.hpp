// Tiny shared command-line parsing for the bench/example/tool mains.
//
// Before this helper every binary hand-rolled its strcmp loop and
// silently ignored anything it did not recognise (`--smok` ran the full
// sweep instead of smoke).  Flags is deliberately strict: an unknown
// flag, a missing value or an unexpected positional prints usage on
// stderr and exits 2; `--help` prints the same usage on stdout and
// exits 0.  Mains declare what they accept and read the results back —
// no globals, no registration magic.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace mhp::exp {

class Flags {
 public:
  /// `synopsis` is the one-line description printed at the top of usage.
  explicit Flags(std::string synopsis) : synopsis_(std::move(synopsis)) {}

  /// Declare a boolean flag (present or not), e.g. "--smoke".
  Flags& flag(std::string name, std::string help) {
    specs_.push_back({std::move(name), "", std::move(help), false});
    return *this;
  }

  /// Declare a valued flag, e.g. "--baseline PATH".  Accepts both
  /// `--name value` and `--name=value`.
  Flags& option(std::string name, std::string value_name, std::string help) {
    specs_.push_back(
        {std::move(name), std::move(value_name), std::move(help), true});
    return *this;
  }

  /// Accept between `min_count` and `max_count` positional arguments
  /// (default: none).  `name` appears in the usage line.
  Flags& positional(std::string name, std::size_t min_count,
                    std::size_t max_count) {
    positional_name_ = std::move(name);
    positional_min_ = min_count;
    positional_max_ = max_count;
    return *this;
  }

  /// Parse argv.  Exits the process on --help (0) or any error (2).
  void parse(int argc, char** argv) {
    program_ = argc > 0 ? basename_of(argv[0]) : "program";
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        std::exit(0);
      }
      if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
        const std::size_t eq = arg.find('=');
        const std::string name(eq == std::string_view::npos
                                   ? arg
                                   : arg.substr(0, eq));
        const Spec* spec = find_spec(name);
        if (spec == nullptr) {
          fail("unknown flag '" + std::string(arg) + "'");
        }
        if (!spec->takes_value) {
          if (eq != std::string_view::npos)
            fail("flag '" + name + "' takes no value");
          set_value(name, "");
          continue;
        }
        if (eq != std::string_view::npos) {
          set_value(name, std::string(arg.substr(eq + 1)));
        } else if (i + 1 < argc) {
          set_value(name, argv[++i]);
        } else {
          fail("flag '" + name + "' expects a value");
        }
        continue;
      }
      args_.push_back(std::string(arg));
    }
    if (args_.size() < positional_min_)
      fail("expected at least " + std::to_string(positional_min_) + " " +
           positional_name_ + " argument(s)");
    if (args_.size() > positional_max_)
      fail(positional_max_ == 0
               ? "unexpected argument '" + args_.front() + "'"
               : "too many " + positional_name_ + " arguments");
  }

  bool has(const std::string& name) const {
    for (const auto& [k, v] : values_)
      if (k == name) return true;
    return false;
  }

  /// The value of a valued flag, or `fallback` when it was not given.
  std::string value(const std::string& name,
                    std::string fallback = {}) const {
    for (const auto& [k, v] : values_)
      if (k == name) return v;
    return fallback;
  }

  /// The value of a valued flag parsed as a non-negative integer, or
  /// `fallback` when it was not given.  Anything but plain decimal digits
  /// (or a value that overflows std::size_t) prints usage and exits 2,
  /// like every other flag error — no std::stoul exceptions escape.
  std::size_t count_value(const std::string& name,
                          std::size_t fallback) const {
    if (!has(name)) return fallback;
    const std::string v = value(name);
    if (v.empty())
      fail("flag '" + name + "' expects a non-negative integer");
    std::size_t out = 0;
    for (const char c : v) {
      if (c < '0' || c > '9')
        fail("flag '" + name + "' expects a non-negative integer, got '" +
             v + "'");
      const auto digit = static_cast<std::size_t>(c - '0');
      if (out > (SIZE_MAX - digit) / 10)
        fail("flag '" + name + "' value '" + v + "' is too large");
      out = out * 10 + digit;
    }
    return out;
  }

  /// Positional arguments, in order.
  const std::vector<std::string>& args() const { return args_; }

 private:
  struct Spec {
    std::string name;
    std::string value_name;
    std::string help;
    bool takes_value;
  };

  static std::string basename_of(std::string_view path) {
    const std::size_t slash = path.find_last_of('/');
    return std::string(slash == std::string_view::npos
                           ? path
                           : path.substr(slash + 1));
  }

  const Spec* find_spec(const std::string& name) const {
    for (const Spec& s : specs_)
      if (s.name == name) return &s;
    return nullptr;
  }

  void set_value(std::string name, std::string value) {
    values_.emplace_back(std::move(name), std::move(value));
  }

  void usage(std::FILE* to) const {
    std::fprintf(to, "%s — %s\n\nusage: %s", program_.c_str(),
                 synopsis_.c_str(), program_.c_str());
    for (const Spec& s : specs_) {
      if (s.takes_value)
        std::fprintf(to, " [%s %s]", s.name.c_str(), s.value_name.c_str());
      else
        std::fprintf(to, " [%s]", s.name.c_str());
    }
    if (positional_max_ > 0)
      std::fprintf(to, " <%s>%s", positional_name_.c_str(),
                   positional_max_ > 1 ? "..." : "");
    std::fprintf(to, "\n");
    if (!specs_.empty()) {
      std::fprintf(to, "\nflags:\n");
      for (const Spec& s : specs_) {
        const std::string left =
            s.takes_value ? s.name + " " + s.value_name : s.name;
        std::fprintf(to, "  %-24s %s\n", left.c_str(), s.help.c_str());
      }
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    std::fprintf(stderr, "%s: %s\n\n", program_.c_str(), why.c_str());
    usage(stderr);
    std::exit(2);
  }

  std::string synopsis_;
  std::string program_ = "program";
  std::vector<Spec> specs_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> args_;
  std::string positional_name_ = "arg";
  std::size_t positional_min_ = 0;
  std::size_t positional_max_ = 0;
};

}  // namespace mhp::exp
