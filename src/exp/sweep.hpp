// Parameter-sweep harness shared by the benchmark binaries: run one
// function per sweep point across a thread pool, collecting results in
// point order so tables are deterministic regardless of scheduling.
#pragma once

#include <functional>
#include <vector>

#include "obs/profiler.hpp"
#include "sim/runtime.hpp"
#include "util/thread_pool.hpp"

namespace mhp::exp {

template <typename Point, typename Result>
std::vector<Result> sweep(const std::vector<Point>& points,
                          const std::function<Result(const Point&)>& fn,
                          std::size_t workers = 0) {
  std::vector<Result> results(points.size());
  ThreadPool pool(workers);
  pool.parallel_for(points.size(), [&](std::size_t i) {
    MHP_SPAN("sweep/point");
    results[i] = fn(points[i]);
  });
  return results;
}

/// Sweep knobs: worker count plus the RuntimeOptions threaded through to
/// every simulation a point constructs, so the whole sweep runs on
/// identically-configured SimRuntimes (bounded traces, optional log
/// streams) without each bench re-plumbing them.
struct SweepOptions {
  std::size_t workers = 0;  // 0 = hardware concurrency
  RuntimeOptions runtime;
};

template <typename Point, typename Result>
std::vector<Result> sweep(
    const std::vector<Point>& points,
    const std::function<Result(const Point&, const RuntimeOptions&)>& fn,
    const SweepOptions& opts) {
  std::vector<Result> results(points.size());
  ThreadPool pool(opts.workers);
  pool.parallel_for(points.size(), [&](std::size_t i) {
    MHP_SPAN("sweep/point");
    results[i] = fn(points[i], opts.runtime);
  });
  return results;
}

}  // namespace mhp::exp
