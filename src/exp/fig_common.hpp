// Shared set-up for the figure-reproduction benches: the paper's §VI
// evaluation scenario (uniform square deployment, head at the centre,
// 200 kbps radio, 80-byte packets) with deterministic per-point seeds.
#pragma once

#include <cstdint>

#include "core/polling_simulation.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp::exp {

/// The evaluation square and radio range used throughout §VI.
inline constexpr double kSquareSide = 200.0;
inline constexpr double kSensorRange = 60.0;

/// Deterministic deployment for a sweep point.
inline Deployment eval_deployment(std::size_t sensors, std::uint64_t seed) {
  Rng rng(0x5ecu * 1000003u + seed);
  return deploy_connected_uniform_square(sensors, kSquareSide, kSensorRange,
                                         rng);
}

inline ProtocolConfig eval_protocol_config(std::uint64_t seed,
                                           bool use_sectors = false) {
  ProtocolConfig cfg;
  cfg.cycle_period = Time::ms(1000);
  cfg.oracle_order = 3;
  cfg.use_sectors = use_sectors;
  cfg.seed = seed;
  return cfg;
}

/// Runtime substrate config for bench sweeps: benches never inspect the
/// trace, so a small ring keeps thousands of points memory-flat.
inline RuntimeOptions eval_runtime_options() {
  RuntimeOptions opts;
  opts.trace_max_entries = 4096;
  return opts;
}

}  // namespace mhp::exp
