// Save a bench table as CSV next to the ASCII output, for plotting.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "util/table.hpp"

namespace mhp::exp {

/// Write `table` to `path` (CSV).  Best-effort: prints a note on success
/// and stays silent on failure (benches must run in read-only sandboxes).
inline void save_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) return;
  out << table.to_csv();
  if (out.good()) std::printf("(series saved to %s)\n", path.c_str());
}

}  // namespace mhp::exp
