// Save a bench table as CSV next to the ASCII output, for plotting.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "util/table.hpp"

namespace mhp::exp {

/// Write `table` to `path` (CSV).  Best-effort — benches may run in
/// read-only sandboxes — but failures are reported: one note either way.
/// Returns false when the file could not be (fully) written.
inline bool save_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (out) out << table.to_csv();
  if (!out.good()) {
    std::printf("note: failed to write CSV to %s\n", path.c_str());
    return false;
  }
  std::printf("(series saved to %s)\n", path.c_str());
  return true;
}

}  // namespace mhp::exp
