// Radio propagation models.
//
// TwoRayGround is the NS-2 default the paper's evaluation used; the
// log-distance + static log-normal shadowing model produces the "arbitrary,
// possibly non-convex covering areas" of §III-B (every node pair draws a
// fixed shadowing offset, so coverage is stable but not a disc).
#pragma once

#include <cstdint>
#include <memory>

#include "util/geometry.hpp"

namespace mhp {

class Propagation {
 public:
  virtual ~Propagation() = default;

  /// Received signal power (watts) at `to` for a transmission of
  /// `tx_power_w` watts from `from`.
  virtual double rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const = 0;
};

/// Friis free-space model: Pr = Pt·Gt·Gr·λ² / ((4π)²·d²·L).
class FreeSpace : public Propagation {
 public:
  /// Defaults follow NS-2: 914 MHz carrier, unity gains, no system loss.
  explicit FreeSpace(double freq_hz = 914e6, double gt = 1.0, double gr = 1.0,
                     double system_loss = 1.0);

  double rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const override;

  double wavelength_m() const { return lambda_; }

 private:
  double lambda_;
  double gt_, gr_, loss_;
};

/// Two-ray ground reflection: Friis inside the crossover distance
/// dc = 4π·ht·hr/λ, and Pr = Pt·Gt·Gr·ht²·hr²/d⁴ beyond it.
class TwoRayGround : public Propagation {
 public:
  explicit TwoRayGround(double freq_hz = 914e6, double antenna_height_m = 1.5,
                        double gt = 1.0, double gr = 1.0,
                        double system_loss = 1.0);

  double rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const override;

  double crossover_distance_m() const { return crossover_; }

 private:
  FreeSpace friis_;
  double ht_, hr_;
  double gt_, gr_;
  double crossover_;
};

/// Log-distance path loss with *static* log-normal shadowing: each
/// unordered node-pair (keyed by quantised positions and the environment
/// seed) draws a fixed shadowing offset, making coverage areas arbitrary
/// but reproducible — obstacles and multipath frozen in place.
class LogDistanceShadowing : public Propagation {
 public:
  LogDistanceShadowing(double exponent = 3.0, double sigma_db = 6.0,
                       double reference_distance_m = 1.0,
                       double freq_hz = 914e6,
                       std::uint64_t environment_seed = 1);

  double rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const override;

 private:
  double shadowing_db(Vec2 a, Vec2 b) const;

  double exponent_;
  double sigma_db_;
  double d0_;
  double pl_d0_linear_;  // free-space path loss factor at d0
  std::uint64_t seed_;
};

}  // namespace mhp
