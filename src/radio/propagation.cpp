#include "radio/propagation.hpp"

#include <cmath>
#include <numbers>

#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {

namespace {
constexpr double kSpeedOfLight = 299'792'458.0;
}

FreeSpace::FreeSpace(double freq_hz, double gt, double gr, double system_loss)
    : lambda_(kSpeedOfLight / freq_hz), gt_(gt), gr_(gr), loss_(system_loss) {
  MHP_REQUIRE(freq_hz > 0.0 && system_loss >= 1.0, "bad free-space params");
}

double FreeSpace::rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const {
  const double d = distance(from, to);
  if (d <= 0.0) return tx_power_w;
  const double denom = 16.0 * std::numbers::pi * std::numbers::pi * d * d *
                       loss_;
  return tx_power_w * gt_ * gr_ * lambda_ * lambda_ / denom;
}

TwoRayGround::TwoRayGround(double freq_hz, double antenna_height_m, double gt,
                           double gr, double system_loss)
    : friis_(freq_hz, gt, gr, system_loss),
      ht_(antenna_height_m),
      hr_(antenna_height_m),
      gt_(gt),
      gr_(gr) {
  MHP_REQUIRE(antenna_height_m > 0.0, "antenna height must be positive");
  crossover_ = 4.0 * std::numbers::pi * ht_ * hr_ / friis_.wavelength_m();
}

double TwoRayGround::rx_power_w(double tx_power_w, Vec2 from, Vec2 to) const {
  const double d = distance(from, to);
  if (d <= crossover_) return friis_.rx_power_w(tx_power_w, from, to);
  return tx_power_w * gt_ * gr_ * ht_ * ht_ * hr_ * hr_ / (d * d * d * d);
}

LogDistanceShadowing::LogDistanceShadowing(double exponent, double sigma_db,
                                           double reference_distance_m,
                                           double freq_hz,
                                           std::uint64_t environment_seed)
    : exponent_(exponent),
      sigma_db_(sigma_db),
      d0_(reference_distance_m),
      seed_(environment_seed) {
  MHP_REQUIRE(exponent > 0.0 && reference_distance_m > 0.0,
              "bad log-distance params");
  const double lambda = kSpeedOfLight / freq_hz;
  // Free-space *gain* (Pr/Pt) at the reference distance.
  pl_d0_linear_ = lambda * lambda /
                  (16.0 * std::numbers::pi * std::numbers::pi * d0_ * d0_);
}

double LogDistanceShadowing::shadowing_db(Vec2 a, Vec2 b) const {
  // Symmetric: order the pair by coordinates before hashing.
  if (b.x < a.x || (b.x == a.x && b.y < a.y)) std::swap(a, b);
  auto q = [](double v) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(v * 1000.0)));
  };
  SplitMix64 sm(seed_ ^ (q(a.x) * 0x9e3779b97f4a7c15ULL) ^
                (q(a.y) * 0xc2b2ae3d27d4eb4fULL) ^
                (q(b.x) * 0x165667b19e3779f9ULL) ^
                (q(b.y) * 0xd6e8feb86659fd93ULL));
  Rng rng(sm.next());
  return rng.normal(0.0, sigma_db_);
}

double LogDistanceShadowing::rx_power_w(double tx_power_w, Vec2 from,
                                        Vec2 to) const {
  const double d = distance(from, to);
  if (d <= 0.0) return tx_power_w;
  const double dd = std::max(d, d0_);
  const double pl_db = 10.0 * exponent_ * std::log10(dd / d0_) -
                       shadowing_db(from, to);
  return tx_power_w * pl_d0_linear_ * std::pow(10.0, -pl_db / 10.0);
}

}  // namespace mhp
