#include "radio/energy.hpp"

#include "util/assertx.hpp"

namespace mhp {

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::kSleep:
      return "sleep";
    case RadioState::kIdle:
      return "idle";
    case RadioState::kRx:
      return "rx";
    case RadioState::kTx:
      return "tx";
  }
  return "?";
}

double EnergyModel::power(RadioState s) const {
  switch (s) {
    case RadioState::kSleep:
      return sleep_w;
    case RadioState::kIdle:
      return idle_w;
    case RadioState::kRx:
      return rx_w;
    case RadioState::kTx:
      return tx_w;
  }
  return 0.0;
}

EnergyModel EnergyModel::typical_sensor() {
  constexpr double idle = 20e-3;  // 20 mW idle listening
  return EnergyModel{1.4 * idle, 1.05 * idle, idle, 0.001 * idle};
}

EnergyModel EnergyModel::cluster_head() {
  constexpr double idle = 200e-3;  // ten× a sensor; heads never sleep here
  return EnergyModel{1.4 * idle, 1.05 * idle, idle, 0.001 * idle};
}

void EnergyMeter::accumulate(RadioState s, Time dur) {
  MHP_REQUIRE(dur >= Time::zero(), "negative duration");
  time_[static_cast<std::size_t>(s)] += dur;
}

Time EnergyMeter::time_in(RadioState s) const {
  return time_[static_cast<std::size_t>(s)];
}

double EnergyMeter::energy_in_j(RadioState s) const {
  return model_.power(s) * time_in(s).to_seconds();
}

Time EnergyMeter::total_time() const {
  Time t = Time::zero();
  for (const auto& v : time_) t += v;
  return t;
}

double EnergyMeter::total_energy_j() const {
  double e = 0.0;
  for (std::size_t i = 0; i < kNumRadioStates; ++i)
    e += energy_in_j(static_cast<RadioState>(i));
  return e;
}

double EnergyMeter::active_fraction() const {
  const Time total = total_time();
  if (total == Time::zero()) return 0.0;
  const Time active = total - time_in(RadioState::kSleep);
  return active.to_seconds() / total.to_seconds();
}

double EnergyMeter::average_power_w() const {
  const Time total = total_time();
  if (total == Time::zero()) return 0.0;
  return total_energy_j() / total.to_seconds();
}

void EnergyMeter::reset() { time_.fill(Time::zero()); }

void RadioTracker::set_state(Time now, RadioState next) {
  settle(now);
  state_ = next;
}

void RadioTracker::settle(Time now) {
  MHP_REQUIRE(now >= last_, "time went backwards");
  meter_.accumulate(state_, now - last_);
  last_ = now;
}

}  // namespace mhp
