// Radio energy accounting.
//
// The paper's motivation rests on the power ordering
// tx ≳ rx ≈ idle ≫ sleep: idle listening costs nearly as much as active
// reception, so minimising awake time is what saves energy.  The default
// model uses the widely cited relative ratios (Stemm–Katz / Raghunathan
// et al.) scaled to a typical mote's receive power.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace mhp {

enum class RadioState : std::uint8_t { kSleep, kIdle, kRx, kTx };
inline constexpr std::size_t kNumRadioStates = 4;

const char* to_string(RadioState s);

struct EnergyModel {
  double tx_w;
  double rx_w;
  double idle_w;
  double sleep_w;

  double power(RadioState s) const;

  /// tx:rx:idle:sleep = 1.4 : 1.05 : 1.0 : 0.001, scaled to 20 mW idle.
  static EnergyModel typical_sensor();

  /// Cluster heads are mains-rich; we still account their energy.
  static EnergyModel cluster_head();
};

/// Accumulates time and energy per radio state.
class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyModel model) : model_(model) {}

  void accumulate(RadioState s, Time dur);

  Time time_in(RadioState s) const;
  double energy_in_j(RadioState s) const;

  Time total_time() const;
  double total_energy_j() const;

  /// Fraction of accounted time spent outside sleep.
  double active_fraction() const;

  /// Mean power over the accounted interval (J/s).
  double average_power_w() const;

  const EnergyModel& model() const { return model_; }

  void reset();

 private:
  EnergyModel model_;
  std::array<Time, kNumRadioStates> time_{};
};

/// Tracks the radio's current state against a simulation clock and feeds
/// the meter on every transition.
class RadioTracker {
 public:
  RadioTracker(EnergyModel model, Time start = Time::zero(),
               RadioState initial = RadioState::kSleep)
      : meter_(model), last_(start), state_(initial) {}

  RadioState state() const { return state_; }

  /// Transition to `next` at time `now` (accumulates the elapsed dwell).
  void set_state(Time now, RadioState next);

  /// Account time up to `now` without changing state.
  void settle(Time now);

  /// Settle, then zero the meter (end of a warm-up period).
  void reset(Time now) {
    settle(now);
    meter_.reset();
  }

  const EnergyMeter& meter() const { return meter_; }

 private:
  EnergyMeter meter_;
  Time last_;
  RadioState state_;
};

}  // namespace mhp
