// The wireless channel: ground truth for who hears what.
//
// Reception requires (a) received power above the radio sensitivity and
// (b) SINR above the capture threshold for the *whole* frame, where the
// interference term accumulates power from every concurrent transmission.
// Accumulation is the point: three transmissions can be pairwise compatible
// yet jointly fail (the paper's Fig. 3 argument against the protocol
// model), and this channel reproduces that.
//
// Two interfaces are exposed:
//  * an event-driven one (`transmit` + ChannelListener) used by the
//    protocol agents and the S-MAC baseline, and
//  * a slot-level oracle (`concurrent_outcome`) used for interference
//    probing (§V-E) and by the schedule validator.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "net/packet.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/geometry.hpp"

namespace mhp {

struct RadioParams {
  double bandwidth_bps = 200'000.0;    // the paper's 200 kbps radio
  double noise_w = 1e-11;              // noise floor
  double sinr_threshold = 10.0;        // linear capture threshold (10 dB)
  double sensitivity_w = 3.65e-10;     // minimum decodable power (NS-2-like)
  double cs_threshold_w = 3.65e-11;    // carrier-sense energy detect

  /// Default transmit powers: 2 mW sensors (≈60 m two-ray range at the
  /// sensitivity above), 0.5 W cluster head (covers the whole cluster).
  static constexpr double kSensorTxPowerW = 2e-3;
  static constexpr double kHeadTxPowerW = 0.5;
};

class ChannelListener {
 public:
  virtual ~ChannelListener() = default;

  /// A frame whose power at this node exceeds sensitivity started.
  virtual void on_frame_begin(const Frame& frame, NodeId from,
                              double rx_power_w, Time end) {
    (void)frame, (void)from, (void)rx_power_w, (void)end;
  }

  /// The same frame ended. `phy_ok` — SINR stayed above threshold
  /// throughout; the MAC still decides whether it was actually listening.
  virtual void on_frame_end(const Frame& frame, NodeId from, bool phy_ok) = 0;
};

class Channel {
 public:
  /// One entry per node in `positions`/`tx_power_w` (sensors 0..n-1, head n).
  Channel(Simulator& sim, const Propagation& prop, RadioParams params,
          std::vector<Vec2> positions, std::vector<double> tx_power_w);

  /// Record kChannel entries (transmissions, SINR failures) into `trace`.
  void set_trace(Trace* trace) { trace_ = trace; }

  std::size_t num_nodes() const { return positions_.size(); }
  const RadioParams& params() const { return params_; }
  Simulator& sim() { return sim_; }

  void set_listener(NodeId node, ChannelListener* listener);

  /// Frame airtime at the channel bandwidth.
  Time airtime(std::uint32_t bytes) const;

  /// Cached received power for a transmission from→to at from's tx power.
  double rx_power_w(NodeId from, NodeId to) const;

  /// Interference-free link viability: sensitivity + SNR threshold.
  bool link_ok(NodeId from, NodeId to) const;

  /// Total power observed at `at` right now (noise + active transmissions).
  double sensed_power_w(NodeId at) const;

  /// True if the energy detector at `at` sees a busy channel.
  bool carrier_sensed(NodeId at) const;

  /// Start transmitting `frame` from `from`; the end event and all
  /// deliveries are scheduled on the simulator.
  void transmit(NodeId from, Frame frame);

  struct TxRx {
    NodeId sender;
    NodeId receiver;
  };
  /// Ground-truth outcome if all transmissions run in the same slot:
  /// outcome[i] is true iff receiver i decodes sender i under the summed
  /// interference of the others.  Receivers that are themselves senders in
  /// the set fail (half-duplex).  Senders must be distinct.
  std::vector<bool> concurrent_outcome(const std::vector<TxRx>& txs) const;

  std::uint64_t frames_transmitted() const { return frames_tx_; }

 private:
  struct ActiveTx {
    Frame frame;
    NodeId from;
    Time start;
    Time end;
    std::vector<double> power_at;   // per node
    std::vector<double> max_other;  // max concurrent interference per node
  };

  void finish(std::uint64_t uid);
  void refresh_max_other();

  Simulator& sim_;
  RadioParams params_;
  std::vector<Vec2> positions_;
  std::vector<double> tx_power_;
  std::vector<double> rx_matrix_;  // (n+?)² cached powers, row-major
  std::vector<ChannelListener*> listeners_;
  std::vector<ActiveTx> active_;
  std::vector<double> field_;  // sum of active powers per node
  std::uint64_t frames_tx_ = 0;
  Trace* trace_ = nullptr;
};

}  // namespace mhp
