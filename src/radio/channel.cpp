#include "radio/channel.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/assertx.hpp"

namespace mhp {

Channel::Channel(Simulator& sim, const Propagation& prop, RadioParams params,
                 std::vector<Vec2> positions, std::vector<double> tx_power_w)
    : sim_(sim),
      params_(params),
      positions_(std::move(positions)),
      tx_power_(std::move(tx_power_w)) {
  MHP_REQUIRE(positions_.size() == tx_power_.size(),
              "positions/tx power size mismatch");
  MHP_REQUIRE(!positions_.empty(), "channel needs at least one node");
  MHP_REQUIRE(params_.bandwidth_bps > 0.0, "bandwidth must be positive");
  const std::size_t n = positions_.size();
  listeners_.assign(n, nullptr);
  field_.assign(n, 0.0);
  rx_matrix_.assign(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b)
        rx_matrix_[a * n + b] =
            prop.rx_power_w(tx_power_[a], positions_[a], positions_[b]);
}

void Channel::set_listener(NodeId node, ChannelListener* listener) {
  MHP_REQUIRE(node < num_nodes(), "node out of range");
  listeners_[node] = listener;
}

Time Channel::airtime(std::uint32_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 /
                         params_.bandwidth_bps;
  return Time::seconds(seconds);
}

double Channel::rx_power_w(NodeId from, NodeId to) const {
  MHP_REQUIRE(from < num_nodes() && to < num_nodes(), "node out of range");
  return rx_matrix_[from * num_nodes() + to];
}

bool Channel::link_ok(NodeId from, NodeId to) const {
  if (from == to) return false;
  const double p = rx_power_w(from, to);
  return p >= params_.sensitivity_w &&
         p / params_.noise_w >= params_.sinr_threshold;
}

double Channel::sensed_power_w(NodeId at) const {
  MHP_REQUIRE(at < num_nodes(), "node out of range");
  return params_.noise_w + field_[at];
}

bool Channel::carrier_sensed(NodeId at) const {
  MHP_REQUIRE(at < num_nodes(), "node out of range");
  return field_[at] >= params_.cs_threshold_w;
}

void Channel::refresh_max_other() {
  // After any change to the active set, update every active transmission's
  // worst-case interference snapshot at every node.
  for (auto& tx : active_) {
    for (std::size_t r = 0; r < num_nodes(); ++r) {
      const double other = field_[r] - tx.power_at[r];
      tx.max_other[r] = std::max(tx.max_other[r], other);
    }
  }
}

void Channel::transmit(NodeId from, Frame frame) {
  MHP_REQUIRE(from < num_nodes(), "sender out of range");
  MHP_REQUIRE(frame.size_bytes > 0, "empty frame");
  for (const auto& tx : active_)
    MHP_REQUIRE(tx.from != from, "node already transmitting (half-duplex)");

  ++frames_tx_;
  const Time start = sim_.now();
  const Time end = start + airtime(frame.size_bytes);
  if (trace_ != nullptr)
    trace_->record(start, TraceCat::kChannel, "tx " + frame.describe());

  ActiveTx tx;
  tx.frame = frame;
  tx.from = from;
  tx.start = start;
  tx.end = end;
  tx.power_at.resize(num_nodes());
  tx.max_other.assign(num_nodes(), 0.0);
  for (std::size_t r = 0; r < num_nodes(); ++r) {
    tx.power_at[r] = r == from ? 0.0 : rx_power_w(from, static_cast<NodeId>(r));
    field_[r] += tx.power_at[r];
  }

  // Frame-begin notifications to nodes that can hear it.
  for (std::size_t r = 0; r < num_nodes(); ++r) {
    if (r == from || listeners_[r] == nullptr) continue;
    if (tx.power_at[r] >= params_.sensitivity_w)
      listeners_[r]->on_frame_begin(frame, from, tx.power_at[r], end);
  }

  const std::uint64_t uid = frame.uid;
  active_.push_back(std::move(tx));
  refresh_max_other();

  sim_.at(end, [this, uid] { finish(uid); });
}

void Channel::finish(std::uint64_t uid) {
  auto it = std::find_if(active_.begin(), active_.end(), [&](const ActiveTx& t) {
    return t.frame.uid == uid;
  });
  MHP_ENSURE(it != active_.end(), "finishing unknown transmission");
  ActiveTx tx = std::move(*it);
  active_.erase(it);
  for (std::size_t r = 0; r < num_nodes(); ++r) field_[r] -= tx.power_at[r];
  // Keep the field non-negative under floating-point cancellation.
  for (auto& f : field_)
    if (f < 0.0) f = 0.0;

  for (std::size_t r = 0; r < num_nodes(); ++r) {
    if (r == tx.from || listeners_[r] == nullptr) continue;
    if (tx.power_at[r] < params_.sensitivity_w) continue;
    const double sinr =
        tx.power_at[r] / (params_.noise_w + tx.max_other[r]);
    const bool phy_ok = sinr >= params_.sinr_threshold;
    if (trace_ != nullptr && !phy_ok &&
        (tx.frame.dst == kBroadcast || tx.frame.dst == r))
      trace_->record(sim_.now(), TraceCat::kChannel,
                     "sinr fail at " + std::to_string(r) + ": " +
                         tx.frame.describe());
    listeners_[r]->on_frame_end(tx.frame, tx.from, phy_ok);
  }
}

std::vector<bool> Channel::concurrent_outcome(
    const std::vector<TxRx>& txs) const {
  for (std::size_t i = 0; i < txs.size(); ++i) {
    MHP_REQUIRE(txs[i].sender < num_nodes() && txs[i].receiver < num_nodes(),
                "node out of range");
    MHP_REQUIRE(txs[i].sender != txs[i].receiver, "self transmission");
    for (std::size_t j = i + 1; j < txs.size(); ++j)
      MHP_REQUIRE(txs[i].sender != txs[j].sender, "duplicate sender");
  }
  std::vector<bool> ok(txs.size(), false);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const NodeId s = txs[i].sender;
    const NodeId r = txs[i].receiver;
    // Half-duplex: a receiver that is also sending cannot decode.
    bool rx_is_sender = false;
    for (const auto& t : txs)
      if (t.sender == r) rx_is_sender = true;
    if (rx_is_sender) continue;
    const double signal = rx_power_w(s, r);
    if (signal < params_.sensitivity_w) continue;
    double interference = 0.0;
    for (std::size_t j = 0; j < txs.size(); ++j)
      if (j != i) interference += rx_power_w(txs[j].sender, r);
    ok[i] = signal / (params_.noise_w + interference) >=
            params_.sinr_threshold;
  }
  return ok;
}

}  // namespace mhp
