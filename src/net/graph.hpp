// Undirected graph utilities: adjacency lists, BFS distances, connectivity.
// Used for cluster connectivity patterns and the NP-hardness reductions.
#pragma once

#include <cstddef>
#include <vector>

#include "net/ids.hpp"

namespace mhp {

class Graph {
 public:
  explicit Graph(std::size_t n = 0) : adj_(n) {}

  std::size_t size() const { return adj_.size(); }

  void add_node() { adj_.emplace_back(); }

  /// Add an undirected edge; duplicate edges are ignored.
  void add_edge(NodeId a, NodeId b);

  bool has_edge(NodeId a, NodeId b) const;

  const std::vector<NodeId>& neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  std::size_t edge_count() const;

  /// BFS hop distances from `src`; unreachable nodes get kUnreachable.
  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  std::vector<std::size_t> bfs_hops(NodeId src) const;

  /// True if every node is reachable from node 0 (or the graph is empty).
  bool connected() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace mhp
