#include "net/cluster.hpp"

#include <algorithm>
#include <queue>

#include "util/assertx.hpp"

namespace mhp {

ClusterTopology::ClusterTopology(Graph sensor_links,
                                 std::vector<bool> head_hears)
    : links_(std::move(sensor_links)), head_hears_(std::move(head_hears)) {
  MHP_REQUIRE(head_hears_.size() == links_.size(),
              "head_hears size must match sensor count");
  // Multi-source BFS from the first-level sensors.
  levels_.assign(num_sensors(), kUnreachable);
  std::queue<NodeId> q;
  for (NodeId s = 0; s < num_sensors(); ++s) {
    if (head_hears_[s]) {
      levels_[s] = 1;
      q.push(s);
    }
  }
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId w : links_.neighbors(v)) {
      if (levels_[w] == kUnreachable) {
        levels_[w] = levels_[v] + 1;
        q.push(w);
      }
    }
  }
}

bool ClusterTopology::head_hears(NodeId s) const {
  MHP_REQUIRE(s < num_sensors(), "sensor out of range");
  return head_hears_[s];
}

std::size_t ClusterTopology::level(NodeId s) const {
  MHP_REQUIRE(s < num_sensors(), "sensor out of range");
  return levels_[s];
}

std::vector<NodeId> ClusterTopology::first_level() const {
  std::vector<NodeId> out;
  for (NodeId s = 0; s < num_sensors(); ++s)
    if (head_hears_[s]) out.push_back(s);
  return out;
}

bool ClusterTopology::fully_connected() const {
  return std::none_of(levels_.begin(), levels_.end(), [](std::size_t l) {
    return l == kUnreachable;
  });
}

std::size_t ClusterTopology::max_level() const {
  std::size_t m = 0;
  for (std::size_t l : levels_)
    if (l != kUnreachable) m = std::max(m, l);
  return m;
}

}  // namespace mhp
