// Node placement generators and geometric topology extraction.
//
// Deployments place n sensors plus the cluster head in the plane (the
// paper's evaluation deploys sensors uniformly in a square with the head at
// the centre).  A geometric disc model turns a deployment into a
// ClusterTopology for the algorithm-level code; the radio layer builds its
// own measured topology from SINR probing for the protocol-level code.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/cluster.hpp"
#include "net/ids.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace mhp {

struct Deployment {
  /// positions[0..n-1] are the sensors, positions[n] is the cluster head.
  std::vector<Vec2> positions;

  std::size_t num_sensors() const { return positions.size() - 1; }
  Vec2 sensor_pos(NodeId s) const { return positions.at(s); }
  Vec2 head_pos() const { return positions.back(); }
};

/// Sensors uniform in a side×side square centred at the origin; head at the
/// centre.
Deployment deploy_uniform_square(std::size_t n, double side, Rng& rng);

/// Sensors on a √n×√n-ish grid filling the square (deterministic).
Deployment deploy_grid(std::size_t n, double side);

/// Sensors on concentric rings around the head: `per_ring` sensors per
/// ring, ring spacing `spacing`.  Guarantees a multi-hop structure.
Deployment deploy_rings(std::size_t rings, std::size_t per_ring,
                        double spacing);

/// Geometric disc connectivity: sensors within `sensor_range` of each other
/// are linked; the head hears sensors within `uplink_range` (defaults to
/// sensor_range — the head's *downlink* is assumed to cover the cluster
/// regardless).  Neighbor construction uses a spatial hash grid (cell =
/// sensor_range), O(n) expected for bounded-density deployments; the
/// resulting graph is identical to the all-pairs scan, edge order included.
ClusterTopology disc_topology(const Deployment& d, double sensor_range,
                              double uplink_range = 0.0);

/// The O(n²) all-pairs reference implementation of disc_topology, kept as
/// the oracle for the grid-vs-brute-force property tests and the
/// perf_scaling bench's speedup baseline.
ClusterTopology disc_topology_brute_force(const Deployment& d,
                                          double sensor_range,
                                          double uplink_range = 0.0);

/// Generic extraction from an arbitrary reachability predicate
/// `hears(from, to)` over node ids 0..n (n = head).  Sensor links are kept
/// only when reachability holds in both directions.
ClusterTopology topology_from_predicate(
    std::size_t n, const std::function<bool(NodeId, NodeId)>& hears);

/// Draw uniform-square deployments until the disc topology is fully
/// connected (every sensor has a relay path).  Throws after `max_tries`.
Deployment deploy_connected_uniform_square(std::size_t n, double side,
                                           double sensor_range, Rng& rng,
                                           int max_tries = 1000);

}  // namespace mhp
