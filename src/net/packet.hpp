// Link-layer frames.
//
// The channel transports opaque frames; protocol layers (polling protocol,
// S-MAC, AODV) attach their own typed payload via std::any.  Frame size in
// bytes determines airtime at the radio bandwidth.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "net/ids.hpp"

namespace mhp {

/// Broadcast destination: every node that can decode the frame receives it.
inline constexpr NodeId kBroadcast = kNoNode - 1;

enum class FrameKind : std::uint8_t {
  kData,      // sensor data packet (possibly relayed)
  kControl,   // polling / wake-up / sleep / inquiry messages from the head
  kAck,       // sensor acknowledgement (possibly aggregated along a path)
  kMac,       // baseline MAC control (RTS/CTS/ACK/SYNC)
  kRouting,   // baseline routing control (RREQ/RREP/RERR)
  kProbe,     // interference-pattern probing
};

const char* to_string(FrameKind kind);

struct Frame {
  std::uint64_t uid = 0;  // unique per transmission attempt
  FrameKind kind = FrameKind::kData;
  NodeId src = kNoNode;       // link-layer sender
  NodeId dst = kBroadcast;    // link-layer destination (or broadcast)
  NodeId origin = kNoNode;    // node that generated the payload
  std::uint32_t size_bytes = 0;
  std::any payload;           // protocol-defined

  std::string describe() const;
};

/// Allocate frame uids (one counter per simulation keeps traces stable).
class FrameUidSource {
 public:
  std::uint64_t next() { return ++last_; }

 private:
  std::uint64_t last_ = 0;
};

}  // namespace mhp
