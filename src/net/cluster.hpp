// Cluster topology: which sensors can hear each other, and which sensors
// the cluster head can hear directly (the "first level").
//
// Per the paper's model, the head's downlink (large transmission power)
// reaches every sensor in the cluster, while the sensor uplink is
// short-range and multi-hop.  Uplink reachability is what this structure
// records; it is the connectivity pattern the head discovers in §V-B.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "net/ids.hpp"
#include "util/geometry.hpp"

namespace mhp {

class ClusterTopology {
 public:
  /// `sensor_links`: undirected sensor↔sensor reachability graph over
  /// sensors 0..n-1.  `head_hears[s]`: the head decodes s's transmissions.
  ClusterTopology(Graph sensor_links, std::vector<bool> head_hears);

  std::size_t num_sensors() const { return links_.size(); }
  NodeId head() const { return static_cast<NodeId>(num_sensors()); }

  const Graph& sensor_links() const { return links_; }
  bool head_hears(NodeId s) const;
  bool sensors_linked(NodeId a, NodeId b) const {
    return links_.has_edge(a, b);
  }

  /// Hop count of each sensor: 1 for first-level sensors, otherwise one
  /// more than the nearest first-level-reaching neighbor.  kUnreachable for
  /// sensors with no relay path to the head.
  static constexpr std::size_t kUnreachable = Graph::kUnreachable;
  const std::vector<std::size_t>& levels() const { return levels_; }
  std::size_t level(NodeId s) const;

  /// Sensors the head hears directly.
  std::vector<NodeId> first_level() const;

  /// Every sensor has a relay path to the head.
  bool fully_connected() const;

  std::size_t max_level() const;

 private:
  Graph links_;
  std::vector<bool> head_hears_;
  std::vector<std::size_t> levels_;
};

}  // namespace mhp
