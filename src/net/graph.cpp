#include "net/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/assertx.hpp"

namespace mhp {

void Graph::add_edge(NodeId a, NodeId b) {
  MHP_REQUIRE(a < size() && b < size(), "edge endpoint out of range");
  MHP_REQUIRE(a != b, "self loop");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  MHP_REQUIRE(a < size() && b < size(), "edge endpoint out of range");
  const auto& na = adj_[a];
  return std::find(na.begin(), na.end(), b) != na.end();
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  MHP_REQUIRE(v < size(), "node out of range");
  return adj_[v];
}

std::size_t Graph::edge_count() const {
  std::size_t twice = 0;
  for (const auto& n : adj_) twice += n.size();
  return twice / 2;
}

std::vector<std::size_t> Graph::bfs_hops(NodeId src) const {
  MHP_REQUIRE(src < size(), "source out of range");
  std::vector<std::size_t> dist(size(), kUnreachable);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId w : adj_[v]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (size() == 0) return true;
  const auto dist = bfs_hops(0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == kUnreachable;
  });
}

}  // namespace mhp
