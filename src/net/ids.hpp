// Node identifiers.  Within a cluster of n sensors the sensors are
// 0..n-1 and the cluster head is node n (one past the sensors), so a single
// position/power array of size n+1 covers everyone.
#pragma once

#include <cstdint>
#include <limits>

namespace mhp {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace mhp
