#include "net/packet.hpp"

#include <sstream>

namespace mhp {

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kData:
      return "data";
    case FrameKind::kControl:
      return "control";
    case FrameKind::kAck:
      return "ack";
    case FrameKind::kMac:
      return "mac";
    case FrameKind::kRouting:
      return "routing";
    case FrameKind::kProbe:
      return "probe";
  }
  return "?";
}

std::string Frame::describe() const {
  std::ostringstream os;
  os << to_string(kind) << "#" << uid << " " << src << "->";
  if (dst == kBroadcast)
    os << "*";
  else
    os << dst;
  os << " (" << size_bytes << "B)";
  return os.str();
}

}  // namespace mhp
