#include "net/deployment.hpp"

#include <cmath>
#include <numbers>

#include "util/assertx.hpp"

namespace mhp {

Deployment deploy_uniform_square(std::size_t n, double side, Rng& rng) {
  MHP_REQUIRE(side > 0.0, "square side must be positive");
  Deployment d;
  d.positions.reserve(n + 1);
  const double half = side / 2.0;
  for (std::size_t i = 0; i < n; ++i)
    d.positions.push_back({rng.uniform(-half, half), rng.uniform(-half, half)});
  d.positions.push_back({0.0, 0.0});  // head at the centre
  return d;
}

Deployment deploy_grid(std::size_t n, double side) {
  MHP_REQUIRE(side > 0.0, "square side must be positive");
  Deployment d;
  d.positions.reserve(n + 1);
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    const double x =
        -side / 2.0 + side * (static_cast<double>(c) + 0.5) /
                          static_cast<double>(cols);
    const double y =
        -side / 2.0 + side * (static_cast<double>(r) + 0.5) /
                          static_cast<double>(rows);
    d.positions.push_back({x, y});
  }
  d.positions.push_back({0.0, 0.0});
  return d;
}

Deployment deploy_rings(std::size_t rings, std::size_t per_ring,
                        double spacing) {
  MHP_REQUIRE(spacing > 0.0, "ring spacing must be positive");
  Deployment d;
  d.positions.reserve(rings * per_ring + 1);
  for (std::size_t r = 1; r <= rings; ++r) {
    const double radius = spacing * static_cast<double>(r);
    for (std::size_t k = 0; k < per_ring; ++k) {
      const double theta = 2.0 * std::numbers::pi *
                           (static_cast<double>(k) +
                            0.5 * static_cast<double>(r % 2)) /
                           static_cast<double>(per_ring);
      d.positions.push_back({radius * std::cos(theta),
                             radius * std::sin(theta)});
    }
  }
  d.positions.push_back({0.0, 0.0});
  return d;
}

ClusterTopology disc_topology(const Deployment& d, double sensor_range,
                              double uplink_range) {
  MHP_REQUIRE(sensor_range > 0.0, "sensor range must be positive");
  if (uplink_range <= 0.0) uplink_range = sensor_range;
  const std::size_t n = d.num_sensors();
  Graph g(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (distance(d.sensor_pos(a), d.sensor_pos(b)) <= sensor_range)
        g.add_edge(a, b);
  std::vector<bool> head_hears(n);
  for (NodeId s = 0; s < n; ++s)
    head_hears[s] = distance(d.sensor_pos(s), d.head_pos()) <= uplink_range;
  return ClusterTopology(std::move(g), std::move(head_hears));
}

ClusterTopology topology_from_predicate(
    std::size_t n, const std::function<bool(NodeId, NodeId)>& hears) {
  const auto head = static_cast<NodeId>(n);
  Graph g(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (hears(a, b) && hears(b, a)) g.add_edge(a, b);
  std::vector<bool> head_hears(n);
  for (NodeId s = 0; s < n; ++s) head_hears[s] = hears(s, head);
  return ClusterTopology(std::move(g), std::move(head_hears));
}

Deployment deploy_connected_uniform_square(std::size_t n, double side,
                                           double sensor_range, Rng& rng,
                                           int max_tries) {
  for (int t = 0; t < max_tries; ++t) {
    Deployment d = deploy_uniform_square(n, side, rng);
    if (disc_topology(d, sensor_range).fully_connected()) return d;
  }
  throw ContractViolation(
      "deploy_connected_uniform_square: no connected deployment found; "
      "sensor_range too small for this density");
}

}  // namespace mhp
