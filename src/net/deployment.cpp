#include "net/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assertx.hpp"

namespace mhp {

namespace {

/// Flat spatial grid over the sensor bounding box with cell size >=
/// sensor_range.  Any pair within sensor_range differs by at most one
/// cell per axis, so neighbor candidates come from the 3×3 cell block
/// around each sensor — O(n) expected work for bounded-density
/// deployments instead of the O(n²) all-pairs scan.  Cells live in one
/// CSR layout (starts_/ids_), so a gather is direct indexing over
/// contiguous runs, no hashing.  The cell count is capped at ~4n by
/// enlarging the cell size: cells larger than sensor_range only widen the
/// candidate set, never miss a neighbor, so sparse or spread-out layouts
/// cost memory O(n) instead of O(area).
class CellGrid {
 public:
  CellGrid(const Deployment& d, double cell) {
    const std::size_t n = d.num_sensors();
    if (n == 0) return;
    double max_x = d.sensor_pos(0).x, max_y = d.sensor_pos(0).y;
    min_x_ = max_x;
    min_y_ = max_y;
    for (NodeId s = 1; s < n; ++s) {
      const Vec2 p = d.sensor_pos(s);
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    const double per_axis =
        std::ceil(std::sqrt(static_cast<double>(4 * n))) + 1.0;
    cell_ = std::max({cell, (max_x - min_x_) / per_axis,
                      (max_y - min_y_) / per_axis});
    nx_ = col_of(max_x) + 1;
    ny_ = row_of(max_y) + 1;
    starts_.assign(nx_ * ny_ + 1, 0);
    for (NodeId s = 0; s < n; ++s)
      ++starts_[cell_index(d.sensor_pos(s)) + 1];
    for (std::size_t c = 1; c < starts_.size(); ++c)
      starts_[c] += starts_[c - 1];
    ids_.resize(n);
    pos_.resize(n);
    std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
    // Filling in id order keeps each cell's run ascending.  Positions are
    // copied beside the ids so the pair scan reads contiguous memory.
    for (NodeId s = 0; s < n; ++s) {
      const std::size_t at = cursor[cell_index(d.sensor_pos(s))]++;
      ids_[at] = s;
      pos_[at] = d.sensor_pos(s);
    }
  }

  /// Every sensor pair within `range`, each exactly once, unsorted.  The
  /// forward half-stencil (within-cell pairs, then each of the four
  /// "ahead" neighbor cells) visits every unordered cell pair once, so
  /// every candidate pair costs exactly one distance evaluation — half
  /// the work of a symmetric 3×3 gather per node.
  void collect_edges(double range,
                     std::vector<std::pair<NodeId, NodeId>>& out) const {
    out.clear();
    if (ids_.empty()) return;
    // Verdict-exact range test that skips std::hypot away from the
    // boundary: the squared distance carries ~4 ulp of relative error and
    // distance() ~1 ulp, so outside a ±1e-9 relative band around range²
    // the cheap comparison provably agrees with `distance(a,b) <= range`;
    // inside the band (constructed exact-boundary layouts land here) the
    // verdict defers to distance() for bit-exact brute-force parity.
    const double r2 = range * range;
    const double r2_lo = r2 * (1.0 - 1e-9);
    const double r2_hi = r2 * (1.0 + 1e-9);
    const auto within = [&](Vec2 a, Vec2 b) {
      const double dx = a.x - b.x;
      const double dy = a.y - b.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 <= r2_lo) return true;
      if (d2 >= r2_hi) return false;
      return distance(a, b) <= range;
    };
    for (std::size_t gy = 0; gy < ny_; ++gy)
      for (std::size_t gx = 0; gx < nx_; ++gx) {
        const std::size_t c = gy * nx_ + gx;
        const std::size_t cb = starts_[c];
        const std::size_t ce = starts_[c + 1];
        if (cb == ce) continue;
        for (std::size_t i = cb; i != ce; ++i) {
          const Vec2 pa = pos_[i];
          // Runs ascend, so within-cell pairs are already (low, high).
          for (std::size_t j = i + 1; j != ce; ++j)
            if (within(pa, pos_[j])) out.emplace_back(ids_[i], ids_[j]);
        }
        // Forward neighbors: E, SW, S, SE.  Cross-cell ids are unordered,
        // so emit (min, max).
        static constexpr std::ptrdiff_t kFwd[4][2] = {
            {1, 0}, {-1, 1}, {0, 1}, {1, 1}};
        for (const auto& [dx, dy] : kFwd) {
          const std::ptrdiff_t fx = static_cast<std::ptrdiff_t>(gx) + dx;
          const std::ptrdiff_t fy = static_cast<std::ptrdiff_t>(gy) + dy;
          if (fx < 0 || fy < 0 || fx >= static_cast<std::ptrdiff_t>(nx_) ||
              fy >= static_cast<std::ptrdiff_t>(ny_))
            continue;
          const std::size_t f =
              static_cast<std::size_t>(fy) * nx_ + static_cast<std::size_t>(fx);
          const std::size_t fb = starts_[f];
          const std::size_t fe = starts_[f + 1];
          for (std::size_t i = cb; i != ce; ++i) {
            const Vec2 pa = pos_[i];
            const NodeId a = ids_[i];
            for (std::size_t j = fb; j != fe; ++j)
              if (within(pa, pos_[j])) {
                const NodeId b = ids_[j];
                out.emplace_back(std::min(a, b), std::max(a, b));
              }
          }
        }
      }
  }

 private:
  std::size_t col_of(double x) const {
    const double f = std::floor((x - min_x_) / cell_);
    return f > 0.0 ? static_cast<std::size_t>(f) : 0;
  }
  std::size_t row_of(double y) const {
    const double f = std::floor((y - min_y_) / cell_);
    return f > 0.0 ? static_cast<std::size_t>(f) : 0;
  }
  std::size_t cell_index(Vec2 p) const {
    return row_of(p.y) * nx_ + col_of(p.x);
  }

  double cell_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::size_t> starts_;
  std::vector<NodeId> ids_;
  std::vector<Vec2> pos_;
};

}  // namespace

Deployment deploy_uniform_square(std::size_t n, double side, Rng& rng) {
  MHP_REQUIRE(side > 0.0, "square side must be positive");
  Deployment d;
  d.positions.reserve(n + 1);
  const double half = side / 2.0;
  for (std::size_t i = 0; i < n; ++i)
    d.positions.push_back({rng.uniform(-half, half), rng.uniform(-half, half)});
  d.positions.push_back({0.0, 0.0});  // head at the centre
  return d;
}

Deployment deploy_grid(std::size_t n, double side) {
  MHP_REQUIRE(side > 0.0, "square side must be positive");
  Deployment d;
  d.positions.reserve(n + 1);
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    const double x =
        -side / 2.0 + side * (static_cast<double>(c) + 0.5) /
                          static_cast<double>(cols);
    const double y =
        -side / 2.0 + side * (static_cast<double>(r) + 0.5) /
                          static_cast<double>(rows);
    d.positions.push_back({x, y});
  }
  d.positions.push_back({0.0, 0.0});
  return d;
}

Deployment deploy_rings(std::size_t rings, std::size_t per_ring,
                        double spacing) {
  MHP_REQUIRE(spacing > 0.0, "ring spacing must be positive");
  Deployment d;
  d.positions.reserve(rings * per_ring + 1);
  for (std::size_t r = 1; r <= rings; ++r) {
    const double radius = spacing * static_cast<double>(r);
    for (std::size_t k = 0; k < per_ring; ++k) {
      const double theta = 2.0 * std::numbers::pi *
                           (static_cast<double>(k) +
                            0.5 * static_cast<double>(r % 2)) /
                           static_cast<double>(per_ring);
      d.positions.push_back({radius * std::cos(theta),
                             radius * std::sin(theta)});
    }
  }
  d.positions.push_back({0.0, 0.0});
  return d;
}

ClusterTopology disc_topology(const Deployment& d, double sensor_range,
                              double uplink_range) {
  MHP_REQUIRE(sensor_range > 0.0, "sensor range must be positive");
  if (uplink_range <= 0.0) uplink_range = sensor_range;
  const std::size_t n = d.num_sensors();
  Graph g(n);
  const CellGrid grid(d, sensor_range);
  std::vector<std::pair<NodeId, NodeId>> edges;
  grid.collect_edges(sensor_range, edges);
  // The brute-force scan inserts edges in lexicographic (a, b) order and
  // downstream tie-breaks iterate neighbor lists, so restore that order to
  // make the grid's Graph byte-identical, not just an equal edge set.
  // Counting sort by source + tiny per-source sorts beats one comparison
  // sort over the whole edge list.
  std::vector<std::size_t> offset(n + 1, 0);
  for (const auto& [a, b] : edges) ++offset[a + 1];
  for (std::size_t i = 1; i <= n; ++i) offset[i] += offset[i - 1];
  std::vector<std::pair<NodeId, NodeId>> sorted(edges.size());
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (const auto& e : edges) sorted[cursor[e.first]++] = e;
  }
  for (std::size_t a = 0; a < n; ++a)
    std::sort(sorted.begin() + static_cast<std::ptrdiff_t>(offset[a]),
              sorted.begin() + static_cast<std::ptrdiff_t>(offset[a + 1]));
  for (const auto& [a, b] : sorted) g.add_edge(a, b);
  std::vector<bool> head_hears(n);
  for (NodeId s = 0; s < n; ++s)
    head_hears[s] = distance(d.sensor_pos(s), d.head_pos()) <= uplink_range;
  return ClusterTopology(std::move(g), std::move(head_hears));
}

ClusterTopology disc_topology_brute_force(const Deployment& d,
                                          double sensor_range,
                                          double uplink_range) {
  MHP_REQUIRE(sensor_range > 0.0, "sensor range must be positive");
  if (uplink_range <= 0.0) uplink_range = sensor_range;
  const std::size_t n = d.num_sensors();
  Graph g(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (distance(d.sensor_pos(a), d.sensor_pos(b)) <= sensor_range)
        g.add_edge(a, b);
  std::vector<bool> head_hears(n);
  for (NodeId s = 0; s < n; ++s)
    head_hears[s] = distance(d.sensor_pos(s), d.head_pos()) <= uplink_range;
  return ClusterTopology(std::move(g), std::move(head_hears));
}

ClusterTopology topology_from_predicate(
    std::size_t n, const std::function<bool(NodeId, NodeId)>& hears) {
  const auto head = static_cast<NodeId>(n);
  Graph g(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (hears(a, b) && hears(b, a)) g.add_edge(a, b);
  std::vector<bool> head_hears(n);
  for (NodeId s = 0; s < n; ++s) head_hears[s] = hears(s, head);
  return ClusterTopology(std::move(g), std::move(head_hears));
}

Deployment deploy_connected_uniform_square(std::size_t n, double side,
                                           double sensor_range, Rng& rng,
                                           int max_tries) {
  for (int t = 0; t < max_tries; ++t) {
    Deployment d = deploy_uniform_square(n, side, rng);
    if (disc_topology(d, sensor_range).fully_connected()) return d;
  }
  throw ContractViolation(
      "deploy_connected_uniform_square: no connected deployment found; "
      "sensor_range too small for this density");
}

}  // namespace mhp
