// Hierarchical span profiler: where does host wall time go?
//
// MHP_SPAN("route/probe") opens an RAII span on the calling thread;
// nesting spans builds slash-joined paths ("mc/routing/route/probe"), so
// one aggregated view attributes every phase of the pipeline — topology
// build, routing solves, scheduling, the polling event loop — to a
// stable name.  MHP_SPAN_COUNTER("probes", n) attaches a named count to
// the innermost open span (oracle hits, δ-probes, events processed).
//
// Recording is designed for the hot path and for util::ThreadPool
// workers (route::solve_clusters, campaign sweeps):
//   * disabled mode is one relaxed atomic load per span — no
//     allocation, no clock read, and nothing observable anywhere else
//     (reports stay byte-identical);
//   * enabled mode appends to lock-free per-thread chunked buffers
//     (the owning thread publishes a count with release semantics and
//     never moves written events, so a quiescent-point collector reads
//     them race-free and merges across any worker count);
//   * span paths are interned once (global table behind a mutex, misses
//     only) and cached per thread, so a span costs two clock reads plus
//     a thread-local hash lookup.
//
// Collection happens at quiescent points only (after parallel work has
// joined): drain() hands back every event recorded since the previous
// drain.  Exporters turn a drain into (a) Chrome trace-event JSON that
// loads in Perfetto / chrome://tracing and (b) a per-path summary
// (count/total/p50/p95 via util::Histogram) that reports embed under
// "profile".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace mhp::obs {

/// A finished span, as drained from the per-thread buffers.  Times are
/// nanoseconds since the profiler epoch (first enable()).
struct ProfileEvent {
  std::uint32_t path = 0;   // index into ProfileData::paths
  std::uint32_t depth = 0;  // 0 = top-level span on its thread
  std::uint32_t tid = 0;    // profiler-assigned thread index
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Attached counters (name pointer is the macro's string literal;
  /// nullptr marks unused slots).  At most kMaxCounters distinct names
  /// per span; further names are dropped and tallied by the profiler.
  static constexpr std::size_t kMaxCounters = 4;
  struct Counter {
    const char* name = nullptr;
    std::uint64_t value = 0;
  };
  std::array<Counter, kMaxCounters> counters{};
};

/// One drain()'s worth of events plus the path strings they index.
struct ProfileData {
  std::vector<std::string> paths;   // path id -> slash-joined name
  std::vector<ProfileEvent> events; // ordered by (tid, completion)
  bool empty() const { return events.empty(); }
};

/// Aggregation of a ProfileData by span path.
struct ProfileSummary {
  struct PerPath {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;  // from util::Histogram over the durations
    double p95_ms = 0.0;
    std::map<std::string, std::uint64_t> counters;
  };
  std::map<std::string, PerPath> spans;  // keyed by path, sorted
  /// Wall time covered by top-level (depth 0) spans — the numerator of
  /// the "how much of the pipeline is attributed?" question.
  double attributed_ms = 0.0;
  std::size_t threads = 0;
};

class Profiler {
 public:
  /// The process-wide profiler every MHP_SPAN records into.
  static Profiler& instance();

  /// Fast global gate, checked inline by the macros.
  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Turn recording on.  The first enable() of the process stamps the
  /// epoch all event times are relative to.  Idempotent.
  void enable();
  /// Turn recording off.  Spans already open finish recording normally
  /// (their scope captured the decision at open time).
  void disable();

  /// Collect every event recorded since the previous drain, across all
  /// threads that ever recorded.  Call at a quiescent point only — i.e.
  /// no MHP_SPAN may be concurrently *closing* on another thread
  /// (ThreadPool::parallel_for has joined, simulations have returned).
  ProfileData drain();

  /// The calling thread's open span names, outermost first — what the
  /// FlightRecorder prints as "which phase was active" post-mortem.
  /// Cheap; safe whether or not recording is enabled.
  static std::vector<std::string> thread_span_stack();

  /// Spans dropped because the per-thread open-span stack overflowed
  /// (depth > kMaxDepth) plus counters dropped for want of a slot.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kMaxDepth = 64;

  // --- macro back-end (not part of the public surface) ---
  static void open_span(const char* name);
  static void close_span();
  static void attach_counter(const char* name, std::uint64_t value);

 private:
  Profiler() = default;

  static std::atomic<bool> g_enabled;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Aggregate a drain by path.  `zero_times` replaces every duration
/// figure (total/min/max/p50/p95, attributed_ms) with 0.0 while keeping
/// counts, paths and attached counters — the deterministic skeleton
/// scenario reports embed when run.record_perf is false.
ProfileSummary summarize_profile(const ProfileData& data,
                                 bool zero_times = false);

/// {"spans": {path: {count, total_ms, ...}}, "attributed_ms", "threads"}.
Json to_json(const ProfileSummary& summary);

/// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
/// with one complete ("ph":"X") event per span, attached counters in
/// "args".  Loads in Perfetto and chrome://tracing; round-trips through
/// obs::parse_json.
Json chrome_trace_json(const ProfileData& data);

/// RAII span scope used by MHP_SPAN.  Captures the enabled decision at
/// construction so a mid-span disable() cannot unbalance the stack.
class ProfileSpanScope {
 public:
  explicit ProfileSpanScope(const char* name)
      : opened_(Profiler::enabled()) {
    if (opened_) Profiler::open_span(name);
  }
  ~ProfileSpanScope() {
    if (opened_) Profiler::close_span();
  }
  ProfileSpanScope(const ProfileSpanScope&) = delete;
  ProfileSpanScope& operator=(const ProfileSpanScope&) = delete;

 private:
  bool opened_;
};

}  // namespace mhp::obs

#define MHP_SPAN_CONCAT2(a, b) a##b
#define MHP_SPAN_CONCAT(a, b) MHP_SPAN_CONCAT2(a, b)

/// Open a profiler span for the rest of the enclosing scope.  `name` must
/// be a string literal (it is stored by pointer).
#define MHP_SPAN(name) \
  ::mhp::obs::ProfileSpanScope MHP_SPAN_CONCAT(mhp_span_, __LINE__)(name)

/// Add `value` to counter `name` of the innermost open span of this
/// thread.  No-op when profiling is disabled or no span is open.
#define MHP_SPAN_COUNTER(name, value)                                   \
  do {                                                                  \
    if (::mhp::obs::Profiler::enabled())                                \
      ::mhp::obs::Profiler::attach_counter(                             \
          name, static_cast<std::uint64_t>(value));                     \
  } while (0)
