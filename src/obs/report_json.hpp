// JSON exporters for every report/snapshot type the stacks produce.
//
// The serialized layout is stable and insertion-ordered (diffable run to
// run): counters stay integers, doubles round-trip exactly, labeled
// per-node series appear both verbatim inside "metrics" and regrouped as
// id→value maps under "per_node".  `schema` stamps a version so
// downstream tooling can detect layout changes.
#pragma once

#include <string>

#include "metrics/registry.hpp"
#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace mhp {
struct SimulationReport;
struct SmacReport;
struct MultiClusterReport;
struct DegradationReport;
struct OracleCacheStats;
}  // namespace mhp

namespace mhp::obs {

/// Schema version stamped into every top-level report document.
inline constexpr int kReportSchemaVersion = 1;

Json to_json(const MetricsSnapshot& snap);
Json to_json(const RunStats& stats);
Json to_json(const OracleCacheStats& oracle);
Json to_json(const DegradationReport& deg);
Json to_json(const SimulationReport& report);
Json to_json(const SmacReport& report);
Json to_json(const MultiClusterReport& report);
Json to_json(const Deployment& deployment);
Json to_json(const TraceEntry& entry);

/// The trace ring's current contents as an array (oldest first), plus
/// eviction accounting.
Json trace_to_json(const Trace& trace);

/// Wrap a report body into the standard envelope:
/// {"schema":1,"kind":<kind>,"report":<body>}.
Json report_envelope(std::string kind, Json body);

/// Pretty-print `value` to `path`.  Returns false (after a one-line note
/// on stderr) when the file cannot be written.
bool save_json(const std::string& path, const Json& value, int indent = 2);

}  // namespace mhp::obs
