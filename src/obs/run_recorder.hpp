// Host-side run accounting for benches and reports: wall-clock duration
// (steady_clock) plus a tally of simulator events processed, reduced to
// events/sec.  SimRuntime stamps the same fields into every RunStats for
// a single simulation; RunRecorder covers a whole sweep of them.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/json.hpp"

namespace mhp::obs {

class RunRecorder {
 public:
  /// Construction starts the wall clock.
  RunRecorder() : begin_(std::chrono::steady_clock::now()) {}

  /// Fold one simulation's event count (RunStats::events_processed) into
  /// the sweep total.
  void add_events(std::uint64_t n) { events_ += n; }

  /// Restart the clock and zero the event tally.
  void restart() {
    begin_ = std::chrono::steady_clock::now();
    events_ = 0;
  }

  std::uint64_t events() const { return events_; }

  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         begin_)
        .count();
  }

  double events_per_sec() const {
    const double w = wall_seconds();
    return w > 0.0 ? static_cast<double>(events_) / w : 0.0;
  }

  /// {"wall_seconds":..,"events_processed":..,"events_per_sec":..} — the
  /// same layout RunStats serializes under "run".  Non-deterministic by
  /// nature; consumers must not golden-test these values.
  Json to_json() const {
    return Json::object()
        .set("wall_seconds", Json(wall_seconds()))
        .set("events_processed", Json(events_))
        .set("events_per_sec", Json(events_per_sec()));
  }

 private:
  std::chrono::steady_clock::time_point begin_;
  std::uint64_t events_ = 0;
};

}  // namespace mhp::obs
