// Dependency-free JSON layer for the observability exporters: a value
// tree (Json), a deterministic writer, and a strict parser.
//
// Objects preserve insertion order so serialized reports diff cleanly
// run to run.  Numbers distinguish integers from doubles: counters
// round-trip exactly, doubles print with max_digits10 so parsing the
// output reproduces the bit pattern.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mhp::obs {

class JsonParseError : public std::runtime_error {
 public:
  /// `offset` is the byte position the parser stopped at; `line`/`column`
  /// are 1-based and derived from it, so editors can jump to the fault.
  explicit JsonParseError(const std::string& what, std::size_t offset = 0,
                          std::size_t line = 1, std::size_t column = 1)
      : std::runtime_error(what),
        offset_(offset),
        line_(line),
        column_(column) {}

  std::size_t offset() const { return offset_; }
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t offset_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  /// Counters are uint64; values beyond int64 are unrepresentable in the
  /// common JSON integer range and throw rather than silently wrap.
  Json(unsigned long v);
  Json(unsigned long long v);
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  /// Numeric value of either number flavour.
  double as_double() const;
  const std::string& as_string() const;

  // --- array ---
  void push_back(Json value);
  std::size_t size() const;  // array/object element count
  const Json& at(std::size_t index) const;

  // --- object (insertion-ordered) ---
  /// Insert or overwrite; returns *this so reports chain .set() calls.
  Json& set(std::string key, Json value);
  /// nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  /// Mutable lookup for in-place patching (campaign sweep overrides).
  Json* find(const std::string& key);
  /// Throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serialize.  indent < 0 → compact single line; otherwise pretty-print
  /// with `indent` spaces per level.
  void write(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Strict parse of one JSON document (trailing non-whitespace is an
/// error).  Throws JsonParseError with position information.
Json parse_json(std::string_view text);

std::ostream& operator<<(std::ostream& os, const Json& value);

}  // namespace mhp::obs
