#include "obs/flight_recorder.hpp"

#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace mhp::obs {

FlightRecorder::FlightRecorder(const SimRuntime& rt, Options opts)
    : rt_(rt), opts_(opts) {
  hook_token_ = add_contract_failure_hook(
      [this](const ContractFailureInfo& info) {
        if (dumped_) return;  // one post-mortem per recorder
        dumped_ = true;
        std::ostream& os = opts_.out != nullptr ? *opts_.out : std::cerr;
        dump(os, &info);
      });
}

FlightRecorder::~FlightRecorder() { remove_contract_failure_hook(hook_token_); }

void FlightRecorder::dump(std::ostream& os,
                          const ContractFailureInfo* info) const {
  os << "=== flight recorder: contract failure post-mortem ===\n";
  if (info != nullptr) {
    os << info->kind << " failed: (" << info->expr << ") at " << info->file
       << ":" << info->line;
    if (!info->message.empty()) os << " — " << info->message;
    os << "\n";
  }
  os << "sim time: " << rt_.sim().now() << ", events executed: "
     << rt_.sim().events_executed() << "\n";

  // Which phase was active?  The failing thread's open profiler spans,
  // outermost first (the hook runs on the thread that tripped the
  // contract).  Empty when profiling is off or no span is open.
  const std::vector<std::string> spans = Profiler::thread_span_stack();
  if (!spans.empty()) {
    os << "--- open profiler spans (this thread, outermost first) ---\n";
    for (const std::string& span : spans) os << "  " << span << "\n";
  }

  const auto& entries = rt_.trace().entries();
  const std::size_t tail =
      entries.size() < opts_.tail_entries ? entries.size()
                                          : opts_.tail_entries;
  os << "--- trace tail (" << tail << " of " << entries.size()
     << " ringed entries, " << rt_.trace().dropped() << " evicted) ---\n";
  for (std::size_t i = entries.size() - tail; i < entries.size(); ++i)
    format_trace_entry(os, entries[i]);

  os << "--- metrics snapshot ---\n";
  rt_.metrics().snapshot(rt_.sim().now()).print(os);
  os << "=== end flight recorder ===\n";
}

}  // namespace mhp::obs
