#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/stats.hpp"

namespace mhp::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Epoch every event time is relative to, stamped by the first enable().
std::mutex g_epoch_mu;
bool g_epoch_set = false;
Clock::time_point g_epoch;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           g_epoch)
          .count());
}

/// Interned span paths.  An id is stable for the process lifetime, so
/// events from different drains (and threads) agree on labels.
struct PathKey {
  std::uint32_t parent;
  const char* name;
  bool operator==(const PathKey& o) const {
    return parent == o.parent && name == o.name;
  }
};
struct PathKeyHash {
  std::size_t operator()(const PathKey& k) const {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.parent);
    mix(reinterpret_cast<std::uintptr_t>(k.name));
    return static_cast<std::size_t>(h);
  }
};

constexpr std::uint32_t kRootPath = 0xffffffffu;

std::mutex g_paths_mu;
std::vector<std::string> g_paths;  // id -> slash-joined path
std::unordered_map<PathKey, std::uint32_t, PathKeyHash> g_path_ids;

std::uint32_t intern_path(std::uint32_t parent, const char* name) {
  std::lock_guard<std::mutex> lock(g_paths_mu);
  const auto [it, inserted] =
      g_path_ids.try_emplace(PathKey{parent, name},
                             static_cast<std::uint32_t>(g_paths.size()));
  if (inserted) {
    std::string full = parent == kRootPath
                           ? std::string(name)
                           : g_paths[parent] + "/" + name;
    g_paths.push_back(std::move(full));
  }
  return it->second;
}

std::vector<std::string> snapshot_paths() {
  std::lock_guard<std::mutex> lock(g_paths_mu);
  return g_paths;
}

}  // namespace

std::atomic<bool> Profiler::g_enabled{false};

namespace {

/// Per-thread recording state.  The owning thread is the only writer;
/// drain() is the only reader and reads nothing past the released
/// `published` count, so no event is ever read while being written.
struct ThreadState {
  /// Chunked event storage: chunks are never reallocated or freed while
  /// the profiler lives, so published events stay at stable addresses.
  struct Chunk {
    static constexpr std::size_t kCap = 2048;
    std::array<ProfileEvent, kCap> events;
    std::atomic<Chunk*> next{nullptr};
  };

  struct OpenSpan {
    std::uint32_t path = 0;
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::array<ProfileEvent::Counter, ProfileEvent::kMaxCounters> counters{};
  };

  explicit ThreadState(std::uint32_t id) : tid(id) {}

  std::uint32_t tid;

  // Writer side.
  std::array<OpenSpan, Profiler::kMaxDepth> stack;
  std::size_t depth = 0;  // may exceed kMaxDepth; excess spans drop
  std::unique_ptr<Chunk> head;
  Chunk* tail = nullptr;
  std::size_t tail_used = 0;
  std::atomic<std::uint64_t> published{0};

  // Collector side (guarded by the registry mutex).
  Chunk* drain_chunk = nullptr;
  std::size_t drain_offset = 0;
  std::uint64_t drained = 0;

  void append(const ProfileEvent& ev) {
    if (tail == nullptr) {
      head = std::make_unique<Chunk>();
      tail = head.get();
      tail_used = 0;
    } else if (tail_used == Chunk::kCap) {
      auto* fresh = new Chunk();
      // Publish the link before the count that points into it.
      tail->next.store(fresh, std::memory_order_release);
      tail = fresh;
      tail_used = 0;
    }
    tail->events[tail_used++] = ev;
    published.store(published.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
};

/// Registered thread states.  Owned here so a worker thread exiting
/// (ThreadPool teardown between sweeps) cannot invalidate events that
/// have not been drained yet.  First chunk ownership: ThreadState::head
/// owns the list head; later chunks are reachable through `next` and
/// deleted with the state.
std::mutex g_registry_mu;
std::vector<std::unique_ptr<ThreadState>> g_states;

thread_local ThreadState* t_state = nullptr;

ThreadState& this_thread_state() {
  if (t_state == nullptr) {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    g_states.push_back(std::make_unique<ThreadState>(
        static_cast<std::uint32_t>(g_states.size())));
    t_state = g_states.back().get();
  }
  return *t_state;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() {
  {
    std::lock_guard<std::mutex> lock(g_epoch_mu);
    if (!g_epoch_set) {
      g_epoch = Clock::now();
      g_epoch_set = true;
    }
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  g_enabled.store(false, std::memory_order_relaxed);
}

void Profiler::open_span(const char* name) {
  ThreadState& st = this_thread_state();
  const std::size_t depth = st.depth++;
  if (depth >= kMaxDepth) {
    instance().dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t parent =
      depth == 0 ? kRootPath : st.stack[depth - 1].path;
  ThreadState::OpenSpan& span = st.stack[depth];
  span.path = intern_path(parent, name);
  span.name = name;
  span.counters = {};
  span.start_ns = now_ns();
}

void Profiler::close_span() {
  ThreadState& st = *t_state;  // open_span registered the state
  const std::size_t depth = --st.depth;
  if (depth >= kMaxDepth) return;  // the matching open was dropped
  const ThreadState::OpenSpan& span = st.stack[depth];
  ProfileEvent ev;
  ev.path = span.path;
  ev.depth = static_cast<std::uint32_t>(depth);
  ev.tid = st.tid;
  ev.start_ns = span.start_ns;
  ev.dur_ns = now_ns() - span.start_ns;
  ev.counters = span.counters;
  st.append(ev);
}

void Profiler::attach_counter(const char* name, std::uint64_t value) {
  ThreadState* st = t_state;
  if (st == nullptr || st->depth == 0) return;  // no open span
  if (st->depth > kMaxDepth) {
    instance().dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& counters = st->stack[st->depth - 1].counters;
  for (auto& c : counters) {
    if (c.name == name) {
      c.value += value;
      return;
    }
    if (c.name == nullptr) {
      c = {name, value};
      return;
    }
  }
  instance().dropped_.fetch_add(1, std::memory_order_relaxed);
}

ProfileData Profiler::drain() {
  ProfileData out;
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (const auto& st : g_states) {
    const std::uint64_t published =
        st->published.load(std::memory_order_acquire);
    if (st->drain_chunk == nullptr) {
      st->drain_chunk = st->head.get();
      st->drain_offset = 0;
    }
    while (st->drained < published && st->drain_chunk != nullptr) {
      if (st->drain_offset == ThreadState::Chunk::kCap) {
        st->drain_chunk =
            st->drain_chunk->next.load(std::memory_order_acquire);
        st->drain_offset = 0;
        continue;
      }
      out.events.push_back(st->drain_chunk->events[st->drain_offset]);
      ++st->drain_offset;
      ++st->drained;
    }
  }
  out.paths = snapshot_paths();
  return out;
}

std::vector<std::string> Profiler::thread_span_stack() {
  std::vector<std::string> out;
  const ThreadState* st = t_state;
  if (st == nullptr) return out;
  const std::size_t depth = std::min(st->depth, kMaxDepth);
  out.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i)
    out.emplace_back(st->stack[i].name);
  return out;
}

ProfileSummary summarize_profile(const ProfileData& data, bool zero_times) {
  ProfileSummary out;
  std::map<std::string, std::vector<double>> durations;
  std::vector<std::uint32_t> tids;
  for (const ProfileEvent& ev : data.events) {
    const std::string& path = data.paths.at(ev.path);
    const double ms = static_cast<double>(ev.dur_ns) / 1e6;
    durations[path].push_back(ms);
    ProfileSummary::PerPath& agg = out.spans[path];
    ++agg.count;
    for (const auto& c : ev.counters) {
      if (c.name == nullptr) break;
      agg.counters[c.name] += c.value;
    }
    if (ev.depth == 0) out.attributed_ms += ms;
    tids.push_back(ev.tid);
  }
  std::sort(tids.begin(), tids.end());
  out.threads =
      static_cast<std::size_t>(std::unique(tids.begin(), tids.end()) -
                               tids.begin());

  for (auto& [path, agg] : out.spans) {
    const std::vector<double>& ms = durations[path];
    double total = 0.0, lo = ms.front(), hi = ms.front();
    for (const double d : ms) {
      total += d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    agg.total_ms = total;
    agg.min_ms = lo;
    agg.max_ms = hi;
    // Quantiles through the shared fixed-bin Histogram (64 bins over the
    // observed range; a widened top edge keeps the max in the last bin).
    Histogram hist(0.0, hi > 0.0 ? hi * 1.000001 : 1.0, 64);
    for (const double d : ms) hist.add(d);
    agg.p50_ms = hist.quantile(0.50);
    agg.p95_ms = hist.quantile(0.95);
  }

  if (zero_times) {
    out.attributed_ms = 0.0;
    for (auto& [path, agg] : out.spans) {
      agg.total_ms = 0.0;
      agg.min_ms = 0.0;
      agg.max_ms = 0.0;
      agg.p50_ms = 0.0;
      agg.p95_ms = 0.0;
    }
  }
  return out;
}

Json to_json(const ProfileSummary& summary) {
  Json spans = Json::object();
  for (const auto& [path, agg] : summary.spans) {
    Json entry = Json::object()
                     .set("count", Json(agg.count))
                     .set("total_ms", Json(agg.total_ms))
                     .set("min_ms", Json(agg.min_ms))
                     .set("max_ms", Json(agg.max_ms))
                     .set("p50_ms", Json(agg.p50_ms))
                     .set("p95_ms", Json(agg.p95_ms));
    if (!agg.counters.empty()) {
      Json counters = Json::object();
      for (const auto& [name, value] : agg.counters)
        counters.set(name, Json(value));
      entry.set("counters", std::move(counters));
    }
    spans.set(path, std::move(entry));
  }
  return Json::object()
      .set("spans", std::move(spans))
      .set("attributed_ms", Json(summary.attributed_ms))
      .set("threads", Json(summary.threads));
}

Json chrome_trace_json(const ProfileData& data) {
  Json events = Json::array();

  // Thread-name metadata first, so Perfetto labels the tracks.
  std::vector<std::uint32_t> tids;
  for (const ProfileEvent& ev : data.events) tids.push_back(ev.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    events.push_back(
        Json::object()
            .set("name", Json("thread_name"))
            .set("ph", Json("M"))
            .set("pid", Json(1))
            .set("tid", Json(tid))
            .set("args", Json::object().set(
                             "name", Json("mhp-" + std::to_string(tid)))));
  }

  for (const ProfileEvent& ev : data.events) {
    Json entry = Json::object()
                     .set("name", Json(data.paths.at(ev.path)))
                     .set("cat", Json("mhp"))
                     .set("ph", Json("X"))
                     .set("pid", Json(1))
                     .set("tid", Json(ev.tid))
                     .set("ts", Json(static_cast<double>(ev.start_ns) / 1e3))
                     .set("dur", Json(static_cast<double>(ev.dur_ns) / 1e3));
    bool any = false;
    Json args = Json::object();
    for (const auto& c : ev.counters) {
      if (c.name == nullptr) break;
      args.set(c.name, Json(c.value));
      any = true;
    }
    if (any) entry.set("args", std::move(args));
    events.push_back(std::move(entry));
  }

  return Json::object()
      .set("displayTimeUnit", Json("ms"))
      .set("traceEvents", std::move(events));
}

}  // namespace mhp::obs
