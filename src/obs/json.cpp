#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>

namespace mhp::obs {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::logic_error(std::string("Json: value is not ") + wanted);
}

}  // namespace

Json::Json(unsigned long v) {
  if (v > static_cast<unsigned long>(std::numeric_limits<std::int64_t>::max()))
    throw std::overflow_error("Json: unsigned value exceeds int64 range");
  type_ = Type::kInt;
  int_ = static_cast<std::int64_t>(v);
}

Json::Json(unsigned long long v) {
  if (v > static_cast<unsigned long long>(
              std::numeric_limits<std::int64_t>::max()))
    throw std::overflow_error("Json: unsigned value exceeds int64 range");
  type_ = Type::kInt;
  int_ = static_cast<std::int64_t>(v);
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) {
    // int64 covers [-2^63, 2^63); both bounds are exact doubles, and the
    // half-open test keeps the cast defined (2^63 itself must throw).
    // NaN fails the comparison and lands in out_of_range too.
    if (!(double_ >= -0x1p63 && double_ < 0x1p63))
      throw std::out_of_range("Json: double value outside int64 range");
    if (std::trunc(double_) != double_) type_error("an integer");
    return static_cast<std::int64_t>(double_);
  }
  type_error("a number");
}

std::uint64_t Json::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0) throw std::out_of_range("Json: negative value read as uint");
  return static_cast<std::uint64_t>(v);
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("a string");
  return string_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("an array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("an array");
  return array_.at(index);
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

Json* Json::find(const std::string& key) {
  return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr)
    throw std::out_of_range("Json: no key \"" + key + "\"");
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) type_error("an object");
  return object_;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_int(std::ostream& os, std::int64_t v) {
  // to_chars, not operator<<: a grouping std::locale imbued globally
  // would render 10000 as "10,000" through the stream.
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  os << std::string_view(buf, static_cast<std::size_t>(end - buf));
  static_cast<void>(ec);  // int64 always fits in 24 chars
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    os << "null";
    return;
  }
  // to_chars(general, 17) is specified as printf "%.17g" in the C locale,
  // so the bytes match the old snprintf output everywhere while ignoring
  // the global locale's decimal point.
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::general, 17);
  static_cast<void>(ec);  // 40 chars cover every %.17g rendering
  const std::string_view sv(buf, static_cast<std::size_t>(end - buf));
  os << sv;
  // Keep a number marker so the value parses back as a double.
  if (sv.find_first_of(".eE") == std::string_view::npos) os << ".0";
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kInt:
      write_int(os, int_);
      break;
    case Type::kDouble:
      write_double(os, double_);
      break;
    case Type::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        if (indent >= 0) write_newline_indent(os, indent, depth + 1);
        array_[i].write_impl(os, indent, depth + 1);
      }
      if (indent >= 0) write_newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) os << ',';
        first = false;
        if (indent >= 0) write_newline_indent(os, indent, depth + 1);
        os << '"' << json_escape(k) << "\":";
        if (indent >= 0) os << ' ';
        v.write_impl(os, indent, depth + 1);
      }
      if (indent >= 0) write_newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Json& value) {
  value.write(os);
  return os;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    // line:column (1-based) so editors can jump straight to the fault;
    // the byte offset is kept for tooling that indexes the raw text.
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonParseError("JSON parse error at offset " +
                             std::to_string(pos_) + " (line " +
                             std::to_string(line) + ", column " +
                             std::to_string(column) + "): " + what,
                         pos_, line, column);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a value");
    // from_chars, not stod/stoll: locale-independent, no ERANGE throw on
    // subnormals, and the whole-token check below rejects malformed
    // shapes the scanner's character class admits ("1..2", "1e+5e-2",
    // "1e") instead of silently parsing a prefix.
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_double) {
      double v = 0.0;
      const auto [p, ec] = std::from_chars(first, last, v);
      if (p != last || ec != std::errc{})
        fail("bad number \"" + std::string(first, last) + "\"");
      return Json(v);
    }
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(first, last, v);
    if (p != last || ec != std::errc{})
      fail("bad number \"" + std::string(first, last) + "\"");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mhp::obs
