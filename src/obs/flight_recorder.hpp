// Crash flight recorder: while armed, any MHP_REQUIRE / MHP_ENSURE
// failure dumps post-mortem state — the failing contract, the tail of
// the runtime's trace ring and a metrics snapshot — before the
// ContractViolation propagates.  Attach one around a run you are
// debugging; the dump lands on stderr (or Options::out) exactly once
// per recorder, so a cascade of failures doesn't flood the log.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "util/assertx.hpp"

namespace mhp {
class SimRuntime;
}

namespace mhp::obs {

class FlightRecorder {
 public:
  struct Options {
    /// How many of the newest trace entries the dump includes.
    std::size_t tail_entries = 64;
    /// Dump destination; nullptr means stderr.
    std::ostream* out = nullptr;
  };

  /// Arms a contract-failure hook observing `rt`.  The runtime must
  /// outlive the recorder.
  explicit FlightRecorder(const SimRuntime& rt) : FlightRecorder(rt, Options{}) {}
  FlightRecorder(const SimRuntime& rt, Options opts);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Write the post-mortem (trace tail + metrics snapshot) to `os`.
  /// Called automatically on contract failure; public so tooling can
  /// trigger a dump on its own signal.
  void dump(std::ostream& os, const ContractFailureInfo* info = nullptr) const;

  bool dumped() const { return dumped_; }

 private:
  const SimRuntime& rt_;
  Options opts_;
  int hook_token_ = -1;
  bool dumped_ = false;
};

}  // namespace mhp::obs
