#include "obs/report_json.hpp"

#include <fstream>
#include <iostream>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"

namespace mhp::obs {

namespace {

/// Regroup every "base{node=N}" series of `snap` under one object:
/// {"node.energy_j": {"0": 1.2, "1": 0.9, ...}, ...}.  Keys are node ids
/// as strings (JSON object keys must be strings).
Json per_node_json(const MetricsSnapshot& snap) {
  Json out = Json::object();
  auto add_series = [&out](const std::string& base, const auto& by_node) {
    if (by_node.empty()) return;
    Json series = Json::object();
    for (const auto& [node, value] : by_node)
      series.set(std::to_string(node), Json(value));
    out.set(base, std::move(series));
  };
  for (const char* base :
       {metric::kNodeEnergyJ, metric::kNodeAwakeS, metric::kNodeRelayed,
        metric::kNodeFramesTx}) {
    add_series(base, snap.labeled_counters(base));
    add_series(base, snap.labeled_gauges(base));
  }
  return out;
}

}  // namespace

Json to_json(const MetricsSnapshot& snap) {
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters)
    counters.set(name, Json(value));

  Json gauges = Json::object();
  for (const auto& [name, g] : snap.gauges)
    gauges.set(name,
               Json::object().set("last", Json(g.last)).set("mean",
                                                            Json(g.mean)));

  Json histograms = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    Json entry = Json::object()
                     .set("count", Json(h.count))
                     .set("mean", Json(h.mean))
                     .set("min", Json(h.min))
                     .set("max", Json(h.max))
                     .set("p50", Json(h.p50))
                     .set("p95", Json(h.p95))
                     .set("p99", Json(h.p99));
    // Only when samples were actually rejected, so healthy reports keep
    // their exact pre-existing shape.
    if (h.dropped > 0) entry.set("dropped", Json(h.dropped));
    histograms.set(name, std::move(entry));
  }

  return Json::object()
      .set("at_s", Json(snap.at.to_seconds()))
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms))
      .set("per_node", per_node_json(snap));
}

Json to_json(const RunStats& stats) {
  return Json::object()
      .set("measured_seconds", Json(stats.measured_seconds))
      .set("offered_bps", Json(stats.offered_bps))
      .set("throughput_bps", Json(stats.throughput_bps))
      .set("delivery_ratio", Json(stats.delivery_ratio))
      .set("packets_generated", Json(stats.packets_generated))
      .set("packets_delivered", Json(stats.packets_delivered))
      .set("mean_active_fraction", Json(stats.mean_active_fraction))
      .set("mean_latency_s", Json(stats.mean_latency_s))
      .set("latency_p50_s", Json(stats.latency_p50_s))
      .set("latency_p95_s", Json(stats.latency_p95_s))
      .set("latency_p99_s", Json(stats.latency_p99_s))
      .set("queue_depth_p50", Json(stats.queue_depth_p50))
      .set("queue_depth_p95", Json(stats.queue_depth_p95))
      .set("queue_depth_p99", Json(stats.queue_depth_p99))
      .set("run", Json::object()
                      .set("wall_seconds", Json(stats.wall_seconds))
                      .set("events_processed", Json(stats.events_processed))
                      .set("events_per_sec", Json(stats.events_per_sec)))
      .set("metrics", to_json(stats.metrics));
}

Json to_json(const OracleCacheStats& oracle) {
  return Json::object()
      .set("hits", Json(oracle.hits))
      .set("misses", Json(oracle.misses))
      .set("screened", Json(oracle.screened))
      .set("entries", Json(oracle.entries))
      .set("hit_rate", Json(oracle.hit_rate()));
}

Json to_json(const DegradationReport& deg) {
  Json dead = Json::array();
  for (const NodeId node : deg.dead_nodes) dead.push_back(Json(node));
  return Json::object()
      .set("deaths", Json(deg.deaths))
      .set("deaths_detected", Json(deg.deaths_detected))
      .set("replans", Json(deg.replans))
      .set("orphaned_sensors", Json(deg.orphaned_sensors))
      .set("dead_nodes", std::move(dead))
      .set("delivery_before", Json(deg.delivery_before))
      .set("delivery_after", Json(deg.delivery_after));
}

Json to_json(const SimulationReport& report) {
  Json body = to_json(static_cast<const RunStats&>(report));
  body.set("packets_lost", Json(report.packets_lost))
      .set("max_active_fraction", Json(report.max_active_fraction))
      .set("mean_sensor_power_w", Json(report.mean_sensor_power_w))
      .set("max_sensor_power_w", Json(report.max_sensor_power_w))
      .set("mean_duty_seconds", Json(report.mean_duty_seconds))
      .set("sectors", Json(report.sectors));
  // Only faulted runs carry the key: fault-free documents stay
  // byte-identical to pre-fault builds.
  if (report.degradation)
    body.set("degradation", to_json(*report.degradation));
  // Likewise, only cached-oracle runs carry the cache block.
  if (report.oracle) body.set("oracle", to_json(*report.oracle));
  return report_envelope("polling", std::move(body));
}

Json to_json(const SmacReport& report) {
  Json body = to_json(static_cast<const RunStats&>(report));
  body.set("packets_dropped", Json(report.packets_dropped))
      .set("control_frames", Json(report.control_frames))
      .set("rreq_floods", Json(report.rreq_floods))
      .set("mac_failures", Json(report.mac_failures));
  if (report.degradation)
    body.set("degradation", to_json(*report.degradation));
  return report_envelope("smac", std::move(body));
}

Json to_json(const MultiClusterReport& report) {
  Json per_cluster = Json::array();
  for (std::size_t c = 0; c < report.delivery_ratio.size(); ++c) {
    Json cluster = Json::object();
    cluster.set("cluster", Json(c))
        .set("delivery_ratio", Json(report.delivery_ratio[c]));
    if (c < report.mean_active.size())
      cluster.set("mean_active", Json(report.mean_active[c]));
    per_cluster.push_back(std::move(cluster));
  }
  Json body = Json::object()
                  .set("aggregate_delivery", Json(report.aggregate_delivery))
                  .set("aggregate_throughput_bps",
                       Json(report.aggregate_throughput_bps))
                  .set("channels_used", Json(report.channels_used))
                  .set("clusters", std::move(per_cluster))
                  .set("totals", to_json(report.totals));
  if (report.degradation)
    body.set("degradation", to_json(*report.degradation));
  if (report.oracle) body.set("oracle", to_json(*report.oracle));
  return report_envelope("multi_cluster", std::move(body));
}

Json to_json(const Deployment& deployment) {
  Json sensors = Json::array();
  for (std::size_t s = 0; s < deployment.num_sensors(); ++s) {
    const Vec2 p = deployment.positions[s];
    sensors.push_back(
        Json::object().set("x", Json(p.x)).set("y", Json(p.y)));
  }
  const Vec2 head = deployment.head_pos();
  return Json::object()
      .set("num_sensors", Json(deployment.num_sensors()))
      .set("head", Json::object().set("x", Json(head.x)).set("y",
                                                             Json(head.y)))
      .set("sensors", std::move(sensors));
}

Json to_json(const TraceEntry& entry) {
  return Json::object()
      .set("t_s", Json(entry.when.to_seconds()))
      .set("cat", Json(to_string(entry.cat)))
      .set("text", Json(entry.text));
}

Json trace_to_json(const Trace& trace) {
  Json entries = Json::array();
  for (const TraceEntry& e : trace.entries()) entries.push_back(to_json(e));
  return Json::object()
      .set("dropped", Json(trace.dropped()))
      .set("entries", std::move(entries));
}

Json report_envelope(std::string kind, Json body) {
  return Json::object()
      .set("schema", Json(kReportSchemaVersion))
      .set("kind", Json(std::move(kind)))
      .set("report", std::move(body));
}

bool save_json(const std::string& path, const Json& value, int indent) {
  std::ofstream out(path);
  if (out.is_open()) {
    value.write(out, indent);
    out << '\n';
  }
  if (!out.good()) {
    std::cerr << "note: failed to write JSON to " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace mhp::obs
