// Load-balanced relaying paths via the paper's network-flow formalization
// (§III-A).
//
// Each sensor i becomes an input node iᵢ and output node oᵢ with an arc
// iᵢ→oᵢ of capacity δ·wᵢ (wᵢ = relative node capacity, all 1 unless sensor
// energy levels differ).  Sensor links become uncapacitated oᵢ→iⱼ arcs;
// first-level sensors get oᵢ→t; a super-source feeds each iᵢ with that
// sensor's per-cycle packet demand.  The smallest δ whose max-flow equals
// total demand is the minimized maximum sensor load; decomposing the flow
// yields each sensor's relaying paths with per-path flow units (used by
// multiple-path rotation, §V-D).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/max_flow.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"

namespace mhp {

/// One relaying path: hops[0] is the originating sensor, subsequent hops
/// are relays, hops.back() is the cluster head.  `units` is the flow the
/// path carries (packets per cycle routed this way).
struct UnitPath {
  std::vector<NodeId> hops;
  std::int64_t units = 0;

  std::size_t hop_count() const { return hops.size() - 1; }
};

struct MinMaxLoadResult {
  bool feasible = false;
  /// δ*: the minimized maximum sensor load (packets sent per cycle,
  /// own + relayed), scaled by node weight where weights differ.
  std::int64_t max_load = 0;
  /// paths[s]: the relaying paths carrying sensor s's demand (empty for
  /// zero-demand sensors).
  std::vector<std::vector<UnitPath>> paths;
  /// load[s]: packets sensor s transmits per cycle (own + relayed).
  std::vector<std::int64_t> load;
};

/// Solve min-max-load routing.  `demand[s]` >= 0 packets per duty cycle.
/// `weight[s]` (optional, default all-1) scales sensor s's capacity:
/// sensors with more energy may carry proportionally more load.
/// Defined in src/route/shims.cpp as a forwarder onto
/// route::RoutingEngine, which owns the solver implementation.
MinMaxLoadResult solve_min_max_load(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand,
    const std::vector<std::int64_t>& weight = {},
    MaxFlowAlgo algo = MaxFlowAlgo::kDinic);

/// Baseline for the routing ablation: BFS shortest-path (min hop) routing,
/// parents chosen arbitrarily (lowest id).  Same result shape.
MinMaxLoadResult solve_shortest_path_routing(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand);

}  // namespace mhp
