// Max-flow solvers over FlowNetwork.
//
// The paper invokes Ford–Fulkerson for the min-max-load routing problem;
// we provide Edmonds–Karp (the BFS Ford–Fulkerson, O(VE²)) and Dinic
// (O(V²E), much faster in practice) and cross-check them in tests.
#pragma once

#include "flow/flow_network.hpp"

namespace mhp {

enum class MaxFlowAlgo { kEdmondsKarp, kDinic };

/// Compute a maximum s→t flow; the flow assignment is left on `net`
/// (query via FlowNetwork::flow).  Existing flow is cleared first.
FlowNetwork::Cap max_flow(FlowNetwork& net, int s, int t,
                          MaxFlowAlgo algo = MaxFlowAlgo::kDinic);

}  // namespace mhp
