#include "flow/max_flow.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/assertx.hpp"

namespace mhp {

namespace {

using Cap = FlowNetwork::Cap;

Cap edmonds_karp(FlowNetwork& net, int s, int t) {
  Cap total = 0;
  const int n = net.num_nodes();
  std::vector<int> pred_arc(n);
  for (;;) {
    // BFS for a shortest augmenting path in the residual graph.
    std::fill(pred_arc.begin(), pred_arc.end(), -1);
    std::queue<int> q;
    q.push(s);
    pred_arc[s] = -2;
    bool found = false;
    while (!q.empty() && !found) {
      const int v = q.front();
      q.pop();
      for (int e : net.arcs_out(v)) {
        const int w = net.arc_to(e);
        if (pred_arc[w] == -1 && net.residual(e) > 0) {
          pred_arc[w] = e;
          if (w == t) {
            found = true;
            break;
          }
          q.push(w);
        }
      }
    }
    if (!found) return total;
    // Bottleneck along the path.
    Cap bottleneck = FlowNetwork::kInfinite;
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      bottleneck = std::min(bottleneck, net.residual(e));
      v = net.arc_from(e);
    }
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      net.push(e, bottleneck);
      v = net.arc_from(e);
    }
    total += bottleneck;
  }
}

class Dinic {
 public:
  Dinic(FlowNetwork& net, int s, int t) : net_(net), s_(s), t_(t) {}

  Cap run() {
    Cap total = 0;
    while (bfs_levels()) {
      iter_.assign(static_cast<std::size_t>(net_.num_nodes()), 0);
      for (;;) {
        const Cap pushed = dfs(s_, FlowNetwork::kInfinite);
        if (pushed == 0) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool bfs_levels() {
    level_.assign(static_cast<std::size_t>(net_.num_nodes()), -1);
    std::queue<int> q;
    level_[s_] = 0;
    q.push(s_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int e : net_.arcs_out(v)) {
        const int w = net_.arc_to(e);
        if (level_[w] < 0 && net_.residual(e) > 0) {
          level_[w] = level_[v] + 1;
          q.push(w);
        }
      }
    }
    return level_[t_] >= 0;
  }

  Cap dfs(int v, Cap limit) {
    if (v == t_) return limit;
    const auto& arcs = net_.arcs_out(v);
    for (auto& i = iter_[static_cast<std::size_t>(v)];
         i < arcs.size(); ++i) {
      const int e = arcs[i];
      const int w = net_.arc_to(e);
      if (net_.residual(e) <= 0 || level_[w] != level_[v] + 1) continue;
      const Cap pushed = dfs(w, std::min(limit, net_.residual(e)));
      if (pushed > 0) {
        net_.push(e, pushed);
        return pushed;
      }
    }
    return 0;
  }

  FlowNetwork& net_;
  int s_, t_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace

FlowNetwork::Cap max_flow(FlowNetwork& net, int s, int t, MaxFlowAlgo algo) {
  MHP_REQUIRE(s >= 0 && s < net.num_nodes() && t >= 0 && t < net.num_nodes(),
              "terminal out of range");
  MHP_REQUIRE(s != t, "source equals sink");
  net.reset_flow();
  switch (algo) {
    case MaxFlowAlgo::kEdmondsKarp:
      return edmonds_karp(net, s, t);
    case MaxFlowAlgo::kDinic:
      return Dinic(net, s, t).run();
  }
  return 0;
}

}  // namespace mhp
