#include "flow/flow_network.hpp"

#include "util/assertx.hpp"

namespace mhp {

int FlowNetwork::add_node() {
  out_.emplace_back();
  return num_nodes() - 1;
}

int FlowNetwork::add_nodes(int count) {
  MHP_REQUIRE(count >= 0, "negative node count");
  const int first = num_nodes();
  for (int i = 0; i < count; ++i) out_.emplace_back();
  return first;
}

int FlowNetwork::add_arc(int u, int v, Cap cap) {
  MHP_REQUIRE(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
              "arc endpoint out of range");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  const int e = num_arcs();
  from_.push_back(u);
  to_.push_back(v);
  cap_.push_back(cap);
  cap_init_.push_back(cap);
  out_[u].push_back(e);
  // Residual twin.
  from_.push_back(v);
  to_.push_back(u);
  cap_.push_back(0);
  cap_init_.push_back(0);
  out_[v].push_back(e + 1);
  return e;
}

void FlowNetwork::push(int e, Cap amount) {
  MHP_REQUIRE(e >= 0 && e < num_arcs(), "arc out of range");
  MHP_REQUIRE(amount >= 0 && amount <= cap_[e], "push exceeds residual");
  cap_[e] -= amount;
  cap_[e ^ 1] += amount;
}

void FlowNetwork::set_capacity_and_reset(int e, Cap cap) {
  MHP_REQUIRE(e >= 0 && e < num_arcs() && (e % 2) == 0,
              "capacity only settable on forward arcs");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  cap_init_[e] = cap;
  reset_flow();
}

}  // namespace mhp
