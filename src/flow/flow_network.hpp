// Directed flow network with residual arcs.
//
// Arcs are stored in a flat array; arc 2k and its residual twin 2k+1 are
// adjacent (the classic xor-pairing).  Capacities are 64-bit integers with
// kInfinite for uncapacitated arcs.
#pragma once

#include <cstdint>
#include <vector>

namespace mhp {

class FlowNetwork {
 public:
  using Cap = std::int64_t;
  static constexpr Cap kInfinite = INT64_MAX / 4;

  int add_node();
  int add_nodes(int count);
  int num_nodes() const { return static_cast<int>(out_.size()); }

  /// Add a directed arc u→v with capacity `cap`; returns the arc id used
  /// to query flow later.  The residual twin is arc id ^ 1.
  int add_arc(int u, int v, Cap cap);
  int num_arcs() const { return static_cast<int>(to_.size()); }

  int arc_from(int e) const { return from_[e]; }
  int arc_to(int e) const { return to_[e]; }
  Cap capacity(int e) const { return cap_init_[e]; }
  Cap residual(int e) const { return cap_[e]; }
  /// Net flow pushed over arc e (0..capacity for forward arcs).
  Cap flow(int e) const { return cap_init_[e] - cap_[e]; }

  /// Arc ids (forward and residual) leaving node v.
  const std::vector<int>& arcs_out(int v) const { return out_[v]; }

  /// Consume `amount` of residual capacity on arc e, crediting the twin.
  void push(int e, Cap amount);

  /// Zero all flow, restoring initial capacities.
  void reset_flow() { cap_ = cap_init_; }

  /// Change a forward arc's capacity and clear all flow (capacity changes
  /// are only meaningful between solver runs).
  void set_capacity_and_reset(int e, Cap cap);

 private:
  std::vector<int> from_;
  std::vector<int> to_;
  std::vector<Cap> cap_;       // residual capacity
  std::vector<Cap> cap_init_;  // original capacity
  std::vector<std::vector<int>> out_;
};

}  // namespace mhp
