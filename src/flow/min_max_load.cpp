#include "flow/min_max_load.hpp"

#include <algorithm>
#include <numeric>

#include "util/assertx.hpp"

namespace mhp {

namespace {

using Cap = FlowNetwork::Cap;

/// Node layout inside the flow network for n sensors:
///   source = 0, sink t = 1, input(s) = 2 + 2s, output(s) = 3 + 2s.
struct Layout {
  static int source() { return 0; }
  static int sink() { return 1; }
  static int input(NodeId s) { return 2 + 2 * static_cast<int>(s); }
  static int output(NodeId s) { return 3 + 2 * static_cast<int>(s); }
  static bool is_input(int v) { return v >= 2 && (v - 2) % 2 == 0; }
  static NodeId sensor_of(int v) { return static_cast<NodeId>((v - 2) / 2); }
};

struct BuiltNetwork {
  FlowNetwork net;
  std::vector<int> demand_arc;    // per sensor: source→input arc (-1 if 0)
  std::vector<int> capacity_arc;  // per sensor: input→output arc
};

BuiltNetwork build(const ClusterTopology& topo,
                   const std::vector<Cap>& demand,
                   const std::vector<Cap>& weight, Cap delta) {
  const std::size_t n = topo.num_sensors();
  BuiltNetwork b;
  b.net.add_nodes(2 + 2 * static_cast<int>(n));
  b.demand_arc.assign(n, -1);
  b.capacity_arc.assign(n, -1);
  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] > 0)
      b.demand_arc[s] =
          b.net.add_arc(Layout::source(), Layout::input(s), demand[s]);
    b.capacity_arc[s] =
        b.net.add_arc(Layout::input(s), Layout::output(s), delta * weight[s]);
    if (topo.head_hears(s))
      b.net.add_arc(Layout::output(s), Layout::sink(),
                    FlowNetwork::kInfinite);
  }
  for (NodeId a = 0; a < n; ++a)
    for (NodeId bb : topo.sensor_links().neighbors(a))
      b.net.add_arc(Layout::output(a), Layout::input(bb),
                    FlowNetwork::kInfinite);
  return b;
}

/// Find one cycle of positive flow via DFS (white/gray/black colouring)
/// and cancel it.  Returns false when the flow graph is acyclic.
bool cancel_one_cycle(const FlowNetwork& net, std::vector<Cap>& remaining) {
  const auto n = static_cast<std::size_t>(net.num_nodes());
  std::vector<int> color(n, 0);      // 0 white, 1 gray, 2 black
  std::vector<int> entry_arc(n, -1); // DFS tree arc into each gray node

  // Iterative DFS frame: node + index into its arc list.
  struct Frame {
    int v;
    std::size_t i;
  };

  auto flows = [&](int e) {
    return (e % 2) == 0 && remaining[static_cast<std::size_t>(e)] > 0;
  };

  for (int root = 0; root < net.num_nodes(); ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto& arcs = net.arcs_out(v);
      bool descended = false;
      for (; i < arcs.size(); ++i) {
        const int e = arcs[i];
        if (!flows(e)) continue;
        const int w = net.arc_to(e);
        if (color[static_cast<std::size_t>(w)] == 1) {
          // Back arc: cycle w → … → v → w.
          std::vector<int> cycle{e};
          for (int u = v; u != w; u = net.arc_from(entry_arc[u]))
            cycle.push_back(entry_arc[u]);
          Cap m = FlowNetwork::kInfinite;
          for (int ce : cycle)
            m = std::min(m, remaining[static_cast<std::size_t>(ce)]);
          for (int ce : cycle) remaining[static_cast<std::size_t>(ce)] -= m;
          return true;
        }
        if (color[static_cast<std::size_t>(w)] == 0) {
          color[static_cast<std::size_t>(w)] = 1;
          entry_arc[w] = e;
          ++i;
          stack.push_back({w, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

/// Cancel all cycles of positive flow so the flow is acyclic (cycle flow
/// is redundant: removing it preserves value and conservation).
void cancel_cycles(const FlowNetwork& net, std::vector<Cap>& remaining) {
  while (cancel_one_cycle(net, remaining)) {
  }
}

/// Decompose the (acyclic) flow on `net` into unit paths per sensor.
std::vector<std::vector<UnitPath>> decompose(FlowNetwork& net,
                                             const ClusterTopology& topo,
                                             const std::vector<Cap>& demand) {
  const std::size_t n = topo.num_sensors();
  // remaining[e]: undistributed flow on forward arc e.  The sink has no
  // outgoing forward flow, so cancel_cycles never touches s→…→t paths'
  // net balance at the terminals.
  std::vector<Cap> remaining(static_cast<std::size_t>(net.num_arcs()), 0);
  for (int e = 0; e < net.num_arcs(); e += 2)
    remaining[static_cast<std::size_t>(e)] = net.flow(e);
  cancel_cycles(net, remaining);

  auto next_arc = [&](int v) {
    for (int e : net.arcs_out(v))
      if ((e % 2) == 0 && remaining[static_cast<std::size_t>(e)] > 0)
        return e;
    return -1;
  };

  std::vector<std::vector<UnitPath>> paths(n);
  for (NodeId s = 0; s < n; ++s) {
    Cap left = demand[s];
    while (left > 0) {
      // One unit path: input(s) → … → sink.  The source→input(s) unit is
      // consumed implicitly through `left`.
      std::vector<NodeId> hops{s};
      int v = Layout::input(s);
      int steps = 0;
      while (v != Layout::sink()) {
        const int e = next_arc(v);
        MHP_ENSURE(e >= 0, "flow decomposition stuck (conservation broken)");
        MHP_ENSURE(++steps <= net.num_arcs(),
                   "flow decomposition loop (cycle survived cancellation)");
        remaining[static_cast<std::size_t>(e)] -= 1;
        v = net.arc_to(e);
        if (Layout::is_input(v) && v != Layout::input(s))
          hops.push_back(Layout::sensor_of(v));
      }
      hops.push_back(topo.head());
      // Merge with an identical existing path if any.
      auto& list = paths[s];
      auto it = std::find_if(list.begin(), list.end(), [&](const UnitPath& p) {
        return p.hops == hops;
      });
      if (it != list.end())
        it->units += 1;
      else
        list.push_back(UnitPath{std::move(hops), 1});
      left -= 1;
    }
  }
  return paths;
}

std::vector<Cap> loads_from_paths(
    const std::vector<std::vector<UnitPath>>& paths, std::size_t n) {
  std::vector<Cap> load(n, 0);
  for (const auto& plist : paths) {
    for (const auto& p : plist) {
      // Every hop except the head transmits the packet `units` times.
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i)
        load[p.hops[i]] += p.units;
    }
  }
  return load;
}

}  // namespace

MinMaxLoadResult solve_min_max_load(const ClusterTopology& topo,
                                    const std::vector<std::int64_t>& demand,
                                    const std::vector<std::int64_t>& weight,
                                    MaxFlowAlgo algo) {
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  std::vector<Cap> w = weight;
  if (w.empty()) w.assign(n, 1);
  MHP_REQUIRE(w.size() == n, "weight size mismatch");
  for (NodeId s = 0; s < n; ++s) {
    MHP_REQUIRE(demand[s] >= 0, "negative demand");
    MHP_REQUIRE(w[s] >= 1, "weights must be >= 1");
  }

  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);
  const Cap total = std::accumulate(demand.begin(), demand.end(), Cap{0});
  if (total == 0) {
    result.feasible = true;
    return result;
  }

  // Demand from a sensor with no relay path can never be routed.
  for (NodeId s = 0; s < n; ++s)
    if (demand[s] > 0 && topo.level(s) == ClusterTopology::kUnreachable)
      return result;  // infeasible

  // The most recent feasible probe, kept so the winning δ's network (flow
  // included) is decomposed directly instead of being rebuilt and
  // re-solved after the search converges.
  BuiltNetwork feasible_probe;
  Cap feasible_delta = 0;
  auto flow_at = [&](Cap delta) {
    BuiltNetwork b = build(topo, demand, w, delta);
    const Cap f = max_flow(b.net, 0, 1, algo);
    if (f >= total) {
      feasible_probe = std::move(b);
      feasible_delta = delta;
    }
    return f;
  };

  // Exponential search for a feasible δ, then binary search the minimum.
  Cap hi = 1;
  while (flow_at(hi) < total) {
    MHP_ENSURE(hi <= total * 2,
               "min-max-load search diverged: delta=" + std::to_string(hi) +
                   " infeasible with total demand " + std::to_string(total));
    hi *= 2;
  }
  Cap lo = hi / 2 + (hi == 1 ? 0 : 1);
  if (hi == 1) lo = 1;
  while (lo < hi) {
    const Cap mid = lo + (hi - lo) / 2;
    if (flow_at(mid) >= total)
      hi = mid;
    else
      lo = mid + 1;
  }

  // The search only ever lowers hi to a probed feasible δ, so the last
  // feasible probe is exactly the winner.
  MHP_ENSURE(feasible_delta == hi, "final flow lost feasibility");
  result.feasible = true;
  result.max_load = hi;
  result.paths = decompose(feasible_probe.net, topo, demand);
  result.load = loads_from_paths(result.paths, n);
  return result;
}

MinMaxLoadResult solve_shortest_path_routing(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand) {
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);

  // Parent of each sensor: the lowest-id neighbor one level closer (or the
  // head for first-level sensors).
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId s = 0; s < n; ++s) {
    if (topo.level(s) == ClusterTopology::kUnreachable) {
      if (demand[s] > 0) return result;  // infeasible
      continue;
    }
    if (topo.head_hears(s)) {
      parent[s] = topo.head();
      continue;
    }
    for (NodeId nb : topo.sensor_links().neighbors(s)) {
      if (topo.level(nb) + 1 == topo.level(s)) {
        parent[s] = nb;
        break;
      }
    }
    MHP_ENSURE(parent[s] != kNoNode, "level structure inconsistent");
  }

  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] == 0) continue;
    std::vector<NodeId> hops{s};
    NodeId v = s;
    while (v != topo.head()) {
      v = parent[v];
      hops.push_back(v);
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      result.load[hops[i]] += demand[s];
    result.paths[s].push_back(UnitPath{std::move(hops), demand[s]});
  }
  result.feasible = true;
  result.max_load =
      *std::max_element(result.load.begin(), result.load.end());
  return result;
}

}  // namespace mhp
