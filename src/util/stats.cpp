#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assertx.hpp"

namespace mhp {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::mean() const {
  MHP_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  MHP_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  MHP_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double Accumulator::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MHP_REQUIRE(hi > lo, "histogram range must be non-empty");
  MHP_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  // NaN has no bin (any comparison is false); count it as dropped rather
  // than silently misfiling it.
  if (std::isnan(x)) {
    ++dropped_;
    return;
  }
  // Clamp in floating point BEFORE the integer cast: casting a value
  // outside ptrdiff_t's range (±inf, ±1e300, ...) is undefined behaviour.
  // std::clamp handles ±inf fine, so out-of-range samples land on the
  // edge bins as documented.
  const double f = (x - lo_) / (hi_ - lo_);
  const double nb = static_cast<double>(bins());
  const double scaled = std::clamp(f * nb, 0.0, nb - 1.0);
  ++counts_[static_cast<std::size_t>(scaled)];
  ++total_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  dropped_ = 0;
}

void Histogram::merge(const Histogram& other) {
  MHP_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_ &&
                  other.bins() == bins(),
              "merging histograms of different shape");
  for (std::size_t i = 0; i < bins(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  dropped_ += other.dropped_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  MHP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  MHP_REQUIRE(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) {
    cum += static_cast<double>(counts_[i]);
    // Skip empty bins: with q == 0 the target is 0 and `cum >= target`
    // holds at bin 0 even when it is empty — the quantile must sit in
    // the first bin that actually holds mass.  (For q > 0 the extra
    // condition never changes the answer: an empty bin leaves cum
    // unchanged, so the threshold was already crossed earlier.)
    if (cum >= target && counts_[i] > 0)
      return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return 0.5 * (bin_lo(bins() - 1) + bin_hi(bins() - 1));
}

std::string Histogram::to_string(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < bins(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / std::max<std::size_t>(peak, 1);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace mhp
