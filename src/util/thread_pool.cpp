#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/assertx.hpp"

namespace mhp {

namespace {
// Pool the current thread belongs to, if any (worker threads live
// exactly as long as their pool, so a dangling read cannot happen).
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    MHP_REQUIRE(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  MHP_REQUIRE(!on_worker_thread(),
              "parallel_for re-entered from one of the pool's own workers");
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t fan = std::min(n, worker_count());
  for (std::size_t w = 0; w < fan; ++w) submit(body);
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace mhp
