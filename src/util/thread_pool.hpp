// Fixed-size thread pool used by the experiment harness to fan parameter
// sweeps across cores.  Determinism note: sweep points derive their own RNG
// seeds, so results are identical regardless of worker count or scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mhp {

class ThreadPool {
 public:
  /// `workers == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// True when the calling thread is one of this pool's workers.  Used to
  /// reject re-entrant parallel_for calls: a worker waiting in wait_idle
  /// counts itself as in flight, so the wait could never finish.
  bool on_worker_thread() const;

  /// Enqueue a task; runs at some point on a worker thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n), blocking until all complete.  Exceptions
  /// thrown by fn propagate (the first one) after all iterations finish or
  /// are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace mhp
