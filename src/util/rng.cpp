#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mhp {

double Rng::normal(double mean, double stddev) {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double rate) {
  MHP_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::split(std::uint64_t index) const {
  // Mix the current state with the index through SplitMix64 so children are
  // decorrelated from the parent and from each other.
  SplitMix64 sm(s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (index + 1)));
  Rng child(sm.next());
  return child;
}

}  // namespace mhp
