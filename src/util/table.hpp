// ASCII table and CSV emitters shared by the benchmark harnesses so every
// figure reproduction prints its series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mhp {

/// A cell is a string, an integer, or a double (printed with fixed
/// precision chosen per column).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of decimal places for double cells in column `col` (default 3).
  void set_precision(std::size_t col, int digits);

  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const Cell& at(std::size_t r, std::size_t c) const;

  /// Render as an aligned ASCII table with a header rule.
  std::string to_ascii() const;

  /// Render as CSV (RFC-4180 quoting for strings containing separators).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string format_cell(const Cell& cell, std::size_t col) const;

  std::vector<std::string> headers_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace mhp
