// Online statistics accumulators used by the metrics layer and the
// benchmark harness (means, variance via Welford, confidence intervals,
// simple fixed-bin histograms).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace mhp {

/// Welford online accumulator: numerically stable mean/variance, O(1) space.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples (±inf
/// included) clamp to the edge bins so totals are preserved.  NaN samples
/// belong to no bin and are tallied in dropped() instead.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// NaN samples rejected by add() (they belong to no bin).
  std::size_t dropped() const { return dropped_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Zero every bin, keeping the range and bin count.
  void clear();

  /// Add `other`'s counts bin by bin; ranges and bin counts must match.
  void merge(const Histogram& other);

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  double quantile(double q) const;

  std::string to_string(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace mhp
