// Deterministic, splittable random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// simulations, tests and benchmark sweeps are reproducible independently of
// thread scheduling.  Xoshiro256** is the workhorse generator; SplitMix64
// seeds it and derives independent child streams for sweep points.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assertx.hpp"

namespace mhp {

/// SplitMix64: tiny generator used to expand one seed into many.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d687020726e6721ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t n) {
    MHP_REQUIRE(n > 0, "below(0)");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    MHP_REQUIRE(lo <= hi, "range(lo > hi)");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);

  /// Derive an independent child stream (for sweep point `index`).
  Rng split(std::uint64_t index) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    MHP_REQUIRE(!v.empty(), "pick from empty vector");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace mhp
