#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assertx.hpp"

namespace mhp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), precision_(headers_.size(), 3) {
  MHP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_precision(std::size_t col, int digits) {
  MHP_REQUIRE(col < cols(), "column out of range");
  precision_[col] = digits;
}

void Table::add_row(std::vector<Cell> row) {
  MHP_REQUIRE(row.size() == cols(), "row width mismatch");
  rows_.push_back(std::move(row));
}

const Cell& Table::at(std::size_t r, std::size_t c) const {
  MHP_REQUIRE(r < rows() && c < cols(), "cell out of range");
  return rows_[r][c];
}

std::string Table::format_cell(const Cell& cell, std::size_t col) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os << *s;
  } else if (const auto* i = std::get_if<long long>(&cell)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_[col])
       << std::get<double>(cell);
  }
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(cols());
  for (std::size_t c = 0; c < cols(); ++c) width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells(rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    cells[r].resize(cols());
    for (std::size_t c = 0; c < cols(); ++c) {
      cells[r][c] = format_cell(rows_[r][c], c);
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < cols(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : cells) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < cols(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c)
      os << (c ? "," : "") << quote(format_cell(rows_[r][c], c));
    os << "\n";
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_ascii(); }

}  // namespace mhp
