#include "util/assertx.hpp"

#include <mutex>
#include <utility>
#include <vector>

namespace mhp {
namespace {

struct HookEntry {
  int token;
  std::function<void(const ContractFailureInfo&)> fn;
};

std::mutex& hook_mutex() {
  static std::mutex m;
  return m;
}

std::vector<HookEntry>& hooks() {
  static std::vector<HookEntry> h;
  return h;
}

}  // namespace

int add_contract_failure_hook(
    std::function<void(const ContractFailureInfo&)> hook) {
  static int next_token = 1;
  std::lock_guard<std::mutex> lock(hook_mutex());
  const int token = next_token++;
  hooks().push_back({token, std::move(hook)});
  return token;
}

void remove_contract_failure_hook(int token) {
  std::lock_guard<std::mutex> lock(hook_mutex());
  auto& h = hooks();
  for (auto it = h.begin(); it != h.end(); ++it) {
    if (it->token == token) {
      h.erase(it);
      return;
    }
  }
}

namespace detail {

void notify_contract_failure(const ContractFailureInfo& info) noexcept {
  // A hook whose dump itself violates a contract must not recurse.
  thread_local bool notifying = false;
  if (notifying) return;
  notifying = true;
  std::vector<std::function<void(const ContractFailureInfo&)>> snapshot;
  {
    std::lock_guard<std::mutex> lock(hook_mutex());
    for (auto it = hooks().rbegin(); it != hooks().rend(); ++it)
      snapshot.push_back(it->fn);
  }
  for (const auto& fn : snapshot) {
    try {
      fn(info);
    } catch (...) {
    }
  }
  notifying = false;
}

}  // namespace detail
}  // namespace mhp
