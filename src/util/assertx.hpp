// Runtime invariant checks that stay on in release builds.
//
// Library code uses MHP_REQUIRE for precondition violations (caller bugs)
// and MHP_ENSURE for internal invariants.  Both throw so tests can assert
// on misuse without aborting the whole test binary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mhp {

class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace mhp

#define MHP_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mhp::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (0)

#define MHP_ENSURE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mhp::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (0)
