// Runtime invariant checks that stay on in release builds.
//
// Library code uses MHP_REQUIRE for precondition violations (caller bugs)
// and MHP_ENSURE for internal invariants.  Both throw so tests can assert
// on misuse without aborting the whole test binary.
//
// Before throwing, contract_fail notifies any registered failure hooks —
// the attachment point for post-mortem tooling (obs::FlightRecorder dumps
// the trace ring tail and a metrics snapshot from such a hook).
#pragma once

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mhp {

class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// What failed, handed to every registered contract-failure hook just
/// before the ContractViolation is thrown.
struct ContractFailureInfo {
  const char* kind;  // "precondition" or "invariant"
  const char* expr;
  const char* file;
  int line;
  std::string message;
};

/// Register `hook` to run (LIFO, newest first) on every MHP_REQUIRE /
/// MHP_ENSURE failure; returns a token for remove_contract_failure_hook.
/// Hooks must not throw; anything they raise is swallowed so the original
/// ContractViolation still propagates.  Thread-safe.
int add_contract_failure_hook(
    std::function<void(const ContractFailureInfo&)> hook);
void remove_contract_failure_hook(int token);

namespace detail {
void notify_contract_failure(const ContractFailureInfo& info) noexcept;

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  notify_contract_failure({kind, expr, file, line, msg});
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace mhp

#define MHP_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mhp::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (0)

#define MHP_ENSURE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mhp::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (0)
