#include "route/flow_graph.hpp"

#include "util/assertx.hpp"

namespace mhp::route {

FlowGraph::Structure& FlowGraph::mutable_structure() {
  // A structure referenced by clones is frozen; building a new problem on
  // this graph must not mutate it under them.
  if (s_.use_count() > 1) s_ = std::make_shared<Structure>();
  return *s_;
}

void FlowGraph::reset(int num_nodes) {
  MHP_REQUIRE(num_nodes >= 0, "negative node count");
  Structure& s = mutable_structure();
  s.num_nodes = num_nodes;
  s.from.clear();
  s.to.clear();
  s.csr_built = false;
  cap_.clear();
  cap_init_.clear();
}

int FlowGraph::add_arc(int u, int v, Cap cap) {
  Structure& s = *s_;
  MHP_REQUIRE(u >= 0 && u < s.num_nodes && v >= 0 && v < s.num_nodes,
              "arc endpoint out of range");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  MHP_REQUIRE(!s.csr_built, "arc added after build_csr");
  const int e = num_arcs();
  s.from.push_back(u);
  s.to.push_back(v);
  cap_.push_back(cap);
  cap_init_.push_back(cap);
  // Residual twin.
  s.from.push_back(v);
  s.to.push_back(u);
  cap_.push_back(0);
  cap_init_.push_back(0);
  return e;
}

void FlowGraph::build_csr() {
  Structure& s = *s_;
  MHP_REQUIRE(!s.csr_built, "build_csr called twice");
  const std::size_t m = s.to.size();
  s.csr_begin.assign(static_cast<std::size_t>(s.num_nodes) + 1, 0);
  for (std::size_t e = 0; e < m; ++e) ++s.csr_begin[s.from[e] + 1];
  for (int v = 0; v < s.num_nodes; ++v) s.csr_begin[v + 1] += s.csr_begin[v];
  // Counting sort by tail node, ascending arc id within each node: the
  // per-node sequence matches push_back insertion order exactly.
  s.csr_arcs.resize(m);
  s.csr_cursor.assign(s.csr_begin.begin(), s.csr_begin.end());
  for (std::size_t e = 0; e < m; ++e)
    s.csr_arcs[static_cast<std::size_t>(s.csr_cursor[s.from[e]]++)] =
        static_cast<std::int32_t>(e);
  s.csr_built = true;
}

void FlowGraph::adopt(const FlowGraph& base) {
  MHP_REQUIRE(base.s_->csr_built, "adopt of an unfrozen graph");
  s_ = base.s_;
  cap_ = base.cap_;
  cap_init_ = base.cap_init_;
}

void FlowGraph::push(int e, Cap amount) {
  MHP_REQUIRE(e >= 0 && e < num_arcs(), "arc out of range");
  MHP_REQUIRE(amount >= 0 && amount <= cap_[static_cast<std::size_t>(e)],
              "push exceeds residual");
  cap_[static_cast<std::size_t>(e)] -= amount;
  cap_[static_cast<std::size_t>(e ^ 1)] += amount;
}

void FlowGraph::set_capacity(int e, Cap cap) {
  MHP_REQUIRE(e >= 0 && e < num_arcs() && (e % 2) == 0,
              "capacity only settable on forward arcs");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  cap_init_[static_cast<std::size_t>(e)] = cap;
}

void FlowGraph::install_flow(std::span<const Cap> fwd) {
  MHP_REQUIRE(fwd.size() * 2 == s_->to.size(), "flow snapshot size mismatch");
  for (std::size_t k = 0; k < fwd.size(); ++k) {
    const Cap f = fwd[k];
    MHP_REQUIRE(f >= 0 && f <= cap_init_[2 * k],
                "installed flow exceeds capacity");
    cap_[2 * k] = cap_init_[2 * k] - f;
    cap_[2 * k + 1] = f;
  }
}

void FlowGraph::save_flow(std::vector<Cap>& fwd) const {
  fwd.resize(s_->to.size() / 2);
  for (std::size_t k = 0; k < fwd.size(); ++k)
    fwd[k] = cap_init_[2 * k] - cap_[2 * k];
}

}  // namespace mhp::route
