#include "route/flow_graph.hpp"

#include "util/assertx.hpp"

namespace mhp::route {

void FlowGraph::reset(int num_nodes) {
  MHP_REQUIRE(num_nodes >= 0, "negative node count");
  num_nodes_ = num_nodes;
  from_.clear();
  to_.clear();
  cap_.clear();
  cap_init_.clear();
  csr_built_ = false;
}

int FlowGraph::add_arc(int u, int v, Cap cap) {
  MHP_REQUIRE(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
              "arc endpoint out of range");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  MHP_REQUIRE(!csr_built_, "arc added after build_csr");
  const int e = num_arcs();
  from_.push_back(u);
  to_.push_back(v);
  cap_.push_back(cap);
  cap_init_.push_back(cap);
  // Residual twin.
  from_.push_back(v);
  to_.push_back(u);
  cap_.push_back(0);
  cap_init_.push_back(0);
  return e;
}

void FlowGraph::build_csr() {
  MHP_REQUIRE(!csr_built_, "build_csr called twice");
  const std::size_t m = to_.size();
  csr_begin_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (std::size_t e = 0; e < m; ++e) ++csr_begin_[from_[e] + 1];
  for (int v = 0; v < num_nodes_; ++v) csr_begin_[v + 1] += csr_begin_[v];
  // Counting sort by tail node, ascending arc id within each node: the
  // per-node sequence matches push_back insertion order exactly.
  csr_arcs_.resize(m);
  csr_cursor_.assign(csr_begin_.begin(), csr_begin_.end());
  for (std::size_t e = 0; e < m; ++e)
    csr_arcs_[static_cast<std::size_t>(csr_cursor_[from_[e]]++)] =
        static_cast<std::int32_t>(e);
  csr_built_ = true;
}

void FlowGraph::push(int e, Cap amount) {
  MHP_REQUIRE(e >= 0 && e < num_arcs(), "arc out of range");
  MHP_REQUIRE(amount >= 0 && amount <= cap_[static_cast<std::size_t>(e)],
              "push exceeds residual");
  cap_[static_cast<std::size_t>(e)] -= amount;
  cap_[static_cast<std::size_t>(e ^ 1)] += amount;
}

void FlowGraph::set_capacity(int e, Cap cap) {
  MHP_REQUIRE(e >= 0 && e < num_arcs() && (e % 2) == 0,
              "capacity only settable on forward arcs");
  MHP_REQUIRE(cap >= 0, "negative capacity");
  cap_init_[static_cast<std::size_t>(e)] = cap;
}

void FlowGraph::install_flow(std::span<const Cap> fwd) {
  MHP_REQUIRE(fwd.size() * 2 == to_.size(), "flow snapshot size mismatch");
  for (std::size_t k = 0; k < fwd.size(); ++k) {
    const Cap f = fwd[k];
    MHP_REQUIRE(f >= 0 && f <= cap_init_[2 * k],
                "installed flow exceeds capacity");
    cap_[2 * k] = cap_init_[2 * k] - f;
    cap_[2 * k + 1] = f;
  }
}

void FlowGraph::save_flow(std::vector<Cap>& fwd) const {
  fwd.resize(to_.size() / 2);
  for (std::size_t k = 0; k < fwd.size(); ++k)
    fwd[k] = cap_init_[2 * k] - cap_[2 * k];
}

}  // namespace mhp::route
