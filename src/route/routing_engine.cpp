#include "route/routing_engine.hpp"

#include <algorithm>
#include <numeric>

#include "obs/profiler.hpp"
#include "util/assertx.hpp"
#include "util/thread_pool.hpp"

namespace mhp::route {

namespace {

using Cap = FlowGraph::Cap;

/// Node layout inside the flow network for n sensors:
///   source = 0, sink t = 1, input(s) = 2 + 2s, output(s) = 3 + 2s.
struct Layout {
  static int source() { return 0; }
  static int sink() { return 1; }
  static int input(NodeId s) { return 2 + 2 * static_cast<int>(s); }
  static int output(NodeId s) { return 3 + 2 * static_cast<int>(s); }
  static bool is_input(int v) { return v >= 2 && (v - 2) % 2 == 0; }
  static NodeId sensor_of(int v) { return static_cast<NodeId>((v - 2) / 2); }
};

}  // namespace

void RoutingEngine::build_network(const ClusterTopology& topo,
                                  const std::vector<Cap>& demand,
                                  const std::vector<Cap>& weight) {
  const std::size_t n = topo.num_sensors();
  g_.reset(2 + 2 * static_cast<int>(n));
  demand_arc_.assign(n, -1);
  capacity_arc_.assign(n, -1);
  sink_arc_.assign(n, -1);
  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] > 0)
      demand_arc_[s] = static_cast<std::int32_t>(
          g_.add_arc(Layout::source(), Layout::input(s), demand[s]));
    // Capacity δ·w is set per probe via set_capacity.
    capacity_arc_[s] = static_cast<std::int32_t>(
        g_.add_arc(Layout::input(s), Layout::output(s), weight[s]));
    if (topo.head_hears(s))
      sink_arc_[s] = static_cast<std::int32_t>(
          g_.add_arc(Layout::output(s), Layout::sink(), FlowGraph::kInfinite));
  }
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b : topo.sensor_links().neighbors(a))
      g_.add_arc(Layout::output(a), Layout::input(b), FlowGraph::kInfinite);
  g_.build_csr();
}

int RoutingEngine::find_link_arc(NodeId a, NodeId b) const {
  const int target = Layout::input(b);
  for (const int e : g_.arcs_out(Layout::output(a)))
    if ((e % 2) == 0 && g_.arc_to(e) == target) return e;
  return -1;
}

FlowGraph::Cap RoutingEngine::prime_from_hint(
    const std::vector<std::vector<UnitPath>>& hint) {
  const std::size_t n = capacity_arc_.size();
  Cap primed = 0;
  std::vector<int> arcs;
  for (std::size_t s = 0; s < hint.size() && s < n; ++s) {
    if (demand_arc_[s] < 0) continue;
    for (const UnitPath& p : hint[s]) {
      // hops = {s, relays..., head}; the head hop maps to the last relay's
      // sink arc, every relay hop to a link arc plus its capacity arc.
      if (p.hops.size() < 2 || p.hops.front() != static_cast<NodeId>(s))
        continue;
      arcs.clear();
      arcs.push_back(demand_arc_[s]);
      arcs.push_back(capacity_arc_[s]);
      bool ok = true;
      for (std::size_t i = 0; i + 2 < p.hops.size(); ++i) {
        const NodeId b = p.hops[i + 1];
        if (b >= n) {
          ok = false;
          break;
        }
        const int link = find_link_arc(p.hops[i], b);
        if (link < 0) {
          ok = false;
          break;
        }
        arcs.push_back(link);
        arcs.push_back(capacity_arc_[b]);
      }
      if (!ok) continue;
      const NodeId last_relay = p.hops[p.hops.size() - 2];
      if (last_relay >= n || sink_arc_[last_relay] < 0) continue;
      arcs.push_back(sink_arc_[last_relay]);
      Cap units = p.units;
      for (const int e : arcs) units = std::min(units, g_.residual(e));
      if (units <= 0) continue;
      for (const int e : arcs) g_.push(e, units);
      primed += units;
    }
  }
  return primed;
}

FlowGraph::Cap RoutingEngine::augment() {
  return policy_.algo == MaxFlowAlgo::kEdmondsKarp ? augment_edmonds_karp()
                                                   : augment_dinic();
}

FlowGraph::Cap RoutingEngine::augment_edmonds_karp() {
  const int s = Layout::source();
  const int t = Layout::sink();
  Cap total = 0;
  auto& pred_arc = level_;  // -1 unvisited, -2 source, else arc into node
  for (;;) {
    // BFS for a shortest augmenting path in the residual graph.
    pred_arc.assign(static_cast<std::size_t>(g_.num_nodes()), -1);
    queue_.clear();
    queue_.push_back(s);
    pred_arc[s] = -2;
    bool found = false;
    for (std::size_t head = 0; head < queue_.size() && !found; ++head) {
      const int v = queue_[head];
      for (const int e : g_.arcs_out(v)) {
        const int w = g_.arc_to(e);
        if (pred_arc[w] == -1 && g_.residual(e) > 0) {
          pred_arc[w] = e;
          if (w == t) {
            found = true;
            break;
          }
          queue_.push_back(w);
        }
      }
    }
    if (!found) return total;
    Cap bottleneck = FlowGraph::kInfinite;
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      bottleneck = std::min(bottleneck, g_.residual(e));
      v = g_.arc_from(e);
    }
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      g_.push(e, bottleneck);
      v = g_.arc_from(e);
    }
    total += bottleneck;
  }
}

bool RoutingEngine::dinic_bfs() {
  const int s = Layout::source();
  const int t = Layout::sink();
  level_.assign(static_cast<std::size_t>(g_.num_nodes()), -1);
  queue_.clear();
  level_[s] = 0;
  queue_.push_back(s);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const int v = queue_[head];
    for (const int e : g_.arcs_out(v)) {
      const int w = g_.arc_to(e);
      if (level_[w] < 0 && g_.residual(e) > 0) {
        level_[w] = level_[v] + 1;
        queue_.push_back(w);
      }
    }
  }
  return level_[t] >= 0;
}

FlowGraph::Cap RoutingEngine::dinic_dfs(int v, Cap limit) {
  if (v == Layout::sink()) return limit;
  const auto arcs = g_.arcs_out(v);
  for (auto& i = iter_[static_cast<std::size_t>(v)]; i < arcs.size(); ++i) {
    const int e = arcs[i];
    const int w = g_.arc_to(e);
    if (g_.residual(e) <= 0 || level_[w] != level_[v] + 1) continue;
    const Cap pushed = dinic_dfs(w, std::min(limit, g_.residual(e)));
    if (pushed > 0) {
      g_.push(e, pushed);
      return pushed;
    }
  }
  return 0;
}

FlowGraph::Cap RoutingEngine::augment_dinic() {
  Cap total = 0;
  while (dinic_bfs()) {
    iter_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
    for (;;) {
      const Cap pushed = dinic_dfs(Layout::source(), FlowGraph::kInfinite);
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

bool RoutingEngine::cancel_one_cycle() {
  const auto n = static_cast<std::size_t>(g_.num_nodes());
  color_.assign(n, 0);      // 0 white, 1 gray, 2 black
  entry_arc_.assign(n, -1); // DFS tree arc into each gray node

  // Iterative DFS frame: node + index into its arc list.
  struct Frame {
    int v;
    std::size_t i;
  };

  auto flows = [&](int e) {
    return (e % 2) == 0 && remaining_[static_cast<std::size_t>(e)] > 0;
  };

  for (int root = 0; root < g_.num_nodes(); ++root) {
    if (color_[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    color_[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto arcs = g_.arcs_out(v);
      bool descended = false;
      for (; i < arcs.size(); ++i) {
        const int e = arcs[i];
        if (!flows(e)) continue;
        const int w = g_.arc_to(e);
        if (color_[static_cast<std::size_t>(w)] == 1) {
          // Back arc: cycle w → … → v → w.
          std::vector<int> cycle{e};
          for (int u = v; u != w; u = g_.arc_from(entry_arc_[u]))
            cycle.push_back(entry_arc_[u]);
          Cap m = FlowGraph::kInfinite;
          for (const int ce : cycle)
            m = std::min(m, remaining_[static_cast<std::size_t>(ce)]);
          for (const int ce : cycle)
            remaining_[static_cast<std::size_t>(ce)] -= m;
          return true;
        }
        if (color_[static_cast<std::size_t>(w)] == 0) {
          color_[static_cast<std::size_t>(w)] = 1;
          entry_arc_[w] = e;
          ++i;
          stack.push_back({w, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color_[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

void RoutingEngine::cancel_cycles() {
  // Cycle flow is redundant: removing it preserves value and conservation.
  while (cancel_one_cycle()) {
  }
}

void RoutingEngine::decompose(const ClusterTopology& topo,
                              const std::vector<Cap>& demand,
                              MinMaxLoadResult& result) {
  MHP_SPAN("decompose");
  const std::size_t n = topo.num_sensors();
  // remaining_[e]: undistributed flow on forward arc e.  The sink has no
  // outgoing forward flow, so cancel_cycles never touches s→…→t paths'
  // net balance at the terminals.
  remaining_.assign(static_cast<std::size_t>(g_.num_arcs()), 0);
  for (int e = 0; e < g_.num_arcs(); e += 2)
    remaining_[static_cast<std::size_t>(e)] = g_.flow(e);
  cancel_cycles();

  // Monotone per-node cursors: remaining_ only decreases during the walk,
  // so skipping permanently-drained arcs returns the same first-positive
  // arc a full rescan would.
  cursor_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
  auto next_arc = [&](int v) -> int {
    const auto arcs = g_.arcs_out(v);
    auto& c = cursor_[static_cast<std::size_t>(v)];
    while (c < arcs.size()) {
      const int e = arcs[c];
      if ((e % 2) == 0 && remaining_[static_cast<std::size_t>(e)] > 0)
        return e;
      ++c;
    }
    return -1;
  };

  for (NodeId s = 0; s < n; ++s) {
    Cap left = demand[s];
    while (left > 0) {
      // One unit path: input(s) → … → sink.  The source→input(s) unit is
      // consumed implicitly through `left`.
      std::vector<NodeId> hops{s};
      int v = Layout::input(s);
      int steps = 0;
      while (v != Layout::sink()) {
        const int e = next_arc(v);
        MHP_ENSURE(e >= 0, "flow decomposition stuck (conservation broken)");
        MHP_ENSURE(++steps <= g_.num_arcs(),
                   "flow decomposition loop (cycle survived cancellation)");
        remaining_[static_cast<std::size_t>(e)] -= 1;
        v = g_.arc_to(e);
        if (Layout::is_input(v) && v != Layout::input(s))
          hops.push_back(Layout::sensor_of(v));
      }
      hops.push_back(topo.head());
      // Merge with an identical existing path if any.
      auto& list = result.paths[s];
      auto it = std::find_if(list.begin(), list.end(), [&](const UnitPath& p) {
        return p.hops == hops;
      });
      if (it != list.end())
        it->units += 1;
      else
        list.push_back(UnitPath{std::move(hops), 1});
      left -= 1;
    }
  }

  for (const auto& plist : result.paths) {
    for (const auto& p : plist) {
      // Every hop except the head transmits the packet `units` times.
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i)
        result.load[p.hops[i]] += p.units;
    }
  }
}

MinMaxLoadResult RoutingEngine::solve_balanced(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand,
    const std::vector<std::int64_t>& weight) {
  MHP_SPAN("route/solve_balanced");
  const auto* hint = hint_;
  hint_ = nullptr;  // one-shot, consumed even on early return
  stats_ = {};

  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  weight_ = weight;
  if (weight_.empty()) weight_.assign(n, 1);
  MHP_REQUIRE(weight_.size() == n, "weight size mismatch");
  for (NodeId s = 0; s < n; ++s) {
    MHP_REQUIRE(demand[s] >= 0, "negative demand");
    MHP_REQUIRE(weight_[s] >= 1, "weights must be >= 1");
  }

  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);
  const Cap total = std::accumulate(demand.begin(), demand.end(), Cap{0});
  if (total == 0) {
    result.feasible = true;
    return result;
  }

  // Demand from a sensor with no relay path can never be routed.
  for (NodeId s = 0; s < n; ++s)
    if (demand[s] > 0 && topo.level(s) == ClusterTopology::kUnreachable)
      return result;  // infeasible

  build_network(topo, demand, weight_);
  have_base_ = false;
  base_value_ = 0;

  // Analytic δ floor (never above δ*, so it only trims the search): all
  // flow crosses first-level capacity arcs (Σ δ·w must cover total) and
  // each sensor's own demand crosses its capacity arc (δ·wₛ ≥ demandₛ).
  Cap fl_weight = 0;
  for (NodeId s = 0; s < n; ++s)
    if (topo.head_hears(s)) fl_weight += weight_[s];
  Cap lb = fl_weight > 0 ? (total + fl_weight - 1) / fl_weight : 1;
  for (NodeId s = 0; s < n; ++s)
    if (demand[s] > 0)
      lb = std::max(lb, (demand[s] + weight_[s] - 1) / weight_[s]);
  if (lb < 1) lb = 1;
  stats_.delta_lower_bound = lb;

  const bool warm = policy_.warm_start;
  const auto set_caps = [&](Cap delta) {
    for (NodeId s = 0; s < n; ++s)
      g_.set_capacity(capacity_arc_[s], delta * weight_[s]);
  };

  // A warm hint is only a feasibility head start: pre-push its still-valid
  // unit paths and keep them as the first warm base.
  if (warm && hint != nullptr) {
    set_caps(lb);
    g_.clear_flow();
    const Cap primed = prime_from_hint(*hint);
    stats_.hint_units = primed;
    if (primed > 0) {
      g_.save_flow(base_flow_);
      have_base_ = true;
      base_value_ = primed;
    }
  }

  // Probe δ and return the max-flow value there.  Warm probes extend the
  // base flow (the max flow of the largest infeasible δ so far — valid
  // here because capacities only grow with δ); the value they converge to
  // is unique even though the flow assignment is not, so feasibility
  // answers — and hence δ* — match the cold search exactly.  Feasible
  // from-zero probes save their flow: it is exactly the solve the
  // decomposition contract calls for, so the final step can reuse it.
  Cap final_delta = 0;
  const auto probe = [&](Cap delta) {
    set_caps(delta);
    Cap value = 0;
    const bool from_zero = !(warm && have_base_);
    if (from_zero) {
      g_.clear_flow();
      ++stats_.cold_solves;
    } else {
      g_.install_flow(base_flow_);
      value = base_value_;
    }
    value += augment();
    ++stats_.probes;
    if (value >= total) {
      if (from_zero) {
        g_.save_flow(final_flow_);
        final_delta = delta;
      }
    } else if (warm) {
      g_.save_flow(base_flow_);
      have_base_ = true;
      base_value_ = value;
    }
    return value;
  };

  // Exponential search for a feasible δ from the floor, then binary
  // search the minimum.
  Cap hi = lb;
  Cap lo = lb;
  while (probe(hi) < total) {
    MHP_ENSURE(hi <= total * 2,
               "min-max-load search diverged: delta=" + std::to_string(hi) +
                   " infeasible with total demand " + std::to_string(total));
    lo = hi + 1;
    hi *= 2;
  }
  while (lo < hi) {
    const Cap mid = lo + (hi - lo) / 2;
    if (probe(mid) >= total)
      hi = mid;
    else
      lo = mid + 1;
  }
  stats_.delta_star = hi;

  // Decomposition contract: the flow decomposed is always the one
  // from-zero solve at δ*.  Cold mode probed δ* from zero (the search
  // only ever lowers hi to a probed feasible δ), and a warm search whose
  // very first probe won at the analytic floor ran that same solve
  // already; otherwise warm mode runs it now.  Either way both modes —
  // and the legacy solver — decompose byte-identical flows.
  set_caps(hi);
  if (final_delta == hi) {
    g_.install_flow(final_flow_);
  } else {
    MHP_ENSURE(warm, "final flow lost feasibility");
    g_.clear_flow();
    const Cap final_value = augment();
    ++stats_.cold_solves;
    MHP_ENSURE(final_value >= total, "final flow lost feasibility");
  }

  result.feasible = true;
  result.max_load = hi;
  MHP_SPAN_COUNTER("probes", stats_.probes);
  MHP_SPAN_COUNTER("cold_solves", stats_.cold_solves);
  MHP_SPAN_COUNTER("hint_units", stats_.hint_units);
  decompose(topo, demand, result);
  return result;
}

MinMaxLoadResult RoutingEngine::solve_shortest(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand) {
  MHP_SPAN("route/solve_shortest");
  stats_ = {};
  hint_ = nullptr;
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);

  // Parent of each sensor: the lowest-id neighbor one level closer (or the
  // head for first-level sensors).
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId s = 0; s < n; ++s) {
    if (topo.level(s) == ClusterTopology::kUnreachable) {
      if (demand[s] > 0) return result;  // infeasible
      continue;
    }
    if (topo.head_hears(s)) {
      parent[s] = topo.head();
      continue;
    }
    for (NodeId nb : topo.sensor_links().neighbors(s)) {
      if (topo.level(nb) + 1 == topo.level(s)) {
        parent[s] = nb;
        break;
      }
    }
    MHP_ENSURE(parent[s] != kNoNode, "level structure inconsistent");
  }

  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] == 0) continue;
    std::vector<NodeId> hops{s};
    NodeId v = s;
    while (v != topo.head()) {
      v = parent[v];
      hops.push_back(v);
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      result.load[hops[i]] += demand[s];
    result.paths[s].push_back(UnitPath{std::move(hops), demand[s]});
  }
  result.feasible = true;
  result.max_load =
      *std::max_element(result.load.begin(), result.load.end());
  return result;
}

MinMaxLoadResult RoutingEngine::solve(SolveKind kind,
                                      const ClusterTopology& topo,
                                      const std::vector<std::int64_t>& demand,
                                      const std::vector<std::int64_t>& weight) {
  return kind == SolveKind::kShortestPath ? solve_shortest(topo, demand)
                                          : solve_balanced(topo, demand, weight);
}

std::vector<MinMaxLoadResult> solve_clusters(
    std::span<const ClusterRouteJob> jobs, std::size_t workers,
    SolvePolicy policy) {
  MHP_SPAN("route/solve_clusters");
  std::vector<MinMaxLoadResult> results(jobs.size());
  const auto solve_one = [&](std::size_t i) {
    // Top-level span on its worker thread; the pool's join is the
    // quiescent point a later drain() relies on.
    MHP_SPAN("route/cluster");
    const ClusterRouteJob& job = jobs[i];
    MHP_REQUIRE(job.topo != nullptr, "cluster route job without topology");
    RoutingEngine engine(policy);
    results[i] = engine.solve(job.kind, *job.topo, job.demand, job.weight);
  };
  if (jobs.size() <= 1 || workers == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) solve_one(i);
    return results;
  }
  // Result slots are indexed by job, so scheduling order cannot reorder
  // or interleave outputs: any worker count yields identical results.
  ThreadPool pool(workers == 0 ? 0 : std::min(workers, jobs.size()));
  pool.parallel_for(jobs.size(), solve_one);
  return results;
}

}  // namespace mhp::route
