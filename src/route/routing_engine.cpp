#include "route/routing_engine.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "obs/profiler.hpp"
#include "util/assertx.hpp"
#include "util/thread_pool.hpp"

namespace mhp::route {

namespace {

using Cap = FlowGraph::Cap;

/// Node layout inside the flow network for n sensors:
///   source = 0, sink t = 1, input(s) = 2 + 2s, output(s) = 3 + 2s.
struct Layout {
  static int source() { return 0; }
  static int sink() { return 1; }
  static int input(NodeId s) { return 2 + 2 * static_cast<int>(s); }
  static int output(NodeId s) { return 3 + 2 * static_cast<int>(s); }
  static bool is_input(int v) { return v >= 2 && (v - 2) % 2 == 0; }
  static NodeId sensor_of(int v) { return static_cast<NodeId>((v - 2) / 2); }
};

}  // namespace

RoutingEngine::RoutingEngine(SolvePolicy policy) : policy_(policy) {}
RoutingEngine::~RoutingEngine() = default;

void RoutingEngine::build_network(const ClusterTopology& topo,
                                  const std::vector<Cap>& demand,
                                  const std::vector<Cap>& weight) {
  const std::size_t n = topo.num_sensors();
  g_.reset(2 + 2 * static_cast<int>(n));
  demand_arc_.assign(n, -1);
  capacity_arc_.assign(n, -1);
  sink_arc_.assign(n, -1);
  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] > 0)
      demand_arc_[s] = static_cast<std::int32_t>(
          g_.add_arc(Layout::source(), Layout::input(s), demand[s]));
    // Capacity δ·w is set per probe via set_capacity.
    capacity_arc_[s] = static_cast<std::int32_t>(
        g_.add_arc(Layout::input(s), Layout::output(s), weight[s]));
    if (topo.head_hears(s))
      sink_arc_[s] = static_cast<std::int32_t>(
          g_.add_arc(Layout::output(s), Layout::sink(), FlowGraph::kInfinite));
  }
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b : topo.sensor_links().neighbors(a))
      g_.add_arc(Layout::output(a), Layout::input(b), FlowGraph::kInfinite);
  g_.build_csr();
}

int RoutingEngine::find_link_arc(NodeId a, NodeId b) const {
  const int target = Layout::input(b);
  for (const int e : g_.arcs_out(Layout::output(a)))
    if ((e % 2) == 0 && g_.arc_to(e) == target) return e;
  return -1;
}

FlowGraph::Cap RoutingEngine::prime_from_hint(
    const std::vector<std::vector<UnitPath>>& hint) {
  const std::size_t n = capacity_arc_.size();
  Cap primed = 0;
  std::vector<int> arcs;
  for (std::size_t s = 0; s < hint.size() && s < n; ++s) {
    if (demand_arc_[s] < 0) continue;
    for (const UnitPath& p : hint[s]) {
      // hops = {s, relays..., head}; the head hop maps to the last relay's
      // sink arc, every relay hop to a link arc plus its capacity arc.
      if (p.hops.size() < 2 || p.hops.front() != static_cast<NodeId>(s))
        continue;
      arcs.clear();
      arcs.push_back(demand_arc_[s]);
      arcs.push_back(capacity_arc_[s]);
      bool ok = true;
      for (std::size_t i = 0; i + 2 < p.hops.size(); ++i) {
        const NodeId b = p.hops[i + 1];
        if (b >= n) {
          ok = false;
          break;
        }
        const int link = find_link_arc(p.hops[i], b);
        if (link < 0) {
          ok = false;
          break;
        }
        arcs.push_back(link);
        arcs.push_back(capacity_arc_[b]);
      }
      if (!ok) continue;
      const NodeId last_relay = p.hops[p.hops.size() - 2];
      if (last_relay >= n || sink_arc_[last_relay] < 0) continue;
      arcs.push_back(sink_arc_[last_relay]);
      Cap units = p.units;
      for (const int e : arcs) units = std::min(units, g_.residual(e));
      if (units <= 0) continue;
      for (const int e : arcs) g_.push(e, units);
      primed += units;
    }
  }
  return primed;
}

FlowGraph::Cap RoutingEngine::MaxFlowWork::augment(FlowGraph& g,
                                                   MaxFlowAlgo algo) {
  return algo == MaxFlowAlgo::kEdmondsKarp ? augment_edmonds_karp(g)
                                           : augment_dinic(g);
}

FlowGraph::Cap RoutingEngine::MaxFlowWork::augment_edmonds_karp(FlowGraph& g) {
  const int s = Layout::source();
  const int t = Layout::sink();
  Cap total = 0;
  auto& pred_arc = level;  // -1 unvisited, -2 source, else arc into node
  for (;;) {
    // BFS for a shortest augmenting path in the residual graph.
    pred_arc.assign(static_cast<std::size_t>(g.num_nodes()), -1);
    queue.clear();
    queue.push_back(s);
    pred_arc[s] = -2;
    bool found = false;
    for (std::size_t head = 0; head < queue.size() && !found; ++head) {
      const int v = queue[head];
      for (const int e : g.arcs_out(v)) {
        const int w = g.arc_to(e);
        if (pred_arc[w] == -1 && g.residual(e) > 0) {
          pred_arc[w] = e;
          if (w == t) {
            found = true;
            break;
          }
          queue.push_back(w);
        }
      }
    }
    if (!found) return total;
    Cap bottleneck = FlowGraph::kInfinite;
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      bottleneck = std::min(bottleneck, g.residual(e));
      v = g.arc_from(e);
    }
    for (int v = t; v != s;) {
      const int e = pred_arc[v];
      g.push(e, bottleneck);
      v = g.arc_from(e);
    }
    total += bottleneck;
  }
}

bool RoutingEngine::MaxFlowWork::dinic_bfs(FlowGraph& g) {
  const int s = Layout::source();
  const int t = Layout::sink();
  level.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  queue.clear();
  level[s] = 0;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    for (const int e : g.arcs_out(v)) {
      const int w = g.arc_to(e);
      if (level[w] < 0 && g.residual(e) > 0) {
        level[w] = level[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return level[t] >= 0;
}

FlowGraph::Cap RoutingEngine::MaxFlowWork::dinic_dfs(FlowGraph& g, int v,
                                                     Cap limit) {
  if (v == Layout::sink()) return limit;
  const auto arcs = g.arcs_out(v);
  for (auto& i = iter[static_cast<std::size_t>(v)]; i < arcs.size(); ++i) {
    const int e = arcs[i];
    const int w = g.arc_to(e);
    if (g.residual(e) <= 0 || level[w] != level[v] + 1) continue;
    const Cap pushed = dinic_dfs(g, w, std::min(limit, g.residual(e)));
    if (pushed > 0) {
      g.push(e, pushed);
      return pushed;
    }
  }
  return 0;
}

FlowGraph::Cap RoutingEngine::MaxFlowWork::augment_dinic(FlowGraph& g) {
  Cap total = 0;
  while (dinic_bfs(g)) {
    iter.assign(static_cast<std::size_t>(g.num_nodes()), 0);
    for (;;) {
      const Cap pushed = dinic_dfs(g, Layout::source(), FlowGraph::kInfinite);
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

bool RoutingEngine::cancel_one_cycle() {
  const auto n = static_cast<std::size_t>(g_.num_nodes());
  color_.assign(n, 0);      // 0 white, 1 gray, 2 black
  entry_arc_.assign(n, -1); // DFS tree arc into each gray node

  // Iterative DFS frame: node + index into its arc list.
  struct Frame {
    int v;
    std::size_t i;
  };

  auto flows = [&](int e) {
    return (e % 2) == 0 && remaining_[static_cast<std::size_t>(e)] > 0;
  };

  for (int root = 0; root < g_.num_nodes(); ++root) {
    if (color_[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    color_[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto arcs = g_.arcs_out(v);
      bool descended = false;
      for (; i < arcs.size(); ++i) {
        const int e = arcs[i];
        if (!flows(e)) continue;
        const int w = g_.arc_to(e);
        if (color_[static_cast<std::size_t>(w)] == 1) {
          // Back arc: cycle w → … → v → w.
          std::vector<int> cycle{e};
          for (int u = v; u != w; u = g_.arc_from(entry_arc_[u]))
            cycle.push_back(entry_arc_[u]);
          Cap m = FlowGraph::kInfinite;
          for (const int ce : cycle)
            m = std::min(m, remaining_[static_cast<std::size_t>(ce)]);
          for (const int ce : cycle)
            remaining_[static_cast<std::size_t>(ce)] -= m;
          return true;
        }
        if (color_[static_cast<std::size_t>(w)] == 0) {
          color_[static_cast<std::size_t>(w)] = 1;
          entry_arc_[w] = e;
          ++i;
          stack.push_back({w, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color_[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

void RoutingEngine::cancel_cycles() {
  // Cycle flow is redundant: removing it preserves value and conservation.
  while (cancel_one_cycle()) {
  }
}

void RoutingEngine::decompose(const ClusterTopology& topo,
                              const std::vector<Cap>& demand,
                              MinMaxLoadResult& result) {
  MHP_SPAN("decompose");
  const std::size_t n = topo.num_sensors();
  // remaining_[e]: undistributed flow on forward arc e.  The sink has no
  // outgoing forward flow, so cancel_cycles never touches s→…→t paths'
  // net balance at the terminals.
  remaining_.assign(static_cast<std::size_t>(g_.num_arcs()), 0);
  for (int e = 0; e < g_.num_arcs(); e += 2)
    remaining_[static_cast<std::size_t>(e)] = g_.flow(e);
  cancel_cycles();

  // Monotone per-node cursors: remaining_ only decreases during the walk,
  // so skipping permanently-drained arcs returns the same first-positive
  // arc a full rescan would.
  cursor_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
  auto next_arc = [&](int v) -> int {
    const auto arcs = g_.arcs_out(v);
    auto& c = cursor_[static_cast<std::size_t>(v)];
    while (c < arcs.size()) {
      const int e = arcs[c];
      if ((e % 2) == 0 && remaining_[static_cast<std::size_t>(e)] > 0)
        return e;
      ++c;
    }
    return -1;
  };

  for (NodeId s = 0; s < n; ++s) {
    Cap left = demand[s];
    while (left > 0) {
      // One unit path: input(s) → … → sink.  The source→input(s) unit is
      // consumed implicitly through `left`.
      std::vector<NodeId> hops{s};
      int v = Layout::input(s);
      int steps = 0;
      while (v != Layout::sink()) {
        const int e = next_arc(v);
        MHP_ENSURE(e >= 0, "flow decomposition stuck (conservation broken)");
        MHP_ENSURE(++steps <= g_.num_arcs(),
                   "flow decomposition loop (cycle survived cancellation)");
        remaining_[static_cast<std::size_t>(e)] -= 1;
        v = g_.arc_to(e);
        if (Layout::is_input(v) && v != Layout::input(s))
          hops.push_back(Layout::sensor_of(v));
      }
      hops.push_back(topo.head());
      // Merge with an identical existing path if any.
      auto& list = result.paths[s];
      auto it = std::find_if(list.begin(), list.end(), [&](const UnitPath& p) {
        return p.hops == hops;
      });
      if (it != list.end())
        it->units += 1;
      else
        list.push_back(UnitPath{std::move(hops), 1});
      left -= 1;
    }
  }

  for (const auto& plist : result.paths) {
    for (const auto& p : plist) {
      // Every hop except the head transmits the packet `units` times.
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i)
        result.load[p.hops[i]] += p.units;
    }
  }
}

FlowGraph::Cap RoutingEngine::analytic_floor(
    const ClusterTopology& topo, const std::vector<Cap>& demand) const {
  const std::size_t n = topo.num_sensors();
  // Per-level cuts: a unit path's level drops by at most 1 per hop, so
  // every unit originating at level ≥ L is transmitted by at least one
  // level-L sensor, giving Σ_{level≥L} demand ≤ δ · Σ_{level=L} weight.
  // L = 1 is the classic head cut (all flow crosses the first level).
  const std::size_t max_l = topo.max_level();
  std::vector<Cap> level_weight(max_l + 1, 0);
  std::vector<Cap> level_demand(max_l + 1, 0);
  for (NodeId s = 0; s < n; ++s) {
    const std::size_t l = topo.level(s);
    if (l == ClusterTopology::kUnreachable) continue;  // demand 0 by now
    level_weight[l] += weight_[s];
    level_demand[l] += demand[s];
  }
  Cap lb = 1;
  Cap suffix = 0;
  for (std::size_t l = max_l; l >= 1; --l) {
    suffix += level_demand[l];
    if (level_weight[l] > 0)
      lb = std::max(lb, (suffix + level_weight[l] - 1) / level_weight[l]);
  }
  // Each sensor's own demand crosses its capacity arc: δ·wₛ ≥ demandₛ.
  for (NodeId s = 0; s < n; ++s)
    if (demand[s] > 0)
      lb = std::max(lb, (demand[s] + weight_[s] - 1) / weight_[s]);
  return lb;
}

FlowGraph::Cap RoutingEngine::cell_floor_bound(const ClusterTopology& topo,
                                               const std::vector<Cap>& demand) {
  MHP_SPAN("route/cell_floor");
  const std::size_t n = topo.num_sensors();
  // Dense-remap the hint's arbitrary cell ids.
  std::vector<std::int32_t> ids = cell_hint_;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const std::size_t num_cells = ids.size();
  if (num_cells <= 1) return 0;  // one cell = the full problem; no bound
  std::vector<std::int32_t> dense(n);
  std::vector<std::int32_t> local(n);
  std::vector<std::size_t> count(num_cells, 0);
  for (NodeId s = 0; s < n; ++s) {
    dense[s] = static_cast<std::int32_t>(
        std::lower_bound(ids.begin(), ids.end(), cell_hint_[s]) - ids.begin());
    local[s] = static_cast<std::int32_t>(
        count[static_cast<std::size_t>(dense[s])]++);
  }

  // Per-cell relaxation: keep in-cell links only and let any sensor the
  // head hears OR with an out-of-cell neighbor count as a sink.  A
  // global solution's unit paths, cut at the first hop leaving the cell,
  // solve every relaxation at the global δ*, so each relaxation's
  // optimum — and hence their max — is a lower bound on δ*.
  std::vector<Graph> graphs;
  graphs.reserve(num_cells);
  std::vector<std::vector<bool>> hears(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    graphs.emplace_back(count[c]);
    hears[c].assign(count[c], false);
  }
  for (NodeId a = 0; a < n; ++a) {
    const auto c = static_cast<std::size_t>(dense[a]);
    bool boundary = topo.head_hears(a);
    for (NodeId b : topo.sensor_links().neighbors(a)) {
      if (dense[b] != dense[a])
        boundary = true;
      else if (a < b)
        graphs[c].add_edge(static_cast<NodeId>(local[a]),
                           static_cast<NodeId>(local[b]));
    }
    if (boundary) hears[c][static_cast<std::size_t>(local[a])] = true;
  }

  std::vector<ClusterTopology> topos;
  topos.reserve(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c)
    topos.emplace_back(std::move(graphs[c]), std::move(hears[c]));
  std::vector<ClusterRouteJob> jobs(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    jobs[c].topo = &topos[c];
    jobs[c].demand.assign(count[c], 0);
    jobs[c].weight.assign(count[c], 1);
  }
  for (NodeId s = 0; s < n; ++s) {
    ClusterRouteJob& job = jobs[static_cast<std::size_t>(dense[s])];
    job.demand[static_cast<std::size_t>(local[s])] = demand[s];
    job.weight[static_cast<std::size_t>(local[s])] = weight_[s];
  }

  // The worker budget parallelises ACROSS cells; the per-cell engines
  // stay serial (solve_clusters forces probe_workers = 1 for multi-job
  // batches), so there is no pool nesting.
  const auto results = solve_clusters(
      jobs, policy_.probe_workers,
      SolvePolicy{policy_.algo, policy_.warm_start, /*probe_workers=*/1});
  Cap floor = 0;
  for (const MinMaxLoadResult& r : results)
    if (r.feasible) floor = std::max(floor, r.max_load);
  MHP_SPAN_COUNTER("cells", static_cast<std::int64_t>(num_cells));
  return floor;
}

FlowGraph::Cap RoutingEngine::search_serial(std::size_t n, Cap total, Cap lb,
                                            Cap& final_delta) {
  const bool warm = policy_.warm_start;

  // Probe δ and return the max-flow value there.  Warm probes extend the
  // base flow (the max flow of the largest infeasible δ so far — valid
  // here because capacities only grow with δ); the value they converge to
  // is unique even though the flow assignment is not, so feasibility
  // answers — and hence δ* — match the cold search exactly.  Feasible
  // from-zero probes save their flow: it is exactly the solve the
  // decomposition contract calls for, so the final step can reuse it.
  const auto probe = [&](Cap delta) {
    MHP_SPAN("route/probe");
    for (NodeId s = 0; s < n; ++s)
      g_.set_capacity(capacity_arc_[s], delta * weight_[s]);
    Cap value = 0;
    const bool from_zero = !(warm && have_base_);
    if (from_zero) {
      g_.clear_flow();
      ++stats_.cold_solves;
    } else {
      g_.install_flow(base_flow_);
      value = base_value_;
    }
    value += work_.augment(g_, policy_.algo);
    ++stats_.probes;
    ++stats_.rounds;
    if (value >= total) {
      if (from_zero) {
        g_.save_flow(final_flow_);
        final_delta = delta;
      }
    } else if (warm) {
      g_.save_flow(base_flow_);
      have_base_ = true;
      base_value_ = value;
    }
    MHP_SPAN_COUNTER("delta", delta);
    MHP_SPAN_COUNTER("feasible", value >= total ? 1 : 0);
    return value;
  };

  // Gallop up from the floor with doubling GAPS (the analytic/cell floors
  // are usually tight, so small first steps beat a doubling-δ ladder),
  // clamped at δ = total, which is always feasible once every
  // demand-positive sensor is reachable: no sensor ever relays more than
  // the whole load, and capacity total·w covers that.
  Cap lo = lb;
  Cap hi = lb;
  Cap step = 1;
  while (probe(hi) < total) {
    MHP_ENSURE(hi < total,
               "min-max-load search diverged: delta=" + std::to_string(hi) +
                   " infeasible with total demand " + std::to_string(total));
    lo = hi + 1;
    hi = std::min(hi + step, total);
    step *= 2;
  }
  while (lo < hi) {
    const Cap mid = lo + (hi - lo) / 2;
    if (probe(mid) >= total)
      hi = mid;
    else
      lo = mid + 1;
  }
  return hi;
}

FlowGraph::Cap RoutingEngine::search_parallel(std::size_t n, Cap total, Cap lb,
                                              std::size_t workers,
                                              Cap& final_delta) {
  const bool warm = policy_.warm_start;
  ThreadPool& probe_pool = pool(workers);
  const std::size_t fan = std::max<std::size_t>(1, probe_pool.worker_count());
  if (slots_.size() < fan) slots_.resize(fan);
  for (std::size_t i = 0; i < fan; ++i) slots_[i].g.adopt(g_);

  // One wave of speculative probes over ascending candidates cand[0..k).
  // Probes only read the shared base flow; slot state is private, so the
  // wave is race-free, and all bookkeeping happens after the join.
  std::vector<Cap> cand;
  cand.reserve(fan);
  int last_inf = -1;   // largest infeasible candidate this round
  int first_feas = -1; // smallest feasible candidate this round
  const auto run_round = [&]() {
    const std::size_t k = cand.size();
    for (std::size_t i = 0; i < k; ++i) slots_[i].delta = cand[i];
    const bool from_base = warm && have_base_;
    probe_pool.parallel_for(k, [&](std::size_t i) {
      MHP_SPAN("route/probe");
      ProbeSlot& slot = slots_[i];
      for (NodeId s = 0; s < n; ++s)
        slot.g.set_capacity(capacity_arc_[s], slot.delta * weight_[s]);
      Cap value = 0;
      slot.from_zero = !from_base;
      if (from_base) {
        slot.g.install_flow(base_flow_);
        value = base_value_;
      } else {
        slot.g.clear_flow();
      }
      value += slot.work.augment(slot.g, policy_.algo);
      slot.value = value;
      slot.feasible = value >= total;
      MHP_SPAN_COUNTER("slot", static_cast<std::int64_t>(i));
      MHP_SPAN_COUNTER("delta", slot.delta);
      MHP_SPAN_COUNTER("feasible", slot.feasible ? 1 : 0);
    });
    ++stats_.rounds;
    stats_.probes += static_cast<int>(k);
    last_inf = -1;
    first_feas = -1;
    for (std::size_t i = 0; i < k; ++i) {
      if (slots_[i].from_zero) ++stats_.cold_solves;
      if (!slots_[i].feasible)
        last_inf = static_cast<int>(i);
      else if (first_feas < 0)
        first_feas = static_cast<int>(i);
    }
    // Feasibility is monotone in δ and candidates ascend, so the round
    // splits at one point.  The largest infeasible candidate's max flow
    // is the tightest valid warm base for every later (larger) δ.
    if (warm && last_inf >= 0) {
      ProbeSlot& b = slots_[static_cast<std::size_t>(last_inf)];
      b.g.save_flow(base_flow_);
      have_base_ = true;
      base_value_ = b.value;
    }
    // A feasible from-zero probe IS the decomposition contract's solve;
    // keep the smallest-δ one in case its δ wins the search.
    if (first_feas >= 0) {
      ProbeSlot& f = slots_[static_cast<std::size_t>(first_feas)];
      if (f.from_zero && (final_delta == 0 || f.delta < final_delta)) {
        f.g.save_flow(final_flow_);
        final_delta = f.delta;
      }
    }
  };

  Cap lo = lb;
  Cap hi = -1;
  Cap next = lb;
  Cap step = 1;

  // Seed probe: with no warm base yet, every probe of the first wave
  // would run from zero — `fan` full solves where the serial search pays
  // for one.  A single-candidate round at the floor either ends the
  // search outright (a tight cell floor often IS δ*) or installs the
  // base flow all later waves augment from.
  if (warm && !have_base_) {
    cand.assign(1, lb);
    run_round();
    if (first_feas >= 0) return lb;
    MHP_ENSURE(lb < total,
               "min-max-load search diverged: delta=" + std::to_string(lb) +
                   " infeasible with total demand " + std::to_string(total));
    lo = lb + 1;
    next = lo;
  }

  // Gallop phase: dispatch the next `fan` rungs of the gap-doubling
  // ladder (clamped at the always-feasible δ = total) as one wave.
  while (hi < 0) {
    cand.clear();
    while (cand.size() < fan) {
      cand.push_back(next);
      if (next >= total) break;
      next = std::min(next + step, total);
      step *= 2;
    }
    run_round();
    if (last_inf >= 0) {
      const Cap worst = cand[static_cast<std::size_t>(last_inf)];
      MHP_ENSURE(worst < total,
                 "min-max-load search diverged: delta=" + std::to_string(worst) +
                     " infeasible with total demand " + std::to_string(total));
      lo = worst + 1;
    }
    if (first_feas >= 0) hi = cand[static_cast<std::size_t>(first_feas)];
  }

  // Multiway bisection: k evenly spaced candidates shrink [lo, hi) by a
  // factor of k+1 per wave (vs 2 for serial bisection); when the range
  // is at most `fan`, one wave covers it entirely and the search ends.
  while (lo < hi) {
    const Cap range = hi - lo;
    const auto k = static_cast<std::size_t>(
        std::min<Cap>(static_cast<Cap>(fan), range));
    const auto q = range / static_cast<Cap>(k + 1);
    const auto r = range % static_cast<Cap>(k + 1);
    cand.clear();
    Cap prev = -1;
    for (std::size_t j = 1; j <= k; ++j) {
      // lo + floor(range·j/(k+1)), factored to dodge int64 overflow.
      const Cap c = lo + q * static_cast<Cap>(j) +
                    (r * static_cast<Cap>(j)) / static_cast<Cap>(k + 1);
      if (c != prev) cand.push_back(c);
      prev = c;
    }
    run_round();
    if (last_inf >= 0) lo = cand[static_cast<std::size_t>(last_inf)] + 1;
    if (first_feas >= 0) hi = cand[static_cast<std::size_t>(first_feas)];
  }
  return hi;
}

ThreadPool& RoutingEngine::pool(std::size_t workers) {
  if (!pool_ || pool_workers_ != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
    pool_workers_ = workers;
  }
  return *pool_;
}

MinMaxLoadResult RoutingEngine::solve_balanced(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand,
    const std::vector<std::int64_t>& weight) {
  MHP_SPAN("route/solve_balanced");
  const auto* hint = hint_;
  hint_ = nullptr;  // one-shot, consumed even on early return
  stats_ = {};

  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  weight_ = weight;
  if (weight_.empty()) weight_.assign(n, 1);
  MHP_REQUIRE(weight_.size() == n, "weight size mismatch");
  for (NodeId s = 0; s < n; ++s) {
    MHP_REQUIRE(demand[s] >= 0, "negative demand");
    MHP_REQUIRE(weight_[s] >= 1, "weights must be >= 1");
  }

  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);
  const Cap total = std::accumulate(demand.begin(), demand.end(), Cap{0});
  if (total == 0) {
    result.feasible = true;
    return result;
  }

  // Demand from a sensor with no relay path can never be routed.
  for (NodeId s = 0; s < n; ++s)
    if (demand[s] > 0 && topo.level(s) == ClusterTopology::kUnreachable)
      return result;  // infeasible

  // δ floors (never above δ*, so they only trim the search): analytic
  // level-cut/demand bounds, tightened by the per-cell relaxation when a
  // partition hint is set and the cluster is big enough to pay for it.
  Cap lb = analytic_floor(topo, demand);
  if (n >= kCellFloorMinSensors && cell_hint_.size() == n) {
    stats_.cell_floor = cell_floor_bound(topo, demand);
    lb = std::max(lb, stats_.cell_floor);
  }
  stats_.delta_lower_bound = lb;

  build_network(topo, demand, weight_);
  have_base_ = false;
  base_value_ = 0;

  // A warm hint is only a feasibility head start: pre-push its still-valid
  // unit paths and keep them as the first warm base.
  if (policy_.warm_start && hint != nullptr) {
    for (NodeId s = 0; s < n; ++s)
      g_.set_capacity(capacity_arc_[s], lb * weight_[s]);
    g_.clear_flow();
    const Cap primed = prime_from_hint(*hint);
    stats_.hint_units = primed;
    if (primed > 0) {
      g_.save_flow(base_flow_);
      have_base_ = true;
      base_value_ = primed;
    }
  }

  std::size_t workers = policy_.probe_workers;
  if (workers == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    workers = hc > 0 ? hc : 1;
  }
  Cap final_delta = 0;
  const Cap delta_star =
      workers > 1 ? search_parallel(n, total, lb, workers, final_delta)
                  : search_serial(n, total, lb, final_delta);
  stats_.delta_star = delta_star;

  // Decomposition contract: the flow decomposed is always the one
  // from-zero solve at δ*.  When some from-zero probe already ran it
  // (cold searches always have; a warm search only when its very first
  // probe won), reuse that flow; otherwise run it now.  Either way every
  // search mode — serial, parallel, warm, cold — decomposes
  // byte-identical flows.
  for (NodeId s = 0; s < n; ++s)
    g_.set_capacity(capacity_arc_[s], delta_star * weight_[s]);
  if (final_delta == delta_star) {
    g_.install_flow(final_flow_);
  } else {
    g_.clear_flow();
    const Cap final_value = work_.augment(g_, policy_.algo);
    ++stats_.cold_solves;
    MHP_ENSURE(final_value >= total, "final flow lost feasibility");
  }

  result.feasible = true;
  result.max_load = delta_star;
  MHP_SPAN_COUNTER("probes", stats_.probes);
  MHP_SPAN_COUNTER("cold_solves", stats_.cold_solves);
  MHP_SPAN_COUNTER("hint_units", stats_.hint_units);
  decompose(topo, demand, result);
  return result;
}

MinMaxLoadResult RoutingEngine::solve_shortest(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand) {
  MHP_SPAN("route/solve_shortest");
  stats_ = {};
  hint_ = nullptr;
  const std::size_t n = topo.num_sensors();
  MHP_REQUIRE(demand.size() == n, "demand size mismatch");
  MinMaxLoadResult result;
  result.paths.assign(n, {});
  result.load.assign(n, 0);

  // Parent of each sensor: the lowest-id neighbor one level closer (or the
  // head for first-level sensors).
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId s = 0; s < n; ++s) {
    if (topo.level(s) == ClusterTopology::kUnreachable) {
      if (demand[s] > 0) return result;  // infeasible
      continue;
    }
    if (topo.head_hears(s)) {
      parent[s] = topo.head();
      continue;
    }
    for (NodeId nb : topo.sensor_links().neighbors(s)) {
      if (topo.level(nb) + 1 == topo.level(s)) {
        parent[s] = nb;
        break;
      }
    }
    MHP_ENSURE(parent[s] != kNoNode, "level structure inconsistent");
  }

  for (NodeId s = 0; s < n; ++s) {
    if (demand[s] == 0) continue;
    std::vector<NodeId> hops{s};
    NodeId v = s;
    while (v != topo.head()) {
      v = parent[v];
      hops.push_back(v);
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      result.load[hops[i]] += demand[s];
    result.paths[s].push_back(UnitPath{std::move(hops), demand[s]});
  }
  result.feasible = true;
  result.max_load =
      *std::max_element(result.load.begin(), result.load.end());
  return result;
}

MinMaxLoadResult RoutingEngine::solve(SolveKind kind,
                                      const ClusterTopology& topo,
                                      const std::vector<std::int64_t>& demand,
                                      const std::vector<std::int64_t>& weight) {
  return kind == SolveKind::kShortestPath ? solve_shortest(topo, demand)
                                          : solve_balanced(topo, demand, weight);
}

std::vector<MinMaxLoadResult> solve_clusters(
    std::span<const ClusterRouteJob> jobs, std::size_t workers,
    SolvePolicy policy) {
  MHP_SPAN("route/solve_clusters");
  std::vector<MinMaxLoadResult> results(jobs.size());
  if (jobs.size() == 1) {
    // A lone cluster has nothing to parallelise across jobs: hand the
    // whole worker budget to the engine's speculative δ-probe scheduler
    // instead (results are byte-identical for any worker count).
    MHP_SPAN("route/cluster");
    const ClusterRouteJob& job = jobs[0];
    MHP_REQUIRE(job.topo != nullptr, "cluster route job without topology");
    SolvePolicy single = policy;
    single.probe_workers = workers;
    RoutingEngine engine(single);
    results[0] = engine.solve(job.kind, *job.topo, job.demand, job.weight);
    return results;
  }
  // Per-worker engines must stay serial: a probe pool per worker would
  // oversubscribe the machine, and the forced value must not depend on
  // `workers` (it doesn't change results, but it must not change probe
  // schedules between the inline and pooled paths either).
  SolvePolicy per_job = policy;
  per_job.probe_workers = 1;
  const auto solve_one = [&](std::size_t i) {
    // Top-level span on its worker thread; the pool's join is the
    // quiescent point a later drain() relies on.
    MHP_SPAN("route/cluster");
    const ClusterRouteJob& job = jobs[i];
    MHP_REQUIRE(job.topo != nullptr, "cluster route job without topology");
    RoutingEngine engine(per_job);
    results[i] = engine.solve(job.kind, *job.topo, job.demand, job.weight);
  };
  if (jobs.empty() || workers == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) solve_one(i);
    return results;
  }
  // Result slots are indexed by job, so scheduling order cannot reorder
  // or interleave outputs: any worker count yields identical results.
  ThreadPool pool(workers == 0 ? 0 : std::min(workers, jobs.size()));
  pool.parallel_for(jobs.size(), solve_one);
  return results;
}

}  // namespace mhp::route
