// Spatial cell partition for the routing engine's per-cell δ floor.
//
// The engine's cell floor (see RoutingEngine::set_cell_hint) accepts ANY
// partition of the sensor set — correctness never depends on geometry —
// but a spatially coherent partition makes the per-cell relaxations
// tight, and the PR 4 spatial grid is the natural source of one.  These
// helpers bucket sensor positions into a square grid over their bounding
// box, exactly the cell structure disc_topology uses, and return a flat
// cell id per sensor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/geometry.hpp"

namespace mhp::route {

/// Cell id per position: square grid of side `cell_size` over the
/// positions' bounding box, row-major ids.  Degenerate inputs (empty
/// span, non-positive cell size, single point) collapse to one cell.
std::vector<std::int32_t> grid_cells(std::span<const Vec2> positions,
                                     double cell_size);

/// Heuristic grid for a deployment of unknown radio range: a 16×16 grid
/// over the bounding box (≤256 cells), which keeps per-cell subproblems
/// around n/256 sensors — big enough to capture local relay congestion,
/// small enough that the batch of cell solves costs a fraction of one
/// full-cluster δ-probe.
std::vector<std::int32_t> grid_cells(std::span<const Vec2> positions);

}  // namespace mhp::route
