// RoutingEngine: single owner of the min-max-load routing stack — flow
// network construction, scratch arenas, δ-search policy and flow
// decomposition (paper §III-A).
//
// The engine produces byte-identical results to the legacy free functions
// (`solve_min_max_load` / `solve_shortest_path_routing`, now thin shims
// over an engine) while adding:
//   * warm-start δ-probes — each feasibility probe augments the best flow
//     found at a smaller δ instead of re-solving from zero.  Probes only
//     answer "is δ feasible?" (the max-flow *value* at a given δ is
//     unique, the assignment is not); the path decomposition always comes
//     from one final from-zero solve at δ*, which is exactly the flow the
//     cold search decomposed.  That is the determinism contract.
//   * speculative parallel δ-probes — with policy.probe_workers > 1 the
//     δ-search dispatches several candidate δ feasibility probes
//     concurrently on a util::ThreadPool, each on its own FlowGraph
//     clone (shared frozen structure, private capacities/flow).  Probes
//     still only answer feasibility, and feasibility at a given δ is a
//     pure predicate (the max-flow value is unique no matter which base
//     flow or thread computed it), so δ* — and hence the decomposed
//     plan — is byte-identical for any worker count.
//   * per-cell δ floor — given a cell partition hint (set_cell_hint),
//     large solves first solve the per-cell relaxations (in-cell links
//     only; any sensor with an out-of-cell neighbor counts as
//     head-heard) through the solve_clusters batch machinery.  Each
//     relaxation's optimum is a valid lower bound on δ* (restrict a
//     global solution's unit paths to their in-cell prefixes and they
//     solve the relaxation at the same δ), so their max only trims the
//     search range — it can never change the result.
//   * warm hints — a surviving RelayPlan can seed the first probe of a
//     post-fault replan with its still-valid unit paths.  Hints only
//     pre-load flow for feasibility probes, so they never change results.
//   * reusable arenas — the CSR graph, BFS/DFS scratch, probe slots and
//     flow snapshots persist across solves on the same engine.
//
// Engines are cheap to construct and NOT thread-safe; for parallel
// per-cluster routing use solve_clusters(), which gives each worker its
// own engine and writes results into per-cluster slots (deterministic for
// any worker count because each solve is a pure function of its job).
// A single-job solve_clusters call instead hands its whole worker budget
// to that one engine's probe scheduler — the single-huge-cluster case.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flow/min_max_load.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"
#include "route/flow_graph.hpp"

namespace mhp {
class ThreadPool;
}

namespace mhp::route {

struct SolvePolicy {
  MaxFlowAlgo algo = MaxFlowAlgo::kDinic;
  /// Reuse flow between δ-probes (results are identical either way; cold
  /// mode exists for equivalence tests and perf comparisons).
  bool warm_start = true;
  /// Concurrent speculative δ-probes per search round (0 = hardware
  /// concurrency, 1 = the serial search).  Results are byte-identical
  /// for any value; >1 trades redundant probe work for wall time.
  std::size_t probe_workers = 1;
};

enum class SolveKind { kBalancedMaxFlow, kShortestPath };

/// Counters from the most recent solve_balanced (zeroed for trivially
/// feasible/infeasible instances and for solve_shortest).
struct SolveStats {
  int probes = 0;       // δ feasibility probes run (incl. speculative)
  int rounds = 0;       // sequential probe waves (== probes when serial)
  int cold_solves = 0;  // from-zero max-flow runs (probes + the final one)
  std::int64_t delta_lower_bound = 0;  // δ floor the search began at
  std::int64_t cell_floor = 0;  // per-cell relaxation bound (0 = not run)
  std::int64_t delta_star = 0;  // winning δ (== result.max_load)
  std::int64_t hint_units = 0;  // flow pre-seeded from a warm hint
};

class RoutingEngine {
 public:
  explicit RoutingEngine(SolvePolicy policy = {});
  ~RoutingEngine();
  RoutingEngine(RoutingEngine&&) = delete;

  void set_policy(SolvePolicy policy) { policy_ = policy; }
  const SolvePolicy& policy() const { return policy_; }

  /// Min-max-load routing (binary search over δ with max-flow probes).
  /// Same contract as the legacy mhp::solve_min_max_load.
  MinMaxLoadResult solve_balanced(const ClusterTopology& topo,
                                  const std::vector<std::int64_t>& demand,
                                  const std::vector<std::int64_t>& weight = {});

  /// BFS shortest-path baseline; same contract as the legacy
  /// mhp::solve_shortest_path_routing.
  MinMaxLoadResult solve_shortest(const ClusterTopology& topo,
                                  const std::vector<std::int64_t>& demand);

  MinMaxLoadResult solve(SolveKind kind, const ClusterTopology& topo,
                         const std::vector<std::int64_t>& demand,
                         const std::vector<std::int64_t>& weight = {});

  /// Seed the NEXT solve_balanced's first δ-probe with the unit paths of a
  /// previous solution (e.g. the surviving flow after a fault).  Paths
  /// with dead hops/links are skipped; the hint is consumed by that solve.
  /// The pointee must stay alive until then.  Never changes results.
  void set_warm_hint(const std::vector<std::vector<UnitPath>>* hint) {
    hint_ = hint;
  }

  /// Cell partition hint for the per-cell δ floor: cells[s] is sensor
  /// s's cell id (any values; route::grid_cells produces a spatial
  /// one).  Persistent across solves; applied when the hint matches the
  /// solve's sensor count and the cluster is large enough to pay for the
  /// batch of cell solves.  Pass {} to clear.  Never changes results —
  /// the floor is a proven lower bound on δ*, so it only trims probes.
  void set_cell_hint(std::vector<std::int32_t> cells) {
    cell_hint_ = std::move(cells);
  }
  const std::vector<std::int32_t>& cell_hint() const { return cell_hint_; }

  const SolveStats& last_stats() const { return stats_; }

  /// Smallest cluster the per-cell floor runs for (below it, the batch
  /// of cell solves costs more than the probes it could save).
  static constexpr std::size_t kCellFloorMinSensors = 512;

 private:
  using Cap = FlowGraph::Cap;

  /// Max-flow scratch + augmentation over any FlowGraph: augments
  /// whatever flow is installed on g to a maximum flow and returns the
  /// value pushed.  One per probe slot so probes run concurrently.
  struct MaxFlowWork {
    std::vector<std::int32_t> level;  // Dinic levels / EK pred arcs
    std::vector<std::int32_t> queue;
    std::vector<std::uint32_t> iter;

    Cap augment(FlowGraph& g, MaxFlowAlgo algo);

   private:
    Cap augment_edmonds_karp(FlowGraph& g);
    Cap augment_dinic(FlowGraph& g);
    bool dinic_bfs(FlowGraph& g);
    Cap dinic_dfs(FlowGraph& g, int v, Cap limit);
  };

  /// One speculative probe's private state: a FlowGraph clone (shared
  /// structure, private capacities) plus its own max-flow scratch.
  struct ProbeSlot {
    FlowGraph g;
    MaxFlowWork work;
    Cap delta = 0;
    Cap value = 0;
    bool feasible = false;
    bool from_zero = false;
  };

  void build_network(const ClusterTopology& topo, const std::vector<Cap>& demand,
                     const std::vector<Cap>& weight);
  Cap prime_from_hint(const std::vector<std::vector<UnitPath>>& hint);
  int find_link_arc(NodeId a, NodeId b) const;

  /// Analytic δ floor: per-level cut bounds (all demand from level ≥ L
  /// crosses the level-L sensors; L = 1 is the head cut) and per-sensor
  /// demand bounds.  Never above δ*.
  Cap analytic_floor(const ClusterTopology& topo,
                     const std::vector<Cap>& demand) const;
  /// Per-cell relaxation floor (see class comment); 0 when skipped.
  Cap cell_floor_bound(const ClusterTopology& topo,
                       const std::vector<Cap>& demand);

  /// δ-search back ends.  Both return δ* and leave `final_flow_` /
  /// `final_delta` set when some from-zero probe already solved δ*.
  Cap search_serial(std::size_t n, Cap total, Cap lb, Cap& final_delta);
  Cap search_parallel(std::size_t n, Cap total, Cap lb, std::size_t workers,
                      Cap& final_delta);

  /// The probe pool, created lazily at the policy's worker count.
  ThreadPool& pool(std::size_t workers);

  void decompose(const ClusterTopology& topo, const std::vector<Cap>& demand,
                 MinMaxLoadResult& result);
  bool cancel_one_cycle();
  void cancel_cycles();

  SolvePolicy policy_;
  SolveStats stats_;
  const std::vector<std::vector<UnitPath>>* hint_ = nullptr;
  std::vector<std::int32_t> cell_hint_;

  FlowGraph g_;
  std::vector<std::int32_t> demand_arc_;    // per sensor (-1 if demand 0)
  std::vector<std::int32_t> capacity_arc_;  // per sensor input→output arc
  std::vector<std::int32_t> sink_arc_;      // per sensor (-1 unless 1st level)
  std::vector<Cap> weight_;                 // resolved weights for this solve

  // Flow snapshots (per forward arc): the warm-start base (max flow at
  // the largest infeasible δ probed, or the hint-seeded flow before any
  // probe) and the flow of a from-zero feasible probe (reused by the
  // final decomposition when that probe's δ wins the search).
  std::vector<Cap> base_flow_;
  std::vector<Cap> final_flow_;
  bool have_base_ = false;
  Cap base_value_ = 0;

  MaxFlowWork work_;                // the serial path's max-flow scratch
  std::vector<ProbeSlot> slots_;    // parallel probe arenas (persistent)
  std::unique_ptr<ThreadPool> pool_;
  std::size_t pool_workers_ = 0;

  // Decomposition scratch.
  std::vector<Cap> remaining_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::int8_t> color_;
  std::vector<std::int32_t> entry_arc_;
};

/// One cluster's routing problem for a batch solve.
struct ClusterRouteJob {
  const ClusterTopology* topo = nullptr;
  std::vector<std::int64_t> demand;
  std::vector<std::int64_t> weight;  // empty = all-1
  SolveKind kind = SolveKind::kBalancedMaxFlow;
};

/// Solve every job on `workers` threads (0 = hardware concurrency, 1 =
/// inline) and return results in job order.  Each worker runs its own
/// engine, so results are identical for any worker count.  A single job
/// hands the whole worker budget to that engine's speculative δ-probe
/// scheduler instead (the single-huge-cluster case) — still
/// byte-identical for any worker count.
std::vector<MinMaxLoadResult> solve_clusters(
    std::span<const ClusterRouteJob> jobs, std::size_t workers = 1,
    SolvePolicy policy = {});

}  // namespace mhp::route
