// RoutingEngine: single owner of the min-max-load routing stack — flow
// network construction, scratch arenas, δ-search policy and flow
// decomposition (paper §III-A).
//
// The engine produces byte-identical results to the legacy free functions
// (`solve_min_max_load` / `solve_shortest_path_routing`, now thin shims
// over an engine) while adding:
//   * warm-start δ-probes — each feasibility probe augments the best flow
//     found at a smaller δ instead of re-solving from zero.  Probes only
//     answer "is δ feasible?" (the max-flow *value* at a given δ is
//     unique, the assignment is not); the path decomposition always comes
//     from one final from-zero solve at δ*, which is exactly the flow the
//     cold search decomposed.  That is the determinism contract.
//   * warm hints — a surviving RelayPlan can seed the first probe of a
//     post-fault replan with its still-valid unit paths.  Hints only
//     pre-load flow for feasibility probes, so they never change results.
//   * reusable arenas — the CSR graph, BFS/DFS scratch and flow
//     snapshots persist across solves on the same engine.
//
// Engines are cheap to construct and NOT thread-safe; for parallel
// per-cluster routing use solve_clusters(), which gives each worker its
// own engine and writes results into per-cluster slots (deterministic for
// any worker count because each solve is a pure function of its job).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/min_max_load.hpp"
#include "net/cluster.hpp"
#include "net/ids.hpp"
#include "route/flow_graph.hpp"

namespace mhp::route {

struct SolvePolicy {
  MaxFlowAlgo algo = MaxFlowAlgo::kDinic;
  /// Reuse flow between δ-probes (results are identical either way; cold
  /// mode exists for equivalence tests and perf comparisons).
  bool warm_start = true;
};

enum class SolveKind { kBalancedMaxFlow, kShortestPath };

/// Counters from the most recent solve_balanced (zeroed for trivially
/// feasible/infeasible instances and for solve_shortest).
struct SolveStats {
  int probes = 0;       // δ feasibility probes run
  int cold_solves = 0;  // from-zero max-flow runs (probes + the final one)
  std::int64_t delta_lower_bound = 0;  // analytic δ floor the search began at
  std::int64_t delta_star = 0;         // winning δ (== result.max_load)
  std::int64_t hint_units = 0;         // flow pre-seeded from a warm hint
};

class RoutingEngine {
 public:
  explicit RoutingEngine(SolvePolicy policy = {}) : policy_(policy) {}

  void set_policy(SolvePolicy policy) { policy_ = policy; }
  const SolvePolicy& policy() const { return policy_; }

  /// Min-max-load routing (binary search over δ with max-flow probes).
  /// Same contract as the legacy mhp::solve_min_max_load.
  MinMaxLoadResult solve_balanced(const ClusterTopology& topo,
                                  const std::vector<std::int64_t>& demand,
                                  const std::vector<std::int64_t>& weight = {});

  /// BFS shortest-path baseline; same contract as the legacy
  /// mhp::solve_shortest_path_routing.
  MinMaxLoadResult solve_shortest(const ClusterTopology& topo,
                                  const std::vector<std::int64_t>& demand);

  MinMaxLoadResult solve(SolveKind kind, const ClusterTopology& topo,
                         const std::vector<std::int64_t>& demand,
                         const std::vector<std::int64_t>& weight = {});

  /// Seed the NEXT solve_balanced's first δ-probe with the unit paths of a
  /// previous solution (e.g. the surviving flow after a fault).  Paths
  /// with dead hops/links are skipped; the hint is consumed by that solve.
  /// The pointee must stay alive until then.  Never changes results.
  void set_warm_hint(const std::vector<std::vector<UnitPath>>* hint) {
    hint_ = hint;
  }

  const SolveStats& last_stats() const { return stats_; }

 private:
  using Cap = FlowGraph::Cap;

  void build_network(const ClusterTopology& topo, const std::vector<Cap>& demand,
                     const std::vector<Cap>& weight);
  Cap prime_from_hint(const std::vector<std::vector<UnitPath>>& hint);
  int find_link_arc(NodeId a, NodeId b) const;

  // Max-flow continuation: augment whatever flow is installed on g_ to a
  // maximum flow, returning the value pushed by this call.
  Cap augment();
  Cap augment_edmonds_karp();
  Cap augment_dinic();
  bool dinic_bfs();
  Cap dinic_dfs(int v, Cap limit);

  void decompose(const ClusterTopology& topo, const std::vector<Cap>& demand,
                 MinMaxLoadResult& result);
  bool cancel_one_cycle();
  void cancel_cycles();

  SolvePolicy policy_;
  SolveStats stats_;
  const std::vector<std::vector<UnitPath>>* hint_ = nullptr;

  FlowGraph g_;
  std::vector<std::int32_t> demand_arc_;    // per sensor (-1 if demand 0)
  std::vector<std::int32_t> capacity_arc_;  // per sensor input→output arc
  std::vector<std::int32_t> sink_arc_;      // per sensor (-1 unless 1st level)
  std::vector<Cap> weight_;                 // resolved weights for this solve

  // Flow snapshots (per forward arc): the warm-start base (max flow at
  // the largest infeasible δ probed, or the hint-seeded flow before any
  // probe) and — in cold mode — the last feasible probe's flow.
  std::vector<Cap> base_flow_;
  std::vector<Cap> final_flow_;
  bool have_base_ = false;
  Cap base_value_ = 0;

  // Max-flow scratch.
  std::vector<std::int32_t> level_;  // Dinic levels / EK pred arcs
  std::vector<std::int32_t> queue_;
  std::vector<std::uint32_t> iter_;

  // Decomposition scratch.
  std::vector<Cap> remaining_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::int8_t> color_;
  std::vector<std::int32_t> entry_arc_;
};

/// One cluster's routing problem for a batch solve.
struct ClusterRouteJob {
  const ClusterTopology* topo = nullptr;
  std::vector<std::int64_t> demand;
  std::vector<std::int64_t> weight;  // empty = all-1
  SolveKind kind = SolveKind::kBalancedMaxFlow;
};

/// Solve every job on `workers` threads (0 = hardware concurrency, 1 =
/// inline) and return results in job order.  Each worker runs its own
/// engine, so results are identical for any worker count.
std::vector<MinMaxLoadResult> solve_clusters(
    std::span<const ClusterRouteJob> jobs, std::size_t workers = 1,
    SolvePolicy policy = {});

}  // namespace mhp::route
