#include "route/cell_grid.hpp"

#include <algorithm>
#include <cmath>

namespace mhp::route {

std::vector<std::int32_t> grid_cells(std::span<const Vec2> positions,
                                     double cell_size) {
  std::vector<std::int32_t> cells(positions.size(), 0);
  if (positions.empty() || !(cell_size > 0.0)) return cells;
  double min_x = positions[0].x, max_x = positions[0].x;
  double min_y = positions[0].y, max_y = positions[0].y;
  for (const Vec2& p : positions) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  // ceil(extent / cell_size) rows/columns; points exactly on the far
  // bounding-box edge clamp into the last cell instead of spilling into
  // a one-point extra row.
  const auto span_cells = [cell_size](double extent) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(extent / cell_size)));
  };
  const std::int64_t cols = span_cells(max_x - min_x);
  const std::int64_t rows = span_cells(max_y - min_y);
  const auto cell_of = [cell_size](double v, double lo, std::int64_t count) {
    const auto c = static_cast<std::int64_t>(std::floor((v - lo) / cell_size));
    return std::clamp<std::int64_t>(c, 0, count - 1);
  };
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::int64_t cx = cell_of(positions[i].x, min_x, cols);
    const std::int64_t cy = cell_of(positions[i].y, min_y, rows);
    cells[i] = static_cast<std::int32_t>(cy * cols + cx);
  }
  return cells;
}

std::vector<std::int32_t> grid_cells(std::span<const Vec2> positions) {
  if (positions.empty()) return {};
  double min_x = positions[0].x, max_x = positions[0].x;
  double min_y = positions[0].y, max_y = positions[0].y;
  for (const Vec2& p : positions) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double side = std::max(max_x - min_x, max_y - min_y);
  // side == 0 (all points coincide) collapses to a single cell below.
  return grid_cells(positions, side > 0.0 ? side / 16.0 : 1.0);
}

}  // namespace mhp::route
