// Arena-friendly flow network: structure-of-arrays arc storage with a CSR
// adjacency index, built once per solve and reused across δ-probes.
//
// Same arc model as flow::FlowNetwork — arc 2k and its residual twin 2k+1
// are xor-paired — but arcs live in flat arrays and per-node adjacency is
// a contiguous CSR slice instead of vector<vector<int>>, so repeated
// solves (δ-searches, replans, campaign sweeps) stop reallocating.  The
// CSR index lists arcs per node in insertion order, which keeps BFS/DFS
// visit order — and therefore the solved flow — identical to the
// adjacency-list network it replaces.
//
// The arc *structure* (endpoints + CSR index) is immutable once
// build_csr() freezes it and lives behind a shared handle, so a probe
// clone — adopt() — shares the structure in O(1) and only copies the
// per-arc capacity/residual state.  That is what lets the parallel
// δ-probe scheduler hand each ThreadPool worker its own independently
// mutable FlowGraph over one huge cluster without duplicating the CSR.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mhp::route {

class FlowGraph {
 public:
  using Cap = std::int64_t;
  static constexpr Cap kInfinite = INT64_MAX / 4;

  /// Drop all arcs and size the node set; capacity stays allocated.
  void reset(int num_nodes);

  /// Add a directed arc u→v with capacity `cap`; returns the arc id.
  /// The residual twin is arc id ^ 1.  Only valid before build_csr().
  int add_arc(int u, int v, Cap cap);

  /// Freeze the arc set and build the CSR adjacency index.
  void build_csr();

  /// Become a clone of `base` (which must be frozen by build_csr):
  /// share its immutable arc structure, copy its capacities and current
  /// flow.  O(arcs) for the capacity state, O(1) for the structure.
  /// Further set_capacity/push/install_flow calls on the clone never
  /// affect `base` or sibling clones, so clones are safe to mutate
  /// concurrently from different threads.
  void adopt(const FlowGraph& base);

  int num_nodes() const { return s_->num_nodes; }
  int num_arcs() const { return static_cast<int>(s_->to.size()); }

  int arc_from(int e) const { return s_->from[static_cast<std::size_t>(e)]; }
  int arc_to(int e) const { return s_->to[static_cast<std::size_t>(e)]; }
  Cap capacity(int e) const { return cap_init_[static_cast<std::size_t>(e)]; }
  Cap residual(int e) const { return cap_[static_cast<std::size_t>(e)]; }
  /// Net flow pushed over arc e (0..capacity for forward arcs).
  Cap flow(int e) const {
    return cap_init_[static_cast<std::size_t>(e)] -
           cap_[static_cast<std::size_t>(e)];
  }

  /// Arc ids (forward and residual) leaving node v, in insertion order.
  std::span<const std::int32_t> arcs_out(int v) const {
    const auto b = static_cast<std::size_t>(s_->csr_begin[v]);
    const auto e = static_cast<std::size_t>(s_->csr_begin[v + 1]);
    return {s_->csr_arcs.data() + b, e - b};
  }

  /// Consume `amount` of residual capacity on arc e, crediting the twin.
  void push(int e, Cap amount);

  /// Change a forward arc's capacity.  Residuals are stale until the next
  /// install_flow()/clear_flow(), so callers must follow with one of them.
  void set_capacity(int e, Cap cap);

  /// Zero all flow, restoring residuals to the current capacities.
  void clear_flow() { cap_ = cap_init_; }

  /// Materialize residuals for the given per-forward-arc flow (fwd[k] is
  /// the flow on arc 2k).  Requires 0 <= fwd[k] <= capacity(2k).
  void install_flow(std::span<const Cap> fwd);

  /// Snapshot the current per-forward-arc flow into `fwd`.
  void save_flow(std::vector<Cap>& fwd) const;

 private:
  /// The frozen arc structure: endpoints and CSR adjacency.  Shared
  /// between a graph and its adopt() clones; never mutated after
  /// build_csr(), so concurrent readers need no synchronization.
  struct Structure {
    int num_nodes = 0;
    std::vector<std::int32_t> from;
    std::vector<std::int32_t> to;
    std::vector<std::int32_t> csr_arcs;
    std::vector<std::int32_t> csr_begin;
    std::vector<std::int32_t> csr_cursor;  // scratch for build_csr
    bool csr_built = false;
  };

  /// Structure this graph may still append arcs to: allocated by
  /// reset(), or recycled if no clone shares it.
  Structure& mutable_structure();

  std::shared_ptr<Structure> s_ = std::make_shared<Structure>();
  std::vector<Cap> cap_;       // residual capacity
  std::vector<Cap> cap_init_;  // original capacity
};

}  // namespace mhp::route
