// Legacy free-function routing API, now thin forwarding shims over a
// per-thread route::RoutingEngine so existing call sites migrate in place
// and still benefit from the engine's reusable arenas and warm-start
// δ-search.  Results are byte-identical to the pre-engine solver.
#include "flow/min_max_load.hpp"
#include "route/routing_engine.hpp"

namespace mhp {

namespace {

route::RoutingEngine& shim_engine() {
  thread_local route::RoutingEngine engine;
  return engine;
}

}  // namespace

MinMaxLoadResult solve_min_max_load(const ClusterTopology& topo,
                                    const std::vector<std::int64_t>& demand,
                                    const std::vector<std::int64_t>& weight,
                                    MaxFlowAlgo algo) {
  route::RoutingEngine& engine = shim_engine();
  engine.set_policy({algo, /*warm_start=*/true});
  return engine.solve_balanced(topo, demand, weight);
}

MinMaxLoadResult solve_shortest_path_routing(
    const ClusterTopology& topo, const std::vector<std::int64_t>& demand) {
  return shim_engine().solve_shortest(topo, demand);
}

}  // namespace mhp
