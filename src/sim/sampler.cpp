#include "sim/sampler.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "util/assertx.hpp"

namespace mhp {

MetricsSampler::MetricsSampler(Simulator& sim, MetricsRegistry& metrics,
                               Options opts)
    : sim_(sim), metrics_(metrics), opts_(opts) {
  MHP_REQUIRE(opts_.period > Time::zero(),
              "MetricsSampler period must be positive");
  MHP_REQUIRE(opts_.out != nullptr, "MetricsSampler needs a JSONL sink");
}

void MetricsSampler::watch_counter(std::string name) {
  counters_.push_back(std::move(name));
}

void MetricsSampler::watch_gauge(std::string name) {
  gauges_.push_back(std::move(name));
}

void MetricsSampler::add_refresh_hook(std::function<void(Time)> hook) {
  hooks_.push_back(std::move(hook));
}

void MetricsSampler::start() {
  MHP_REQUIRE(!started_, "MetricsSampler started twice");
  started_ = true;
  sim_.after(opts_.period, [this] { tick(); });
}

void MetricsSampler::tick() {
  const Time now = sim_.now();
  for (const auto& hook : hooks_) hook(now);

  obs::Json counters = obs::Json::object();
  for (const std::string& name : counters_) {
    const Counter* c = metrics_.find_counter(name);
    counters.set(name, obs::Json(c != nullptr ? c->value() : 0));
  }
  obs::Json gauges = obs::Json::object();
  for (const std::string& name : gauges_) {
    const Gauge* g = metrics_.find_gauge(name);
    gauges.set(name, obs::Json(g != nullptr ? g->last() : 0.0));
  }

  obs::Json line = obs::Json::object()
                       .set("t_s", obs::Json(now.to_seconds()))
                       .set("counters", std::move(counters))
                       .set("gauges", std::move(gauges));
  (*opts_.out) << line.dump() << '\n';
  ++samples_;

  sim_.after(opts_.period, [this] { tick(); });
}

}  // namespace mhp
