#include "sim/runtime.hpp"

#include "util/assertx.hpp"

namespace mhp {

SimRuntime::SimRuntime(std::uint64_t seed, const RuntimeOptions& opts)
    : root_rng_(seed), wall_begin_(std::chrono::steady_clock::now()) {
  trace_.set_max_entries(opts.trace_max_entries);
  if (opts.trace_stream != nullptr) {
    stream_sink_ = std::make_unique<OstreamTraceSink>(*opts.trace_stream);
    trace_.add_sink(stream_sink_.get());
  }
  if (opts.trace_jsonl_stream != nullptr) {
    jsonl_sink_ = std::make_unique<JsonlTraceSink>(*opts.trace_jsonl_stream);
    trace_.add_sink(jsonl_sink_.get());
  }
  if (opts.samples_stream != nullptr) {
    MetricsSampler& sp = install_sampler(
        {.period = opts.sample_period, .out = opts.samples_stream});
    // Standard contract names; stacks whose live state is not mirrored
    // into the registry push it via refresh hooks (see sample::).
    sp.watch_counter(metric::kPacketsGenerated);
    sp.watch_counter(metric::kPacketsDelivered);
    sp.watch_gauge(sample::kAliveNodes);
    sp.watch_gauge(sample::kEnergyJ);
    sp.watch_gauge(sample::kDelivered);
    sp.watch_gauge(sample::kGenerated);
    sp.start();
  }
}

SimRuntime::~SimRuntime() {
  if (stream_sink_) trace_.remove_sink(stream_sink_.get());
  if (jsonl_sink_) trace_.remove_sink(jsonl_sink_.get());
}

Propagation& SimRuntime::adopt_propagation(
    std::unique_ptr<Propagation> propagation) {
  MHP_REQUIRE(propagation != nullptr, "null propagation model");
  MHP_REQUIRE(propagation_ == nullptr,
              "runtime already has a propagation model");
  propagation_ = std::move(propagation);
  return *propagation_;
}

const Propagation& SimRuntime::propagation() const {
  MHP_REQUIRE(propagation_ != nullptr, "no propagation model adopted");
  return *propagation_;
}

FaultInjector& SimRuntime::install_faults(const FaultPlan& plan) {
  MHP_REQUIRE(faults_ == nullptr, "runtime already has a fault injector");
  faults_ = std::make_unique<FaultInjector>(sim_, plan, &trace_);
  return *faults_;
}

MetricsSampler& SimRuntime::install_sampler(
    const MetricsSampler::Options& opts) {
  MHP_REQUIRE(sampler_ == nullptr, "runtime already has a sampler");
  sampler_ = std::make_unique<MetricsSampler>(sim_, metrics_, opts);
  return *sampler_;
}

Channel& SimRuntime::add_channel(RadioParams params,
                                 std::vector<Vec2> positions,
                                 std::vector<double> tx_power_w) {
  MHP_REQUIRE(propagation_ != nullptr,
              "adopt_propagation() before add_channel()");
  channels_.push_back(std::make_unique<Channel>(sim_, *propagation_, params,
                                                std::move(positions),
                                                std::move(tx_power_w)));
  channels_.back()->set_trace(&trace_);
  return *channels_.back();
}

void SimRuntime::begin_measurement() {
  metrics_.begin_window(sim_.now());
  frames_at_window_begin_ = 0;
  for (const auto& ch : channels_)
    frames_at_window_begin_ += ch->frames_transmitted();
  wall_begin_ = std::chrono::steady_clock::now();
  events_at_window_begin_ = sim_.events_executed();
}

RunStats SimRuntime::collect_run_stats(Time measured,
                                       std::uint32_t data_bytes) {
  std::uint64_t frames = 0;
  for (const auto& ch : channels_) frames += ch->frames_transmitted();
  frames -= frames_at_window_begin_;
  Counter& frames_counter = metrics_.counter(metric::kChannelFramesTx);
  frames_counter.add(frames - frames_counter.value());

  RunStats out;
  out.measured_seconds = measured.to_seconds();
  out.packets_generated =
      metrics_.counter(metric::kPacketsGenerated).value();
  out.packets_delivered =
      metrics_.counter(metric::kPacketsDelivered).value();
  const std::uint64_t bytes =
      metrics_.counter(metric::kBytesDelivered).value();
  out.offered_bps =
      static_cast<double>(out.packets_generated * data_bytes) /
      out.measured_seconds;
  out.throughput_bps = static_cast<double>(bytes) / out.measured_seconds;
  out.delivery_ratio =
      out.packets_generated == 0
          ? 1.0
          : static_cast<double>(out.packets_delivered) /
                static_cast<double>(out.packets_generated);
  out.mean_active_fraction =
      metrics_.gauge(metric::kMeanActiveFraction).last();
  out.mean_latency_s = metrics_.gauge(metric::kMeanLatencyS).last();
  if (const HistogramMetric* h = metrics_.find_histogram(metric::kLatencyHistS);
      h != nullptr && h->count() > 0) {
    out.latency_p50_s = h->quantile(0.50);
    out.latency_p95_s = h->quantile(0.95);
    out.latency_p99_s = h->quantile(0.99);
  }
  if (const HistogramMetric* h = metrics_.find_histogram(metric::kQueueDepth);
      h != nullptr && h->count() > 0) {
    out.queue_depth_p50 = h->quantile(0.50);
    out.queue_depth_p95 = h->quantile(0.95);
    out.queue_depth_p99 = h->quantile(0.99);
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin_)
          .count();
  out.events_processed = sim_.events_executed() - events_at_window_begin_;
  out.events_per_sec =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.events_processed) / out.wall_seconds
          : 0.0;
  out.metrics = metrics_.snapshot(sim_.now());
  return out;
}

}  // namespace mhp
