#include "sim/trace.hpp"

#include <ostream>

namespace mhp {

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::kProtocol:
      return "protocol";
    case TraceCat::kChannel:
      return "channel";
    case TraceCat::kEnergy:
      return "energy";
    case TraceCat::kRouting:
      return "routing";
    case TraceCat::kMac:
      return "mac";
  }
  return "?";
}

void Trace::record(Time when, TraceCat cat, std::string text) {
  if (!enabled(cat)) return;
  entries_.push_back(TraceEntry{when, cat, std::move(text)});
}

std::vector<std::string> Trace::texts(TraceCat cat) const {
  std::vector<std::string> out;
  for (const auto& e : entries_)
    if (e.cat == cat) out.push_back(e.text);
  return out;
}

void Trace::print(std::ostream& os) const {
  for (const auto& e : entries_)
    os << e.when << " [" << to_string(e.cat) << "] " << e.text << "\n";
}

}  // namespace mhp
