#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assertx.hpp"

namespace mhp {

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::kProtocol:
      return "protocol";
    case TraceCat::kChannel:
      return "channel";
    case TraceCat::kEnergy:
      return "energy";
    case TraceCat::kRouting:
      return "routing";
    case TraceCat::kMac:
      return "mac";
  }
  return "?";
}

void format_trace_entry(std::ostream& os, const TraceEntry& entry) {
  os << entry.when << " [" << to_string(entry.cat) << "] " << entry.text
     << "\n";
}

void OstreamTraceSink::on_entry(const TraceEntry& entry) {
  format_trace_entry(os_, entry);
}

namespace {

// Minimal JSON string escaping for the JSONL sink.  (The full JSON layer
// lives in src/obs; the sim substrate stays below it, so the sink carries
// its own escaper for the one string field it writes.)
void write_json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void JsonlTraceSink::on_entry(const TraceEntry& entry) {
  os_ << "{\"t_s\":" << entry.when.to_seconds() << ",\"cat\":\""
      << to_string(entry.cat) << "\",\"text\":";
  write_json_escaped(os_, entry.text);
  os_ << "}\n";
}

void Trace::set_max_entries(std::size_t n) {
  MHP_REQUIRE(n >= 1, "trace ring needs room for at least one entry");
  max_entries_ = n;
  while (entries_.size() > max_entries_) {
    entries_.pop_front();
    ++dropped_;
  }
}

void Trace::add_sink(TraceSink* sink) {
  MHP_REQUIRE(sink != nullptr, "null trace sink");
  sinks_.push_back(sink);
}

void Trace::remove_sink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
}

void Trace::record(Time when, TraceCat cat, std::string text) {
  if (!enabled(cat)) return;
  TraceEntry entry{when, cat, std::move(text)};
  for (TraceSink* sink : sinks_) sink->on_entry(entry);
  entries_.push_back(std::move(entry));
  if (entries_.size() > max_entries_) {
    entries_.pop_front();
    ++dropped_;
  }
}

void Trace::clear() {
  entries_.clear();
  dropped_ = 0;
}

std::vector<std::string> Trace::texts(TraceCat cat) const {
  std::vector<std::string> out;
  for (const auto& e : entries_)
    if (e.cat == cat) out.push_back(e.text);
  return out;
}

void Trace::print(std::ostream& os) const {
  for (const auto& e : entries_) format_trace_entry(os, e);
}

}  // namespace mhp
