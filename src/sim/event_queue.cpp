#include "sim/event_queue.hpp"

#include "util/assertx.hpp"

namespace mhp {

EventId EventQueue::push(Time when, EventFn fn) {
  MHP_REQUIRE(fn != nullptr, "null event function");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    MHP_REQUIRE(when_.size() < kSlotMask, "event arena full");
    slot = static_cast<std::uint32_t>(when_.size());
    when_.emplace_back();
    seq_.emplace_back();
    gen_.push_back(1);  // start at 1 so no valid EventId is ever 0
    heap_pos_.emplace_back();
    fn_.emplace_back();
  }
  when_[slot] = when;
  seq_[slot] = next_seq_++;
  fn_[slot] = std::move(fn);
  heap_pos_[slot] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  return id_of(slot);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= gen_.size() || gen_[slot] != gen) return false;
  heap_remove(heap_pos_[slot]);
  release_slot(slot);
  return true;
}

std::optional<Time> EventQueue::peek_time() const {
  if (heap_.empty()) return std::nullopt;
  return when_[heap_[0]];
}

std::optional<EventQueue::Popped> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  const std::uint32_t slot = heap_[0];
  Popped out{when_[slot], id_of(slot), std::move(fn_[slot])};
  heap_remove(0);
  release_slot(slot);
  return out;
}

void EventQueue::release_slot(std::uint32_t slot) {
  fn_[slot] = nullptr;
  ++gen_[slot];  // invalidate outstanding handles; wraps harmlessly
  free_.push_back(slot);
}

void EventQueue::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], slot)) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos]] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_remove(std::size_t pos) {
  MHP_ENSURE(pos < heap_.size(), "heap position out of range");
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  heap_[pos] = last;
  heap_pos_[last] = static_cast<std::uint32_t>(pos);
  if (pos > 0 && earlier(last, heap_[(pos - 1) / 4]))
    sift_up(pos);
  else
    sift_down(pos);
}

}  // namespace mhp
