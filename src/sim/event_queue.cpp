#include "sim/event_queue.hpp"

#include "util/assertx.hpp"

namespace mhp {

EventId EventQueue::push(Time when, EventFn fn) {
  MHP_REQUIRE(fn != nullptr, "null event function");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  pending_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) > 0; }

void EventQueue::drop_dead() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

std::optional<Time> EventQueue::peek_time() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().when;
}

std::optional<EventQueue::Popped> EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.top();
  heap_.pop();
  auto it = pending_.find(top.id);
  MHP_ENSURE(it != pending_.end(), "live heap entry without pending fn");
  Popped out{top.when, top.id, std::move(it->second)};
  pending_.erase(it);
  return out;
}

}  // namespace mhp
