#include "sim/time.hpp"

#include <cmath>
#include <ostream>

namespace mhp {

Time Time::seconds(double s) {
  return Time::ns(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.to_seconds() << "s";
}

}  // namespace mhp
