// Sim-time metrics sampler: the data behind lifetime curves.
//
// End-of-run reports are snapshots; the paper's fig-7-style claims
// (energy remaining over time, alive nodes, delivery) are trajectories.
// A MetricsSampler runs as a recurring simulator event on a fixed
// sim-time cadence and appends one JSON object per tick to a JSONL
// stream: {"t_s": ..., "counters": {...}, "gauges": {...}}.
//
// Sampling is pull-based from the MetricsRegistry, so it draws nothing
// from any Rng and the simulation's random trajectory is unchanged (the
// recurring events do count toward events_processed — which is why
// stacks only install a sampler when a sink was requested).  Stacks
// whose live state is not continuously mirrored into the registry
// register refresh hooks, called before each tick to set the watched
// gauges (alive nodes, energy remaining).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mhp {

class MetricsSampler {
 public:
  struct Options {
    /// Sim-time between samples; must be positive.
    Time period = Time::seconds(1.0);
    /// JSONL sink, one sample object per line.  Required.
    std::ostream* out = nullptr;
  };

  MetricsSampler(Simulator& sim, MetricsRegistry& metrics, Options opts);

  /// Record this counter (resp. gauge last value) in every sample.
  /// Absent names read as 0 — watching before first use is fine.
  void watch_counter(std::string name);
  void watch_gauge(std::string name);

  /// Called with the current sim time immediately before each sample is
  /// read, so stacks can push live state into the watched gauges.
  void add_refresh_hook(std::function<void(Time)> hook);

  /// Schedule the recurring tick; the first sample lands one period from
  /// now.  Call once, after the watch list is set up.
  void start();

  std::uint64_t samples_written() const { return samples_; }
  Time period() const { return opts_.period; }

 private:
  void tick();

  Simulator& sim_;
  MetricsRegistry& metrics_;
  Options opts_;
  std::vector<std::string> counters_;
  std::vector<std::string> gauges_;
  std::vector<std::function<void(Time)>> hooks_;
  std::uint64_t samples_ = 0;
  bool started_ = false;
};

/// Gauge names the polling stacks publish through their refresh hooks,
/// for samplers and dashboards to watch by one shared contract.
namespace sample {
inline constexpr const char* kAliveNodes = "sample.alive_nodes";
inline constexpr const char* kEnergyJ = "sample.energy_j";
inline constexpr const char* kDelivered = "sample.delivered";
inline constexpr const char* kGenerated = "sample.generated";
}  // namespace sample

}  // namespace mhp
