// Pending-event set for the discrete-event kernel.
//
// A binary heap keyed on (time, sequence) — the sequence number makes
// same-time events fire in schedule order, which keeps simulations
// deterministic.  Cancellation is lazy: cancelled entries stay in the heap
// and are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mhp {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Insert an event; returns a handle usable with cancel().
  EventId push(Time when, EventFn fn);

  /// Cancel a pending event.  Returns false if it already fired, was
  /// cancelled, or never existed.
  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; nullopt when empty.
  std::optional<Time> peek_time();

  struct Popped {
    Time when;
    EventId id;
    EventFn fn;
  };
  /// Remove and return the earliest live event; nullopt when empty.
  std::optional<Popped> pop();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop heap entries whose id is no longer pending (cancelled).
  void drop_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, EventFn> pending_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mhp
