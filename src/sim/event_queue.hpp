// Pending-event set for the discrete-event kernel.
//
// Events live in a slab arena (structure-of-arrays) indexed by slot.  Handles
// are generation-tagged: EventId packs (generation << 32 | slot), and the
// generation is bumped every time a slot is released, so a stale handle from
// an event that already fired or was cancelled simply fails to match.  Cancel
// is therefore O(log n) with no hash lookup, and — unlike the previous
// lazy-cancel design — eagerly removes the heap entry, so a cancel-heavy
// workload (the poll-timeout retry pattern) keeps both the heap and the arena
// bounded by the peak number of *live* events.
//
// Ordering: a flat 4-ary min-heap over slot indices keyed on (time, sequence).
// The sequence number makes same-time events fire in schedule order, which
// keeps simulations deterministic; the arena changes storage only, never the
// (time, seq) comparison, so fire order is identical to the binary-heap
// kernel it replaced.
//
// Callbacks are stored in EventFn, a move-only callable with inline storage
// for small targets: the common timer/poll lambdas (a `this` pointer plus a
// few captured words) allocate nothing on push.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mhp {

using EventId = std::uint64_t;

/// Move-only type-erased `void()` callable with small-buffer storage.
/// Targets up to kInlineSize bytes with a nothrow move constructor are stored
/// inline; anything larger falls back to a single heap allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVt<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : vt_(other.vt_) {
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const { return vt_ != nullptr; }
  friend bool operator==(const EventFn& f, std::nullptr_t) { return !f; }
  friend bool operator==(std::nullptr_t, const EventFn& f) { return !f; }
  friend bool operator!=(const EventFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }
  friend bool operator!=(std::nullptr_t, const EventFn& f) {
    return static_cast<bool>(f);
  }

  /// Whether the target lives in the inline buffer (no heap allocation).
  bool is_inline() const { return vt_ != nullptr && vt_->inline_storage; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct the target into dst from src, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static void inline_invoke(void* p) {
    (*std::launder(reinterpret_cast<D*>(p)))();
  }
  template <typename D>
  static void inline_relocate(void* dst, void* src) noexcept {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <typename D>
  static void inline_destroy(void* p) noexcept {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }

  template <typename D>
  static D* heap_ptr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }
  template <typename D>
  static void heap_invoke(void* p) {
    (*heap_ptr<D>(p))();
  }
  template <typename D>
  static void heap_relocate(void* dst, void* src) noexcept {
    ::new (dst) D*(heap_ptr<D>(src));
  }
  template <typename D>
  static void heap_destroy(void* p) noexcept {
    delete heap_ptr<D>(p);
  }

  template <typename D>
  static constexpr VTable kInlineVt{&inline_invoke<D>, &inline_relocate<D>,
                                    &inline_destroy<D>, true};
  template <typename D>
  static constexpr VTable kHeapVt{&heap_invoke<D>, &heap_relocate<D>,
                                  &heap_destroy<D>, false};

  void reset() {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

class EventQueue {
 public:
  /// Insert an event; returns a handle usable with cancel().
  EventId push(Time when, EventFn fn);

  /// Cancel a pending event.  Returns false if it already fired, was
  /// cancelled, or never existed (the handle's generation no longer matches).
  bool cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; nullopt when empty.
  std::optional<Time> peek_time() const;

  struct Popped {
    Time when;
    EventId id;
    EventFn fn;
  };
  /// Remove and return the earliest live event; nullopt when empty.
  std::optional<Popped> pop();

  /// Number of arena slots ever allocated (live + free-listed).  Bounded by
  /// the peak number of simultaneously live events, independent of how many
  /// events were pushed or cancelled over the queue's lifetime.
  std::size_t arena_slots() const { return when_.size(); }

 private:
  static constexpr std::uint64_t kSlotMask = 0xffffffffull;

  EventId id_of(std::uint32_t slot) const {
    return (static_cast<std::uint64_t>(gen_[slot]) << 32) | slot;
  }

  bool earlier(std::uint32_t a, std::uint32_t b) const {
    if (when_[a] != when_[b]) return when_[a] < when_[b];
    return seq_[a] < seq_[b];
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);
  void release_slot(std::uint32_t slot);

  // Arena (structure-of-arrays, indexed by slot).
  std::vector<Time> when_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint32_t> heap_pos_;
  std::vector<EventFn> fn_;
  std::vector<std::uint32_t> free_;

  // 4-ary min-heap of slot indices ordered by (when, seq).
  std::vector<std::uint32_t> heap_;

  std::uint64_t next_seq_ = 0;
};

}  // namespace mhp
