// The discrete-event simulator core: a clock plus an event queue.
//
// Protocol agents schedule callbacks; run() drains the queue in time order.
// This is the NS-2-equivalent substrate everything else (radio channel, MAC
// protocols, cluster-head controller) is built on.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mhp {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must not be in the past).
  EventId at(Time when, EventFn fn);

  /// Schedule `fn` after a delay (>= 0) from now.
  EventId after(Time delay, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue empties or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run events with time <= deadline; afterwards now() == deadline unless
  /// stopped earlier.  Returns the number of events executed.
  std::uint64_t run_until(Time deadline);

  /// Execute exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool pending() const { return !queue_.empty(); }
  std::size_t queue_size() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace mhp
