// Simulation time as a strong integer type (nanosecond ticks).
//
// Integer time makes event ordering exact and runs bit-identical across
// platforms; 64-bit nanoseconds cover ~292 years of simulated time.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace mhp {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time(0); }
  static constexpr Time ns(std::int64_t v) { return Time(v); }
  static constexpr Time us(std::int64_t v) { return Time(v * 1'000); }
  static constexpr Time ms(std::int64_t v) { return Time(v * 1'000'000); }
  static constexpr Time sec(std::int64_t v) {
    return Time(v * 1'000'000'000);
  }
  /// Nearest-nanosecond conversion from floating-point seconds.
  static Time seconds(double s);
  static constexpr Time max() { return Time(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  constexpr double to_millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }

  friend constexpr auto operator<=>(Time, Time) = default;
  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time(a.ns_ * k);
  }
  constexpr Time& operator+=(Time b) {
    ns_ += b.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time b) {
    ns_ -= b.ns_;
    return *this;
  }
  /// Integer division: how many `b` intervals fit in `a`.
  friend constexpr std::int64_t operator/(Time a, Time b) {
    return a.ns_ / b.ns_;
  }

 private:
  constexpr explicit Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace mhp
