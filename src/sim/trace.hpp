// Lightweight tracing: simulations record categorized entries that tests
// can inspect and examples can print.  Disabled categories cost one branch.
//
// Two delivery paths exist: a bounded in-memory ring (the default; long
// runs evict the oldest entries instead of growing without bound) and
// pluggable sinks that observe every enabled entry as it is recorded —
// e.g. OstreamTraceSink streams them to a log so nothing is lost even
// when the ring wraps.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mhp {

enum class TraceCat : std::uint8_t {
  kProtocol,  // duty-cycle phases, polling messages
  kChannel,   // transmissions, receptions, losses
  kEnergy,    // radio state changes
  kRouting,   // path computation
  kMac,       // baseline MAC events
};

const char* to_string(TraceCat cat);

struct TraceEntry {
  Time when;
  TraceCat cat;
  std::string text;
};

/// The one canonical text rendering — "time [cat] text\n" — used by both
/// Trace::print and OstreamTraceSink (the JSONL sink is the only other
/// format).
void format_trace_entry(std::ostream& os, const TraceEntry& entry);

/// Observes entries as they are recorded (enabled categories only).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_entry(const TraceEntry& entry) = 0;
};

/// Streams each entry to an ostream in the same format as Trace::print.
class OstreamTraceSink : public TraceSink {
 public:
  explicit OstreamTraceSink(std::ostream& os) : os_(os) {}
  void on_entry(const TraceEntry& entry) override;

 private:
  std::ostream& os_;
};

/// Streams each entry as one JSON object per line:
/// {"t_s":1.234,"cat":"protocol","text":"..."} — machine-readable trace
/// export for long runs (the ring stays bounded, the file keeps it all).
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}
  void on_entry(const TraceEntry& entry) override;

 private:
  std::ostream& os_;
};

class Trace {
 public:
  /// Ring capacity unless set_max_entries() overrides it.
  static constexpr std::size_t kDefaultMaxEntries = 1u << 20;

  /// All categories disabled by default (zero overhead unless asked for).
  void enable(TraceCat cat) { mask_ |= bit(cat); }
  void disable(TraceCat cat) { mask_ &= ~bit(cat); }
  void enable_all() { mask_ = ~0u; }
  bool enabled(TraceCat cat) const { return (mask_ & bit(cat)) != 0; }

  /// Cap the in-memory ring; recording beyond it evicts the oldest
  /// entries (sinks still see everything).  Requires n >= 1.
  void set_max_entries(std::size_t n);
  std::size_t max_entries() const { return max_entries_; }

  /// Register a non-owning sink notified of every enabled entry.
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);

  void record(Time when, TraceCat cat, std::string text);

  /// The ring's current contents, oldest first.
  const std::deque<TraceEntry>& entries() const { return entries_; }
  /// Entries evicted from the ring so far (still delivered to sinks).
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Entries of one category, in order.
  std::vector<std::string> texts(TraceCat cat) const;

  void print(std::ostream& os) const;

 private:
  static std::uint32_t bit(TraceCat cat) {
    return 1u << static_cast<std::uint8_t>(cat);
  }

  std::uint32_t mask_ = 0;
  std::size_t max_entries_ = kDefaultMaxEntries;
  std::uint64_t dropped_ = 0;
  std::deque<TraceEntry> entries_;
  std::vector<TraceSink*> sinks_;
};

}  // namespace mhp
