// Lightweight tracing: simulations record categorized entries that tests
// can inspect and examples can print.  Disabled categories cost one branch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mhp {

enum class TraceCat : std::uint8_t {
  kProtocol,  // duty-cycle phases, polling messages
  kChannel,   // transmissions, receptions, losses
  kEnergy,    // radio state changes
  kRouting,   // path computation
  kMac,       // baseline MAC events
};

const char* to_string(TraceCat cat);

struct TraceEntry {
  Time when;
  TraceCat cat;
  std::string text;
};

class Trace {
 public:
  /// All categories disabled by default (zero overhead unless asked for).
  void enable(TraceCat cat) { mask_ |= bit(cat); }
  void disable(TraceCat cat) { mask_ &= ~bit(cat); }
  void enable_all() { mask_ = ~0u; }
  bool enabled(TraceCat cat) const { return (mask_ & bit(cat)) != 0; }

  void record(Time when, TraceCat cat, std::string text);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Entries of one category, in order.
  std::vector<std::string> texts(TraceCat cat) const;

  void print(std::ostream& os) const;

 private:
  static std::uint32_t bit(TraceCat cat) {
    return 1u << static_cast<std::uint8_t>(cat);
  }

  std::uint32_t mask_ = 0;
  std::vector<TraceEntry> entries_;
};

}  // namespace mhp
