#include "sim/simulator.hpp"

#include "util/assertx.hpp"

namespace mhp {

EventId Simulator::at(Time when, EventFn fn) {
  MHP_REQUIRE(when >= now_, "scheduling into the past");
  return queue_.push(when, std::move(fn));
}

EventId Simulator::after(Time delay, EventFn fn) {
  MHP_REQUIRE(delay >= Time::zero(), "negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() { return run_until(Time::max()); }

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!stopped_) {
    auto next_time = queue_.peek_time();
    if (!next_time || *next_time > deadline) break;
    auto ev = queue_.pop();
    now_ = ev->when;
    ev->fn();
    ++ran;
    ++executed_;
  }
  if (!stopped_ && deadline != Time::max() && now_ < deadline)
    now_ = deadline;
  return ran;
}

bool Simulator::step() {
  auto ev = queue_.pop();
  if (!ev) return false;
  now_ = ev->when;
  ev->fn();
  ++executed_;
  return true;
}

}  // namespace mhp
