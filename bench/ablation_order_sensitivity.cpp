// Ablation: the greedy scheduler scans requests in an "arbitrary
// predetermined order" (Table 1).  How arbitrary is arbitrary?  This
// measures schedule-length spread across random request orders and the
// gain from cheap random restarts.
#include <cstdio>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/interference.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: schedule sensitivity to polling order").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — request-order sensitivity of the Table-1 greedy\n"
      "(schedule slots across 50 random orders; restart-8 = best of 8\n"
      " random restarts, the cheap offline improvement)\n\n");

  Table table({"sensors", "order min", "order mean", "order max",
               "spread %", "restart-8 gain %"});
  table.set_precision(1, 1);
  table.set_precision(2, 2);
  table.set_precision(3, 1);
  table.set_precision(4, 1);
  table.set_precision(5, 2);

  for (std::size_t n = 10; n <= 50; n += 10) {
    Accumulator omin, omean, omax, spread, gain;
    for (int trial = 0; trial < 8; ++trial) {
      Rng rng(n * 91 + static_cast<std::uint64_t>(trial));
      const Deployment dep =
          deploy_connected_uniform_square(n, 200.0, 60.0, rng);
      const ClusterTopology topo = disc_topology(dep, 60.0);
      const auto routing =
          solve_min_max_load(topo, std::vector<std::int64_t>(n, 1));
      if (!routing.feasible) continue;

      ExplicitOracle oracle(3);
      std::vector<std::vector<NodeId>> paths;
      for (NodeId s = 0; s < n; ++s)
        paths.push_back(routing.paths[s][0].hops);
      const auto txs = transmissions_of_paths(paths);
      for (std::size_t i = 0; i < txs.size(); ++i)
        for (std::size_t j = i + 1; j < txs.size(); ++j)
          if (rng.bernoulli(0.7)) oracle.allow_pair(txs[i], txs[j]);

      Accumulator lengths;
      auto order = paths;
      for (int o = 0; o < 50; ++o) {
        rng.shuffle(order);
        const auto result = run_offline(oracle, order);
        if (result.all_delivered)
          lengths.add(static_cast<double>(result.slots));
      }
      if (lengths.empty()) continue;
      omin.add(lengths.min());
      omean.add(lengths.mean());
      omax.add(lengths.max());
      spread.add(100.0 * (lengths.max() - lengths.min()) / lengths.mean());

      Rng restart_rng(n + static_cast<std::uint64_t>(trial));
      const auto improved = best_of_orders(oracle, paths, 8, restart_rng);
      const auto base = run_offline(oracle, paths);
      gain.add(100.0 *
               (static_cast<double>(base.slots) -
                static_cast<double>(improved.slots)) /
               static_cast<double>(base.slots));
    }
    table.add_row({static_cast<long long>(n), omin.mean(), omean.mean(),
                   omax.mean(), spread.mean(), gain.mean()});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_order_sensitivity", table, recorder);
  return 0;
}
