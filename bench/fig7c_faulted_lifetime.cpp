// Fig 7(c) companion: cluster lifetime and delivery when a relay dies
// mid-run and the head repairs routes around it.
//
// For each cluster size the busiest relay (most dependents in the
// balanced plan) is killed at t=20s with recovery enabled; the same
// deployment also runs fault-free as the control.  Reported: the
// degradation block (delivery before/after the repair, replans, orphaned
// sensors) and the lifetime ratio faulted vs clean (lifetime = battery /
// worst sensor power; the battery cancels in the ratio).
//
// `--smoke` runs a single small point (CI sanity check).
#include <cstdio>
#include <functional>
#include <vector>

#include "exp/bench_json.hpp"
#include "exp/csv_out.hpp"
#include "exp/fig_common.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

struct Point {
  std::size_t sensors;
};

struct Result {
  long long victim = -1;
  double replans = 0.0;
  double orphaned = 0.0;
  double delivery_before = 0.0;  // percent
  double delivery_after = 0.0;   // percent
  double delivery_clean = 0.0;   // percent, fault-free control
  double lifetime_ratio = 0.0;   // faulted lifetime / clean lifetime
  std::uint64_t events = 0;
};

Result run_point(const Point& p, const mhp::RuntimeOptions& rt_opts) {
  using namespace mhp;
  using namespace mhp::exp;
  constexpr double kRate = 20.0;
  const std::uint64_t seed = 7900 + p.sensors * 10;
  const Deployment dep = eval_deployment(p.sensors, seed);

  Result out;

  // Fault-free control; its relay plan also tells us whom to kill (the
  // faulted run is seeded identically, so set-up yields the same plan).
  PollingSimulation clean(dep, eval_protocol_config(seed), kRate, rt_opts);
  NodeId victim = 0;
  std::size_t victim_deps = 0;
  for (NodeId s = 0; s < dep.num_sensors(); ++s) {
    const std::size_t deps = clean.relay_plan().dependents(s, 0).size();
    if (deps > victim_deps) {
      victim_deps = deps;
      victim = s;
    }
  }
  const auto rc = clean.run(Time::sec(40), Time::sec(10));

  ProtocolConfig cfg = eval_protocol_config(seed);
  cfg.faults.kill_at(victim, Time::sec(20));
  cfg.recovery.enabled = true;
  PollingSimulation faulted(dep, cfg, kRate, rt_opts);
  const auto rf = faulted.run(Time::sec(40), Time::sec(10));

  out.victim = static_cast<long long>(victim);
  out.events = rc.events_processed + rf.events_processed;
  out.delivery_clean = 100.0 * rc.delivery_ratio;
  if (rf.degradation) {
    out.replans = static_cast<double>(rf.degradation->replans);
    out.orphaned = static_cast<double>(rf.degradation->orphaned_sensors);
    out.delivery_before = 100.0 * rf.degradation->delivery_before;
    out.delivery_after = 100.0 * rf.degradation->delivery_after;
  }
  // lifetime ∝ 1 / max sensor power; battery capacity cancels.
  out.lifetime_ratio =
      rf.max_sensor_power_w > 0.0
          ? rc.max_sensor_power_w / rf.max_sensor_power_w
          : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhp;
  mhp::exp::Flags flags("fig 7(c) companion: relay death with head repair");
  flags.flag("--smoke", "single point for CI");
  flags.parse(argc, argv);
  const bool smoke = flags.has("--smoke");
  mhp::obs::RunRecorder recorder;

  std::vector<Point> points;
  if (smoke) {
    points.push_back({14});
  } else {
    for (std::size_t n = 10; n <= 50; n += 10) points.push_back({n});
  }

  mhp::exp::SweepOptions sweep_opts;
  sweep_opts.runtime = mhp::exp::eval_runtime_options();
  const auto results = mhp::exp::sweep<Point, Result>(
      points,
      std::function<Result(const Point&, const RuntimeOptions&)>(run_point),
      sweep_opts);

  std::printf(
      "Fig 7(c) companion — mid-run relay death with head-driven repair\n"
      "(delivery after repair should stay close to the fault-free "
      "control)\n\n");

  Table table({"sensors", "victim", "replans", "orphans", "del before %",
               "del after %", "del clean %", "lifetime ratio"});
  table.set_precision(2, 0);
  table.set_precision(3, 0);
  table.set_precision(4, 1);
  table.set_precision(5, 1);
  table.set_precision(6, 1);
  table.set_precision(7, 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Result& r = results[i];
    table.add_row({static_cast<long long>(points[i].sensors), r.victim,
                   r.replans, r.orphaned, r.delivery_before,
                   r.delivery_after, r.delivery_clean, r.lifetime_ratio});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("fig7c_faulted_lifetime.csv", table);
  for (const auto& r : results) recorder.add_events(r.events);
  mhp::exp::save_bench_json("fig7c_faulted_lifetime", table, recorder);
  return 0;
}
