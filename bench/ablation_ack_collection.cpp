// Ablation: acknowledgement collection (§V-F) — set-cover path polling vs
// naively polling every sensor's own path.  Reports the total relay hops
// and the slots the ack phase needs under the greedy scheduler.
#include <cstdio>
#include <vector>

#include "core/ack_collection.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/interference.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

namespace {

std::size_t ack_phase_slots(const AckPlan& plan) {
  // Schedule the chosen paths with a permissive pairwise oracle built
  // from their own transmissions (the realistic best case).
  ExplicitOracle oracle(3);
  const auto txs = transmissions_of_paths(plan.poll_paths);
  for (std::size_t i = 0; i < txs.size(); ++i)
    for (std::size_t j = i + 1; j < txs.size(); ++j)
      oracle.allow_pair(txs[i], txs[j]);
  const auto result = run_offline(oracle, plan.poll_paths);
  return result.slots;
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: ack-collection cover vs per-packet acks").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — ack collection: set-cover paths vs poll-everyone (§V-F)\n\n");

  Table table({"sensors", "cover paths", "naive paths", "cover hops",
               "naive hops", "cover slots", "naive slots"});
  table.set_precision(1, 1);
  table.set_precision(2, 1);
  table.set_precision(3, 1);
  table.set_precision(4, 1);
  table.set_precision(5, 1);
  table.set_precision(6, 1);

  for (std::size_t n = 10; n <= 60; n += 10) {
    Accumulator cover_paths, naive_paths, cover_hops, naive_hops,
        cover_slots, naive_slots;
    for (int trial = 0; trial < 10; ++trial) {
      Rng rng(n * 77 + static_cast<std::uint64_t>(trial));
      const Deployment dep =
          deploy_connected_uniform_square(n, 200.0, 60.0, rng);
      const ClusterTopology topo = disc_topology(dep, 60.0);
      const RelayPlan plan =
          RelayPlan::balanced(topo, std::vector<std::int64_t>(n, 1));
      const AckPlan cover = plan_ack_collection(topo, plan, 0);
      const AckPlan naive = ack_poll_everyone(topo, plan, 0);
      if (!cover.covers_all) continue;
      cover_paths.add(static_cast<double>(cover.poll_paths.size()));
      naive_paths.add(static_cast<double>(naive.poll_paths.size()));
      cover_hops.add(cover.total_hops);
      naive_hops.add(naive.total_hops);
      cover_slots.add(static_cast<double>(ack_phase_slots(cover)));
      naive_slots.add(static_cast<double>(ack_phase_slots(naive)));
    }
    table.add_row({static_cast<long long>(n), cover_paths.mean(),
                   naive_paths.mean(), cover_hops.mean(), naive_hops.mean(),
                   cover_slots.mean(), naive_slots.mean()});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_ack_collection", table, recorder);
  return 0;
}
