// Ablation: source routing vs one-hop dependent tables (§V-C).
//
// After load-balanced paths are computed, traffic must actually follow
// them.  Source routing writes the remaining path into every data packet
// (airtime + energy on every hop); the paper's alternative stores a
// one-hop table at each relay (memory, no airtime).  This bench prices
// both options from the relay plan.
#include <cstdio>
#include <vector>

#include "core/routing.hpp"
#include "net/deployment.hpp"
#include "radio/energy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: source routing vs hop-by-hop").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — source routing vs one-hop tables (§V-C)\n"
      "(4 bytes per remaining hop in the header; 200 kbps radio;\n"
      " energy overhead relative to the 80-byte payload airtime)\n\n");

  constexpr double kBytesPerHop = 4.0;
  constexpr double kPayload = 80.0;

  Table table({"sensors", "tx/cycle", "hdr bytes/cycle", "airtime +%",
               "table entries max", "table bytes max"});
  table.set_precision(1, 1);
  table.set_precision(2, 1);
  table.set_precision(3, 2);
  table.set_precision(4, 1);
  table.set_precision(5, 1);

  for (std::size_t n = 10; n <= 60; n += 10) {
    Accumulator txs, hdr_bytes, overhead_pct, entries, table_bytes;
    for (int trial = 0; trial < 10; ++trial) {
      Rng rng(n * 31 + static_cast<std::uint64_t>(trial));
      const Deployment dep =
          deploy_connected_uniform_square(n, 200.0, 60.0, rng);
      const ClusterTopology topo = disc_topology(dep, 60.0);
      const RelayPlan plan =
          RelayPlan::balanced(topo, std::vector<std::int64_t>(n, 1));

      double total_tx = 0.0, total_hdr = 0.0, total_payload = 0.0;
      for (NodeId s = 0; s < n; ++s) {
        const auto& path = plan.path_for_cycle(s, 0).hops;
        const std::size_t hops = path.size() - 1;
        // Hop i (0-based) carries the remaining route of hops-1-i entries.
        for (std::size_t i = 0; i < hops; ++i) {
          total_tx += 1.0;
          total_payload += kPayload;
          total_hdr += kBytesPerHop * static_cast<double>(hops - 1 - i);
        }
      }
      std::size_t worst_entries = 0;
      for (NodeId s = 0; s < n; ++s)
        worst_entries =
            std::max(worst_entries, plan.one_hop_table(s, 0).size());

      txs.add(total_tx);
      hdr_bytes.add(total_hdr);
      overhead_pct.add(100.0 * total_hdr / total_payload);
      entries.add(static_cast<double>(worst_entries));
      // One table entry = (origin id, next hop id) = 4 bytes.
      table_bytes.add(4.0 * static_cast<double>(worst_entries));
    }
    table.add_row({static_cast<long long>(n), txs.mean(), hdr_bytes.mean(),
                   overhead_pct.mean(), entries.mean(), table_bytes.mean()});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_source_routing", table, recorder);
  std::printf(
      "Reading: source routing taxes every relayed byte forever; the\n"
      "one-hop tables cost a few dozen bytes of RAM at the busiest relay\n"
      "— the paper's recommendation (§V-C) quantified.\n");
  return 0;
}
