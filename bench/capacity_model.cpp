// Capacity model vs simulation: Fig 7(a)'s saturation wall, predicted
// analytically (offline scheduling of one cycle) and checked against the
// event simulator.  §VI-A: "we should choose a suitable size for a
// cluster" — this is the tool that chooses it.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/capacity.hpp"
#include "core/polling_simulation.hpp"
#include "exp/fig_common.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

namespace {

struct Point {
  std::size_t sensors;
  double rate;
};

struct Result {
  double predicted_duty = 0.0;
  double simulated_active = 0.0;
  double delivery = 0.0;
};

Result run_point(const Point& p) {
  using namespace mhp;
  using namespace mhp::exp;
  const std::uint64_t seed = p.sensors * 7 +
                             static_cast<std::uint64_t>(p.rate);
  const Deployment dep = eval_deployment(p.sensors, seed);
  ProtocolConfig cfg = eval_protocol_config(seed);
  PollingSimulation sim(dep, cfg, p.rate);
  const auto est = estimate_capacity(sim.topology(), sim.relay_plan(),
                                     sim.oracle(), p.rate, cfg);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  return Result{est.duty_fraction, rep.mean_active_fraction,
                rep.delivery_ratio};
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("capacity model vs measured drain throughput").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  using namespace mhp;

  std::printf(
      "Capacity model — predicted duty fraction vs simulated active time\n"
      "(the Fig 7(a) saturation wall, found without running the DES)\n\n");

  std::vector<Point> points;
  for (std::size_t n : {20u, 40u, 60u, 80u})
    for (double r : {20.0, 60.0}) points.push_back({n, r});

  const auto results = mhp::exp::sweep<Point, Result>(
      points, std::function<Result(const Point&)>(run_point));

  Table table({"sensors", "rate B/s", "predicted duty %",
               "simulated active %", "delivery %"});
  table.set_precision(2, 1);
  table.set_precision(3, 1);
  table.set_precision(4, 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({static_cast<long long>(points[i].sensors),
                   static_cast<long long>(points[i].rate),
                   100.0 * results[i].predicted_duty,
                   100.0 * results[i].simulated_active,
                   100.0 * results[i].delivery});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("capacity_model", table, recorder);

  ProtocolConfig cfg;
  std::printf("predicted max cluster size (duty < 99%%):\n");
  for (double r : {20.0, 40.0, 60.0, 80.0})
    std::printf("  %3.0f B/s per sensor -> N <= %zu\n", r,
                max_cluster_size(r, cfg, 0.99, 150));
  return 0;
}
