// Micro-benchmarks (google-benchmark): the simulator substrate — event
// queue throughput, SINR evaluation, and full duty-cycle simulation rate.
#include <benchmark/benchmark.h>

#include "core/polling_simulation.hpp"
#include "exp/fig_common.hpp"
#include "radio/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace mhp;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < batch; ++i)
      q.push(Time::ns(static_cast<std::int64_t>(rng.below(1'000'000))),
             [] {});
    while (auto ev = q.pop()) benchmark::DoNotOptimize(ev->when);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.after(Time::us(1), tick);
    };
    sim.after(Time::us(1), tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_ConcurrentOutcome(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Simulator sim;
  TwoRayGround prop;
  Rng rng(2);
  const Deployment dep = mhp::exp::eval_deployment(n, 9);
  std::vector<double> powers(n + 1, RadioParams::kSensorTxPowerW);
  powers[n] = RadioParams::kHeadTxPowerW;
  Channel channel(sim, prop, RadioParams{}, dep.positions, powers);
  std::vector<Channel::TxRx> txs;
  for (NodeId s = 0; s + 3 < n; s += 4) txs.push_back({s, s + 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.concurrent_outcome(txs));
  }
  state.counters["group"] = static_cast<double>(txs.size());
}
BENCHMARK(BM_ConcurrentOutcome)->Arg(20)->Arg(60)->Arg(100);

void BM_FullDutyCycleSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Deployment dep = mhp::exp::eval_deployment(n, 11);
    PollingSimulation sim(dep, mhp::exp::eval_protocol_config(11), 40.0);
    const auto rep = sim.run(Time::sec(12), Time::sec(2));
    benchmark::DoNotOptimize(rep.packets_delivered);
  }
  state.counters["sim_s_per_s"] = benchmark::Counter(
      10.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullDutyCycleSimulation)->Arg(10)->Arg(30)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
