// Micro-benchmarks (google-benchmark): the algorithmic kernels — greedy
// scheduling, max-flow routing, set cover, sector partitioning.
#include <benchmark/benchmark.h>

#include "core/ack_collection.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/sectors.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

using namespace mhp;

namespace {

struct Scenario {
  ClusterTopology topo;
  std::vector<std::vector<NodeId>> paths;
  ExplicitOracle oracle{3};

  explicit Scenario(std::size_t n, std::uint64_t seed) : topo(make(n, seed)) {
    const auto routing =
        solve_min_max_load(topo, std::vector<std::int64_t>(n, 1));
    for (NodeId s = 0; s < n; ++s) paths.push_back(routing.paths[s][0].hops);
    const auto txs = transmissions_of_paths(paths);
    for (std::size_t i = 0; i < txs.size(); ++i)
      for (std::size_t j = i + 1; j < txs.size(); ++j)
        oracle.allow_pair(txs[i], txs[j]);
  }

  static ClusterTopology make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return disc_topology(
        deploy_connected_uniform_square(n, 200.0, 60.0, rng), 60.0);
  }
};

void BM_GreedySchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Scenario sc(n, 1);
  for (auto _ : state) {
    const auto result = run_offline(sc.oracle, sc.paths);
    benchmark::DoNotOptimize(result.slots);
  }
  state.counters["slots"] =
      static_cast<double>(run_offline(sc.oracle, sc.paths).slots);
}
BENCHMARK(BM_GreedySchedule)->Arg(10)->Arg(30)->Arg(60)->Arg(100);

void BM_MinMaxLoadRouting(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = Scenario::make(n, 2);
  const std::vector<std::int64_t> demand(n, 2);
  for (auto _ : state) {
    const auto result = solve_min_max_load(topo, demand);
    benchmark::DoNotOptimize(result.max_load);
  }
}
BENCHMARK(BM_MinMaxLoadRouting)->Arg(10)->Arg(30)->Arg(60)->Arg(100);

void BM_MaxFlowAlgos(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = Scenario::make(n, 3);
  const std::vector<std::int64_t> demand(n, 2);
  const auto algo = state.range(1) == 0 ? MaxFlowAlgo::kEdmondsKarp
                                        : MaxFlowAlgo::kDinic;
  for (auto _ : state) {
    const auto result = solve_min_max_load(topo, demand, {}, algo);
    benchmark::DoNotOptimize(result.max_load);
  }
}
BENCHMARK(BM_MaxFlowAlgos)
    ->Args({60, 0})
    ->Args({60, 1})
    ->Args({100, 0})
    ->Args({100, 1});

void BM_AckCover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = Scenario::make(n, 4);
  const RelayPlan plan =
      RelayPlan::balanced(topo, std::vector<std::int64_t>(n, 1));
  for (auto _ : state) {
    const auto ack = plan_ack_collection(topo, plan, 0);
    benchmark::DoNotOptimize(ack.total_hops);
  }
}
BENCHMARK(BM_AckCover)->Arg(30)->Arg(100);

void BM_SectorPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = Scenario::make(n, 5);
  const std::vector<std::int64_t> demand(n, 1);
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  for (auto _ : state) {
    const auto part = sp.partition(plan, demand);
    benchmark::DoNotOptimize(part.sectors.size());
  }
}
BENCHMARK(BM_SectorPartition)->Arg(30)->Arg(100);

void BM_OracleQuery(benchmark::State& state) {
  Scenario sc(30, 6);
  const auto txs = transmissions_of_paths(sc.paths);
  Rng rng(7);
  for (auto _ : state) {
    const Tx& a = txs[rng.below(txs.size())];
    const Tx& b = txs[rng.below(txs.size())];
    benchmark::DoNotOptimize(sc.oracle.compatible(std::vector<Tx>{a, b}));
  }
}
BENCHMARK(BM_OracleQuery);

}  // namespace

BENCHMARK_MAIN();
