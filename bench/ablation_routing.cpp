// Ablation: min-max-load flow routing (§III-A) vs hop-count shortest
// paths.  The paper's routing choice exists to flatten the worst sensor's
// relaying burden; this quantifies the gain in max load and the implied
// first-death lifetime.
#include <cstdio>
#include <vector>

#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: balanced max-flow vs shortest-path routing").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — load-balanced (max-flow) routing vs shortest paths\n"
      "(uniform clusters, 1 packet/sensor/cycle; lifetime ∝ 1/max load)\n\n");

  Table table({"sensors", "balanced max load", "shortest max load",
               "load ratio", "lifetime gain %"});
  table.set_precision(1, 2);
  table.set_precision(2, 2);
  table.set_precision(3, 2);
  table.set_precision(4, 1);

  for (std::size_t n = 10; n <= 60; n += 10) {
    Accumulator balanced, shortest;
    for (int trial = 0; trial < 20; ++trial) {
      Rng rng(n * 1000 + static_cast<std::uint64_t>(trial));
      const Deployment dep =
          deploy_connected_uniform_square(n, 200.0, 60.0, rng);
      const ClusterTopology topo = disc_topology(dep, 60.0);
      const std::vector<std::int64_t> demand(n, 1);
      const auto flow = solve_min_max_load(topo, demand);
      const auto hops = solve_shortest_path_routing(topo, demand);
      if (!flow.feasible || !hops.feasible) continue;
      balanced.add(static_cast<double>(flow.max_load));
      shortest.add(static_cast<double>(hops.max_load));
    }
    const double ratio = shortest.mean() / balanced.mean();
    table.add_row({static_cast<long long>(n), balanced.mean(),
                   shortest.mean(), ratio, 100.0 * (ratio - 1.0)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_routing", table, recorder);
  return 0;
}
