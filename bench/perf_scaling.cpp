// Hot-path scaling trajectory: topology construction (spatial grid vs the
// O(n²) brute-force reference), min-max-load routing, and one full greedy
// polling cycle over n ∈ {50, 200, 500, 1000} sensors at constant density.
//
// The polling cycle runs the offline greedy scheduler through a
// CachedOracle over the disc interference model, so the emitted
// BENCH_perf.json carries the three numbers the ROADMAP's scaling story
// needs: wall time per stage, scheduled transmissions per second, and the
// oracle cache hit rate.  Each row also records a *generous* floor
// (tx/sec ÷ 20) that CI's perf-smoke job checks future runs against.
//
//   --smoke               small points only (n ∈ {50, 200}) for CI
//   --baseline <path>     after running, compare the n=200 tx/sec against
//                         the floor recorded in <path>; exit 1 on regression
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/interference.hpp"
#include "core/routing.hpp"
#include "exp/bench_json.hpp"
#include "exp/csv_out.hpp"
#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct Point {
  std::size_t sensors;
};

struct Result {
  double topo_grid_ms = 0.0;
  double topo_brute_ms = 0.0;
  double topo_speedup = 0.0;
  double routing_ms = 0.0;
  long long polling_slots = 0;
  long long polling_tx = 0;
  double polling_ms = 0.0;
  double tx_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  double floor_tx_per_sec = 0.0;
};

constexpr double kSensorRange = 60.0;
/// ~1000 m² per sensor keeps density (and so expected node degree ≈ 11)
/// constant across n: the grid path stays O(n) while brute force grows
/// O(n²) — exactly the scaling the speedup column demonstrates.
double side_for(std::size_t n) {
  return std::sqrt(1000.0 * static_cast<double>(n));
}

Result run_point(const Point& p) {
  using namespace mhp;
  Result out;
  Rng rng(0x9e1f + p.sensors);
  const Deployment dep = deploy_connected_uniform_square(
      p.sensors, side_for(p.sensors), kSensorRange, rng);

  // Topology: grid vs brute force, best-effort amortized over repeats.
  const int grid_reps = 10;
  const int brute_reps = p.sensors > 300 ? 3 : 10;
  std::size_t edges_grid = 0, edges_brute = 0;
  auto t0 = Clock::now();
  for (int r = 0; r < grid_reps; ++r)
    edges_grid = disc_topology(dep, kSensorRange).sensor_links().edge_count();
  out.topo_grid_ms = ms_since(t0) / grid_reps;
  t0 = Clock::now();
  for (int r = 0; r < brute_reps; ++r)
    edges_brute =
        disc_topology_brute_force(dep, kSensorRange).sensor_links()
            .edge_count();
  out.topo_brute_ms = ms_since(t0) / brute_reps;
  MHP_REQUIRE(edges_grid == edges_brute, "grid and brute graphs disagree");
  out.topo_speedup =
      out.topo_grid_ms > 0.0 ? out.topo_brute_ms / out.topo_grid_ms : 0.0;

  // Routing: one min-max-load solve, unit demand everywhere.
  const ClusterTopology topo = disc_topology(dep, kSensorRange);
  const std::vector<std::int64_t> demand(p.sensors, 1);
  t0 = Clock::now();
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  out.routing_ms = ms_since(t0);

  // One polling cycle: drain every sensor's packet through the greedy
  // scheduler, disc-model interference behind the memoizing cache.
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(p.sensors);
  for (NodeId s = 0; s < p.sensors; ++s)
    paths.push_back(plan.path_for_cycle(s, 0).hops);
  const DiscModelOracle truth(dep.positions, kSensorRange, 3);
  const CachedOracle cached(truth);
  t0 = Clock::now();
  const OfflineRunResult run = run_offline(cached, paths);
  out.polling_ms = ms_since(t0);
  MHP_REQUIRE(run.all_delivered, "offline polling cycle did not finish");
  out.polling_slots = static_cast<long long>(run.slots);
  out.polling_tx = static_cast<long long>(run.transmissions);
  out.tx_per_sec = out.polling_ms > 0.0
                       ? 1000.0 * static_cast<double>(run.transmissions) /
                             out.polling_ms
                       : 0.0;
  const double queries =
      static_cast<double>(cached.hits() + cached.misses());
  out.cache_hit_rate =
      queries > 0.0 ? static_cast<double>(cached.hits()) / queries : 0.0;
  out.floor_tx_per_sec = out.tx_per_sec / 20.0;
  return out;
}

/// The committed baseline's floor for the n=200 point, or -1 when absent.
double baseline_floor(const std::string& path) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::ostringstream buf;
  buf << in.rdbuf();
  const mhp::obs::Json doc = mhp::obs::parse_json(buf.str());
  const mhp::obs::Json* points = doc.find("points");
  if (points == nullptr || !points->is_array()) return -1.0;
  for (std::size_t i = 0; i < points->size(); ++i) {
    const mhp::obs::Json& row = points->at(i);
    const mhp::obs::Json* n = row.find("sensors");
    const mhp::obs::Json* floor = row.find("floor_tx_per_sec");
    if (n != nullptr && floor != nullptr && n->as_int() == 200)
      return floor->as_double();
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhp;
  mhp::exp::Flags flags("hot-path scaling bench (topology, routing, polling)");
  flags.flag("--smoke", "reduced point set for CI")
      .option("--baseline", "PATH", "committed BENCH_perf.json to gate against");
  flags.parse(argc, argv);
  const bool smoke = flags.has("--smoke");
  const std::string baseline_path = flags.value("--baseline");
  // Parse the baseline up front: this run overwrites BENCH_perf.json in
  // the working directory, and CI points --baseline at the committed copy.
  double floor = -1.0;
  if (!baseline_path.empty()) {
    floor = baseline_floor(baseline_path);
    if (floor < 0.0) {
      std::fprintf(stderr, "perf_scaling: no n=200 floor in baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
  }
  obs::RunRecorder recorder;

  std::vector<Point> points;
  if (smoke) {
    points = {{50}, {200}};
  } else {
    points = {{50}, {200}, {500}, {1000}};
  }

  // Sequential on purpose: the columns are wall-clock timings and thread
  // contention would corrupt them (determinism of the *results* under
  // exp::sweep threading is pinned separately in tests/test_exp.cpp).
  std::vector<Result> results;
  results.reserve(points.size());
  for (const Point& p : points) results.push_back(run_point(p));

  std::printf(
      "Hot-path scaling — spatial-grid topology, cached oracle, greedy "
      "polling\n(topo speedup = brute-force / grid build time)\n\n");

  Table table({"sensors", "topo grid ms", "topo brute ms", "topo_speedup",
               "routing ms", "polling_slots", "polling tx", "polling ms",
               "tx_per_sec", "cache_hit_rate", "floor_tx_per_sec"});
  table.set_precision(1, 3);
  table.set_precision(2, 3);
  table.set_precision(3, 1);
  table.set_precision(4, 2);
  table.set_precision(7, 2);
  table.set_precision(8, 0);
  table.set_precision(9, 3);
  table.set_precision(10, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Result& r = results[i];
    table.add_row({static_cast<long long>(points[i].sensors),
                   r.topo_grid_ms, r.topo_brute_ms, r.topo_speedup,
                   r.routing_ms, r.polling_slots, r.polling_tx,
                   r.polling_ms, r.tx_per_sec, r.cache_hit_rate,
                   r.floor_tx_per_sec});
    recorder.add_events(static_cast<std::uint64_t>(r.polling_tx));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("perf_scaling.csv", table);
  mhp::exp::save_bench_json("perf", table, recorder);

  if (!baseline_path.empty()) {
    double current = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (points[i].sensors == 200) current = results[i].tx_per_sec;
    if (current < floor) {
      std::fprintf(stderr,
                   "perf_scaling: REGRESSION — n=200 tx/sec %.0f below "
                   "baseline floor %.0f\n",
                   current, floor);
      return 1;
    }
    std::printf("perf floor check ok: n=200 tx/sec %.0f >= floor %.0f\n",
                current, floor);
  }
  return 0;
}
