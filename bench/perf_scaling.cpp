// Hot-path scaling trajectory: topology construction (spatial grid vs the
// O(n²) brute-force reference), min-max-load routing (warm-start
// RoutingEngine vs a from-zero δ-search, plus the 8-worker speculative
// δ-probe + cell-floor configuration, checked byte-identical), one full
// greedy polling cycle, and an event-kernel churn phase over n ∈ {50,
// 200, 500, 1000, 5000, 20000, 100000} sensors at constant density.
//
// The polling cycle runs the offline greedy scheduler through a
// pair-screening CachedOracle over the disc interference model, so the
// emitted BENCH_perf.json carries the numbers the ROADMAP's scaling story
// needs: wall time per phase, scheduled transmissions per second, and the
// oracle cache hit rate.  Each row also records *generous* per-phase
// budgets (phase ms × 20) plus the tx/sec floor (÷ 20) that CI's
// perf-smoke job checks future runs against.  The O(n²) reference columns
// (brute-force topology, cold routing) are only measured up to n = 1000;
// beyond that they read 0 = skipped.
//
//   --smoke               small points only (n ∈ {50, 200}) for CI
//   --baseline <path>     after running, compare every measured point's
//                         tx/sec and per-phase times against the
//                         floor/budgets recorded in <path> for that
//                         point; exit 1 on regression
//   --profile-out <path>  record profiler spans across all points and
//                         write Chrome trace-event JSON here; also fills
//                         the span_*_ms columns (0 when not profiling)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/interference.hpp"
#include "core/routing.hpp"
#include "exp/bench_json.hpp"
#include "exp/csv_out.hpp"
#include "net/deployment.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "route/cell_grid.hpp"
#include "route/routing_engine.hpp"
#include "sim/simulator.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct Point {
  std::size_t sensors;
};

/// Full-fidelity serialization of a routing result — the parallel-probe
/// determinism gate compares these byte-for-byte against the serial solve.
std::string route_fingerprint(const mhp::MinMaxLoadResult& r) {
  std::ostringstream out;
  out << r.feasible << ' ' << r.max_load << '\n';
  for (std::size_t s = 0; s < r.paths.size(); ++s) {
    out << s << ' ' << r.load[s] << ':';
    for (const mhp::UnitPath& p : r.paths[s]) {
      for (mhp::NodeId hop : p.hops) out << ' ' << hop;
      out << " x" << p.units << ';';
    }
    out << '\n';
  }
  return out.str();
}

struct Result {
  double topo_grid_ms = 0.0;
  double topo_brute_ms = 0.0;  // 0 = skipped (n > 1000)
  double topo_speedup = 0.0;
  double routing_ms = 0.0;       // warm-start engine (production path)
  double routing_cold_ms = 0.0;  // from-zero δ-search; 0 = skipped
  double routing_speedup = 0.0;
  double routing_par_ms = 0.0;  // 8-worker speculative probes + cell floor
  double routing_par_speedup = 0.0;  // serial / parallel
  long long polling_slots = 0;
  long long polling_tx = 0;
  double polling_ms = 0.0;
  double tx_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  long long screened = 0;  // pair-screen rejections (subset of hits)
  double floor_tx_per_sec = 0.0;
  double budget_topo_ms = 0.0;
  double budget_routing_ms = 0.0;
  double budget_routing_par_ms = 0.0;
  double budget_polling_ms = 0.0;
  double kernel_ms = 0.0;  // event-kernel churn (n polls, cancel-heavy)
  double budget_kernel_ms = 0.0;
  /// Span-attributed per-phase wall time from the profiler (the
  /// "bench/*" spans below); 0 when not run under --profile-out.
  double span_topo_ms = 0.0;     // per grid rep
  double span_routing_ms = 0.0;  // production warm-start solve
  double span_polling_ms = 0.0;  // offline greedy cycle
  double span_kernel_ms = 0.0;   // simulator churn drain
};

constexpr double kSensorRange = 60.0;
/// ~1000 m² per sensor keeps density (and so expected node degree ≈ 11)
/// constant across n: the grid path stays O(n) while brute force grows
/// O(n²) — exactly the scaling the speedup column demonstrates.
double side_for(std::size_t n) {
  return std::sqrt(1000.0 * static_cast<double>(n));
}

/// Event-kernel churn: the poll-timeout retry pattern at size n.  Each of
/// 64 concurrent "poll lanes" arms a timeout, gets the reply first (which
/// cancels the timeout) and immediately arms the next poll — one push +
/// cancel + push + pop per delivered poll, with the live-event count
/// pinned at 2×lanes.  This is exactly the workload the arena kernel must
/// keep allocation-free and the lazy-cancel kernel bloated on; its budget
/// column lets CI fail on kernel regressions at n=200.
double kernel_churn_ms(std::size_t sensors) {
  using namespace mhp;
  // 16 poll rounds per sensor: enough churn that even the n=200 smoke
  // point measures hundreds of microseconds, not timer noise.
  const std::size_t polls = sensors * 16;
  Simulator sim;
  struct Lane {
    Simulator* sim = nullptr;
    std::size_t remaining = 0;
    EventId timeout = 0;
    std::uint64_t timeouts_fired = 0;  // must stay 0: replies beat timeouts
    void poll() {
      if (remaining == 0) return;
      --remaining;
      timeout = sim->after(Time::us(10), [this] { ++timeouts_fired; });
      sim->after(Time::us(2), [this] {
        sim->cancel(timeout);
        poll();
      });
    }
  };
  constexpr std::size_t kLanes = 64;
  const std::size_t per_lane = (polls + kLanes - 1) / kLanes;
  // Fixed-size vector: lanes self-schedule via `this`, so no reallocation.
  std::vector<Lane> lanes(kLanes);
  const auto t0 = Clock::now();
  std::uint64_t executed = 0;
  {
    MHP_SPAN("bench/kernel");
    for (auto& lane : lanes) {
      lane.sim = &sim;
      lane.remaining = per_lane;
      lane.poll();
    }
    executed = sim.run();
  }
  const double ms = ms_since(t0);
  // Only the replies execute; every timeout must have been cancelled.
  MHP_REQUIRE(executed == per_lane * kLanes, "kernel churn lost events");
  for (const auto& lane : lanes)
    MHP_REQUIRE(lane.timeouts_fired == 0, "kernel churn timeout fired");
  return ms;
}

Result run_point(const Point& p) {
  using namespace mhp;
  Result out;
  Rng rng(0x9e1f + p.sensors);
  const Deployment dep = deploy_connected_uniform_square(
      p.sensors, side_for(p.sensors), kSensorRange, rng);

  // O(n²) reference measurements stop paying their way past n=1000.
  const bool reference = p.sensors <= 1000;

  // Topology: grid vs brute force, best-effort amortized over repeats.
  const int grid_reps = p.sensors > 5000 ? 3 : 10;
  const int brute_reps = p.sensors > 300 ? 3 : 10;
  std::size_t edges_grid = 0, edges_brute = 0;
  auto t0 = Clock::now();
  for (int r = 0; r < grid_reps; ++r) {
    MHP_SPAN("bench/topology");
    edges_grid = disc_topology(dep, kSensorRange).sensor_links().edge_count();
  }
  out.topo_grid_ms = ms_since(t0) / grid_reps;
  if (reference) {
    t0 = Clock::now();
    for (int r = 0; r < brute_reps; ++r)
      edges_brute =
          disc_topology_brute_force(dep, kSensorRange).sensor_links()
              .edge_count();
    out.topo_brute_ms = ms_since(t0) / brute_reps;
    MHP_REQUIRE(edges_grid == edges_brute, "grid and brute graphs disagree");
    out.topo_speedup =
        out.topo_grid_ms > 0.0 ? out.topo_brute_ms / out.topo_grid_ms : 0.0;
  }

  // Routing: one min-max-load solve, unit demand everywhere, on the
  // warm-start engine (the production path); at reference sizes also a
  // from-zero δ-search to pin the warm-start speedup.
  const ClusterTopology topo = disc_topology(dep, kSensorRange);
  const std::vector<std::int64_t> demand(p.sensors, 1);
  route::RoutingEngine engine;
  t0 = Clock::now();
  MinMaxLoadResult solution = [&] {
    MHP_SPAN("bench/routing");
    return engine.solve_balanced(topo, demand);
  }();
  out.routing_ms = ms_since(t0);
  if (reference) {
    route::RoutingEngine cold({MaxFlowAlgo::kDinic, /*warm_start=*/false});
    t0 = Clock::now();
    const MinMaxLoadResult ref = cold.solve_balanced(topo, demand);
    out.routing_cold_ms = ms_since(t0);
    MHP_REQUIRE(ref.max_load == solution.max_load,
                "warm and cold solves disagree");
    out.routing_speedup = out.routing_ms > 0.0
                              ? out.routing_cold_ms / out.routing_ms
                              : 0.0;
  }

  // Speculative parallel δ-probes + per-cell δ floor (the multi-core
  // single-cluster path).  The result must be byte-identical to the
  // serial solve — δ* is schedule-invariant and the decomposed flow
  // always comes from the one from-zero solve at δ* — so any worker
  // count only changes the wall clock, never the plan.
  {
    route::RoutingEngine par({MaxFlowAlgo::kDinic, /*warm_start=*/true,
                              /*probe_workers=*/8});
    par.set_cell_hint(route::grid_cells(
        std::span(dep.positions.data(), dep.num_sensors())));
    t0 = Clock::now();
    const MinMaxLoadResult par_solution = [&] {
      MHP_SPAN("bench/routing_par");
      return par.solve_balanced(topo, demand);
    }();
    out.routing_par_ms = ms_since(t0);
    MHP_REQUIRE(route_fingerprint(par_solution) == route_fingerprint(solution),
                "8-worker routing solve diverged from serial");
    out.routing_par_speedup = out.routing_par_ms > 0.0
                                  ? out.routing_ms / out.routing_par_ms
                                  : 0.0;
    if (reference) {
      route::RoutingEngine par4(
          {MaxFlowAlgo::kDinic, /*warm_start=*/true, /*probe_workers=*/4});
      MHP_REQUIRE(route_fingerprint(par4.solve_balanced(topo, demand)) ==
                      route_fingerprint(solution),
                  "4-worker routing solve diverged from serial");
    }
  }
  const RelayPlan plan(topo, std::move(solution));

  // One polling cycle: drain every sensor's packet through the greedy
  // scheduler, disc-model interference behind the pair-screening cache
  // (the disc model is monotone, so screening is sound).
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(p.sensors);
  for (NodeId s = 0; s < p.sensors; ++s)
    paths.push_back(plan.path_for_cycle(s, 0).hops);
  const DiscModelOracle truth(dep.positions, kSensorRange, 3);
  const CachedOracle cached(truth, CachedOracle::PairScreen::kOn);
  t0 = Clock::now();
  // The default 1M-slot guard exists for pathological loss models; a
  // loss-free n=100000 cycle legitimately needs ~3M slots (path length
  // grows with the √n field side), so scale the cap with n.
  const std::size_t max_slots =
      std::max<std::size_t>(1'000'000, 64 * p.sensors);
  const OfflineRunResult run = [&] {
    MHP_SPAN("bench/polling");
    return run_offline(cached, paths, {}, max_slots);
  }();
  out.polling_ms = ms_since(t0);
  MHP_REQUIRE(run.all_delivered, "offline polling cycle did not finish");
  out.polling_slots = static_cast<long long>(run.slots);
  out.polling_tx = static_cast<long long>(run.transmissions);
  out.tx_per_sec = out.polling_ms > 0.0
                       ? 1000.0 * static_cast<double>(run.transmissions) /
                             out.polling_ms
                       : 0.0;
  out.cache_hit_rate = cached.hit_rate();
  out.screened = static_cast<long long>(cached.screened());
  out.kernel_ms = kernel_churn_ms(p.sensors);
  out.floor_tx_per_sec = out.tx_per_sec / 20.0;
  out.budget_topo_ms = out.topo_grid_ms * 20.0;
  out.budget_routing_ms = out.routing_ms * 20.0;
  out.budget_routing_par_ms = out.routing_par_ms * 20.0;
  out.budget_polling_ms = out.polling_ms * 20.0;
  out.budget_kernel_ms = out.kernel_ms * 20.0;
  return out;
}

/// One point's gates from the committed baseline.  Absent fields read -1
/// (their check is skipped), so older baselines still gate.  Every point
/// present in both the baseline and the current run is gated: CI's smoke
/// run checks n=200, a full run additionally checks the n=100000 row.
struct BaselineGates {
  double floor_tx_per_sec = -1.0;
  double budget_topo_ms = -1.0;
  double budget_routing_ms = -1.0;
  double budget_routing_par_ms = -1.0;
  double budget_polling_ms = -1.0;
  double budget_kernel_ms = -1.0;
};

std::map<long long, BaselineGates> baseline_gates(const std::string& path,
                                                  bool& found) {
  std::map<long long, BaselineGates> gates;
  found = false;
  std::ifstream in(path);
  if (!in) return gates;
  std::ostringstream buf;
  buf << in.rdbuf();
  const mhp::obs::Json doc = mhp::obs::parse_json(buf.str());
  const mhp::obs::Json* points = doc.find("points");
  if (points == nullptr || !points->is_array()) return gates;
  for (std::size_t i = 0; i < points->size(); ++i) {
    const mhp::obs::Json& row = points->at(i);
    const mhp::obs::Json* n = row.find("sensors");
    if (n == nullptr) continue;
    BaselineGates g;
    const auto read = [&row](const char* key, double& dst) {
      if (const mhp::obs::Json* v = row.find(key)) dst = v->as_double();
    };
    read("floor_tx_per_sec", g.floor_tx_per_sec);
    read("budget_topo_ms", g.budget_topo_ms);
    read("budget_routing_ms", g.budget_routing_ms);
    read("budget_routing_par_ms", g.budget_routing_par_ms);
    read("budget_polling_ms", g.budget_polling_ms);
    read("budget_kernel_ms", g.budget_kernel_ms);
    if (n->as_int() == 200 && g.floor_tx_per_sec >= 0.0) found = true;
    gates.emplace(n->as_int(), g);
  }
  return gates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhp;
  mhp::exp::Flags flags("hot-path scaling bench (topology, routing, polling)");
  flags.flag("--smoke", "reduced point set for CI")
      .option("--baseline", "PATH", "committed BENCH_perf.json to gate against")
      .option("--profile-out", "PATH",
              "record profiler spans, write Chrome trace-event JSON here");
  flags.parse(argc, argv);
  const bool smoke = flags.has("--smoke");
  const std::string baseline_path = flags.value("--baseline");
  const std::string profile_path = flags.value("--profile-out");
  // Parse the baseline up front: this run overwrites BENCH_perf.json in
  // the working directory, and CI points --baseline at the committed copy.
  std::map<long long, BaselineGates> gates;
  if (!baseline_path.empty()) {
    bool found = false;
    gates = baseline_gates(baseline_path, found);
    if (!found) {
      std::fprintf(stderr, "perf_scaling: no n=200 floor in baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
  }
  obs::RunRecorder recorder;

  std::vector<Point> points;
  if (smoke) {
    points = {{50}, {200}};
  } else {
    points = {{50}, {200}, {500}, {1000}, {5000}, {20000}, {100000}};
  }

  // Sequential on purpose: the columns are wall-clock timings and thread
  // contention would corrupt them (determinism of the *results* under
  // exp::sweep threading is pinned separately in tests/test_exp.cpp).
  const bool profiling = !profile_path.empty();
  obs::Profiler& prof = obs::Profiler::instance();
  if (profiling) {
    prof.drain();
    prof.enable();
  }
  obs::ProfileData all_spans;
  std::vector<Result> results;
  results.reserve(points.size());
  for (const Point& p : points) {
    results.push_back(run_point(p));
    if (!profiling) continue;
    // Per-point drain so the span columns attribute to this point only;
    // events accumulate for the whole-run trace export (path ids are
    // global intern indices, stable across drains).
    obs::ProfileData data = prof.drain();
    const obs::ProfileSummary sum = obs::summarize_profile(data);
    const auto span_ms = [&sum](const char* path) {
      const auto it = sum.spans.find(path);
      return it == sum.spans.end()
                 ? 0.0
                 : it->second.total_ms /
                       static_cast<double>(it->second.count);
    };
    Result& r = results.back();
    r.span_topo_ms = span_ms("bench/topology");
    r.span_routing_ms = span_ms("bench/routing");
    r.span_polling_ms = span_ms("bench/polling");
    r.span_kernel_ms = span_ms("bench/kernel");
    all_spans.paths = std::move(data.paths);
    all_spans.events.insert(all_spans.events.end(), data.events.begin(),
                            data.events.end());
  }
  if (profiling) {
    prof.disable();
    std::ofstream trace(profile_path);
    if (trace.is_open()) {
      obs::chrome_trace_json(all_spans).write(trace, -1);
      trace << '\n';
    } else {
      std::fprintf(stderr, "perf_scaling: cannot write %s\n",
                   profile_path.c_str());
    }
  }

  std::printf(
      "Hot-path scaling — spatial-grid topology, warm-start routing "
      "engine, pair-screening cached oracle, greedy polling\n"
      "(speedups = reference / production time; 0 = reference skipped)\n\n");

  Table table({"sensors", "topo grid ms", "topo brute ms", "topo_speedup",
               "routing ms", "routing cold ms", "routing_speedup",
               "routing_par ms", "routing_par_speedup",
               "polling_slots", "polling tx", "polling ms", "tx_per_sec",
               "cache_hit_rate", "screened", "floor_tx_per_sec",
               "budget_topo_ms", "budget_routing_ms",
               "budget_routing_par_ms", "budget_polling_ms",
               "span_topo_ms", "span_routing_ms", "span_polling_ms",
               "kernel ms", "budget_kernel_ms", "span_kernel_ms"});
  table.set_precision(1, 3);
  table.set_precision(2, 3);
  table.set_precision(3, 1);
  table.set_precision(4, 2);
  table.set_precision(5, 2);
  table.set_precision(6, 2);
  table.set_precision(7, 2);
  table.set_precision(8, 2);
  table.set_precision(11, 2);
  table.set_precision(12, 0);
  table.set_precision(13, 3);
  table.set_precision(15, 0);
  table.set_precision(16, 1);
  table.set_precision(17, 1);
  table.set_precision(18, 1);
  table.set_precision(19, 1);
  table.set_precision(20, 3);
  table.set_precision(21, 2);
  table.set_precision(22, 2);
  table.set_precision(23, 3);
  table.set_precision(24, 1);
  table.set_precision(25, 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Result& r = results[i];
    table.add_row({static_cast<long long>(points[i].sensors),
                   r.topo_grid_ms, r.topo_brute_ms, r.topo_speedup,
                   r.routing_ms, r.routing_cold_ms, r.routing_speedup,
                   r.routing_par_ms, r.routing_par_speedup,
                   r.polling_slots, r.polling_tx, r.polling_ms,
                   r.tx_per_sec, r.cache_hit_rate, r.screened,
                   r.floor_tx_per_sec, r.budget_topo_ms,
                   r.budget_routing_ms, r.budget_routing_par_ms,
                   r.budget_polling_ms,
                   r.span_topo_ms, r.span_routing_ms, r.span_polling_ms,
                   r.kernel_ms, r.budget_kernel_ms, r.span_kernel_ms});
    recorder.add_events(static_cast<std::uint64_t>(r.polling_tx));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("perf_scaling.csv", table);
  mhp::exp::save_bench_json("perf", table, recorder);

  if (!baseline_path.empty()) {
    bool ok = true;
    std::size_t gated = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto it = gates.find(static_cast<long long>(points[i].sensors));
      if (it == gates.end()) continue;
      const long long n = it->first;
      const BaselineGates& g = it->second;
      const Result& r = results[i];
      ++gated;
      if (g.floor_tx_per_sec >= 0.0 && r.tx_per_sec < g.floor_tx_per_sec) {
        std::fprintf(stderr,
                     "perf_scaling: REGRESSION — n=%lld tx/sec %.0f below "
                     "baseline floor %.0f\n",
                     n, r.tx_per_sec, g.floor_tx_per_sec);
        ok = false;
      }
      const auto check_budget = [&](const char* phase, double ms,
                                    double budget) {
        if (budget < 0.0 || ms <= budget) return;
        std::fprintf(stderr,
                     "perf_scaling: REGRESSION — n=%lld %s %.2f ms over "
                     "baseline budget %.2f ms\n",
                     n, phase, ms, budget);
        ok = false;
      };
      check_budget("topology", r.topo_grid_ms, g.budget_topo_ms);
      check_budget("routing", r.routing_ms, g.budget_routing_ms);
      check_budget("routing_par", r.routing_par_ms, g.budget_routing_par_ms);
      check_budget("polling", r.polling_ms, g.budget_polling_ms);
      check_budget("kernel", r.kernel_ms, g.budget_kernel_ms);
    }
    MHP_REQUIRE(gated > 0, "no baseline-gated point in this run");
    if (!ok) return 1;
    std::printf(
        "perf gates ok: %zu point(s) at or above the tx/sec floor and "
        "within every phase budget\n",
        gated);
  }
  return 0;
}
