// Ablation: set-up cost (§V-A/B/E) and how sectoring collapses the
// interference-probing bill (§IV's 85'320-vs-1'320 argument, measured on
// real clusters instead of the paper's back-of-envelope).
#include <cstdio>
#include <vector>

#include "core/routing.hpp"
#include "core/sectors.hpp"
#include "core/setup_phase.hpp"
#include "exp/fig_common.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: set-up phase cost accounting").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — set-up slot budget, whole cluster vs sectors (M = 3)\n"
      "(discovery and connectivity are linear; probing is the "
      "super-linear\n term sectoring attacks)\n\n");

  Table table({"sensors", "discovery", "connectivity", "probe whole",
               "probe sectored", "sectors", "probe ratio"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  table.set_precision(3, 0);
  table.set_precision(4, 0);
  table.set_precision(5, 1);
  table.set_precision(6, 1);

  for (std::size_t n = 20; n <= 80; n += 20) {
    Accumulator disc_s, conn_s, whole_s, sect_s, sect_count;
    for (int trial = 0; trial < 5; ++trial) {
      const auto seed = n * 17 + static_cast<std::uint64_t>(trial);
      const Deployment dep = mhp::exp::eval_deployment(n, seed);
      Simulator sim;
      TwoRayGround prop;
      std::vector<double> powers(n + 1, RadioParams::kSensorTxPowerW);
      powers[n] = RadioParams::kHeadTxPowerW;
      Channel channel(sim, prop, RadioParams{}, dep.positions, powers);

      const auto disc = run_setup_discovery(channel, n);
      disc_s.add(static_cast<double>(disc.cost.discovery_slots));
      conn_s.add(static_cast<double>(disc.cost.connectivity_slots));

      const std::vector<std::int64_t> demand(n, 1);
      const RelayPlan plan = RelayPlan::balanced(disc.topology, demand);

      std::vector<std::vector<NodeId>> all_paths;
      for (NodeId s = 0; s < n; ++s)
        all_paths.push_back(plan.paths(s)[0].hops);
      whole_s.add(static_cast<double>(
          run_interference_probing(channel, all_paths, 3)
              .cost.probe_slots));

      SectorPartitioner sp(disc.topology);
      const auto part = sp.partition(plan, demand);
      sect_count.add(static_cast<double>(part.sectors.size()));
      double sect_slots = 0;
      for (const auto& sec : part.sectors) {
        std::vector<std::vector<NodeId>> sector_paths;
        for (NodeId s : sec.sensors)
          sector_paths.push_back(part.tree_path(s, disc.topology.head()));
        sect_slots += static_cast<double>(
            run_interference_probing(channel, sector_paths, 3)
                .cost.probe_slots);
      }
      sect_s.add(sect_slots);
    }
    table.add_row({static_cast<long long>(n), disc_s.mean(), conn_s.mean(),
                   whole_s.mean(), sect_s.mean(), sect_count.mean(),
                   whole_s.mean() / sect_s.mean()});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_setup_cost", table, recorder);
  return 0;
}
