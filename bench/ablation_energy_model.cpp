// Ablation: how much do the conclusions depend on the radio energy
// model?  The paper's premise is the ordering tx ≳ rx ≈ idle ≫ sleep.
// We run ONE simulation per variant pair (sectored vs not), then re-price
// the recorded per-state dwell times under several models — the dwell
// times are model-independent, so this isolates the energy-model effect
// on the Fig 7(c) lifetime ratio.
#include <cstdio>
#include <vector>

#include "core/polling_simulation.hpp"
#include "exp/fig_common.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

namespace {

/// Worst per-sensor mean power under `model`, from recorded dwell times.
double max_power_under(const PollingSimulation& sim, std::size_t n,
                       const EnergyModel& model) {
  double worst = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    const EnergyMeter& m = sim.sensor(s).meter();
    double energy = 0.0;
    for (std::size_t k = 0; k < kNumRadioStates; ++k) {
      const auto state = static_cast<RadioState>(k);
      energy += model.power(state) * m.time_in(state).to_seconds();
    }
    const double seconds = m.total_time().to_seconds();
    if (seconds > 0.0) worst = std::max(worst, energy / seconds);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: energy-model parameter sensitivity").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — energy-model sensitivity of the sectoring gain\n"
      "(one 30-sensor run per variant; dwell times re-priced under\n"
      " different sleep/idle ratios; ratio = lifetime with sectors /\n"
      " without, as in Fig 7(c))\n\n");

  const Deployment dep = mhp::exp::eval_deployment(30, 55);
  constexpr double kRate = 20.0;
  constexpr std::size_t kN = 30;

  PollingSimulation plain(dep, mhp::exp::eval_protocol_config(55, false),
                          kRate);
  plain.run(Time::sec(40), Time::sec(10));
  PollingSimulation sectored(dep, mhp::exp::eval_protocol_config(55, true),
                             kRate);
  sectored.run(Time::sec(40), Time::sec(10));

  struct Variant {
    const char* name;
    EnergyModel model;
  };
  const double idle = 20e-3;
  const std::vector<Variant> variants = {
      {"paper-like (sleep 0.1% of idle)",
       {1.4 * idle, 1.05 * idle, idle, 0.001 * idle}},
      {"lazy radio (sleep 5% of idle)",
       {1.4 * idle, 1.05 * idle, idle, 0.05 * idle}},
      {"leaky radio (sleep 25% of idle)",
       {1.4 * idle, 1.05 * idle, idle, 0.25 * idle}},
      {"no sleep saving (sleep = idle)",
       {1.4 * idle, 1.05 * idle, idle, idle}},
      {"tx-dominated (tx 10x idle)",
       {10.0 * idle, 1.05 * idle, idle, 0.001 * idle}},
  };

  Table table({"energy model", "max power plain (mW)",
               "max power sectored (mW)", "lifetime ratio"});
  table.set_precision(1, 3);
  table.set_precision(2, 3);
  table.set_precision(3, 2);
  for (const auto& v : variants) {
    const double p_plain = max_power_under(plain, kN, v.model);
    const double p_sect = max_power_under(sectored, kN, v.model);
    table.add_row({std::string(v.name), 1e3 * p_plain, 1e3 * p_sect,
                   p_plain / p_sect});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_energy_model", table, recorder);
  std::printf(
      "Reading: the sectoring gain needs sleep to be much cheaper than\n"
      "idle (the paper's premise); as sleep power approaches idle power\n"
      "the ratio collapses toward 1, and a tx-dominated radio shrinks it\n"
      "because transmission load, not listening, rules the budget.\n");
  return 0;
}
