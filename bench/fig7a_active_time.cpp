// Fig 7(a): percentage of active time of sensors as a function of cluster
// size and data generating rate, under multi-hop polling.
//
// Paper series: N = 10..100 sensors, per-sensor rates 20/40/60/80 B/s.
// Expected shape: active time grows with both N and rate; beyond a
// size/rate threshold the cluster saturates at 100% and loses packets.
#include <cstdio>
#include <functional>
#include <vector>

#include "exp/bench_json.hpp"
#include "exp/fig_common.hpp"
#include "exp/csv_out.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

struct Point {
  std::size_t sensors;
  double rate_bps;
};

struct Result {
  double active_pct = 0.0;
  double delivery_pct = 0.0;
  std::uint64_t events = 0;
};

Result run_point(const Point& p, const mhp::RuntimeOptions& rt_opts) {
  using namespace mhp;
  using namespace mhp::exp;
  const std::uint64_t seed = p.sensors * 131 +
                             static_cast<std::uint64_t>(p.rate_bps);
  const Deployment dep = eval_deployment(p.sensors, seed);
  PollingSimulation sim(dep, eval_protocol_config(seed), p.rate_bps,
                        rt_opts);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  return Result{100.0 * rep.mean_active_fraction,
                100.0 * rep.delivery_ratio, rep.events_processed};
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("fig 7(a): mean sensor active time vs cluster size").parse(argc, argv);
  using namespace mhp;
  mhp::obs::RunRecorder recorder;

  const std::vector<double> rates = {20.0, 40.0, 60.0, 80.0};
  std::vector<Point> points;
  for (std::size_t n = 10; n <= 100; n += 10)
    for (double r : rates) points.push_back({n, r});

  mhp::exp::SweepOptions sweep_opts;
  sweep_opts.runtime = mhp::exp::eval_runtime_options();
  const auto results = mhp::exp::sweep<Point, Result>(
      points,
      std::function<Result(const Point&, const RuntimeOptions&)>(run_point),
      sweep_opts);

  std::printf(
      "Fig 7(a) — percentage of active time vs cluster size and rate\n"
      "(multi-hop polling; delivery%% in parentheses; paper: ~10-90%%\n"
      " rising with N and rate, saturation at high N x rate)\n\n");

  std::vector<std::string> headers{"sensors"};
  for (double r : rates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g B/s", r);
    headers.push_back(buf);
  }
  Table table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) table.set_precision(c, 1);

  std::size_t i = 0;
  for (std::size_t n = 10; n <= 100; n += 10) {
    std::vector<Cell> row{static_cast<long long>(n)};
    for (std::size_t r = 0; r < rates.size(); ++r, ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%5.1f%% (%5.1f%%)",
                    results[i].active_pct, results[i].delivery_pct);
      row.push_back(std::string(buf));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("fig7a_active_time.csv", table);
  for (const auto& r : results) recorder.add_events(r.events);
  mhp::exp::save_bench_json("fig7a_active_time", table, recorder);
  return 0;
}
