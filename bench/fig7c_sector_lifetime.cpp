// Fig 7(c): cluster life time ratio, sectored vs unsectored, while
// sustaining 100% throughput.
//
// Paper series: N = 10..50; ratio always > 1 and growing with N (larger
// clusters split into more sectors).  Lifetime = battery / worst sensor
// power; the battery cancels in the ratio.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "exp/bench_json.hpp"
#include "exp/fig_common.hpp"
#include "exp/csv_out.hpp"
#include "exp/sweep.hpp"
#include "metrics/lifetime.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

struct Point {
  std::size_t sensors;
};

struct Result {
  double ratio = 0.0;
  double sectors = 0.0;
  double delivery_sectored = 0.0;
  std::uint64_t events = 0;
};

/// Average over a few deployments per cluster size to smooth topology
/// noise (the paper plots one curve; we report the mean of 3 seeds).
Result run_point(const Point& p, const mhp::RuntimeOptions& rt_opts) {
  using namespace mhp;
  using namespace mhp::exp;
  constexpr double kRate = 20.0;  // low rate: both variants deliver 100%
  constexpr int kSeeds = 3;

  Result out;
  for (int k = 0; k < kSeeds; ++k) {
    const std::uint64_t seed = 7700 + p.sensors * 10 +
                               static_cast<std::uint64_t>(k);
    const Deployment dep = eval_deployment(p.sensors, seed);

    PollingSimulation plain(dep, eval_protocol_config(seed, false), kRate,
                            rt_opts);
    const auto rp = plain.run(Time::sec(40), Time::sec(10));

    PollingSimulation sectored(dep, eval_protocol_config(seed, true),
                               kRate, rt_opts);
    const auto rs = sectored.run(Time::sec(40), Time::sec(10));

    out.events += rp.events_processed + rs.events_processed;
    out.sectors += static_cast<double>(rs.sectors) / kSeeds;
    out.delivery_sectored +=
        std::min(100.0, 100.0 * rs.delivery_ratio) / kSeeds;
    // lifetime ∝ 1 / max sensor power; battery capacity cancels.
    out.ratio += rp.max_sensor_power_w / rs.max_sensor_power_w / kSeeds;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("fig 7(c): sectoring effect on cluster lifetime").parse(argc, argv);
  using namespace mhp;
  mhp::obs::RunRecorder recorder;

  std::vector<Point> points;
  for (std::size_t n = 10; n <= 50; n += 5) points.push_back({n});

  mhp::exp::SweepOptions sweep_opts;
  sweep_opts.runtime = mhp::exp::eval_runtime_options();
  const auto results = mhp::exp::sweep<Point, Result>(
      points,
      std::function<Result(const Point&, const RuntimeOptions&)>(run_point),
      sweep_opts);

  std::printf(
      "Fig 7(c) — lifetime ratio (with sectors vs without), 100%% delivery\n"
      "(paper: ratio 1.55..2.05, increasing with cluster size)\n\n");

  Table table({"sensors", "sectors", "lifetime ratio", "delivery %"});
  table.set_precision(1, 1);
  table.set_precision(2, 2);
  table.set_precision(3, 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({static_cast<long long>(points[i].sensors),
                   results[i].sectors, results[i].ratio,
                   results[i].delivery_sectored});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("fig7c_sector_lifetime.csv", table);
  for (const auto& r : results) recorder.add_events(r.events);
  mhp::exp::save_bench_json("fig7c_sector_lifetime", table, recorder);
  return 0;
}
