// Ablation: the compatibility knowledge order M (§III-B suggests M = 2
// or 3).  Larger M → shorter schedules (more concurrency) but the probing
// cost the head pays during set-up grows combinatorially — the trade-off
// that motivates sectoring (§IV).
#include <cstdio>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/interference.hpp"
#include "exp/fig_common.hpp"
#include "flow/min_max_load.hpp"
#include "radio/channel.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: compatibility order M trade-off").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — compatibility order M: schedule length vs probing cost\n"
      "(30-sensor clusters; probes = groups tested during set-up, §V-E)\n\n");

  Table table({"M", "mean slots", "mean probes", "slots vs M=1"});
  table.set_precision(1, 2);
  table.set_precision(3, 3);

  std::vector<double> base_slots;
  for (int order = 1; order <= 4; ++order) {
    Accumulator slots, probes;
    for (int trial = 0; trial < 8; ++trial) {
      const auto seed = static_cast<std::uint64_t>(trial);
      const Deployment dep = mhp::exp::eval_deployment(30, seed);
      Simulator sim;
      TwoRayGround prop;
      std::vector<double> powers(31, RadioParams::kSensorTxPowerW);
      powers[30] = RadioParams::kHeadTxPowerW;
      Channel channel(sim, prop, RadioParams{}, dep.positions, powers);
      const auto topo = topology_from_predicate(
          30, [&](NodeId a, NodeId b) { return channel.link_ok(a, b); });
      const auto routing =
          solve_min_max_load(topo, std::vector<std::int64_t>(30, 1));
      if (!routing.feasible) continue;

      std::vector<std::vector<NodeId>> paths;
      for (NodeId s = 0; s < 30; ++s)
        paths.push_back(routing.paths[s][0].hops);
      ChannelOracle truth(channel, order);
      MeasuredOracle oracle(truth, transmissions_of_paths(paths), order);
      const auto result = run_offline(oracle, paths);
      if (!result.all_delivered) continue;
      slots.add(static_cast<double>(result.slots));
      probes.add(static_cast<double>(oracle.probes()));
    }
    if (order == 1) base_slots.push_back(slots.mean());
    table.add_row({static_cast<long long>(order), slots.mean(),
                   probes.mean(), slots.mean() / base_slots[0]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_m_order", table, recorder);
  return 0;
}
