// Ablation: inter-cluster interference and its remedies (§V-G), measured.
//
// A 2×2 field of adjacent clusters polls simultaneously on one channel
// (the problem), on coloured channels, and under token rotation.
// Expected: shared loses boundary packets; colouring restores ~100%
// delivery with ≤4 channels; the token restores it on one channel at the
// cost of longer awake windows per cycle.
#include <cstdio>
#include <vector>

#include "core/multi_cluster_sim.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

namespace {

std::vector<ClusterSpec> make_field(std::uint64_t seed) {
  // 2×2 clusters, 220 m pitch: boundary sensors of neighbours are within
  // interference range of each other.
  std::vector<ClusterSpec> specs;
  Rng rng(seed);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) {
      ClusterSpec spec;
      spec.deployment =
          deploy_connected_uniform_square(12, 180.0, 60.0, rng);
      spec.origin = {x * 220.0, y * 220.0};
      specs.push_back(std::move(spec));
    }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: inter-cluster coordination modes").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — inter-cluster interference (§V-G): 2x2 adjacent "
      "clusters,\n12 sensors each, 40 B/s per sensor\n\n");

  Table table({"mode", "channels", "aggregate delivery %",
               "worst cluster %", "mean active %"});
  table.set_precision(2, 1);
  table.set_precision(3, 1);
  table.set_precision(4, 1);

  for (InterClusterMode mode :
       {InterClusterMode::kShared, InterClusterMode::kColored,
        InterClusterMode::kToken}) {
    ProtocolConfig cfg;
    cfg.seed = 11;
    MultiClusterSimulation sim(make_field(11), cfg, mode, 40.0);
    const auto rep = sim.run(Time::sec(50), Time::sec(10));
    recorder.add_events(rep.totals.events_processed);
    double worst = 1.0, active = 0.0;
    for (double d : rep.delivery_ratio) worst = std::min(worst, d);
    for (double a : rep.mean_active) active += a / rep.mean_active.size();
    table.add_row({std::string(to_string(mode)),
                   static_cast<long long>(rep.channels_used),
                   100.0 * rep.aggregate_delivery, 100.0 * worst,
                   100.0 * active});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_intercluster", table, recorder);
  return 0;
}
