// Campaign-service load generator: an in-process mhp_serve server on a
// private UNIX socket, hammered by N concurrent clients each submitting a
// stream of unique single-point scenarios.  Measures what the serve layer
// itself adds — admission latency (request → response, p50/p95/p99 via
// the fixed-bin Histogram), end-to-end point throughput, and how often
// the bounded queue pushes back (queue_full rejections; clients retry).
//
// Writes BENCH_serve.json via the standard bench-report path.
//
//   --smoke              reduced load for CI (4 clients × 8 submissions)
//   --clients N          concurrent submitting clients (default 8)
//   --submissions N      submissions per client (default 40)
//   --workers N          server worker threads (default hardware)
//   --queue-cap N        server admission queue capacity (default 64)
//   --budget-p95-ms MS   fail (exit 1) if admission p95 exceeds this
//                        (default 250 ms — generous; the gate exists to
//                        catch pathological serialization, not jitter)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/bench_json.hpp"
#include "exp/csv_out.hpp"
#include "exp/flags.hpp"
#include "obs/json.hpp"
#include "obs/run_recorder.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using mhp::obs::Json;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Smallest useful scenario: the serve layer's own cost dominates, not
/// the simulation.  Unique names → unique canonical forms → every
/// submission gets its own durable job directory (no resume skips).
Json tiny_scenario(const std::string& name) {
  namespace sc = mhp::scenario;
  sc::Scenario s = sc::default_scenario(sc::StackKind::kPolling);
  s.name = name;
  s.deployment.kind = sc::DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = mhp::Time::sec(4);
  s.run.warmup = mhp::Time::sec(1);
  s.run.record_perf = false;
  return sc::scenario_to_json(s);
}

struct ClientTally {
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;  // queue_full responses (then retried)
  std::size_t points_ok = 0;
  std::size_t errors = 0;
  std::vector<double> admission_ms;  // one sample per accepted submit
};

/// One client: submit `submissions` unique scenarios (retrying on
/// queue_full backpressure), then drain frames until every admitted job
/// has reported done.
ClientTally run_client(const std::string& socket_path, int id,
                       std::size_t submissions) {
  ClientTally tally;
  mhp::serve::Client client = mhp::serve::Client::connect(socket_path);
  std::size_t open_jobs = 0;
  for (std::size_t i = 0; i < submissions; ++i) {
    const Json doc = tiny_scenario("load_c" + std::to_string(id) + "_s" +
                                   std::to_string(i));
    for (;;) {
      const auto t0 = Clock::now();
      const Json response = client.submit(doc);
      const double ms = ms_since(t0);
      const std::string& status = response.at("status").as_string();
      if (status == "ok") {
        tally.admission_ms.push_back(ms);
        ++tally.admitted;
        ++open_jobs;
        break;
      }
      if (status == "queue_full") {
        // Explicit backpressure: the response came back immediately; the
        // client owns the retry policy.
        ++tally.rejected_full;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      ++tally.errors;
      std::fprintf(stderr, "serve_load: client %d: %s\n", id,
                   response.dump().c_str());
      break;
    }
  }
  while (open_jobs > 0) {
    const auto frame = client.next_frame();
    if (!frame.has_value()) {
      std::fprintf(stderr,
                   "serve_load: client %d: connection closed with %zu "
                   "job(s) open\n",
                   id, open_jobs);
      tally.errors += open_jobs;
      break;
    }
    const Json* kind = frame->find("frame");
    if (kind == nullptr || !kind->is_string()) continue;
    if (kind->as_string() == "done") {
      --open_jobs;
      continue;
    }
    const Json* status = frame->find("status");
    if (status != nullptr && status->is_string() &&
        status->as_string() == "ok")
      ++tally.points_ok;
  }
  return tally;
}

double quantile_of(const std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  double hi = *std::max_element(samples.begin(), samples.end());
  if (hi <= 0.0) hi = 1.0;
  mhp::Histogram h(0.0, hi * 1.0001, 256);
  for (const double v : samples) h.add(v);
  return h.quantile(q);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhp;
  exp::Flags flags("campaign-service load generator (admission latency, "
                   "throughput, backpressure)");
  flags.flag("--smoke", "reduced load for CI")
      .option("--clients", "N", "concurrent clients (default 8)")
      .option("--submissions", "N", "submissions per client (default 40)")
      .option("--workers", "N", "server workers (default hardware)")
      .option("--queue-cap", "N", "server queue capacity (default 64)")
      .option("--budget-p95-ms", "MS",
              "fail if admission p95 exceeds this (default 250)");
  flags.parse(argc, argv);
  const bool smoke = flags.has("--smoke");
  const std::size_t clients =
      flags.count_value("--clients", smoke ? 4 : 8);
  const std::size_t submissions =
      flags.count_value("--submissions", smoke ? 8 : 40);
  const std::size_t workers = flags.count_value("--workers", 0);
  const std::size_t queue_cap = flags.count_value("--queue-cap", 64);
  double budget_p95_ms = 250.0;
  if (!flags.value("--budget-p95-ms").empty())
    budget_p95_ms = std::stod(flags.value("--budget-p95-ms"));

  namespace fs = std::filesystem;
  const std::string base =
      (fs::temp_directory_path() /
       ("mhp_serve_load_" + std::to_string(::getpid())))
          .string();
  const std::string socket_path = base + ".sock";
  const std::string out_root = base + ".jobs";
  fs::remove_all(out_root);  // fresh root: no resume skips, every point runs

  serve::ServeConfig cfg;
  cfg.socket_path = socket_path;
  cfg.out_root = out_root;
  cfg.workers = workers;
  cfg.queue_capacity = queue_cap;
  serve::Server server(cfg);
  server.start();
  std::thread server_thread([&server] { server.run(); });

  std::printf(
      "serve_load: %zu client(s) x %zu submission(s), queue capacity %zu\n",
      clients, submissions, queue_cap);

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  std::vector<ClientTally> tallies(clients);
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      tallies[c] = run_client(socket_path, static_cast<int>(c), submissions);
    });
  for (std::thread& t : threads) t.join();
  const double wall_s = ms_since(t0) / 1000.0;

  server.request_stop();
  server_thread.join();
  fs::remove_all(out_root);

  ClientTally total;
  std::vector<double> admission_ms;
  for (const ClientTally& t : tallies) {
    total.admitted += t.admitted;
    total.rejected_full += t.rejected_full;
    total.points_ok += t.points_ok;
    total.errors += t.errors;
    admission_ms.insert(admission_ms.end(), t.admission_ms.begin(),
                        t.admission_ms.end());
  }
  const double p50 = quantile_of(admission_ms, 0.50);
  const double p95 = quantile_of(admission_ms, 0.95);
  const double p99 = quantile_of(admission_ms, 0.99);
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(total.points_ok) / wall_s : 0.0;

  obs::RunRecorder recorder;
  recorder.add_events(total.points_ok);

  Table table({"clients", "submissions", "admitted", "rejected_full",
               "points_ok", "errors", "wall_s", "points_per_sec",
               "adm_p50_ms", "adm_p95_ms", "adm_p99_ms", "budget_p95_ms"});
  table.set_precision(6, 2);
  table.set_precision(7, 1);
  table.set_precision(8, 3);
  table.set_precision(9, 3);
  table.set_precision(10, 3);
  table.set_precision(11, 1);
  table.add_row({static_cast<long long>(clients),
                 static_cast<long long>(clients * submissions),
                 static_cast<long long>(total.admitted),
                 static_cast<long long>(total.rejected_full),
                 static_cast<long long>(total.points_ok),
                 static_cast<long long>(total.errors), wall_s, throughput,
                 p50, p95, p99, budget_p95_ms});
  std::printf("%s\n", table.to_ascii().c_str());
  exp::save_csv("serve_load.csv", table);
  exp::save_bench_json("serve", table, recorder);

  if (total.errors > 0) {
    std::fprintf(stderr, "serve_load: FAILED — %zu client error(s)\n",
                 total.errors);
    return 1;
  }
  if (total.points_ok != clients * submissions) {
    std::fprintf(stderr,
                 "serve_load: FAILED — %zu of %zu points completed ok\n",
                 total.points_ok, clients * submissions);
    return 1;
  }
  if (p95 > budget_p95_ms) {
    std::fprintf(stderr,
                 "serve_load: REGRESSION — admission p95 %.3f ms over "
                 "budget %.1f ms\n",
                 p95, budget_p95_ms);
    return 1;
  }
  std::printf(
      "serve gates ok: all %zu point(s) completed, admission p95 %.3f ms "
      "within %.1f ms\n",
      total.points_ok, p95, budget_p95_ms);
  return 0;
}
