// Ablation: the paper decomposes JMHRP (§III-E) into routing-then-
// scheduling because the joint problem is NP-hard.  On instances small
// enough for the exact joint optimum, how much does the decomposition
// give up in the worst sensor's power rate α·load + β·polling_time?
#include <cstdio>

#include "core/greedy_scheduler.hpp"
#include "core/jmhrp.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: joint routing + scheduling vs decoupled").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — joint routing+scheduling (exact) vs the paper's\n"
      "decomposition (max-flow routing, then greedy schedule)\n"
      "power rate = alpha*load + beta*slots, alpha=1, beta=0.1\n\n");

  Table table({"sensors", "instances", "joint rate", "decomposed rate",
               "mean gap %", "decomposed optimal %"});
  table.set_precision(2, 3);
  table.set_precision(3, 3);
  table.set_precision(4, 1);
  table.set_precision(5, 1);

  for (std::size_t n : {4u, 5u, 6u}) {
    Accumulator joint, decomposed, gap;
    int optimal_hits = 0, instances = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Rng rng(n * 500 + static_cast<std::uint64_t>(trial));
      const Deployment dep =
          deploy_connected_uniform_square(n, 130.0, 60.0, rng);
      const ClusterTopology topo = disc_topology(dep, 60.0);

      // Oracle: random pairwise compatibility over all plausible hops.
      ExplicitOracle oracle(2);
      std::vector<Tx> txs;
      for (NodeId a = 0; a < n; ++a) {
        if (topo.head_hears(a)) txs.push_back(Tx{a, topo.head()});
        for (NodeId b : topo.sensor_links().neighbors(a))
          txs.push_back(Tx{a, b});
      }
      for (std::size_t i = 0; i < txs.size(); ++i)
        for (std::size_t j = i + 1; j < txs.size(); ++j)
          if (rng.bernoulli(0.5)) oracle.allow_pair(txs[i], txs[j]);

      const auto exact = solve_jmhrp_exact(topo, oracle);
      const auto decomp = solve_jmhrp_decomposed(topo, oracle);
      if (!exact || !decomp) continue;
      ++instances;
      joint.add(exact->max_power_rate);
      decomposed.add(decomp->max_power_rate);
      gap.add(100.0 * (decomp->max_power_rate - exact->max_power_rate) /
              exact->max_power_rate);
      if (decomp->max_power_rate <= exact->max_power_rate + 1e-9)
        ++optimal_hits;
    }
    table.add_row({static_cast<long long>(n),
                   static_cast<long long>(instances), joint.mean(),
                   decomposed.mean(), gap.mean(),
                   100.0 * optimal_hits / std::max(instances, 1)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_joint", table, recorder);
  return 0;
}
