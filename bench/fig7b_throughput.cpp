// Fig 7(b): throughput at the cluster head for a 30-sensor cluster under
// multi-hop polling vs S-MAC+AODV at several duty cycles.
//
// Paper series: total offered load 210 / 750 / 1200 B/s (7/25/40 B/s per
// sensor).  Expected shape: polling delivers 100% of the offered load at
// every point; S-MAC+AODV falls far short even with no sleep cycle, and
// collapses as the duty cycle shrinks.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baseline/smac_simulation.hpp"
#include "exp/bench_json.hpp"
#include "exp/fig_common.hpp"
#include "exp/csv_out.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

constexpr std::size_t kSensors = 30;

struct Point {
  double per_sensor_bps;
  double smac_duty;  // <0 → multi-hop polling
};

struct Result {
  double throughput_bps = 0.0;
  double active_pct = 0.0;
  std::uint64_t events = 0;
};

Result run_point(const Point& p, const mhp::RuntimeOptions& rt_opts) {
  using namespace mhp;
  using namespace mhp::exp;
  // One shared deployment as in the paper; average 3 traffic/schedule
  // seeds to tame the S-MAC contention noise.
  const Deployment dep = eval_deployment(kSensors, 42);
  constexpr int kSeeds = 3;
  Result out;
  for (int k = 0; k < kSeeds; ++k) {
    const std::uint64_t seed = 42 + static_cast<std::uint64_t>(k);
    if (p.smac_duty < 0.0) {
      PollingSimulation sim(dep, eval_protocol_config(seed),
                            p.per_sensor_bps, rt_opts);
      const auto rep = sim.run(Time::sec(70), Time::sec(10));
      out.throughput_bps += rep.throughput_bps / kSeeds;
      out.active_pct += 100.0 * rep.mean_active_fraction / kSeeds;
      out.events += rep.events_processed;
    } else {
      SmacConfig cfg;
      cfg.duty_cycle = p.smac_duty;
      cfg.seed = seed;
      SmacSimulation sim(dep, cfg, p.per_sensor_bps, rt_opts);
      const auto rep = sim.run(Time::sec(70), Time::sec(10));
      out.throughput_bps += rep.throughput_bps / kSeeds;
      out.active_pct += 100.0 * rep.mean_active_fraction / kSeeds;
      out.events += rep.events_processed;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("fig 7(b): delivered throughput vs offered load").parse(argc, argv);
  using namespace mhp;
  mhp::obs::RunRecorder recorder;

  const std::vector<double> loads = {7.0, 25.0, 40.0};  // per sensor B/s
  struct Scheme {
    std::string name;
    double duty;
  };
  const std::vector<Scheme> schemes = {
      {"Multihop Polling", -1.0},       {"SMAC (no sleep)", 1.0},
      {"SMAC (90% duty)", 0.9},         {"SMAC (70% duty)", 0.7},
      {"SMAC (50% duty)", 0.5},         {"SMAC (30% duty)", 0.3},
  };

  std::vector<Point> points;
  for (const auto& s : schemes)
    for (double l : loads) points.push_back({l, s.duty});

  mhp::exp::SweepOptions sweep_opts;
  sweep_opts.runtime = mhp::exp::eval_runtime_options();
  const auto results = mhp::exp::sweep<Point, Result>(
      points,
      std::function<Result(const Point&, const RuntimeOptions&)>(run_point),
      sweep_opts);

  std::printf(
      "Fig 7(b) — throughput at the sink, 30-sensor cluster\n"
      "(offered totals 210/750/1200 B/s; paper: polling sustains 100%%\n"
      " throughput, S-MAC+AODV is far below offered load at every duty\n"
      " cycle; sensor active time shown for context)\n\n");

  Table table({"scheme", "offered 210 B/s", "offered 750 B/s",
               "offered 1200 B/s", "active %"});
  std::size_t i = 0;
  for (const auto& s : schemes) {
    std::vector<Cell> row{s.name};
    double active = 0.0;
    for (std::size_t l = 0; l < loads.size(); ++l, ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%7.1f B/s",
                    results[i].throughput_bps);
      row.push_back(std::string(buf));
      active = results[i].active_pct;  // report the high-load point
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", active);
    row.push_back(std::string(buf));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_csv("fig7b_throughput.csv", table);
  for (const auto& r : results) recorder.add_events(r.events);
  mhp::exp::save_bench_json("fig7b_throughput", table, recorder);
  return 0;
}
