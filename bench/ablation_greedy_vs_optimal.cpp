// Ablation: how far is the on-line greedy schedule (Table 1) from the
// exact optimum the paper proves NP-hard?
//
// Random small clusters and TSRF instances where branch-and-bound is
// feasible.  Expected: greedy within a few percent of optimal on average,
// never below the combinatorial lower bound.
#include <cstdio>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/optimal_scheduler.hpp"
#include "core/reductions.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "exp/bench_json.hpp"
#include "exp/flags.hpp"

using namespace mhp;

namespace {

struct Row {
  std::string scenario;
  Accumulator ratio;     // greedy / optimal
  Accumulator greedy;    // slots
  Accumulator optimal;   // slots
  std::size_t greedy_was_optimal = 0;
  std::size_t trials = 0;
};

void run_random_clusters(Row& row, int order, std::uint64_t salt) {
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(salt + static_cast<std::uint64_t>(trial));
    const std::size_t n = 4 + rng.below(5);  // keep B&B tractable
    const Deployment dep =
        deploy_connected_uniform_square(n, 150.0, 60.0, rng);
    const ClusterTopology topo = disc_topology(dep, 60.0);
    const auto routing =
        solve_min_max_load(topo, std::vector<std::int64_t>(n, 1));
    if (!routing.feasible) continue;

    ExplicitOracle oracle(order);
    std::vector<std::vector<NodeId>> paths;
    for (NodeId s = 0; s < n; ++s) paths.push_back(routing.paths[s][0].hops);
    const auto txs = transmissions_of_paths(paths);
    for (std::size_t i = 0; i < txs.size(); ++i)
      for (std::size_t j = i + 1; j < txs.size(); ++j)
        if (rng.bernoulli(0.6)) oracle.allow_pair(txs[i], txs[j]);

    const auto greedy = run_offline(oracle, paths);
    if (!greedy.all_delivered) continue;
    std::vector<PollingRequest> reqs;
    for (std::size_t i = 0; i < paths.size(); ++i)
      reqs.push_back({static_cast<RequestId>(i), paths[i]});
    OptimalScheduler solver(oracle);
    const auto opt = solver.solve(reqs);
    if (!opt) continue;

    row.ratio.add(static_cast<double>(greedy.slots) /
                  static_cast<double>(opt->slots));
    row.greedy.add(static_cast<double>(greedy.slots));
    row.optimal.add(static_cast<double>(opt->slots));
    if (greedy.slots == opt->slots) ++row.greedy_was_optimal;
    ++row.trials;
  }
}

void run_tsrf(Row& row, double edge_prob, std::uint64_t salt) {
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(salt + static_cast<std::uint64_t>(trial));
    const std::size_t k = 4 + rng.below(4);
    Graph g(k);
    for (NodeId i = 0; i < k; ++i)
      for (NodeId j = i + 1; j < k; ++j)
        if (rng.bernoulli(edge_prob)) g.add_edge(i, j);
    TsrfReduction red(g);
    const auto reqs = red.instance.requests();
    std::vector<std::vector<NodeId>> paths;
    for (const auto& r : reqs) paths.push_back(r.path);

    const auto greedy = run_offline(red.oracle, paths);
    OptimalScheduler solver(red.oracle);
    const auto opt = solver.solve(reqs);
    if (!greedy.all_delivered || !opt) continue;

    row.ratio.add(static_cast<double>(greedy.slots) /
                  static_cast<double>(opt->slots));
    row.greedy.add(static_cast<double>(greedy.slots));
    row.optimal.add(static_cast<double>(opt->slots));
    if (greedy.slots == opt->slots) ++row.greedy_was_optimal;
    ++row.trials;
  }
}

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("ablation: greedy vs optimal schedule length").parse(argc, argv);
  mhp::obs::RunRecorder recorder;
  std::printf(
      "Ablation — greedy (Table 1) vs exact branch-and-bound schedules\n"
      "(the paper justifies greedy by NP-hardness; this measures the\n"
      " price paid)\n\n");

  std::vector<Row> rows(4);
  rows[0].scenario = "random clusters, M=2";
  run_random_clusters(rows[0], 2, 91000);
  rows[1].scenario = "random clusters, M=3";
  run_random_clusters(rows[1], 3, 92000);
  rows[2].scenario = "TSRF p=0.3";
  run_tsrf(rows[2], 0.3, 93000);
  rows[3].scenario = "TSRF p=0.7";
  run_tsrf(rows[3], 0.7, 94000);

  Table table({"scenario", "trials", "greedy slots", "optimal slots",
               "mean ratio", "greedy optimal %"});
  table.set_precision(2, 2);
  table.set_precision(3, 2);
  table.set_precision(4, 3);
  table.set_precision(5, 1);
  for (const auto& r : rows) {
    table.add_row({r.scenario, static_cast<long long>(r.trials),
                   r.greedy.mean(), r.optimal.mean(), r.ratio.mean(),
                   100.0 * static_cast<double>(r.greedy_was_optimal) /
                       static_cast<double>(r.trials)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  mhp::exp::save_bench_json("ablation_greedy_vs_optimal", table, recorder);
  return 0;
}
