#include <gtest/gtest.h>

#include "core/interference.hpp"
#include "radio/channel.hpp"
#include "sim/simulator.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- normalize / structural validity ----------

TEST(TxGroup, NormalizeSortsAndDedupes) {
  const Tx a{2, 3}, b{0, 1};
  const TxGroup g = normalize(std::vector<Tx>{a, b, a});
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], b);
  EXPECT_EQ(g[1], a);
}

TEST(StructuralValidity, AcceptsDisjointTransmissions) {
  EXPECT_TRUE(structurally_valid(std::vector<Tx>{{0, 1}, {2, 3}}));
}

TEST(StructuralValidity, RejectsHalfDuplexViolation) {
  // 1 receives in the first and sends in the second.
  EXPECT_FALSE(structurally_valid(std::vector<Tx>{{0, 1}, {1, 2}}));
}

TEST(StructuralValidity, RejectsDuplicateSender) {
  EXPECT_FALSE(structurally_valid(std::vector<Tx>{{0, 1}, {0, 2}}));
}

TEST(StructuralValidity, RejectsSharedReceiver) {
  EXPECT_FALSE(structurally_valid(std::vector<Tx>{{0, 2}, {1, 2}}));
}

TEST(StructuralValidity, RejectsSelfTransmission) {
  EXPECT_FALSE(structurally_valid(std::vector<Tx>{{1, 1}}));
}

// ---------- ExplicitOracle ----------

TEST(ExplicitOracle, SingletonsAlwaysCompatible) {
  ExplicitOracle oracle(2);
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{{0, 1}}));
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{}));
}

TEST(ExplicitOracle, PairsRequireDeclaration) {
  ExplicitOracle oracle(2);
  const Tx a{0, 1}, b{2, 3};
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{a, b}));
  oracle.allow_pair(a, b);
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{a, b}));
  // Order does not matter.
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{b, a}));
}

TEST(ExplicitOracle, GroupsBeyondOrderIncompatible) {
  ExplicitOracle oracle(2);
  const Tx a{0, 1}, b{2, 3}, c{4, 5};
  oracle.allow_pair(a, b);
  oracle.allow_pair(a, c);
  oracle.allow_pair(b, c);
  // Pairwise fine but the oracle only knows pairs (order 2).
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{a, b, c}));
}

TEST(ExplicitOracle, TriplesPassPairwiseScreenAtOrder3) {
  ExplicitOracle oracle(3);
  const Tx a{0, 1}, b{2, 3}, c{4, 5};
  oracle.allow_pair(a, b);
  oracle.allow_pair(a, c);
  oracle.allow_pair(b, c);
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{a, b, c}));
}

TEST(ExplicitOracle, ForbidGroupModelsAccumulatedInterference) {
  // The Fig 3 situation: pairwise compatible, jointly forbidden.
  ExplicitOracle oracle(3);
  const Tx a{0, 1}, b{2, 3}, c{4, 5};
  oracle.allow_group(std::vector<Tx>{a, b});
  oracle.allow_group(std::vector<Tx>{a, c});
  oracle.allow_group(std::vector<Tx>{b, c});
  oracle.forbid_group(std::vector<Tx>{a, b, c});
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{a, b}));
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{a, b, c}));
}

TEST(ExplicitOracle, StructuralViolationsOverrideTable) {
  ExplicitOracle oracle(2);
  const Tx a{0, 1}, bad{1, 2};
  oracle.allow_pair(a, bad);
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{a, bad}));
}

// ---------- ChannelOracle / MeasuredOracle ----------

class OracleChannelTest : public ::testing::Test {
 protected:
  OracleChannelTest() {
    // Line: n0 (30,0), n1 (60,0), n2 (90,0); head id 3 at origin.
    std::vector<Vec2> pos = {{30, 0}, {60, 0}, {90, 0}, {0, 0}};
    std::vector<double> pw = {RadioParams::kSensorTxPowerW,
                              RadioParams::kSensorTxPowerW,
                              RadioParams::kSensorTxPowerW,
                              RadioParams::kHeadTxPowerW};
    channel_ = std::make_unique<Channel>(sim_, prop_, RadioParams{}, pos, pw);
  }
  Simulator sim_;
  TwoRayGround prop_;
  std::unique_ptr<Channel> channel_;
};

TEST_F(OracleChannelTest, ChannelOracleMatchesConcurrentOutcome) {
  ChannelOracle oracle(*channel_, 2);
  // n2→n1 alone fine; together with n0→head the SINR at n1 collapses.
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{{2, 1}}));
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{{2, 1}, {0, 3}}));
}

TEST_F(OracleChannelTest, MeasuredOracleAgreesWithTruthOnUniverse) {
  ChannelOracle truth(*channel_, 2);
  const std::vector<Tx> universe = {{2, 1}, {1, 0}, {0, 3}};
  MeasuredOracle measured(truth, universe, 2);
  for (std::size_t i = 0; i < universe.size(); ++i)
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const std::vector<Tx> g{universe[i], universe[j]};
      EXPECT_EQ(measured.compatible(g), truth.compatible(g));
    }
}

TEST_F(OracleChannelTest, MeasuredOracleUnknownGroupIncompatible) {
  ChannelOracle truth(*channel_, 2);
  MeasuredOracle measured(truth, std::vector<Tx>{{1, 0}}, 2);
  // {2,1} was never probed.
  EXPECT_FALSE(measured.compatible(std::vector<Tx>{{2, 1}, {1, 0}}));
  // Singletons never need probing.
  EXPECT_TRUE(measured.compatible(std::vector<Tx>{{2, 1}}));
}

TEST(MeasuredOracle, ProbeCountFormula) {
  // C(10,2) = 45; C(10,2)+C(10,3) = 45+120 = 165.
  EXPECT_EQ(MeasuredOracle::probe_count(10, 2), 45u);
  EXPECT_EQ(MeasuredOracle::probe_count(10, 3), 165u);
  // The paper's sectoring example: probing costs collapse with sector
  // size — an 80-transmission universe needs C(80,2)+C(80,3) = 85'320
  // groups, while 8 sectors of 10 need 8 × 165 = 1'320 (§IV).
  EXPECT_EQ(MeasuredOracle::probe_count(80, 3), 85'320u);
  EXPECT_EQ(8 * MeasuredOracle::probe_count(10, 3), 1'320u);
}

TEST_F(OracleChannelTest, ProbesCounterMatchesFormula) {
  ChannelOracle truth(*channel_, 3);
  const std::vector<Tx> universe = {{2, 1}, {1, 0}, {0, 3}, {1, 3}};
  MeasuredOracle measured(truth, universe, 3);
  EXPECT_EQ(measured.probes(), MeasuredOracle::probe_count(4, 3));
}

TEST(TransmissionsOfPaths, ExtractsHops) {
  // {1,5} appears in both paths and is deduplicated.
  const std::vector<std::vector<NodeId>> paths = {{2, 1, 5}, {1, 5}};
  const auto txs = transmissions_of_paths(paths);
  ASSERT_EQ(txs.size(), 2u);
  EXPECT_TRUE(std::find(txs.begin(), txs.end(), Tx{2, 1}) != txs.end());
  EXPECT_TRUE(std::find(txs.begin(), txs.end(), Tx{1, 5}) != txs.end());
}

TEST(Oracle, DuplicateEntriesCollapseToTheSet) {
  // compatible() judges the *set* of concurrent transmissions: duplicate
  // entries normalize away before the structural checks, so a group with
  // a repeated Tx is judged as its deduplicated form.  (Structural
  // violations between *distinct* entries still reject.)
  ExplicitOracle oracle(2);
  const Tx a{0, 1};
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{a, a}));  // = {a}
  const Tx b{2, 3};
  oracle.allow_pair(a, b);
  EXPECT_TRUE(oracle.compatible(std::vector<Tx>{a, b, a}));  // = {a,b}
  // Same sender toward two receivers is still structurally invalid.
  EXPECT_FALSE(oracle.compatible(std::vector<Tx>{a, Tx{0, 2}}));
}

// ---------- DiscModelOracle ----------

TEST(DiscModelOracle, CollisionIffReceiverInsideInterferenceRange) {
  // Four nodes on a line at 0, 10, 200, 210.  Tx 0→1 and 2→3 are far
  // apart (compatible); 0→1 and 3→2 put receiver 2 at 190 m from sender
  // 0 — still fine — but with range 250 everything collides.
  const std::vector<Vec2> pos = {{0, 0}, {10, 0}, {200, 0}, {210, 0}};
  const DiscModelOracle far(pos, 60.0, 3);
  EXPECT_TRUE(far.compatible(std::vector<Tx>{{0, 1}, {2, 3}}));
  const DiscModelOracle wide(pos, 250.0, 3);
  EXPECT_FALSE(wide.compatible(std::vector<Tx>{{0, 1}, {2, 3}}));
}

// ---------- CachedOracle ----------

TEST(CachedOracle, VerdictsMatchInnerOracleOnEveryQuery) {
  Rng rng(11);
  std::vector<Vec2> pos;
  for (int i = 0; i < 12; ++i)
    pos.push_back({rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  const DiscModelOracle truth(pos, 80.0, 3);
  const CachedOracle cached(truth);
  EXPECT_EQ(cached.order(), truth.order());
  // Two passes over random groups: the second is answered from the memo
  // and must agree verbatim, including structurally invalid and
  // oversized groups.
  std::vector<TxGroup> groups;
  for (int g = 0; g < 60; ++g) {
    TxGroup group;
    const int size = static_cast<int>(rng.uniform(0.0, 4.99));
    for (int t = 0; t < size; ++t)
      group.push_back(Tx{static_cast<NodeId>(rng.uniform(0.0, 11.99)),
                         static_cast<NodeId>(rng.uniform(0.0, 11.99))});
    groups.push_back(std::move(group));
  }
  for (int pass = 0; pass < 2; ++pass)
    for (const TxGroup& g : groups)
      EXPECT_EQ(cached.compatible(g), truth.compatible(g));
}

TEST(CachedOracle, CountsHitsAndMisses) {
  ExplicitOracle inner(2);
  const Tx a{0, 1}, b{2, 3};
  inner.allow_pair(a, b);
  const CachedOracle cached(inner);
  EXPECT_TRUE(cached.compatible(std::vector<Tx>{a, b}));
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 0u);
  // Same set in a different listed order is the same normalized key.
  EXPECT_TRUE(cached.compatible(std::vector<Tx>{b, a}));
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.size(), 1u);
}

TEST(CachedOracle, TrivialGroupsBypassTheMemo) {
  ExplicitOracle inner(2);
  const CachedOracle cached(inner);
  EXPECT_TRUE(cached.compatible(std::vector<Tx>{}));          // empty
  EXPECT_TRUE(cached.compatible(std::vector<Tx>{{0, 1}}));    // singleton
  EXPECT_FALSE(cached.compatible(std::vector<Tx>{{2, 2}}));   // self loop
  EXPECT_FALSE(cached.compatible(                             // > order
      std::vector<Tx>{{0, 1}, {2, 3}, {4, 5}}));
  EXPECT_EQ(cached.size(), 0u);
  EXPECT_EQ(cached.hits() + cached.misses(), 0u);
}

TEST(CachedOracle, BindCountersTalliesIntoRegistry) {
  MetricsRegistry m;
  ExplicitOracle inner(2);
  const Tx a{0, 1}, b{2, 3};
  inner.allow_pair(a, b);
  CachedOracle cached(inner);
  cached.bind_counters(&m.counter("oracle.cache_hit"),
                       &m.counter("oracle.cache_miss"));
  cached.compatible(std::vector<Tx>{a, b});
  cached.compatible(std::vector<Tx>{a, b});
  cached.compatible(std::vector<Tx>{a, b});
  EXPECT_EQ(m.counter("oracle.cache_miss").value(), 1u);
  EXPECT_EQ(m.counter("oracle.cache_hit").value(), 2u);
}

// ---------- CachedOracle pair screen ----------

// Three link clusters on a line: 0→1 and 2→3 collide (20 m apart with an
// 50 m disc), while 4→5 and 6→7 are hundreds of meters clear of everyone.
std::vector<Vec2> screen_positions() {
  return {{0, 0},    {10, 0},   {20, 0},   {30, 0},
          {500, 0},  {510, 0},  {1000, 0}, {1010, 0}};
}

TEST(CachedOracle, PairScreenRejectsSupersetsOfCachedFalsePairs) {
  const DiscModelOracle truth(screen_positions(), 50.0, 3);
  const CachedOracle cached(truth, CachedOracle::PairScreen::kOn);
  const Tx bad_a{0, 1}, bad_b{2, 3}, clear_a{4, 5}, clear_b{6, 7};

  EXPECT_FALSE(cached.compatible(std::vector<Tx>{bad_a, bad_b}));
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.screened(), 0u);  // pairs themselves are never screened

  // A triple containing the cached-false pair is rejected by the screen
  // alone: a hit with no inner call and no new memo entry.  The verdict
  // matches the inner oracle (disc interference is monotone in the
  // transmitter set).
  const std::vector<Tx> triple{bad_a, bad_b, clear_a};
  EXPECT_FALSE(truth.compatible(triple));
  EXPECT_FALSE(cached.compatible(triple));
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.screened(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.size(), 1u);

  // Screened groups are not memoized, so the screen answers every repeat.
  EXPECT_FALSE(cached.compatible(triple));
  EXPECT_EQ(cached.screened(), 2u);

  // A triple with no cached-false pair inside goes to the inner oracle.
  EXPECT_TRUE(cached.compatible(std::vector<Tx>{bad_a, clear_a, clear_b}));
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.screened(), 2u);
}

TEST(CachedOracle, PairScreenDefaultsOffAndHitRateAccountsScreens) {
  const DiscModelOracle truth(screen_positions(), 50.0, 3);
  const CachedOracle plain(truth);  // screen off: triples always miss
  EXPECT_DOUBLE_EQ(plain.hit_rate(), 0.0);  // defined before any query
  const Tx bad_a{0, 1}, bad_b{2, 3}, clear_a{4, 5};
  const std::vector<Tx> triple{bad_a, bad_b, clear_a};
  EXPECT_FALSE(plain.compatible(std::vector<Tx>{bad_a, bad_b}));
  EXPECT_FALSE(plain.compatible(triple));
  EXPECT_EQ(plain.screened(), 0u);
  EXPECT_EQ(plain.misses(), 2u);
  EXPECT_DOUBLE_EQ(plain.hit_rate(), 0.0);

  const CachedOracle screened(truth, CachedOracle::PairScreen::kOn);
  EXPECT_FALSE(screened.compatible(std::vector<Tx>{bad_a, bad_b}));
  EXPECT_FALSE(screened.compatible(triple));  // screen hit
  EXPECT_DOUBLE_EQ(screened.hit_rate(), 0.5);  // 1 hit / (1 hit + 1 miss)
}

TEST(CachedOracle, PairScreenLiftsHitRateOnGreedyStyleWorkload) {
  // The greedy scheduler probes a growing group's prefixes before the
  // full group; replay that shape — pair first, then its triple — over
  // random links and require the screen to convert would-be misses into
  // hits without changing a single verdict.
  Rng rng(17);
  std::vector<Vec2> pos;
  for (int i = 0; i < 24; ++i)
    pos.push_back({rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  const DiscModelOracle truth(pos, 80.0, 3);
  const CachedOracle plain(truth);
  const CachedOracle screened(truth, CachedOracle::PairScreen::kOn);

  const auto random_tx = [&rng] {
    const auto from = static_cast<NodeId>(rng.uniform(0.0, 23.99));
    const auto to =
        (from + 1 + static_cast<NodeId>(rng.uniform(0.0, 22.99))) % 24;
    return Tx{from, to};
  };
  for (int i = 0; i < 300; ++i) {
    const Tx a = random_tx(), b = random_tx(), c = random_tx();
    for (const TxGroup& g :
         {std::vector<Tx>{a, b}, std::vector<Tx>{a, b, c}}) {
      const bool want = truth.compatible(g);
      EXPECT_EQ(plain.compatible(g), want);
      EXPECT_EQ(screened.compatible(g), want);
    }
  }
  EXPECT_GT(screened.screened(), 0u);
  EXPECT_GT(screened.hit_rate(), plain.hit_rate());
}

}  // namespace
}  // namespace mhp
