// Set-up phase procedures (§V-A/B/E): discovery correctness and slot
// accounting.
#include <gtest/gtest.h>

#include "core/setup_phase.hpp"
#include "net/deployment.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

struct ChannelFixture {
  Simulator sim;
  TwoRayGround prop;
  std::unique_ptr<Channel> channel;

  explicit ChannelFixture(const Deployment& dep) {
    std::vector<double> powers(dep.positions.size(),
                               RadioParams::kSensorTxPowerW);
    powers.back() = RadioParams::kHeadTxPowerW;
    channel = std::make_unique<Channel>(sim, prop, RadioParams{},
                                        dep.positions, powers);
  }
};

TEST(SetupPhase, DiscoversGroundTruthTopology) {
  Rng rng(21);
  const Deployment dep = deploy_connected_uniform_square(25, 200.0, 60.0, rng);
  ChannelFixture fx(dep);
  const auto result = run_setup_discovery(*fx.channel, 25);
  const auto truth = topology_from_predicate(25, [&](NodeId a, NodeId b) {
    return fx.channel->link_ok(a, b);
  });
  ASSERT_EQ(result.topology.num_sensors(), truth.num_sensors());
  for (NodeId a = 0; a < 25; ++a) {
    EXPECT_EQ(result.topology.head_hears(a), truth.head_hears(a));
    for (NodeId b = 0; b < 25; ++b) {
      if (a != b) {
        EXPECT_EQ(result.topology.sensors_linked(a, b),
                  truth.sensors_linked(a, b));
      }
    }
  }
}

TEST(SetupPhase, TempParentsFormTreeTowardHead) {
  Rng rng(22);
  const Deployment dep = deploy_connected_uniform_square(20, 200.0, 60.0, rng);
  ChannelFixture fx(dep);
  const auto result = run_setup_discovery(*fx.channel, 20);
  const NodeId head = 20;
  for (NodeId s = 0; s < 20; ++s) {
    ASSERT_NE(result.temp_parent[s], kNoNode) << "undiscovered sensor";
    std::size_t steps = 0;
    for (NodeId v = s; v != head; v = result.temp_parent[v])
      ASSERT_LE(++steps, 20u) << "cycle in temp tree";
  }
}

TEST(SetupPhase, CostsScaleWithClusterSize) {
  Rng rng(23);
  const Deployment small =
      deploy_connected_uniform_square(10, 150.0, 60.0, rng);
  const Deployment large =
      deploy_connected_uniform_square(40, 200.0, 60.0, rng);
  ChannelFixture fs(small), fl(large);
  const auto rs = run_setup_discovery(*fs.channel, 10);
  const auto rl = run_setup_discovery(*fl.channel, 40);
  // Lower bound: one broadcast per member in each phase.
  EXPECT_GE(rs.cost.discovery_slots, 1u + 10u);
  EXPECT_GE(rs.cost.connectivity_slots, 10u);
  EXPECT_GT(rl.cost.discovery_slots, rs.cost.discovery_slots);
  EXPECT_GT(rl.cost.connectivity_slots, rs.cost.connectivity_slots);
  EXPECT_GE(rl.cost.discovery_rounds, 1u);
}

TEST(SetupPhase, ProbingCostMatchesOracleProbes) {
  Rng rng(24);
  const Deployment dep = deploy_connected_uniform_square(15, 180.0, 60.0, rng);
  ChannelFixture fx(dep);
  const auto disc = run_setup_discovery(*fx.channel, 15);
  // One path per sensor along the temp tree.
  std::vector<std::vector<NodeId>> paths;
  for (NodeId s = 0; s < 15; ++s) {
    std::vector<NodeId> p{s};
    for (NodeId v = s; v != 15;) {
      v = disc.temp_parent[v];
      p.push_back(v);
    }
    paths.push_back(std::move(p));
  }
  const auto probe = run_interference_probing(*fx.channel, paths, 2);
  EXPECT_EQ(probe.cost.probe_groups, probe.oracle.probes());
  EXPECT_EQ(probe.cost.probe_slots, 2 * probe.oracle.probes());
  const auto u = transmissions_of_paths(paths).size();
  EXPECT_EQ(probe.cost.probe_groups, MeasuredOracle::probe_count(u, 2));
}

TEST(SetupPhase, SectoredProbingIsFarCheaper) {
  // The §IV argument executed: probing per sector beats probing the
  // whole cluster because C(u, M) is super-linear in u.
  Rng rng(25);
  const Deployment dep = deploy_connected_uniform_square(36, 220.0, 60.0, rng);
  ChannelFixture fx(dep);
  const auto disc = run_setup_discovery(*fx.channel, 36);
  std::vector<std::vector<NodeId>> paths;
  for (NodeId s = 0; s < 36; ++s) {
    std::vector<NodeId> p{s};
    for (NodeId v = s; v != 36;) {
      v = disc.temp_parent[v];
      p.push_back(v);
    }
    paths.push_back(std::move(p));
  }
  const auto whole = run_interference_probing(*fx.channel, paths, 3);

  // Split the paths into 4 arbitrary quarters ("sectors") and probe each.
  std::uint64_t sectored_groups = 0;
  for (int q = 0; q < 4; ++q) {
    std::vector<std::vector<NodeId>> part;
    for (std::size_t i = static_cast<std::size_t>(q); i < paths.size();
         i += 4)
      part.push_back(paths[i]);
    sectored_groups +=
        run_interference_probing(*fx.channel, part, 3).cost.probe_groups;
  }
  EXPECT_LT(sectored_groups, whole.cost.probe_groups / 3);
}

}  // namespace
}  // namespace mhp
