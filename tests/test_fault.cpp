// Fault injection and head-driven route repair: the FaultPlan/Injector
// primitives, repair_routes on the surviving topology, and the
// degradation accounting of all three simulation stacks.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"
#include "core/route_repair.hpp"
#include "exp/fig_common.hpp"
#include "fault/fault_injector.hpp"
#include "net/deployment.hpp"
#include "obs/report_json.hpp"
#include "sim/simulator.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- FaultPlan / FaultInjector primitives ----------

TEST(FaultPlan, BuildersAccumulateAndEmptyIsDefault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.kill_at(3, Time::sec(5))
      .kill_on_battery(4, 0.5)
      .degrade_link(0, 1, Time::sec(1), Time::sec(2), 0.3);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.deaths().size(), 2u);
  EXPECT_EQ(plan.deaths()[0].cause, NodeDeath::Cause::kScripted);
  EXPECT_EQ(plan.deaths()[1].cause, NodeDeath::Cause::kBattery);
  EXPECT_DOUBLE_EQ(plan.deaths()[1].battery_j, 0.5);
  ASSERT_EQ(plan.degradations().size(), 1u);
}

TEST(FaultInjector, ScriptedDeathFiresHandlerOncePerNode) {
  Simulator sim;
  FaultPlan plan;
  plan.kill_at(3, Time::sec(1)).kill_at(3, Time::sec(2));
  FaultInjector inj(sim, plan);
  int calls = 0;
  inj.set_death_handler([&](const NodeDeath& d) {
    ++calls;
    EXPECT_EQ(d.node, 3u);
  });
  inj.arm();
  sim.run_until(Time::sec(5));
  EXPECT_EQ(calls, 1);  // second scripted death of the same node is a no-op
  EXPECT_TRUE(inj.is_dead(3));
  EXPECT_FALSE(inj.is_dead(0));
  EXPECT_EQ(inj.dead_nodes(), std::vector<NodeId>{3});
}

TEST(FaultInjector, LinkLossWindowsAreSymmetricAndCombine) {
  Simulator sim;
  FaultPlan plan;
  plan.degrade_link(0, 1, Time::sec(1), Time::sec(2), 0.5);
  plan.degrade_link(1, 0, Time::sec(1), Time::sec(2), 0.5);  // overlapping
  FaultInjector inj(sim, plan);
  EXPECT_DOUBLE_EQ(inj.link_loss(0, 1, Time::ms(500)), 0.0);
  // Two independent 0.5 windows: survive both with p=0.25.
  EXPECT_DOUBLE_EQ(inj.link_loss(0, 1, Time::ms(1500)), 0.75);
  EXPECT_DOUBLE_EQ(inj.link_loss(1, 0, Time::ms(1500)), 0.75);  // symmetric
  EXPECT_DOUBLE_EQ(inj.link_loss(0, 2, Time::ms(1500)), 0.0);
  EXPECT_DOUBLE_EQ(inj.link_loss(0, 1, Time::sec(2)), 0.0);  // [begin, end)
}

// ---------- repair_routes ----------

TEST(RouteRepair, DeadRelayIsExcludedAndUnreachableSensorsOrphaned) {
  // Line: head hears only 0; 0-1-2 chain.  Killing 1 strands 2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(g, {true, false, false});
  ASSERT_TRUE(topo.fully_connected());

  const RouteRepair rep =
      repair_routes(topo, {1}, {1, 1, 1}, RoutingPolicy::kBalancedMaxFlow);
  EXPECT_EQ(rep.orphaned, std::vector<NodeId>{2});
  ASSERT_EQ(rep.sectors.size(), 1u);
  const SectorPlan& sp = rep.sectors.front();
  // Only the surviving routable sensor is polled; the dead relay and the
  // orphan are off the plan entirely.
  EXPECT_EQ(sp.members, std::vector<NodeId>{0});
  for (const auto& [member, path] : sp.data_path)
    for (NodeId hop : path) EXPECT_NE(hop, 1u);
}

TEST(RouteRepair, SurvivingRelayPathsAvoidTheDeadNode) {
  // Diamond: 2 reaches the head via 0 or 1; kill 0 and 2 must route via 1.
  Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  ClusterTopology topo(g, {true, true, false});
  const RouteRepair rep =
      repair_routes(topo, {0}, {1, 1, 1}, RoutingPolicy::kBalancedMaxFlow);
  EXPECT_TRUE(rep.orphaned.empty());
  ASSERT_EQ(rep.sectors.size(), 1u);
  const SectorPlan& sp = rep.sectors.front();
  EXPECT_EQ(sp.members, (std::vector<NodeId>{1, 2}));
  for (const auto& [member, path] : sp.data_path)
    for (NodeId hop : path) EXPECT_NE(hop, 0u);
}

// ---------- polling stack: end-to-end recovery ----------

// The bench smoke point: 14 sensors with a load-bearing relay.
constexpr std::uint64_t kSeed = 8040;

TEST(FaultRecovery, RelayDeathTriggersReplanAndRestoresDelivery) {
  const Deployment dep = exp::eval_deployment(14, kSeed);

  // Pick the busiest relay from a probe construction (same seed →
  // the faulted run's set-up produces the same plan).
  PollingSimulation probe(dep, exp::eval_protocol_config(kSeed), 20.0);
  NodeId victim = 0;
  std::size_t victim_deps = 0;
  for (NodeId s = 0; s < dep.num_sensors(); ++s) {
    const std::size_t deps = probe.relay_plan().dependents(s, 0).size();
    if (deps > victim_deps) {
      victim_deps = deps;
      victim = s;
    }
  }
  ASSERT_GT(victim_deps, 0u) << "deployment has no load-bearing relay";

  ProtocolConfig cfg = exp::eval_protocol_config(kSeed);
  cfg.faults.kill_at(victim, Time::sec(20));
  cfg.recovery.enabled = true;
  PollingSimulation sim(dep, cfg, 20.0);
  const SimulationReport r = sim.run(Time::sec(40), Time::sec(10));

  ASSERT_TRUE(r.degradation.has_value());
  const DegradationReport& deg = *r.degradation;
  EXPECT_EQ(deg.deaths, 1u);
  EXPECT_EQ(deg.dead_nodes, std::vector<NodeId>{victim});
  EXPECT_GE(deg.deaths_detected, 1u);
  EXPECT_GE(deg.replans, 1u);
  EXPECT_TRUE(sim.sensor(victim).dead());
  // The acceptance bar: the repaired routes restore at least 90% of the
  // pre-fault delivery ratio.
  EXPECT_GE(deg.delivery_after, 0.9 * deg.delivery_before);
  // Counters land in the metrics snapshot and the JSON export.
  EXPECT_EQ(r.metrics.counter("fault.deaths"), 1u);
  const std::string json = obs::to_json(r).dump();
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
  EXPECT_NE(json.find("\"delivery_after\""), std::string::npos);
}

TEST(FaultRecovery, DisabledFaultsLeaveReportsUntouched) {
  const Deployment dep = exp::eval_deployment(14, kSeed);
  PollingSimulation sim(dep, exp::eval_protocol_config(kSeed), 20.0);
  const SimulationReport r = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_FALSE(r.degradation.has_value());
  EXPECT_FALSE(r.metrics.has_counter("fault.deaths"));
  const std::string json = obs::to_json(r).dump();
  EXPECT_EQ(json.find("degradation"), std::string::npos);
}

TEST(FaultRecovery, BatteryExhaustionKillsTheSensor) {
  const Deployment dep = exp::eval_deployment(14, kSeed);
  ProtocolConfig cfg = exp::eval_protocol_config(kSeed);
  // A few millijoules: exhausted within seconds at sensor duty cycles.
  cfg.faults.kill_on_battery(0, 0.005);
  PollingSimulation sim(dep, cfg, 20.0);
  const SimulationReport r = sim.run(Time::sec(40), Time::sec(10));
  ASSERT_TRUE(r.degradation.has_value());
  EXPECT_EQ(r.degradation->deaths, 1u);
  EXPECT_EQ(r.degradation->dead_nodes, std::vector<NodeId>{0});
  EXPECT_TRUE(sim.sensor(0).dead());
}

TEST(FaultRecovery, LinkDegradationWindowDropsFrames) {
  const Deployment dep = exp::eval_deployment(14, kSeed);
  PollingSimulation clean(dep, exp::eval_protocol_config(kSeed), 20.0);
  const SimulationReport rc = clean.run(Time::sec(40), Time::sec(10));

  // Black out a first-level sensor's uplink from 15 s through the end of
  // the run.  The window must reach the end: the head keeps re-polling
  // undelivered packets, so a blackout that lifts mid-run is repaired by
  // retries and final delivery matches the clean run.
  const NodeId victim = clean.topology().first_level().front();
  ProtocolConfig cfg = exp::eval_protocol_config(kSeed);
  cfg.faults.degrade_link(victim, dep.num_sensors(), Time::sec(15),
                          Time::sec(41), 1.0);
  PollingSimulation sim(dep, cfg, 20.0);
  const SimulationReport rd = sim.run(Time::sec(40), Time::sec(10));

  ASSERT_TRUE(rd.degradation.has_value());
  EXPECT_EQ(rd.degradation->deaths, 0u);
  EXPECT_LT(rd.delivery_ratio, rc.delivery_ratio);
}

// ---------- multi-cluster stack ----------

TEST(MultiClusterFault, FieldWideDeathIsRepairedByTheOwningHead) {
  std::vector<ClusterSpec> specs;
  Rng rng(9);
  for (int i = 0; i < 2; ++i) {
    ClusterSpec spec;
    spec.deployment = deploy_connected_uniform_square(10, 170.0, 60.0, rng);
    spec.origin = {i * 400.0, 0.0};
    specs.push_back(std::move(spec));
  }
  ProtocolConfig cfg;
  cfg.seed = 9;
  // Field-wide sensor id 13 = local sensor 3 of cluster 1.
  cfg.faults.kill_at(13, Time::sec(20));
  cfg.recovery.enabled = true;
  MultiClusterSimulation sim(std::move(specs), cfg,
                             InterClusterMode::kColored, 30.0);
  const MultiClusterReport rep = sim.run(Time::sec(40), Time::sec(10));

  ASSERT_TRUE(rep.degradation.has_value());
  EXPECT_EQ(rep.degradation->deaths, 1u);
  EXPECT_EQ(rep.degradation->dead_nodes, std::vector<NodeId>{13});
  EXPECT_GE(rep.degradation->replans, 1u);
  // The unaffected cluster keeps delivering.
  EXPECT_GE(rep.delivery_ratio.at(0), 0.95);
  const std::string json = obs::to_json(rep).dump();
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
}

// ---------- S-MAC baseline ----------

TEST(SmacFault, DeathSilencesTheNodeAndIsReported) {
  Rng rng(11);
  const Deployment dep = deploy_connected_uniform_square(8, 150.0, 60.0, rng);
  SmacConfig cfg;
  cfg.seed = 11;
  cfg.faults.kill_at(2, Time::sec(15));
  SmacSimulation sim(dep, cfg, 20.0);
  const SmacReport rep = sim.run(Time::sec(40), Time::sec(10));

  ASSERT_TRUE(rep.degradation.has_value());
  EXPECT_EQ(rep.degradation->deaths, 1u);
  EXPECT_EQ(rep.degradation->dead_nodes, std::vector<NodeId>{2});
  // The baseline has no explicit detection/replanning.
  EXPECT_EQ(rep.degradation->replans, 0u);
  EXPECT_TRUE(sim.node(2).dead());
  const std::string json = obs::to_json(rep).dump();
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
}

TEST(SmacFault, LinkDegradationIsRejected) {
  Rng rng(12);
  const Deployment dep = deploy_connected_uniform_square(6, 150.0, 60.0, rng);
  SmacConfig cfg;
  cfg.faults.degrade_link(0, 1, Time::sec(1), Time::sec(2), 0.5);
  EXPECT_THROW(SmacSimulation(dep, cfg, 20.0), ContractViolation);
}

}  // namespace
}  // namespace mhp
