#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mhp {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 0.25, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.split(0);
  Rng b = root.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
  // Splitting again with the same index reproduces the stream.
  Rng a2 = root.split(0);
  Rng a3 = root.split(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a2.next(), a3.next());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

// ---------- Accumulator ----------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.mean(), ContractViolation);
  EXPECT_THROW(acc.min(), ContractViolation);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(31);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Rng rng(37);
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

// ---------- Histogram ----------

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, ExtremeQuantilesLandOnOccupiedBins) {
  // All mass in the middle bin: q=0 must not report the empty first
  // bin's midpoint, and q=1 must not report the empty last bin's.
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);
  h.add(5.5);
  h.add(5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
}

TEST(Histogram, NanSamplesAreDroppedNotBinned) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.dropped(), 1u);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.dropped(), 1u);
}

TEST(Histogram, InfiniteAndHugeSamplesClampToEdgeBins) {
  // Casting these to an index before clamping would be UB; they must
  // land in the edge bins instead.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.dropped(), 0u);
}

TEST(Histogram, ClearAndMergeCarryDroppedCount) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(std::numeric_limits<double>::quiet_NaN());
  b.add(0.5);
  a.merge(b);
  EXPECT_EQ(a.dropped(), 2u);
  EXPECT_EQ(a.total(), 1u);
  a.clear();
  EXPECT_EQ(a.dropped(), 0u);
  EXPECT_EQ(a.total(), 0u);
}

// ---------- Table ----------

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 10.25});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.500"), std::string::npos);
  // Header rule present.
  EXPECT_NE(ascii.find("---"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), static_cast<long long>(3)});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(Table, PrecisionPerColumn) {
  Table t({"v"});
  t.set_precision(0, 1);
  t.add_row({3.14159});
  EXPECT_NE(t.to_ascii().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_ascii().find("3.14"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), ContractViolation);
}

// ---------- ThreadPool ----------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hit(1000, 0);
  pool.parallel_for(hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForRunsEachIndexExactlyOnce) {
  // Coverage alone would miss double execution; count every visit.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(257);
  pool.parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, DefaultConstructionSpawnsAtLeastOneWorker) {
  ThreadPool pool;  // workers = 0 means "pick for me"
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForPropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 17)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives the throw and runs the next batch completely.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace mhp
