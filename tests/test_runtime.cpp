// SimRuntime / MetricsRegistry layer tests.
//
// The golden tests pin fixed-seed reports of all three simulation stacks
// to the exact values the pre-SimRuntime implementation produced
// (captured at the refactor boundary): identical seeds must keep
// producing identical reports now that substrate ownership moved into
// the shared runtime.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"
#include "metrics/registry.hpp"
#include "net/deployment.hpp"
#include "obs/report_json.hpp"
#include "sim/runtime.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// Relative tolerance for golden doubles: generous enough for FP noise
// across build flags, far below any behavioural change.
void expect_golden(double actual, double golden) {
  EXPECT_NEAR(actual, golden, 1e-9 * std::max(1.0, std::abs(golden)));
}

// ---------- MetricsRegistry ----------

TEST(Metrics, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry m;
  m.counter("a").add();
  m.counter("a").add(4);
  EXPECT_EQ(m.counter("a").value(), 5u);
  EXPECT_EQ(m.counter("untouched").value(), 0u);
  EXPECT_NE(m.find_counter("a"), nullptr);
  EXPECT_EQ(m.find_counter("missing"), nullptr);
}

TEST(Metrics, GaugeIsTimeWeighted) {
  Gauge g;
  g.set(Time::sec(0), 1.0);
  g.set(Time::sec(10), 3.0);
  // 10 s at value 1, then 10 s at value 3.
  EXPECT_DOUBLE_EQ(g.mean(Time::sec(20)), 2.0);
  EXPECT_DOUBLE_EQ(g.last(), 3.0);
  // Zero-width window degenerates to the last sample.
  Gauge one_shot;
  one_shot.set(Time::sec(5), 7.0);
  EXPECT_DOUBLE_EQ(one_shot.mean(Time::sec(5)), 7.0);
}

TEST(Metrics, BeginWindowZeroesCountersAndRestartsGauges) {
  MetricsRegistry m;
  m.counter("c").add(10);
  m.gauge("g").set(Time::sec(0), 4.0);
  m.begin_window(Time::sec(100));
  EXPECT_EQ(m.counter("c").value(), 0u);
  // The gauge keeps its value but averages over the new window only.
  m.gauge("g").set(Time::sec(150), 4.0);
  EXPECT_DOUBLE_EQ(m.gauge("g").mean(Time::sec(200)), 4.0);
}

TEST(Metrics, SnapshotIsOrderedAndQueryable) {
  MetricsRegistry m;
  m.counter("z.last").add(1);
  m.counter("a.first").add(2);
  m.gauge("g").set(Time::sec(1), 0.5);
  const MetricsSnapshot snap = m.snapshot(Time::sec(2));
  EXPECT_EQ(snap.at, Time::sec(2));
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");  // std::map order
  EXPECT_EQ(snap.counter("z.last"), 1u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_FALSE(snap.has_counter("absent"));
  EXPECT_DOUBLE_EQ(snap.gauge_last("g"), 0.5);
  std::ostringstream os;
  snap.print(os);
  EXPECT_NE(os.str().find("a.first = 2"), std::string::npos);
}

// ---------- SimRuntime ----------

TEST(Runtime, PropagationMisuseIsRejected) {
  SimRuntime rt(1);
  EXPECT_THROW(rt.add_channel(RadioParams{}, {{0, 0}}, {1e-3}),
               ContractViolation);
  rt.adopt_propagation(std::make_unique<FreeSpace>());
  EXPECT_THROW(rt.adopt_propagation(std::make_unique<FreeSpace>()),
               ContractViolation);
  rt.add_channel(RadioParams{}, {{0, 0}, {10, 0}}, {1e-3, 1e-3});
  EXPECT_EQ(rt.num_channels(), 1u);
}

TEST(Runtime, TraceStreamSinkReceivesEntriesBeyondTheRing) {
  std::ostringstream log;
  RuntimeOptions opts;
  opts.trace_max_entries = 4;
  opts.trace_stream = &log;
  SimRuntime rt(1, opts);
  rt.trace().enable(TraceCat::kProtocol);
  for (int i = 0; i < 20; ++i)
    rt.trace().record(Time::ms(i), TraceCat::kProtocol, "entry");
  EXPECT_EQ(rt.trace().entries().size(), 4u);
  EXPECT_EQ(rt.trace().dropped(), 16u);
  // The stream saw all 20 even though the ring kept only 4.
  std::size_t lines = 0;
  std::istringstream in(log.str());
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 20u);
}

// ---------- Golden determinism: polling stack ----------

Deployment golden_polling_deployment() {
  Rng rng(1);
  return deploy_connected_uniform_square(12, 160.0, 60.0, rng);
}

TEST(RuntimeGolden, PollingReportUnchangedByRefactor) {
  ProtocolConfig cfg;  // seed 1
  PollingSimulation sim(golden_polling_deployment(), cfg, 20.0);
  const SimulationReport r = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_EQ(r.packets_generated, 92u);
  EXPECT_EQ(r.packets_delivered, 88u);
  EXPECT_EQ(r.packets_lost, 0u);
  EXPECT_EQ(r.sectors, 1u);
  expect_golden(r.offered_bps, 245.33333333333331);
  expect_golden(r.throughput_bps, 234.66666666666663);
  expect_golden(r.delivery_ratio, 0.95652173913043481);
  expect_golden(r.mean_active_fraction, 0.075265940705555548);
  expect_golden(r.max_active_fraction, 0.075347349499999994);
  expect_golden(r.mean_sensor_power_w, 0.0015951272730747779);
  expect_golden(r.max_sensor_power_w, 0.0016332160430099999);
  expect_golden(r.mean_latency_s, 0.70614411692045431);
  expect_golden(r.mean_duty_seconds, 0.073624000000000009);
}

TEST(RuntimeGolden, PollingMetricsSnapshotMatchesReport) {
  ProtocolConfig cfg;
  PollingSimulation sim(golden_polling_deployment(), cfg, 20.0);
  const SimulationReport r = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_EQ(r.metrics.counter(metric::kPacketsGenerated),
            r.packets_generated);
  EXPECT_EQ(r.metrics.counter(metric::kPacketsDelivered),
            r.packets_delivered);
  EXPECT_EQ(r.metrics.counter(metric::kPacketsLost), r.packets_lost);
  EXPECT_GT(r.metrics.counter(metric::kChannelFramesTx),
            r.packets_delivered);  // data + polls + acks
  EXPECT_GT(r.metrics.counter("polling.cycles_completed"), 0u);
  EXPECT_DOUBLE_EQ(r.metrics.gauge_last(metric::kMeanActiveFraction),
                   r.mean_active_fraction);
  EXPECT_DOUBLE_EQ(r.metrics.gauge_last(metric::kMeanLatencyS),
                   r.mean_latency_s);
  // The registry stays queryable on the live simulation object too.
  EXPECT_EQ(sim.metrics().counter(metric::kPacketsGenerated).value(),
            r.packets_generated);
}

// ---------- Golden determinism: multi-cluster stack ----------

std::vector<ClusterSpec> golden_two_clusters() {
  std::vector<ClusterSpec> specs;
  Rng rng(3);
  for (int i = 0; i < 2; ++i) {
    ClusterSpec spec;
    spec.deployment = deploy_connected_uniform_square(10, 170.0, 60.0, rng);
    spec.origin = {i * 200.0, 0.0};
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(RuntimeGolden, MultiClusterReportUnchangedByRefactor) {
  ProtocolConfig cfg;
  cfg.seed = 3;
  MultiClusterSimulation sim(golden_two_clusters(), cfg,
                             InterClusterMode::kColored, 30.0);
  const MultiClusterReport r = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_EQ(r.channels_used, 2);
  expect_golden(r.aggregate_delivery, 0.98672566371681414);
  expect_golden(r.aggregate_throughput_bps, 594.66666666666663);
  ASSERT_EQ(r.delivery_ratio.size(), 2u);
  expect_golden(r.delivery_ratio[0], 0.97368421052631582);
  expect_golden(r.delivery_ratio[1], 1.0);
  expect_golden(r.mean_active[0], 0.057551423089999984);
  expect_golden(r.mean_active[1], 0.059678924753333328);
}

TEST(RuntimeGolden, MultiClusterMetricsSnapshotCoversTheField) {
  ProtocolConfig cfg;
  cfg.seed = 3;
  MultiClusterSimulation sim(golden_two_clusters(), cfg,
                             InterClusterMode::kColored, 30.0);
  const MultiClusterReport r = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_EQ(r.totals.metrics.counter("clusters"), 2u);
  EXPECT_EQ(r.totals.packets_generated,
            r.totals.metrics.counter(metric::kPacketsGenerated));
  EXPECT_GT(r.totals.packets_generated, 0u);
  EXPECT_DOUBLE_EQ(r.totals.delivery_ratio, r.aggregate_delivery);
  EXPECT_DOUBLE_EQ(r.totals.throughput_bps, r.aggregate_throughput_bps);
  // Both isolated channels contribute to the shared frame counter.
  EXPECT_GT(r.totals.metrics.counter(metric::kChannelFramesTx),
            r.totals.packets_delivered);
}

// ---------- Golden determinism: S-MAC baseline stack ----------

Deployment golden_smac_deployment() {
  Rng rng(1);
  return deploy_connected_uniform_square(10, 140.0, 60.0, rng);
}

TEST(RuntimeGolden, SmacReportUnchangedByRefactor) {
  SmacConfig cfg;  // duty 0.5, seed 1
  SmacSimulation sim(golden_smac_deployment(), cfg, 15.0);
  const SmacReport r = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_EQ(r.packets_generated, 49u);
  EXPECT_EQ(r.packets_delivered, 39u);
  EXPECT_EQ(r.packets_dropped, 10u);
  EXPECT_EQ(r.control_frames, 429u);
  EXPECT_EQ(r.rreq_floods, 19u);
  EXPECT_EQ(r.mac_failures, 7u);
  expect_golden(r.offered_bps, 156.80000000000001);
  expect_golden(r.throughput_bps, 124.8);
  expect_golden(r.delivery_ratio, 0.79591836734693877);
  expect_golden(r.mean_active_fraction, 0.50113920000000001);
  expect_golden(r.mean_latency_s, 0.17764777533333334);
}

TEST(RuntimeGolden, SmacMetricsSnapshotMatchesReport) {
  SmacConfig cfg;
  SmacSimulation sim(golden_smac_deployment(), cfg, 15.0);
  const SmacReport r = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_EQ(r.metrics.counter(metric::kPacketsGenerated),
            r.packets_generated);
  EXPECT_EQ(r.metrics.counter(metric::kPacketsLost), r.packets_dropped);
  EXPECT_EQ(r.metrics.counter("smac.control_frames"), r.control_frames);
  EXPECT_EQ(r.metrics.counter("smac.rreq_floods"), r.rreq_floods);
  EXPECT_EQ(r.metrics.counter("smac.mac_failures"), r.mac_failures);
  EXPECT_GT(r.metrics.counter(metric::kChannelFramesTx),
            r.control_frames);  // control + data + sync
  EXPECT_DOUBLE_EQ(r.metrics.gauge_last(metric::kMeanActiveFraction),
                   r.mean_active_fraction);
}

// ---------- Oracle cache transparency ----------

// Strip the fields that are *allowed* to differ between a cache-on and a
// cache-off run: the cache's own counters and the wall-clock figures.
// Everything else must serialize byte-for-byte identically.
obs::Json comparable_report_json(SimulationReport r) {
  r.metrics.counters.erase(metric::kOracleCacheHit);
  r.metrics.counters.erase(metric::kOracleCacheMiss);
  r.oracle.reset();  // the cache's own stats block, cache-on runs only
  r.wall_seconds = 0.0;
  r.events_per_sec = 0.0;
  return obs::to_json(r);
}

obs::Json comparable_report_json(MultiClusterReport r) {
  r.totals.metrics.counters.erase(metric::kOracleCacheHit);
  r.totals.metrics.counters.erase(metric::kOracleCacheMiss);
  r.oracle.reset();
  r.totals.wall_seconds = 0.0;
  r.totals.events_per_sec = 0.0;
  return obs::to_json(r);
}

template <typename J>
std::string dump(const J& json) {
  std::ostringstream os;
  json.write(os, 2);
  return os.str();
}

TEST(RuntimeGolden, OracleCacheKeepsPollingReportByteIdentical) {
  ProtocolConfig on;  // cache_oracle defaults to true
  ProtocolConfig off;
  off.cache_oracle = false;
  PollingSimulation sim_on(golden_polling_deployment(), on, 20.0);
  PollingSimulation sim_off(golden_polling_deployment(), off, 20.0);
  const SimulationReport r_on = sim_on.run(Time::sec(40), Time::sec(10));
  const SimulationReport r_off = sim_off.run(Time::sec(40), Time::sec(10));
  // The cache actually engaged...
  EXPECT_GT(r_on.metrics.counter(metric::kOracleCacheHit) +
                r_on.metrics.counter(metric::kOracleCacheMiss),
            0u);
  EXPECT_EQ(r_off.metrics.counter(metric::kOracleCacheHit), 0u);
  EXPECT_EQ(r_off.metrics.counter(metric::kOracleCacheMiss), 0u);
  // Only the cached run carries the stats block.  Its counts are
  // lifetime totals, so they cover at least the measured window the
  // registry counters were rebased to.
  ASSERT_TRUE(r_on.oracle.has_value());
  EXPECT_FALSE(r_off.oracle.has_value());
  EXPECT_GE(r_on.oracle->hits + r_on.oracle->misses,
            r_on.metrics.counter(metric::kOracleCacheHit) +
                r_on.metrics.counter(metric::kOracleCacheMiss));
  // ...without perturbing a single other byte of the report.
  EXPECT_EQ(dump(comparable_report_json(r_on)),
            dump(comparable_report_json(r_off)));
}

TEST(RuntimeGolden, OracleCacheKeepsMultiClusterReportByteIdentical) {
  ProtocolConfig on;
  on.seed = 3;
  ProtocolConfig off = on;
  off.cache_oracle = false;
  MultiClusterSimulation sim_on(golden_two_clusters(), on,
                                InterClusterMode::kColored, 30.0);
  MultiClusterSimulation sim_off(golden_two_clusters(), off,
                                 InterClusterMode::kColored, 30.0);
  const MultiClusterReport r_on = sim_on.run(Time::sec(40), Time::sec(10));
  const MultiClusterReport r_off = sim_off.run(Time::sec(40), Time::sec(10));
  EXPECT_GT(r_on.totals.metrics.counter(metric::kOracleCacheHit) +
                r_on.totals.metrics.counter(metric::kOracleCacheMiss),
            0u);
  EXPECT_EQ(dump(comparable_report_json(r_on)),
            dump(comparable_report_json(r_off)));
}

// ---------- Runtime options through the facades ----------

TEST(Runtime, BoundedTraceOptionLimitsSimulationTrace) {
  ProtocolConfig cfg;
  RuntimeOptions opts;
  opts.trace_max_entries = 16;
  PollingSimulation sim(golden_polling_deployment(), cfg, 20.0, opts);
  sim.trace().enable_all();
  sim.run(Time::sec(20), Time::sec(5));
  EXPECT_LE(sim.trace().entries().size(), 16u);
  EXPECT_GT(sim.trace().dropped(), 0u);
}

// ---------- Metric reference stability across windows ----------

TEST(Metrics, CachedCounterReferenceSurvivesBeginWindow) {
  // Agents cache Counter& across the warmup→measurement boundary;
  // begin_window must zero counters in place, never reallocate them.
  MetricsRegistry m;
  Counter& c = m.counter("cached");
  c.add(7);
  m.begin_window(Time::sec(10));
  EXPECT_EQ(c.value(), 0u);  // the cached reference sees the reset
  c.add(3);
  EXPECT_EQ(m.counter("cached").value(), 3u);
  EXPECT_EQ(&m.counter("cached"), &c);  // same object, not a re-insert
}

TEST(Metrics, GaugeMeanIgnoresHistoryBeforeBeginWindow) {
  MetricsRegistry m;
  Gauge& g = m.gauge("g");
  g.set(Time::sec(0), 100.0);  // warmup value: must not leak into the mean
  m.begin_window(Time::sec(10));
  g.set(Time::sec(10), 2.0);
  g.set(Time::sec(20), 4.0);
  // 10 s at 2, then 10 s at 4 → 3; the 100.0 before the window is gone.
  EXPECT_DOUBLE_EQ(g.mean(Time::sec(30)), 3.0);
  EXPECT_EQ(&m.gauge("g"), &g);
}

// ---------- Trace ring / sink interplay ----------

TEST(Trace, EvictionDropsOldestAndKeepsOrder) {
  Trace trace;
  trace.enable(TraceCat::kProtocol);
  trace.set_max_entries(3);
  for (int i = 0; i < 7; ++i)
    trace.record(Time::ms(i), TraceCat::kProtocol, std::to_string(i));
  EXPECT_EQ(trace.dropped(), 4u);
  ASSERT_EQ(trace.entries().size(), 3u);
  EXPECT_EQ(trace.entries()[0].text, "4");  // oldest survivor first
  EXPECT_EQ(trace.entries()[1].text, "5");
  EXPECT_EQ(trace.entries()[2].text, "6");
}

TEST(Trace, ShrinkingMaxEntriesEvictsAndCountsDropped) {
  Trace trace;
  trace.enable(TraceCat::kProtocol);
  trace.set_max_entries(10);
  for (int i = 0; i < 10; ++i)
    trace.record(Time::ms(i), TraceCat::kProtocol, std::to_string(i));
  EXPECT_EQ(trace.dropped(), 0u);
  trace.set_max_entries(4);  // shrink mid-run evicts the 6 oldest
  EXPECT_EQ(trace.dropped(), 6u);
  ASSERT_EQ(trace.entries().size(), 4u);
  EXPECT_EQ(trace.entries().front().text, "6");
  EXPECT_EQ(trace.entries().back().text, "9");
}

TEST(Trace, SinksSeeEntriesTheRingEvicts) {
  struct CountingSink : TraceSink {
    std::vector<std::string> seen;
    void on_entry(const TraceEntry& entry) override {
      seen.push_back(entry.text);
    }
  };
  Trace trace;
  trace.enable(TraceCat::kProtocol);
  trace.set_max_entries(2);
  CountingSink sink;
  trace.add_sink(&sink);
  for (int i = 0; i < 5; ++i)
    trace.record(Time::ms(i), TraceCat::kProtocol, std::to_string(i));
  EXPECT_EQ(trace.entries().size(), 2u);
  ASSERT_EQ(sink.seen.size(), 5u);  // sinks outlive the ring
  EXPECT_EQ(sink.seen.front(), "0");
  EXPECT_EQ(sink.seen.back(), "4");
  trace.remove_sink(&sink);
  trace.record(Time::ms(9), TraceCat::kProtocol, "after");
  EXPECT_EQ(sink.seen.size(), 5u);
}

TEST(Trace, OstreamSinkAndPrintShareOneFormatter) {
  // Satellite: both renderings go through format_trace_entry, so a
  // live-streamed log is byte-identical to a post-hoc Trace::print.
  Trace trace;
  trace.enable(TraceCat::kProtocol);
  std::ostringstream streamed;
  OstreamTraceSink sink(streamed);
  trace.add_sink(&sink);
  trace.record(Time::ms(1), TraceCat::kProtocol, "alpha");
  trace.record(Time::ms(250), TraceCat::kProtocol, "beta");
  std::ostringstream printed;
  trace.print(printed);
  EXPECT_EQ(streamed.str(), printed.str());
}

}  // namespace
}  // namespace mhp
