// Sector partitioning heuristic (§IV-B): flow merging, branch pairing,
// pseudo power rates.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/sectors.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

void expect_valid_partition(const ClusterTopology& topo,
                            const SectorPartition& p) {
  const std::size_t n = topo.num_sensors();
  // Every sensor in exactly one sector.
  std::vector<int> count(n, 0);
  for (const auto& sec : p.sectors)
    for (NodeId s : sec.sensors) count[s] += 1;
  for (NodeId s = 0; s < n; ++s) {
    EXPECT_EQ(count[s], 1) << "sensor " << s;
    EXPECT_GE(p.sector_of[s], 0);
    EXPECT_LT(p.sector_of[s], static_cast<int>(p.sectors.size()));
  }
  // The relay tree is acyclic and reaches the head over topology links.
  for (NodeId s = 0; s < n; ++s) {
    std::size_t steps = 0;
    NodeId v = s;
    while (v != topo.head()) {
      const NodeId parent = p.parent[v];
      ASSERT_NE(parent, kNoNode);
      if (parent == topo.head())
        EXPECT_TRUE(topo.head_hears(v));
      else
        EXPECT_TRUE(topo.sensors_linked(v, parent));
      v = parent;
      ASSERT_LE(++steps, n) << "cycle in relay tree";
    }
  }
  // Gateways are exactly the tree roots of each sector.
  for (std::size_t k = 0; k < p.sectors.size(); ++k) {
    EXPECT_GE(p.sectors[k].gateways.size(), 1u);
    EXPECT_LE(p.sectors[k].gateways.size(), 2u);
    for (NodeId g : p.sectors[k].gateways) {
      EXPECT_EQ(p.parent[g], topo.head());
      EXPECT_EQ(p.sector_of[g], static_cast<int>(k));
    }
  }
  // A sensor's whole tree path stays inside its sector (dependents sleep
  // and wake together).
  for (NodeId s = 0; s < n; ++s)
    for (NodeId v = s; v != topo.head(); v = p.parent[v])
      EXPECT_EQ(p.sector_of[v], p.sector_of[s]);
}

TEST(Sectors, ChainBecomesOneBranchSector) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const std::vector<std::int64_t> demand = {1, 1, 1};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.partition(plan, demand);
  expect_valid_partition(topo, part);
  EXPECT_EQ(part.sectors.size(), 1u);
  EXPECT_EQ(part.tree_load[0], 3);
  EXPECT_EQ(part.tree_load[1], 2);
  EXPECT_EQ(part.tree_load[2], 1);
}

TEST(Sectors, IndependentBranchesBecomeSectors) {
  // Two disjoint chains: 0-2 and 1-3 (0, 1 first level), no cross links →
  // pairing rule (i) fails, so two sectors remain.
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  ClusterTopology topo(std::move(g), {true, true, false, false});
  const std::vector<std::int64_t> demand = {1, 1, 1, 1};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.partition(plan, demand);
  expect_valid_partition(topo, part);
  EXPECT_EQ(part.sectors.size(), 2u);
}

TEST(Sectors, LinkedBranchesPairUp) {
  // Two chains with a cross link between their tails → one paired sector.
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);  // cross link enables rule (i)
  ClusterTopology topo(std::move(g), {true, true, false, false});
  const std::vector<std::int64_t> demand = {1, 1, 1, 1};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.partition(plan, demand);
  expect_valid_partition(topo, part);
  EXPECT_EQ(part.sectors.size(), 1u);
  EXPECT_EQ(part.sectors[0].gateways.size(), 2u);
}

TEST(Sectors, FlowMergingResolvesSplits) {
  // Diamond: sensor 2 splits flow across gateways 0 and 1; the merged
  // tree must give it exactly one parent.
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  ClusterTopology topo(std::move(g), {true, true, false});
  const std::vector<std::int64_t> demand = {1, 1, 2};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.partition(plan, demand);
  expect_valid_partition(topo, part);
  EXPECT_TRUE(part.parent[2] == 0 || part.parent[2] == 1);
}

TEST(Sectors, SingleSectorCoversEverything) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const std::vector<std::int64_t> demand = {1, 1, 1};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.single_sector(plan, demand);
  EXPECT_EQ(part.sectors.size(), 1u);
  EXPECT_EQ(part.sectors[0].sensors.size(), 3u);
}

TEST(Sectors, PseudoRateComputation) {
  // Chain of 3: worst sensor is the gateway with load 3, sector size 3 →
  // ρ' = α·3 + β·3.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const std::vector<std::int64_t> demand = {1, 1, 1};
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo, SectorParams{2.0, 1.0, 2});
  const auto part = sp.partition(plan, demand);
  EXPECT_DOUBLE_EQ(sp.max_pseudo_rate(part), 2.0 * 3 + 1.0 * 3);
}

TEST(Sectors, SectoringReducesPseudoRateOnRings) {
  // A ring deployment has many independent first-level branches; sectored
  // pseudo rates (small sector sizes) beat the single-sector baseline.
  const Deployment dep = deploy_rings(3, 8, 40.0);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  ASSERT_TRUE(topo.fully_connected());
  std::vector<std::int64_t> demand(topo.num_sensors(), 1);
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto sectored = sp.partition(plan, demand);
  const auto single = sp.single_sector(plan, demand);
  expect_valid_partition(topo, sectored);
  EXPECT_GT(sectored.sectors.size(), 1u);
  EXPECT_LT(sp.max_pseudo_rate(sectored), sp.max_pseudo_rate(single));
}

class SectorsOnRandomClusters : public ::testing::TestWithParam<int> {};

TEST_P(SectorsOnRandomClusters, PartitionAlwaysValid) {
  Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 8 + rng.below(30);
  const Deployment dep =
      deploy_connected_uniform_square(n, 200.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  std::vector<std::int64_t> demand(n);
  for (auto& d : demand) d = 1 + static_cast<std::int64_t>(rng.below(3));
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  SectorPartitioner sp(topo);
  const auto part = sp.partition(plan, demand);
  expect_valid_partition(topo, part);
  // Tree loads are consistent: root loads sum to total demand.
  std::int64_t total = std::accumulate(demand.begin(), demand.end(),
                                       std::int64_t{0});
  std::int64_t roots = 0;
  for (NodeId s = 0; s < n; ++s)
    if (part.parent[s] == topo.head()) roots += part.tree_load[s];
  EXPECT_EQ(roots, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectorsOnRandomClusters,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace mhp
