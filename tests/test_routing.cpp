// RelayPlan: rotation, one-hop tables, dependents.
#include <gtest/gtest.h>

#include <map>

#include "core/routing.hpp"
#include "util/assertx.hpp"

namespace mhp {
namespace {

/// Diamond topology: sensor 2 reaches the head via gateways 0 and 1.
ClusterTopology diamond() {
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  return ClusterTopology(std::move(g), {true, true, false});
}

TEST(RelayPlan, BalancedWrapsSolution) {
  const auto topo = diamond();
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 2});
  EXPECT_EQ(plan.max_load(), 2);
  EXPECT_EQ(plan.num_sensors(), 3u);
  EXPECT_EQ(plan.load(2), 2);
}

TEST(RelayPlan, InfeasibleThrows) {
  Graph g(2);
  ClusterTopology topo(std::move(g), {true, false});
  EXPECT_THROW(RelayPlan::balanced(topo, {1, 1}), ContractViolation);
}

TEST(RelayPlan, RotationProportionalToUnits) {
  const auto topo = diamond();
  // Sensor 2 sends 3 packets per cycle and each gateway one of its own:
  // δ* = 3 forces a 2+1 split across the gateways.
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 3});
  const auto& paths = plan.paths(2);
  ASSERT_EQ(paths.size(), 2u);
  const std::int64_t window = paths[0].units + paths[1].units;
  EXPECT_EQ(window, 3);

  // Over one window each path is used `units` times (§V-D).
  std::map<std::vector<NodeId>, int> uses;
  for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(window); ++c)
    uses[plan.path_for_cycle(2, c).hops] += 1;
  for (const auto& p : paths)
    EXPECT_EQ(uses[p.hops], static_cast<int>(p.units));

  // Rotation is periodic.
  EXPECT_EQ(plan.path_for_cycle(2, 0).hops,
            plan.path_for_cycle(2, static_cast<std::uint64_t>(window)).hops);
}

TEST(RelayPlan, SinglePathSensorAlwaysSame) {
  const auto topo = diamond();
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 1});
  for (std::uint64_t c = 0; c < 5; ++c)
    EXPECT_EQ(plan.path_for_cycle(0, c).hops,
              (std::vector<NodeId>{0, topo.head()}));
}

TEST(RelayPlan, ZeroDemandSensorHasNoPath) {
  const auto topo = diamond();
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 0});
  EXPECT_TRUE(plan.paths(2).empty());
  EXPECT_THROW(plan.path_for_cycle(2, 0), ContractViolation);
}

TEST(RelayPlan, OneHopTableListsDependents) {
  // Chain: 2 → 1 → 0 → head.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 1});

  // Relay 0 forwards packets of 1 and 2 to the head.
  const auto table0 = plan.one_hop_table(0, 0);
  ASSERT_EQ(table0.size(), 2u);
  EXPECT_EQ(table0.at(1), topo.head());
  EXPECT_EQ(table0.at(2), topo.head());

  // Relay 1 forwards sensor 2's packets to 0.
  const auto table1 = plan.one_hop_table(1, 0);
  ASSERT_EQ(table1.size(), 1u);
  EXPECT_EQ(table1.at(2), 0u);

  // Leaf 2 relays nobody.
  EXPECT_TRUE(plan.one_hop_table(2, 0).empty());

  const auto deps0 = plan.dependents(0, 0);
  EXPECT_EQ(deps0, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(plan.dependents(2, 0), std::vector<NodeId>{});
}

TEST(RelayPlan, ShortestMatchesLevels) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const RelayPlan plan = RelayPlan::shortest(topo, {1, 1, 1});
  EXPECT_EQ(plan.paths(2)[0].hops.size(), 4u);  // 2→1→0→head
  EXPECT_EQ(plan.load(0), 3);
}

}  // namespace
}  // namespace mhp
