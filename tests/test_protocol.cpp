// End-to-end integration tests of the duty-cycle polling protocol over
// the discrete-event channel (cluster head + sensor agents).
#include <gtest/gtest.h>

#include <cmath>

#include "core/polling_simulation.hpp"
#include "metrics/lifetime.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

Deployment small_cluster(std::uint64_t seed, std::size_t n = 12) {
  Rng rng(seed);
  return deploy_connected_uniform_square(n, 160.0, 60.0, rng);
}

TEST(Protocol, DeliversEverythingAtLowLoad) {
  ProtocolConfig cfg;
  PollingSimulation sim(small_cluster(1), cfg, 20.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_GT(rep.packets_generated, 0u);
  EXPECT_EQ(rep.packets_lost, 0u);
  // Packets generated just before the window end are still queued.
  EXPECT_GE(rep.delivery_ratio, 0.9);
  EXPECT_NEAR(rep.throughput_bps, rep.offered_bps,
              0.15 * rep.offered_bps);
}

TEST(Protocol, SensorsSleepMostOfTheTime) {
  ProtocolConfig cfg;
  PollingSimulation sim(small_cluster(2), cfg, 20.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_LT(rep.max_active_fraction, 0.5);
  EXPECT_GT(rep.mean_active_fraction, 0.0);
  // Idle-dominated power: far below the always-on 21 mW (idle rx mix).
  EXPECT_LT(rep.max_sensor_power_w, 0.5 * cfg.sensor_energy.idle_w);
}

TEST(Protocol, DeterministicAcrossRuns) {
  ProtocolConfig cfg;
  cfg.seed = 77;
  const Deployment dep = small_cluster(3);
  PollingSimulation a(dep, cfg, 30.0);
  PollingSimulation b(dep, cfg, 30.0);
  const auto ra = a.run(Time::sec(30), Time::sec(5));
  const auto rb = b.run(Time::sec(30), Time::sec(5));
  EXPECT_EQ(ra.packets_generated, rb.packets_generated);
  EXPECT_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_DOUBLE_EQ(ra.mean_active_fraction, rb.mean_active_fraction);
  EXPECT_DOUBLE_EQ(ra.max_sensor_power_w, rb.max_sensor_power_w);
}

TEST(Protocol, RandomLossIsRecoveredByRepolling) {
  ProtocolConfig cfg;
  cfg.random_loss = 0.15;
  PollingSimulation sim(small_cluster(4), cfg, 20.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_GT(sim.head().reactivations(), 0u);
  EXPECT_GE(rep.delivery_ratio, 0.85);
}

TEST(Protocol, HigherRateRaisesActiveTime) {
  const Deployment dep = small_cluster(5);
  ProtocolConfig cfg;
  PollingSimulation slow(dep, cfg, 10.0);
  PollingSimulation fast(dep, cfg, 80.0);
  const auto rs = slow.run(Time::sec(40), Time::sec(10));
  const auto rf = fast.run(Time::sec(40), Time::sec(10));
  EXPECT_GT(rf.mean_active_fraction, rs.mean_active_fraction);
}

TEST(Protocol, OverloadSaturatesAndLosesPackets) {
  // 12 sensors at 1.5 kB/s ≈ 18 kB/s offered: with ~4 ms slots and
  // multi-hop relays the 200 kbps cluster cannot drain this.
  ProtocolConfig cfg;
  PollingSimulation sim(small_cluster(6), cfg, 1500.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_LT(rep.delivery_ratio, 0.9);
  EXPECT_GT(rep.packets_lost, 0u);
  EXPECT_GT(rep.max_active_fraction, 0.85);
}

TEST(Protocol, SectorsReduceActiveTime) {
  const Deployment dep = small_cluster(7, 20);
  ProtocolConfig plain;
  ProtocolConfig sectored;
  sectored.use_sectors = true;
  PollingSimulation a(dep, plain, 15.0);
  PollingSimulation b(dep, sectored, 15.0);
  ASSERT_TRUE(b.sector_partition().has_value());
  if (b.sector_partition()->sectors.size() < 2)
    GTEST_SKIP() << "deployment produced a single sector";
  const auto ra = a.run(Time::sec(40), Time::sec(10));
  const auto rb = b.run(Time::sec(40), Time::sec(10));
  EXPECT_GE(rb.delivery_ratio, 0.9);
  EXPECT_LT(rb.mean_active_fraction, ra.mean_active_fraction);
  // Lifetime improves with the lower power draw (Fig 7(c) direction).
  EXPECT_GT(rb.lifetime_s(2400.0), ra.lifetime_s(2400.0));
}

TEST(Protocol, SetupExposesPlansAndOracle) {
  ProtocolConfig cfg;
  cfg.oracle_order = 2;
  PollingSimulation sim(small_cluster(8), cfg, 20.0);
  EXPECT_TRUE(sim.topology().fully_connected());
  EXPECT_GE(sim.relay_plan().max_load(), 1);
  EXPECT_EQ(sim.oracle().order(), 2);
  EXPECT_GT(sim.oracle().probes(), 0u);
}

TEST(Protocol, LatencyBoundedByCyclePeriod) {
  ProtocolConfig cfg;
  cfg.cycle_period = Time::ms(500);
  PollingSimulation sim(small_cluster(9), cfg, 20.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  // A packet waits at most ~one cycle plus the drain time.
  EXPECT_GT(rep.mean_latency_s, 0.0);
  EXPECT_LT(rep.mean_latency_s, 1.5 * cfg.cycle_period.to_seconds());
}

TEST(Protocol, WorksOverArbitraryShadowedCoverage) {
  // §III-B's premise exercised end-to-end: with log-normal shadowing the
  // coverage areas are not discs, yet the protocol — which *measures*
  // connectivity and interference instead of assuming a model — still
  // delivers everything.
  ProtocolConfig cfg;
  cfg.propagation = PropagationModel::kLogNormalShadowing;
  cfg.shadowing_sigma_db = 4.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    cfg.environment_seed = seed;
    Rng rng(seed);
    // Denser deployment: shadowing kills some geometric links.
    const Deployment dep =
        deploy_connected_uniform_square(15, 140.0, 50.0, rng);
    try {
      PollingSimulation sim(dep, cfg, 20.0);
      const auto rep = sim.run(Time::sec(30), Time::sec(5));
      EXPECT_GE(rep.delivery_ratio, 0.9) << "environment " << seed;
      return;  // one connected shadowed environment suffices
    } catch (const ContractViolation&) {
      continue;  // this environment disconnected the cluster; try another
    }
  }
  FAIL() << "no connected shadowed environment found in 30 tries";
}

TEST(Protocol, FreeSpacePropagationAlsoWorks) {
  ProtocolConfig cfg;
  cfg.propagation = PropagationModel::kFreeSpace;
  PollingSimulation sim(small_cluster(12), cfg, 20.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GE(rep.delivery_ratio, 0.9);
}

TEST(Protocol, PathRotationBalancesRelays) {
  // Diamond built geometrically: gateways 0 and 1 both hear the head;
  // sensor 2 (90 m out) reaches only the gateways.  Sensor 2 offers
  // 3 packets per cycle, each gateway one of its own — min-max routing
  // must split sensor 2's flow, and rotation (§V-D) should spread the
  // relay burden over both gateways.
  Deployment dep;
  dep.positions = {{30, 50}, {-30, 50}, {0, 90}, {0, 0}};
  const std::vector<double> rates = {20.0, 20.0, 240.0};

  auto relay_tx = [&](bool rotate) {
    ProtocolConfig cfg;
    cfg.rotate_paths = rotate;
    PollingSimulation sim(dep, cfg, rates);
    const auto rep = sim.run(Time::sec(40), Time::sec(10));
    EXPECT_GE(rep.delivery_ratio, 0.9) << "rotate=" << rotate;
    return std::pair<std::uint64_t, std::uint64_t>{
        sim.sensor(0).frames_sent(), sim.sensor(1).frames_sent()};
  };

  const auto [r0, r1] = relay_tx(true);
  const auto [s0, s1] = relay_tx(false);
  // Rotation: both gateways share the relay load...
  const auto rot_min = std::min(r0, r1);
  const auto rot_max = std::max(r0, r1);
  // ...while the static plan pins the split chosen at cycle 0.
  const auto st_min = std::min(s0, s1);
  const auto st_max = std::max(s0, s1);
  EXPECT_LT(rot_max - rot_min, st_max - st_min)
      << "rotation should even out relay transmissions";
}

TEST(Protocol, TraceRecordsCycleTransitions) {
  ProtocolConfig cfg;
  PollingSimulation sim(small_cluster(13), cfg, 20.0);
  sim.trace().enable(TraceCat::kProtocol);
  sim.run(Time::sec(12), Time::sec(2));
  const auto texts = sim.trace().texts(TraceCat::kProtocol);
  ASSERT_FALSE(texts.empty());
  int wakes = 0, sleeps = 0;
  for (const auto& t : texts) {
    if (t.find("wake") != std::string::npos) ++wakes;
    if (t.find("sleep") != std::string::npos) ++sleeps;
  }
  // ~12 cycles ran; each produces one wake and one sleep entry.
  EXPECT_GE(wakes, 10);
  EXPECT_GE(sleeps, 10);
}

TEST(Protocol, SectorWindowOverrunCountsLosses) {
  // Sectored cluster under a heavy load: some sector windows are too
  // short to drain, so the head aborts and reports lost packets rather
  // than wedging or starving the next sector.
  ProtocolConfig cfg;
  cfg.use_sectors = true;
  cfg.cycle_period = Time::ms(300);
  PollingSimulation sim(small_cluster(14, 20), cfg, 800.0);
  sim.trace().enable(TraceCat::kProtocol);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GT(rep.packets_lost, 0u);
  EXPECT_GT(sim.head().cycles_completed(), 50u);  // cycles keep running
  bool saw_abort = false;
  for (const auto& t : sim.trace().texts(TraceCat::kProtocol))
    if (t.find("overrun") != std::string::npos) saw_abort = true;
  EXPECT_TRUE(saw_abort);
}

TEST(Protocol, AckLossSkipsSensorForOneCycleOnly) {
  // With moderate random loss, some acks die even after re-polls; the
  // affected sensors' backlog is simply collected next cycle, so overall
  // delivery stays high over time.
  ProtocolConfig cfg;
  cfg.random_loss = 0.3;
  cfg.max_retries = 2;  // force occasional ack abandonment
  PollingSimulation sim(small_cluster(15), cfg, 20.0);
  const auto rep = sim.run(Time::sec(60), Time::sec(10));
  EXPECT_GE(rep.delivery_ratio, 0.7);
  EXPECT_GT(sim.head().reactivations(), 0u);
}

TEST(Protocol, MisuseIsRejected) {
  const Deployment dep = small_cluster(16);
  ProtocolConfig cfg;
  // One rate per sensor, not fewer.
  EXPECT_THROW(PollingSimulation(dep, cfg, std::vector<double>{1.0, 2.0}),
               ContractViolation);
  // Measurement window must be positive.
  PollingSimulation sim(dep, cfg, 20.0);
  EXPECT_THROW(sim.run(Time::sec(5), Time::sec(5)), ContractViolation);
  // Disconnected deployments are refused at set-up.
  Deployment lonely;
  lonely.positions = {{0, 0}, {500, 0}, {0, 0}};  // sensor 1 unreachable
  EXPECT_THROW(PollingSimulation(lonely, cfg, 20.0), ContractViolation);
}

TEST(Lifetime, FirstAndMedianDeath) {
  const std::vector<double> powers = {1.0, 2.0, 4.0};
  BatteryModel battery{100.0};
  EXPECT_DOUBLE_EQ(lifetime_first_death_s(powers, battery), 25.0);
  EXPECT_DOUBLE_EQ(lifetime_median_death_s(powers, battery), 50.0);
  EXPECT_DOUBLE_EQ(analytic_power_rate(2.0, 3.0, 4.0, 5.0), 23.0);
}

TEST(Lifetime, ReportLifetimeIsInfiniteWhenNoPowerWasDrawn) {
  // An idle cluster never exhausts a battery: +inf, not a 0.0 sentinel
  // that would rank an idle cluster as the shortest-lived one.
  SimulationReport r;
  EXPECT_TRUE(std::isinf(r.lifetime_s(100.0)));
  EXPECT_GT(r.lifetime_s(100.0), 0.0);
  r.max_sensor_power_w = 0.5;
  EXPECT_DOUBLE_EQ(r.lifetime_s(100.0), 200.0);
}

}  // namespace
}  // namespace mhp
