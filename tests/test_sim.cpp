#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <utility>
#include <vector>

#include "util/assertx.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace mhp {
namespace {

// ---------- Time ----------

TEST(Time, UnitConversions) {
  EXPECT_EQ(Time::us(1).nanos(), 1000);
  EXPECT_EQ(Time::ms(1).nanos(), 1'000'000);
  EXPECT_EQ(Time::sec(1).nanos(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Time::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::us(2500).to_millis(), 2.5);
}

TEST(Time, SecondsRoundsToNearestNano) {
  EXPECT_EQ(Time::seconds(1e-9).nanos(), 1);
  EXPECT_EQ(Time::seconds(0.5).nanos(), 500'000'000);
  EXPECT_EQ(Time::seconds(1.0000000004).nanos(), 1'000'000'000);
}

TEST(Time, Arithmetic) {
  const Time a = Time::ms(3), b = Time::ms(2);
  EXPECT_EQ((a + b).nanos(), Time::ms(5).nanos());
  EXPECT_EQ((a - b).nanos(), Time::ms(1).nanos());
  EXPECT_EQ((a * 4).nanos(), Time::ms(12).nanos());
  EXPECT_EQ(a / b, 1);
  EXPECT_LT(b, a);
}

// ---------- EventQueue ----------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(3), [&] { order.push_back(3); });
  q.push(Time::ms(1), [&] { order.push_back(1); });
  q.push(Time::ms(2), [&] { order.push_back(2); });
  while (auto ev = q.pop()) ev->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.push(Time::ms(1), [&, i] { order.push_back(i); });
  while (auto ev = q.pop()) ev->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel fails
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(Time::ms(1), [] {});
  q.push(Time::ms(5), [] {});
  q.cancel(early);
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_EQ(*q.peek_time(), Time::ms(5));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(Time::ms(1), [] {});
  q.push(Time::ms(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleHandleSurvivesSlotReuse) {
  // The arena recycles slots; a handle from a popped or cancelled event
  // carries the old generation and must not cancel the slot's new tenant.
  EventQueue q;
  const EventId a = q.push(Time::ms(1), [] {});
  ASSERT_TRUE(q.cancel(a));
  const EventId b = q.push(Time::ms(2), [] {});  // reuses a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));  // stale generation
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(Time::ms(1), [] {});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMidHeapKeepsOrder) {
  // Cancelling removes the heap entry eagerly; remaining events must
  // still fire in (time, seq) order.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(q.push(Time::ms(10 - i), [&order, i] { order.push_back(i); }));
  for (int i = 1; i < 10; i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  while (auto ev = q.pop()) ev->fn();
  EXPECT_EQ(order, (std::vector<int>{8, 6, 4, 2, 0}));
}

TEST(EventFnStorage, SmallCallbacksStoreInlineLargeOnesOnHeap) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hits, 1);

  std::array<char, 128> payload{};
  payload[0] = 7;
  EventFn large([payload, &hits] { hits += payload[0]; });
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_EQ(hits, 8);
}

TEST(EventFnStorage, MoveTransfersTarget) {
  int hits = 0;
  EventFn a([&hits] { ++hits; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

// ---------- Simulator ----------

TEST(Simulator, AdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> at;
  sim.at(Time::ms(5), [&] { at.push_back(sim.now().nanos()); });
  sim.at(Time::ms(2), [&] { at.push_back(sim.now().nanos()); });
  sim.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{Time::ms(2).nanos(),
                                           Time::ms(5).nanos()}));
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Time fired;
  sim.at(Time::ms(10), [&] {
    sim.after(Time::ms(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::ms(15));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.at(Time::ms(1), [&] { ++ran; });
  sim.at(Time::ms(10), [&] { ++ran; });
  sim.run_until(Time::ms(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), Time::ms(5));
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int ran = 0;
  sim.at(Time::ms(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.at(Time::ms(2), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.run();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.at(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.at(Time::ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(Time::ms(5), [] {}), ContractViolation);
  EXPECT_THROW(sim.after(Time::ms(0) - Time::ms(1), [] {}),
               ContractViolation);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int ran = 0;
  sim.at(Time::ms(1), [&] { ++ran; });
  sim.at(Time::ms(2), [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(Time::us(1), recurse);
  };
  sim.after(Time::us(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
}

// ---------- Trace ----------

TEST(Trace, DisabledCategoriesRecordNothing) {
  Trace tr;
  tr.record(Time::ms(1), TraceCat::kProtocol, "x");
  EXPECT_TRUE(tr.entries().empty());
}

TEST(Trace, EnabledCategoryRecords) {
  Trace tr;
  tr.enable(TraceCat::kChannel);
  tr.record(Time::ms(1), TraceCat::kChannel, "tx");
  tr.record(Time::ms(2), TraceCat::kProtocol, "poll");  // still disabled
  ASSERT_EQ(tr.entries().size(), 1u);
  EXPECT_EQ(tr.entries()[0].text, "tx");
  EXPECT_EQ(tr.texts(TraceCat::kChannel),
            std::vector<std::string>{"tx"});
}

TEST(Trace, RingStaysBoundedAndKeepsNewestEntries) {
  Trace tr;
  tr.enable_all();
  tr.set_max_entries(64);
  for (int i = 0; i < 1000; ++i)
    tr.record(Time::us(i), TraceCat::kChannel, "e" + std::to_string(i));
  EXPECT_EQ(tr.entries().size(), 64u);
  EXPECT_EQ(tr.dropped(), 1000u - 64u);
  EXPECT_EQ(tr.entries().front().text, "e936");
  EXPECT_EQ(tr.entries().back().text, "e999");
}

TEST(Trace, ShrinkingCapEvictsExistingOldest) {
  Trace tr;
  tr.enable_all();
  for (int i = 0; i < 10; ++i)
    tr.record(Time::us(i), TraceCat::kChannel, "e" + std::to_string(i));
  tr.set_max_entries(3);
  ASSERT_EQ(tr.entries().size(), 3u);
  EXPECT_EQ(tr.entries().front().text, "e7");
  EXPECT_EQ(tr.dropped(), 7u);
}

TEST(Trace, ClearResetsEntriesAndDropCounter) {
  Trace tr;
  tr.enable_all();
  tr.set_max_entries(2);
  for (int i = 0; i < 5; ++i)
    tr.record(Time::us(i), TraceCat::kChannel, "x");
  tr.clear();
  EXPECT_TRUE(tr.entries().empty());
  EXPECT_EQ(tr.dropped(), 0u);
  tr.record(Time::us(9), TraceCat::kChannel, "fresh");
  EXPECT_EQ(tr.entries().size(), 1u);
}

TEST(Trace, SinksObserveEveryEnabledEntry) {
  Trace tr;
  tr.enable(TraceCat::kChannel);
  tr.set_max_entries(2);
  std::ostringstream os;
  OstreamTraceSink sink(os);
  tr.add_sink(&sink);
  for (int i = 0; i < 6; ++i)
    tr.record(Time::us(i), TraceCat::kChannel, "tx" + std::to_string(i));
  tr.record(Time::us(7), TraceCat::kProtocol, "skip");  // disabled category
  std::size_t lines = 0;
  std::istringstream in(os.str());
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 6u);  // evicted entries were streamed before eviction
  EXPECT_NE(os.str().find("tx0"), std::string::npos);
  tr.remove_sink(&sink);
  tr.record(Time::us(8), TraceCat::kChannel, "after-removal");
  EXPECT_EQ(os.str().find("after-removal"), std::string::npos);
}

TEST(Trace, PrintIncludesCategory) {
  Trace tr;
  tr.enable_all();
  tr.record(Time::ms(1), TraceCat::kEnergy, "sleep");
  std::ostringstream os;
  tr.print(os);
  EXPECT_NE(os.str().find("energy"), std::string::npos);
  EXPECT_NE(os.str().find("sleep"), std::string::npos);
}

}  // namespace
}  // namespace mhp
