// AODV unit tests and S-MAC integration tests.
#include <gtest/gtest.h>

#include "baseline/aodv.hpp"
#include "baseline/smac_simulation.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- AODV ----------

TEST(Aodv, NoRouteInitially) {
  Aodv aodv(0);
  EXPECT_FALSE(aodv.next_hop(9, Time::zero()).has_value());
}

TEST(Aodv, RreqInstallsReverseRouteAndForwards) {
  Aodv mid(1);
  RreqMsg rreq;
  rreq.id = 1;
  rreq.origin = 0;
  rreq.dest = 9;
  rreq.origin_seq = 5;
  rreq.hops = 0;
  const auto action = mid.on_rreq(rreq, /*from=*/0, Time::zero(),
                                  Time::sec(10));
  EXPECT_TRUE(action.forward);
  EXPECT_FALSE(action.reply);
  EXPECT_EQ(action.fwd.hops, 1u);
  // Reverse route to the origin installed.
  ASSERT_TRUE(mid.next_hop(0, Time::ms(1)).has_value());
  EXPECT_EQ(*mid.next_hop(0, Time::ms(1)), 0u);
}

TEST(Aodv, DuplicateRreqSuppressed) {
  Aodv mid(1);
  RreqMsg rreq;
  rreq.id = 1;
  rreq.origin = 0;
  rreq.dest = 9;
  EXPECT_TRUE(mid.on_rreq(rreq, 0, Time::zero(), Time::sec(10)).forward);
  const auto again = mid.on_rreq(rreq, 2, Time::zero(), Time::sec(10));
  EXPECT_FALSE(again.forward);
  EXPECT_FALSE(again.reply);
}

TEST(Aodv, DestinationReplies) {
  Aodv dest(9);
  RreqMsg rreq;
  rreq.id = 3;
  rreq.origin = 0;
  rreq.dest = 9;
  const auto action = dest.on_rreq(rreq, 4, Time::zero(), Time::sec(10));
  EXPECT_TRUE(action.reply);
  EXPECT_FALSE(action.forward);
  EXPECT_EQ(action.rep.origin, 0u);
  EXPECT_EQ(action.rep.dest, 9u);
}

TEST(Aodv, RrepInstallsForwardRouteAndChainsBack) {
  Aodv mid(1);
  // Reverse route to origin 0 via neighbor 0.
  RreqMsg rreq;
  rreq.id = 1;
  rreq.origin = 0;
  rreq.dest = 9;
  mid.on_rreq(rreq, 0, Time::zero(), Time::sec(10));
  // RREP travelling back: from neighbor 5 (toward dest 9).
  RrepMsg rrep;
  rrep.origin = 0;
  rrep.dest = 9;
  rrep.dest_seq = 1;
  rrep.hops = 0;
  const auto onward = mid.on_rrep(rrep, 5, Time::ms(1), Time::sec(10));
  ASSERT_TRUE(onward.has_value());
  EXPECT_EQ(*onward, 0u);  // toward the origin
  ASSERT_TRUE(mid.next_hop(9, Time::ms(2)).has_value());
  EXPECT_EQ(*mid.next_hop(9, Time::ms(2)), 5u);
}

TEST(Aodv, OriginStopsRrep) {
  Aodv origin(0);
  RrepMsg rrep;
  rrep.origin = 0;
  rrep.dest = 9;
  const auto onward = origin.on_rrep(rrep, 3, Time::zero(), Time::sec(10));
  EXPECT_FALSE(onward.has_value());
  EXPECT_TRUE(origin.next_hop(9, Time::ms(1)).has_value());
}

TEST(Aodv, RoutesExpire) {
  Aodv origin(0);
  RrepMsg rrep;
  rrep.origin = 0;
  rrep.dest = 9;
  origin.on_rrep(rrep, 3, Time::zero(), Time::sec(1));
  EXPECT_TRUE(origin.next_hop(9, Time::ms(500)).has_value());
  EXPECT_FALSE(origin.next_hop(9, Time::sec(2)).has_value());
  origin.on_rrep(rrep, 3, Time::sec(3), Time::sec(1));
  origin.touch(9, Time::sec(3), Time::sec(10));
  EXPECT_TRUE(origin.next_hop(9, Time::sec(12)).has_value());
}

TEST(Aodv, LinkFailureInvalidates) {
  Aodv node(0);
  RrepMsg to9;
  to9.origin = 0;
  to9.dest = 9;
  node.on_rrep(to9, 3, Time::zero(), Time::sec(10));
  RrepMsg to8;
  to8.origin = 0;
  to8.dest = 8;
  node.on_rrep(to8, 4, Time::zero(), Time::sec(10));
  const auto lost = node.on_link_failure(3);
  EXPECT_EQ(lost, std::vector<NodeId>{9});
  EXPECT_FALSE(node.next_hop(9, Time::ms(1)).has_value());
  EXPECT_TRUE(node.next_hop(8, Time::ms(1)).has_value());
}

TEST(Aodv, FresherSequenceWins) {
  Aodv node(0);
  RrepMsg old;
  old.origin = 0;
  old.dest = 9;
  old.dest_seq = 5;
  old.hops = 1;
  node.on_rrep(old, 3, Time::zero(), Time::sec(10));
  RrepMsg fresh;
  fresh.origin = 0;
  fresh.dest = 9;
  fresh.dest_seq = 6;
  fresh.hops = 4;
  node.on_rrep(fresh, 4, Time::ms(1), Time::sec(10));
  EXPECT_EQ(*node.next_hop(9, Time::ms(2)), 4u);  // fresher despite longer
  RrepMsg stale;
  stale.origin = 0;
  stale.dest = 9;
  stale.dest_seq = 2;
  node.on_rrep(stale, 5, Time::ms(2), Time::sec(10));
  EXPECT_EQ(*node.next_hop(9, Time::ms(3)), 4u);  // stale ignored
}

TEST(Aodv, IntermediateNodeWithFreshRouteReplies) {
  Aodv mid(1);
  // Give node 1 a fresh route to 9 via 5.
  RrepMsg learn;
  learn.origin = 1;
  learn.dest = 9;
  learn.dest_seq = 4;
  learn.hops = 2;
  mid.on_rrep(learn, 5, Time::zero(), Time::sec(10));

  RreqMsg rreq;
  rreq.id = 7;
  rreq.origin = 0;
  rreq.dest = 9;
  const auto action = mid.on_rreq(rreq, 0, Time::ms(1), Time::sec(10));
  EXPECT_TRUE(action.reply);
  EXPECT_FALSE(action.forward);
  EXPECT_EQ(action.rep.dest, 9u);
  EXPECT_EQ(action.rep.dest_seq, 4u);
  EXPECT_EQ(action.rep.hops, 3u);  // its route's hops via node 5
}

TEST(Aodv, IntermediateWithStaleRouteForwardsInstead) {
  Aodv mid(1);
  RrepMsg learn;
  learn.origin = 1;
  learn.dest = 9;
  mid.on_rrep(learn, 5, Time::zero(), Time::ms(10));  // expires fast

  RreqMsg rreq;
  rreq.id = 7;
  rreq.origin = 0;
  rreq.dest = 9;
  const auto action = mid.on_rreq(rreq, 0, Time::sec(1), Time::sec(10));
  EXPECT_FALSE(action.reply);
  EXPECT_TRUE(action.forward);
}

// ---------- S-MAC integration ----------

Deployment smac_cluster(std::uint64_t seed, std::size_t n = 10) {
  Rng rng(seed);
  return deploy_connected_uniform_square(n, 140.0, 60.0, rng);
}

TEST(Smac, NoSleepDeliversMostTraffic) {
  SmacConfig cfg;
  cfg.duty_cycle = 1.0;
  SmacSimulation sim(smac_cluster(1), cfg, 10.0);
  const auto rep = sim.run(Time::sec(50), Time::sec(10));
  EXPECT_GT(rep.packets_generated, 0u);
  EXPECT_GE(rep.delivery_ratio, 0.5);
  EXPECT_GT(rep.control_frames, rep.packets_delivered);  // RTS/CTS/ACK tax
}

TEST(Smac, DutyCycleCutsThroughput) {
  const Deployment dep = smac_cluster(2);
  SmacConfig awake;
  awake.duty_cycle = 1.0;
  SmacConfig half;
  half.duty_cycle = 0.5;
  SmacSimulation a(dep, awake, 25.0);
  SmacSimulation b(dep, half, 25.0);
  const auto ra = a.run(Time::sec(50), Time::sec(10));
  const auto rb = b.run(Time::sec(50), Time::sec(10));
  EXPECT_LT(rb.throughput_bps, ra.throughput_bps);
  EXPECT_LT(rb.mean_active_fraction, 0.75);
}

TEST(Smac, RouteDiscoveryGeneratesControlTraffic) {
  SmacConfig cfg;
  cfg.duty_cycle = 1.0;
  SmacSimulation sim(smac_cluster(3), cfg, 10.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GT(rep.rreq_floods, 0u);
}

TEST(Smac, DeterministicAcrossRuns) {
  const Deployment dep = smac_cluster(4);
  SmacConfig cfg;
  cfg.seed = 5;
  SmacSimulation a(dep, cfg, 15.0);
  SmacSimulation b(dep, cfg, 15.0);
  const auto ra = a.run(Time::sec(30), Time::sec(5));
  const auto rb = b.run(Time::sec(30), Time::sec(5));
  EXPECT_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_EQ(ra.control_frames, rb.control_frames);
}

TEST(Smac, LowRateTrafficFullyDeliveredWhenAlwaysOn) {
  // Regression guard for the contention-starvation deadlock: with no
  // sleep cycle and modest traffic, S-MAC+AODV must deliver essentially
  // everything (it historically wedged when a receiver role leaked the
  // contending flag).
  SmacConfig cfg;
  cfg.duty_cycle = 1.0;
  SmacSimulation sim(smac_cluster(6, 15), cfg, 10.0);
  const auto rep = sim.run(Time::sec(60), Time::sec(10));
  EXPECT_GE(rep.delivery_ratio, 0.9);
}

TEST(Smac, ScheduleGroupsHurtDutyCycledRouting) {
  // The paper blames sleeping next-hops for AODV path failures; with one
  // synchronized schedule that mechanism vanishes.  Desynchronised
  // groups must not *improve* throughput.
  const Deployment dep = smac_cluster(7, 12);
  SmacConfig sync;
  sync.duty_cycle = 0.3;
  sync.schedule_groups = 1;
  SmacConfig split;
  split.duty_cycle = 0.3;
  split.schedule_groups = 4;
  SmacSimulation a(dep, sync, 20.0);
  SmacSimulation b(dep, split, 20.0);
  const auto ra = a.run(Time::sec(60), Time::sec(10));
  const auto rb = b.run(Time::sec(60), Time::sec(10));
  EXPECT_LE(rb.throughput_bps, ra.throughput_bps * 1.15);
}

TEST(Smac, SyncPacketsAddControlOverhead) {
  const Deployment dep = smac_cluster(8, 10);
  SmacConfig with;
  with.sync_every_frames = 2;
  SmacConfig without;
  without.sync_every_frames = 0;
  SmacSimulation a(dep, with, 5.0);
  SmacSimulation b(dep, without, 5.0);
  const auto ra = a.run(Time::sec(40), Time::sec(10));
  const auto rb = b.run(Time::sec(40), Time::sec(10));
  EXPECT_GT(ra.control_frames, rb.control_frames);
}

TEST(Smac, SleepingNodesSaveEnergy) {
  const Deployment dep = smac_cluster(5);
  SmacConfig awake;
  awake.duty_cycle = 1.0;
  SmacConfig low;
  low.duty_cycle = 0.3;
  SmacSimulation a(dep, awake, 5.0);
  SmacSimulation b(dep, low, 5.0);
  const auto ra = a.run(Time::sec(30), Time::sec(5));
  const auto rb = b.run(Time::sec(30), Time::sec(5));
  EXPECT_GT(ra.mean_active_fraction, 0.9);
  EXPECT_LT(rb.mean_active_fraction, 0.6);
}

}  // namespace
}  // namespace mhp
