// Executable NP-hardness constructions: TSRFP ⇔ Hamiltonian Path,
// X1MHP auxiliary branches, CPAR ⇔ Partition.
#include <gtest/gtest.h>

#include <numeric>

#include "core/optimal_scheduler.hpp"
#include "core/reductions.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- TSRF structure ----------

TEST(Tsrf, InstanceLayout) {
  TsrfInstance inst{3};
  EXPECT_EQ(inst.num_sensors(), 6u);
  EXPECT_EQ(inst.head(), 6u);
  EXPECT_EQ(inst.uplink(1), (Tx{3, 2}));
  EXPECT_EQ(inst.relay(1), (Tx{2, 6}));
  const auto topo = inst.topology();
  EXPECT_TRUE(topo.fully_connected());
  EXPECT_EQ(topo.level(0), 1u);
  EXPECT_EQ(topo.level(1), 2u);
  const auto reqs = inst.requests();
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].path, (std::vector<NodeId>{1, 0, 6}));
}

TEST(TsrfReduction, EdgeControlsCompatibility) {
  Graph g(3);
  g.add_edge(0, 1);
  TsrfReduction red(g);
  // uplink(0) ∥ relay(1) allowed because (v0,v1) ∈ E.
  EXPECT_TRUE(red.oracle.compatible(
      std::vector<Tx>{red.instance.uplink(0), red.instance.relay(1)}));
  EXPECT_TRUE(red.oracle.compatible(
      std::vector<Tx>{red.instance.uplink(1), red.instance.relay(0)}));
  // (v0,v2) ∉ E.
  EXPECT_FALSE(red.oracle.compatible(
      std::vector<Tx>{red.instance.uplink(0), red.instance.relay(2)}));
  // Two uplinks never run together.
  EXPECT_FALSE(red.oracle.compatible(
      std::vector<Tx>{red.instance.uplink(0), red.instance.uplink(1)}));
}

// ---------- Hamiltonian path via TSRFP ----------

void expect_is_ham_path(const Graph& g, const std::vector<NodeId>& order) {
  ASSERT_EQ(order.size(), g.size());
  std::vector<bool> seen(g.size(), false);
  for (NodeId v : order) {
    ASSERT_LT(v, g.size());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_TRUE(g.has_edge(order[i], order[i + 1]));
}

TEST(Hamiltonian, PathGraph) {
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const auto order = hamiltonian_path_via_tsrfp(g);
  ASSERT_TRUE(order.has_value());
  expect_is_ham_path(g, *order);
}

TEST(Hamiltonian, StarHasNoPathBeyondThreeLeaves) {
  Graph g(4);  // star: centre 0, leaves 1..3 — no Hamiltonian path
  for (NodeId leaf = 1; leaf < 4; ++leaf) g.add_edge(0, leaf);
  EXPECT_FALSE(has_hamiltonian_path(g));
  EXPECT_FALSE(hamiltonian_path_via_tsrfp(g).has_value());
}

TEST(Hamiltonian, CompleteGraph) {
  Graph g(4);
  for (NodeId i = 0; i < 4; ++i)
    for (NodeId j = i + 1; j < 4; ++j) g.add_edge(i, j);
  const auto order = hamiltonian_path_via_tsrfp(g);
  ASSERT_TRUE(order.has_value());
  expect_is_ham_path(g, *order);
}

TEST(Hamiltonian, TrivialSizes) {
  Graph g0(0), g1(1);
  EXPECT_TRUE(hamiltonian_path_via_tsrfp(g0).has_value());
  EXPECT_TRUE(hamiltonian_path_via_tsrfp(g1).has_value());
}

class HamiltonianRandom : public ::testing::TestWithParam<int> {};

TEST_P(HamiltonianRandom, ReductionAgreesWithDirectCheck) {
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(4);  // 3..6 vertices
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.45)) g.add_edge(i, j);

  const bool direct = has_hamiltonian_path(g);
  const auto via_tsrfp = hamiltonian_path_via_tsrfp(g);
  EXPECT_EQ(direct, via_tsrfp.has_value());
  if (via_tsrfp) expect_is_ham_path(g, *via_tsrfp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamiltonianRandom, ::testing::Range(0, 20));

// ---------- X1MHP ----------

TEST(X1mhp, EverySensorHasExactlyOnePacket) {
  Graph g(3);
  g.add_edge(0, 1);
  TsrfReduction base(g);
  X1mhpReduction red(base);
  const auto reqs = red.instance.requests();
  // 6 sensors per branch, one packet each.
  EXPECT_EQ(reqs.size(), 3u * 6u);
  std::vector<int> packets(3 * 6, 0);
  for (const auto& r : reqs) {
    ASSERT_GE(r.path.size(), 2u);
    EXPECT_EQ(r.path.back(), red.instance.head);
    packets[r.path.front()] += 1;
  }
  for (int p : packets) EXPECT_EQ(p, 1);
}

TEST(X1mhp, CarriesOverTsrfCompatibilities) {
  Graph g(2);
  g.add_edge(0, 1);
  TsrfReduction base(g);
  X1mhpReduction red(base);
  const auto& b0 = red.instance.layout[0];
  const auto& b1 = red.instance.layout[1];
  // Main-branch hand-off allowed because (v0,v1) ∈ E.
  EXPECT_TRUE(red.oracle.compatible(std::vector<Tx>{
      Tx{b0.s_prime, b0.s}, Tx{b1.s, red.instance.head}}));
  // Auxiliary pairing inside a branch.
  EXPECT_TRUE(red.oracle.compatible(std::vector<Tx>{
      Tx{b0.u_dprime, b0.u_prime}, Tx{b0.s_prime, b0.s}}));
  // Auxiliary transmissions of different branches never mix.
  EXPECT_FALSE(red.oracle.compatible(std::vector<Tx>{
      Tx{b0.u_dprime, b0.u_prime}, Tx{b1.u_dprime, b1.u_prime}}));
}

TEST(X1mhp, SingleBranchSolvable) {
  Graph g(1);
  TsrfReduction base(g);
  X1mhpReduction red(base);
  const auto reqs = red.instance.requests();
  OptimalScheduler solver(red.oracle);
  const auto result = solver.solve(reqs);
  ASSERT_TRUE(result.has_value());
  // 13 transmissions; the two allowed pairings can overlap at most three
  // slots (s'→s once, s→t twice) → at least 10 slots.
  EXPECT_GE(result->slots, 10u);
  EXPECT_LE(result->slots, 13u);
  EXPECT_TRUE(validate_schedule(reqs, result->schedule, red.oracle).ok);
}

// ---------- CPAR ⇔ Partition ----------

TEST(Cpar, InstanceLayout) {
  CparInstance inst({3, 2, 1, 2});
  EXPECT_EQ(inst.topology.num_sensors(), 2u + 8u);
  EXPECT_TRUE(inst.topology.head_hears(0));
  EXPECT_TRUE(inst.topology.head_hears(1));
  for (NodeId s = 2; s < inst.topology.num_sensors(); ++s)
    EXPECT_FALSE(inst.topology.head_hears(s));
  // Chain heads link to both gateways.
  EXPECT_TRUE(inst.topology.sensors_linked(2, 0));
  EXPECT_TRUE(inst.topology.sensors_linked(2, 1));
  EXPECT_EQ(inst.chain_of[2], 0);
  EXPECT_EQ(inst.chain_of[5], 1);
  EXPECT_TRUE(inst.topology.fully_connected());
}

TEST(Cpar, SolvableInstances) {
  for (const auto& ints : std::vector<std::vector<std::int64_t>>{
           {3, 2, 1, 2}, {1, 1}, {5, 5}, {4, 3, 2, 1, 2}}) {
    CparInstance inst(ints);
    const auto sol = partition_via_cpar(inst);
    ASSERT_TRUE(sol.has_value()) << "should be partitionable";
    std::int64_t a = 0, total = 0;
    for (auto v : ints) total += v;
    for (std::size_t i : *sol) a += ints[i];
    EXPECT_EQ(2 * a, total);
  }
}

TEST(Cpar, UnsolvableInstances) {
  for (const auto& ints : std::vector<std::vector<std::int64_t>>{
           {1, 1, 1}, {5, 3}, {2, 4, 16}}) {
    CparInstance inst(ints);
    EXPECT_FALSE(partition_via_cpar(inst).has_value());
  }
}

class CparRandom : public ::testing::TestWithParam<int> {};

TEST_P(CparRandom, AgreesWithSubsetSum) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  std::vector<std::int64_t> ints(3 + rng.below(5));
  std::int64_t total = 0;
  for (auto& v : ints) {
    v = 1 + static_cast<std::int64_t>(rng.below(8));
    total += v;
  }
  // Direct subset-sum check.
  bool possible = false;
  if (total % 2 == 0) {
    std::vector<bool> reach(static_cast<std::size_t>(total / 2 + 1), false);
    reach[0] = true;
    for (auto v : ints)
      for (std::int64_t s = total / 2; s >= v; --s)
        if (reach[static_cast<std::size_t>(s - v)])
          reach[static_cast<std::size_t>(s)] = true;
    possible = reach[static_cast<std::size_t>(total / 2)];
  }
  CparInstance inst(ints);
  EXPECT_EQ(partition_via_cpar(inst).has_value(), possible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CparRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace mhp
