// Profiler and sampler tests: span nesting and path interning, counter
// attachment, disabled-mode silence, drain-merge determinism across
// ThreadPool worker counts, Chrome trace-event export round-tripping the
// strict JSON parser, the sim-time metrics sampler's cadence, and the
// observability plumbing through scenarios (profile embed, byte-identity
// of reports when recording is on but the scenario does not ask for it).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/routing.hpp"
#include "net/deployment.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "route/routing_engine.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"
#include "sim/runtime.hpp"
#include "sim/sampler.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

using obs::ProfileData;
using obs::ProfileEvent;
using obs::Profiler;

/// Every profiler test brackets itself with a discard-drain so events
/// left by other tests (or leaked ones from this test) never cross over.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().disable();
    Profiler::instance().drain();
  }
  void TearDown() override {
    Profiler::instance().disable();
    Profiler::instance().drain();
  }
};

const std::string& path_of(const ProfileData& data, const ProfileEvent& ev) {
  return data.paths.at(ev.path);
}

TEST_F(ProfilerTest, NestedSpansBuildSlashPathsAndCloseInnermostFirst) {
  Profiler::instance().enable();
  {
    MHP_SPAN("outer");
    {
      MHP_SPAN("inner");
      { MHP_SPAN("leaf"); }
    }
    { MHP_SPAN("inner"); }
  }
  Profiler::instance().disable();
  const ProfileData data = Profiler::instance().drain();

  ASSERT_EQ(data.events.size(), 4u);
  // Events append at close time, so the leaf closes first and the
  // outermost span last; the repeated "inner" reuses its interned path.
  EXPECT_EQ(path_of(data, data.events[0]), "outer/inner/leaf");
  EXPECT_EQ(path_of(data, data.events[1]), "outer/inner");
  EXPECT_EQ(path_of(data, data.events[2]), "outer/inner");
  EXPECT_EQ(data.events[1].path, data.events[2].path);
  EXPECT_EQ(path_of(data, data.events[3]), "outer");
  EXPECT_EQ(data.events[0].depth, 2u);
  EXPECT_EQ(data.events[1].depth, 1u);
  EXPECT_EQ(data.events[3].depth, 0u);
  // The parent's window contains its children.
  const ProfileEvent& leaf = data.events[0];
  const ProfileEvent& outer = data.events[3];
  EXPECT_LE(outer.start_ns, leaf.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, leaf.start_ns + leaf.dur_ns);
}

TEST_F(ProfilerTest, CountersMergeByNameAndSurviveToSummary) {
  static const char* kItems = "items";
  Profiler::instance().enable();
  {
    MHP_SPAN("work");
    MHP_SPAN_COUNTER(kItems, 3);
    MHP_SPAN_COUNTER(kItems, 4);  // same name: one slot, summed
    MHP_SPAN_COUNTER("extra", 1);
  }
  Profiler::instance().disable();
  const ProfileData data = Profiler::instance().drain();

  ASSERT_EQ(data.events.size(), 1u);
  const obs::ProfileSummary sum = obs::summarize_profile(data);
  const auto it = sum.spans.find("work");
  ASSERT_NE(it, sum.spans.end());
  EXPECT_EQ(it->second.count, 1u);
  EXPECT_EQ(it->second.counters.at("items"), 7u);
  EXPECT_EQ(it->second.counters.at("extra"), 1u);
}

TEST_F(ProfilerTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Profiler::enabled());
  {
    MHP_SPAN("ghost");
    MHP_SPAN_COUNTER("ghost_count", 42);
  }
  EXPECT_TRUE(Profiler::instance().drain().empty());
}

TEST_F(ProfilerTest, ZeroTimesKeepsCountsAndCounters) {
  Profiler::instance().enable();
  {
    MHP_SPAN("phase");
    MHP_SPAN_COUNTER("units", 5);
  }
  Profiler::instance().disable();
  const ProfileData data = Profiler::instance().drain();

  const obs::ProfileSummary live = obs::summarize_profile(data);
  EXPECT_GT(live.attributed_ms, 0.0);
  const obs::ProfileSummary zeroed =
      obs::summarize_profile(data, /*zero_times=*/true);
  EXPECT_EQ(zeroed.attributed_ms, 0.0);
  const auto& phase = zeroed.spans.at("phase");
  EXPECT_EQ(phase.total_ms, 0.0);
  EXPECT_EQ(phase.max_ms, 0.0);
  EXPECT_EQ(phase.p95_ms, 0.0);
  EXPECT_EQ(phase.count, 1u);
  EXPECT_EQ(phase.counters.at("units"), 5u);
}

/// Span (path, count) profile of a parallel solve is identical for any
/// worker count: the same work happens, only on different threads.
TEST_F(ProfilerTest, DrainMergeIsDeterministicAcrossWorkerCounts) {
  Rng rng(7);
  const Deployment dep =
      deploy_connected_uniform_square(40, 220.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  std::vector<route::ClusterRouteJob> jobs(6);
  for (auto& job : jobs) {
    job.topo = &topo;
    job.demand.assign(40, 1);
  }

  const auto profile_counts = [&](std::size_t workers) {
    Profiler::instance().drain();
    Profiler::instance().enable();
    const std::vector<MinMaxLoadResult> solved =
        route::solve_clusters(jobs, workers);
    Profiler::instance().disable();
    const ProfileData data = Profiler::instance().drain();
    EXPECT_EQ(solved.size(), jobs.size());
    std::map<std::string, std::uint64_t> counts;
    for (const ProfileEvent& ev : data.events) ++counts[path_of(data, ev)];
    return counts;
  };

  // Compare pooled runs only: at workers == 1 the jobs run inline on the
  // caller thread, so "route/cluster" nests under "route/solve_clusters"
  // and the paths legitimately differ.
  const auto two_workers = profile_counts(2);
  const auto four_workers = profile_counts(4);
  EXPECT_FALSE(two_workers.empty());
  EXPECT_EQ(two_workers.at("route/cluster"), jobs.size());
  EXPECT_EQ(two_workers, four_workers);
}

TEST_F(ProfilerTest, ChromeTraceRoundTripsStrictParser) {
  Profiler::instance().enable();
  {
    MHP_SPAN("trace/outer");
    MHP_SPAN_COUNTER("marks", 2);
    { MHP_SPAN("trace/inner"); }
  }
  Profiler::instance().disable();
  const ProfileData data = Profiler::instance().drain();

  const std::string text = obs::chrome_trace_json(data).dump();
  const obs::Json doc = obs::parse_json(text);  // throws on any violation
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // One thread_name metadata event plus the two spans.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("name").as_string(), "thread_name");
  bool saw_outer = false;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const obs::Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    if (e.at("name").as_string() == "trace/outer") {
      saw_outer = true;
      EXPECT_EQ(e.at("args").at("marks").as_uint(), 2u);
    }
  }
  EXPECT_TRUE(saw_outer);
}

TEST_F(ProfilerTest, FlightRecorderDumpListsOpenSpans) {
  SimRuntime rt(1);
  obs::FlightRecorder recorder(rt);
  Profiler::instance().enable();
  {
    MHP_SPAN("fault/probe");
    std::ostringstream os;
    recorder.dump(os);
    EXPECT_NE(os.str().find("open profiler spans"), std::string::npos);
    EXPECT_NE(os.str().find("fault/probe"), std::string::npos);
  }
  Profiler::instance().disable();
  // With every span closed the section disappears.
  std::ostringstream os;
  recorder.dump(os);
  EXPECT_EQ(os.str().find("open profiler spans"), std::string::npos);
}

// ---------- sim-time metrics sampler ----------

TEST(MetricsSampler, TicksOnSimTimeCadence) {
  std::ostringstream out;
  RuntimeOptions opts;
  opts.samples_stream = &out;
  opts.sample_period = Time::seconds(1.0);
  SimRuntime rt(1, opts);
  ASSERT_NE(rt.sampler(), nullptr);
  rt.metrics().counter(metric::kPacketsGenerated).add(5);
  rt.sim().run_until(Time::seconds(4.5));
  EXPECT_EQ(rt.sampler()->samples_written(), 4u);

  std::istringstream lines(out.str());
  std::string line;
  double expected_t = 1.0;
  std::size_t seen = 0;
  while (std::getline(lines, line)) {
    const obs::Json sample = obs::parse_json(line);
    EXPECT_DOUBLE_EQ(sample.at("t_s").as_double(), expected_t);
    EXPECT_EQ(
        sample.at("counters").at(metric::kPacketsGenerated).as_uint(), 5u);
    // Watched-but-absent gauges read 0, not an error.
    EXPECT_DOUBLE_EQ(
        sample.at("gauges").at(sample::kAliveNodes).as_double(), 0.0);
    expected_t += 1.0;
    ++seen;
  }
  EXPECT_EQ(seen, 4u);
}

TEST(MetricsSampler, RefreshHooksPushLiveStateBeforeEachSample) {
  std::ostringstream out;
  SimRuntime rt(1);
  MetricsSampler& sampler =
      rt.install_sampler({.period = Time::seconds(2.0), .out = &out});
  sampler.watch_gauge(sample::kEnergyJ);
  double energy = 100.0;
  sampler.add_refresh_hook([&rt, &energy](Time now) {
    rt.metrics().gauge(sample::kEnergyJ).set(now, energy);
    energy -= 10.0;  // the next tick sees the decayed value
  });
  sampler.start();
  rt.sim().run_until(Time::seconds(4.5));
  EXPECT_EQ(sampler.samples_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_DOUBLE_EQ(
      obs::parse_json(line).at("gauges").at(sample::kEnergyJ).as_double(),
      100.0);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_DOUBLE_EQ(
      obs::parse_json(line).at("gauges").at(sample::kEnergyJ).as_double(),
      90.0);
}

TEST(MetricsSampler, NotInstalledWithoutSink) {
  SimRuntime rt(1);
  EXPECT_EQ(rt.sampler(), nullptr);
}

// ---------- scenario plumbing ----------

scenario::Scenario small_polling_scenario() {
  scenario::Scenario s =
      scenario::default_scenario(scenario::StackKind::kPolling);
  s.deployment.kind = scenario::DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = Time::sec(15);
  s.run.warmup = Time::sec(5);
  s.run.record_perf = false;
  return s;
}

TEST(ScenarioProfile, RuntimeFieldsParseAndRoundTrip) {
  scenario::Scenario s = small_polling_scenario();
  s.profile = true;
  s.sample_period = Time::ms(500);
  const scenario::Scenario back = scenario::parse_scenario(
      scenario::scenario_to_json(s));
  EXPECT_TRUE(back.profile);
  EXPECT_EQ(back.sample_period, Time::ms(500));
}

/// Recording enabled globally, but the scenario does not opt in: the
/// emitted report must be byte-identical to a run with recording off.
TEST(ScenarioProfile, GlobalRecordingLeavesReportsByteIdentical) {
  const scenario::Scenario s = small_polling_scenario();
  const std::string plain = scenario::run_scenario(s).dump();

  Profiler::instance().drain();
  Profiler::instance().enable();
  const std::string while_recording = scenario::run_scenario(s).dump();
  Profiler::instance().disable();
  Profiler::instance().drain();

  EXPECT_EQ(plain, while_recording);
}

TEST(ScenarioProfile, ProfileEmbedsSummaryWithoutPerturbingReport) {
  scenario::Scenario s = small_polling_scenario();
  const std::string plain = scenario::run_scenario(s).dump();

  s.profile = true;
  const obs::Json doc = scenario::run_scenario(s);
  const obs::Json* profile = doc.find("profile");
  ASSERT_NE(profile, nullptr);
  const obs::Json* spans = profile->find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_NE(spans->find("polling/setup"), nullptr);
  EXPECT_NE(spans->find("polling/measured"), nullptr);
  // record_perf false zeroes the profile's wall times too (counts stay).
  EXPECT_EQ(profile->at("attributed_ms").as_double(), 0.0);
  EXPECT_GE(spans->at("polling/setup").at("count").as_uint(), 1u);

  // The rest of the envelope is exactly the unprofiled document.
  obs::Json expected = obs::parse_json(plain);
  expected.set("profile", *profile);
  EXPECT_EQ(doc.dump(), expected.dump());
}

TEST(ScenarioProfile, TraceSinkReceivesValidChromeTrace) {
  scenario::Scenario s = small_polling_scenario();
  s.profile = true;
  std::ostringstream trace;
  scenario::RunScenarioOptions opts;
  opts.trace_out = &trace;
  scenario::run_scenario(s, opts);

  const obs::Json doc = obs::parse_json(trace.str());
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_GT(events.size(), 1u);
  bool saw_setup = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events.at(i);
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "polling/setup")
      saw_setup = true;
  }
  EXPECT_TRUE(saw_setup);
}

TEST(ScenarioProfile, SamplesSinkFollowsScenarioPeriod) {
  scenario::Scenario s = small_polling_scenario();
  s.sample_period = Time::seconds(5.0);
  std::ostringstream samples;
  scenario::RunScenarioOptions opts;
  opts.samples_out = &samples;
  scenario::run_scenario(s, opts);

  std::istringstream lines(samples.str());
  std::string line;
  std::size_t seen = 0;
  while (std::getline(lines, line)) {
    const obs::Json sample = obs::parse_json(line);
    EXPECT_NE(sample.find("t_s"), nullptr);
    EXPECT_NE(sample.at("gauges").find(sample::kAliveNodes), nullptr);
    ++seen;
  }
  // 5 s warmup + 15 s measurement = 20 s of sim time, 5 s period:
  // samples at t = 5, 10, 15 and possibly the final boundary tick.
  EXPECT_GE(seen, 3u);
  EXPECT_LE(seen, 4u);
}

// ---------- oracle cache stats in reports ----------

TEST(OracleReport, PollingReportCarriesCacheBlock) {
  scenario::Scenario s = small_polling_scenario();
  const obs::Json doc = scenario::run_scenario(s);
  const obs::Json* body = doc.find("report");
  ASSERT_NE(body, nullptr);
  const obs::Json* oracle = body->find("oracle");
  ASSERT_NE(oracle, nullptr);  // cache_oracle defaults on
  EXPECT_GT(oracle->at("hits").as_uint() + oracle->at("misses").as_uint(),
            0u);
  const double rate = oracle->at("hit_rate").as_double();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_LE(oracle->at("screened").as_uint(), oracle->at("hits").as_uint());

  s.protocol.cache_oracle = false;
  const obs::Json uncached = scenario::run_scenario(s);
  EXPECT_EQ(uncached.at("report").find("oracle"), nullptr);
}

}  // namespace
}  // namespace mhp
