// Campaign service (src/serve/): admission validation, bounded-queue
// backpressure, multi-client result isolation, report equivalence with
// direct runs, drain/shutdown durability and restart resume — all over
// a real UNIX socket against the real server.
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <latch>
#include <map>
#include <memory>
#include <semaphore>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace mhp {
namespace {

namespace fs = std::filesystem;
using obs::Json;
using scenario::DeploymentSpec;
using scenario::Scenario;
using scenario::StackKind;

/// Small, fast polling scenario (record_perf false → deterministic,
/// byte-stable reports).
Json quick_scenario(const std::string& name) {
  Scenario s = scenario::default_scenario(StackKind::kPolling);
  s.name = name;
  s.deployment.kind = DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = Time::sec(8);
  s.run.warmup = Time::sec(2);
  s.run.record_perf = false;
  return scenario_to_json(s);
}

/// Campaign over `rates` with an inline base (wire-ready form).
Json quick_campaign(const std::string& name,
                    const std::vector<double>& rates) {
  Json values = Json::array();
  for (const double r : rates) values.push_back(Json(r));
  return Json::object()
      .set("name", Json(name))
      .set("base", quick_scenario(name + "_base"))
      .set("sweep", Json::object().set("traffic.rate_bps", values));
}

/// One live server on its own socket + job root, torn down with the
/// test.  Graceful paths go through the protocol ("shutdown" op); the
/// destructor falls back to request_stop() so a failing test cannot
/// hang the suite.
class TestServer {
 public:
  explicit TestServer(const std::string& tag, std::size_t workers = 2,
                      std::size_t capacity = 64,
                      std::function<void()> point_hook = {},
                      std::string root = {}) {
    const std::string base =
        (fs::temp_directory_path() /
         ("mhp_serve_" + std::to_string(::getpid()) + "_" + tag))
            .string();
    sock_ = base + ".sock";
    owns_root_ = root.empty();
    root_ = owns_root_ ? base + ".jobs" : std::move(root);
    if (owns_root_) fs::remove_all(root_);

    serve::ServeConfig cfg;
    cfg.socket_path = sock_;
    cfg.out_root = root_;
    cfg.workers = workers;
    cfg.queue_capacity = capacity;
    cfg.point_hook = std::move(point_hook);
    server_ = std::make_unique<serve::Server>(cfg);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() {
    hard_stop();
    server_.reset();
    if (owns_root_) fs::remove_all(root_);
  }

  /// Protocol shutdown (drains + flushes), then join the accept loop.
  void shutdown_via(serve::Client& client) {
    const Json response =
        client.request(Json::object().set("op", Json("shutdown")));
    EXPECT_EQ(response.at("status").as_string(), "ok");
    join();
  }

  void hard_stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  serve::Client connect() const { return serve::Client::connect(sock_); }
  const std::string& socket_path() const { return sock_; }
  const std::string& root() const { return root_; }
  serve::ServeStats stats() const { return server_->stats(); }

 private:
  std::string sock_, root_;
  bool owns_root_ = true;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++n;
  return n;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

struct JobStream {
  std::vector<Json> results;
  Json done;
};

/// Read frames until every job in `jobs` has delivered its done frame.
/// Frames for jobs this client never submitted are a test failure —
/// the isolation guarantee the protocol makes.
std::map<std::string, JobStream> collect_jobs(
    serve::Client& client, const std::set<std::string>& jobs) {
  std::map<std::string, JobStream> out;
  std::set<std::string> waiting = jobs;
  while (!waiting.empty()) {
    auto frame = client.next_frame();
    if (!frame.has_value()) {
      ADD_FAILURE() << "stream ended with " << waiting.size()
                    << " job(s) unfinished";
      break;
    }
    const Json* kind = frame->find("frame");
    if (kind == nullptr || !kind->is_string()) {
      ADD_FAILURE() << "not a frame: " << frame->dump();
      continue;
    }
    const std::string job_id = frame->at("job").as_string();
    if (jobs.count(job_id) == 0) {
      ADD_FAILURE() << "frame for a job this client never submitted: "
                    << frame->dump();
      continue;
    }
    if (kind->as_string() == "done") {
      out[job_id].done = std::move(*frame);
      waiting.erase(job_id);
    } else {
      out[job_id].results.push_back(std::move(*frame));
    }
  }
  return out;
}

JobStream stream_job(serve::Client& client, const std::string& job) {
  auto streams = collect_jobs(client, {job});
  return std::move(streams[job]);
}

// ---------- admission ----------

TEST(ServeAdmission, InvalidSubmissionsRejectedWithDottedPaths) {
  TestServer ts("invalid");
  serve::Client client = ts.connect();

  // Scenario with a wrong-typed field: the strict parser's exact
  // dotted-path error comes back over the wire.
  Json bad_scenario = quick_scenario("bad");
  *bad_scenario.find("protocol")->find("oracle_order") = Json("three");
  Json response = client.submit(bad_scenario);
  EXPECT_EQ(response.at("status").as_string(), "invalid");
  EXPECT_NE(response.at("error").as_string().find(
                "scenario.protocol.oracle_order"),
            std::string::npos)
      << response.at("error").as_string();

  // Campaign with a misspelled sweep path fails fast at admission too.
  Json values = Json::array();
  values.push_back(Json(2));
  const Json bad_campaign =
      Json::object()
          .set("name", Json("bad_sweep"))
          .set("base", quick_scenario("bad_sweep_base"))
          .set("sweep",
               Json::object().set("protocol.oracl_order", values));
  response = client.submit(bad_campaign);
  EXPECT_EQ(response.at("status").as_string(), "invalid");
  EXPECT_NE(response.at("error").as_string().find("campaign.sweep"),
            std::string::npos)
      << response.at("error").as_string();

  // Nothing was queued or recorded.
  const serve::ServeStats stats = ts.stats();
  EXPECT_EQ(stats.rejected_invalid, 2u);
  EXPECT_EQ(stats.submissions_ok, 0u);
  ts.shutdown_via(client);
}

TEST(ServeAdmission, QueueFullBeyondCapacityNeverBlocks) {
  std::counting_semaphore<64> gate(0);
  std::latch first_point_running(1);
  std::atomic<bool> counted{false};
  TestServer ts(
      "backpressure", /*workers=*/1, /*capacity=*/4, [&] {
        if (!counted.exchange(true)) first_point_running.count_down();
        gate.acquire();
      });
  serve::Client client = ts.connect();

  // A submission larger than the whole queue can never be admitted:
  // admission is atomic, so it is rejected immediately with queue_full.
  Json response =
      client.submit(quick_campaign("too_big", {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(response.at("status").as_string(), "queue_full");
  EXPECT_EQ(response.at("capacity").as_int(), 4);
  EXPECT_EQ(response.at("pending").as_int(), 0);

  // Fill the queue to exactly the cap: 1 (held inside the gate) + 3.
  response = client.submit(quick_scenario("holder"));
  ASSERT_EQ(response.at("status").as_string(), "ok");
  const std::string holder = response.at("job").as_string();
  first_point_running.wait();
  response = client.submit(quick_campaign("filler", {10, 20, 30}));
  ASSERT_EQ(response.at("status").as_string(), "ok");
  const std::string filler = response.at("job").as_string();

  // One more point does not fit: explicit backpressure, no blocking.
  response = client.submit(quick_scenario("overflow"));
  EXPECT_EQ(response.at("status").as_string(), "queue_full");
  EXPECT_EQ(response.at("pending").as_int(), 4);
  EXPECT_EQ(response.at("capacity").as_int(), 4);

  gate.release(4);
  auto streams = collect_jobs(client, {holder, filler});
  EXPECT_EQ(streams[holder].done.at("ok").as_int(), 1);
  EXPECT_EQ(streams[filler].done.at("ok").as_int(), 3);

  // Stats counters are bumped after the done frame goes out, so read
  // them only after the shutdown drain has retired every point.
  ts.shutdown_via(client);
  const serve::ServeStats stats = ts.stats();
  EXPECT_EQ(stats.rejected_full, 2u);
  EXPECT_EQ(stats.points_ok, 4u);
}

// ---------- streaming ----------

TEST(ServeStream, ConcurrentClientsReceiveOnlyTheirOwnResults) {
  TestServer ts("isolation", /*workers=*/4, /*capacity=*/64);
  constexpr int kClients = 3;
  const std::vector<double> rates = {10.0, 20.0, 30.0};

  std::vector<std::thread> clients;
  std::vector<std::string> errors(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      serve::Client client = ts.connect();
      const Json response = client.submit(
          quick_campaign("client" + std::to_string(i), rates));
      if (response.at("status").as_string() != "ok") {
        errors[i] = response.dump();
        return;
      }
      // collect_jobs itself fails the test on any frame for a job this
      // client did not submit — the isolation property under test.
      JobStream stream = stream_job(client, response.at("job").as_string());
      if (stream.results.size() != rates.size()) {
        errors[i] = "expected 3 results, got " +
                    std::to_string(stream.results.size());
        return;
      }
      std::set<std::string> keys;
      for (const Json& frame : stream.results) {
        if (frame.at("status").as_string() != "ok")
          errors[i] = "point not ok: " + frame.dump();
        keys.insert(frame.at("key").as_string());
      }
      for (const double r : rates) {
        const std::string key = "traffic.rate_bps=" + Json(r).dump();
        if (keys.count(key) == 0) errors[i] = "missing key " + key;
      }
      if (stream.done.at("ok").as_int() != 3)
        errors[i] = "done: " + stream.done.dump();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i)
    EXPECT_EQ(errors[i], "") << "client " << i;

  serve::Client client = ts.connect();
  ts.shutdown_via(client);
}

// ---------- equivalence ----------

TEST(ServeEquivalence, ServedReportIsByteIdenticalToDirectRun) {
  const Json doc = quick_scenario("equivalence");
  const Json direct = scenario::run_scenario(scenario::parse_scenario(doc));

  TestServer ts("equivalence");
  serve::Client client = ts.connect();
  const Json response = client.submit(doc);
  ASSERT_EQ(response.at("status").as_string(), "ok");
  JobStream stream = stream_job(client, response.at("job").as_string());
  ASSERT_EQ(stream.results.size(), 1u);
  EXPECT_EQ(stream.results[0].at("status").as_string(), "ok");
  // record_perf false zeroes the wall-clock fields on both paths, so
  // the served report must match the direct run byte for byte.
  EXPECT_EQ(stream.results[0].at("report").dump(2), direct.dump(2));
  EXPECT_EQ(stream.results[0].at("point_wall_ms").as_double(), 0.0);
  ts.shutdown_via(client);
}

// ---------- cancel ----------

TEST(ServeCancel, CancelSkipsPendingPointsWithoutManifestLines) {
  std::counting_semaphore<64> gate(0);
  std::latch first_point_running(1);
  std::atomic<bool> counted{false};
  TestServer ts("cancel", /*workers=*/1, /*capacity=*/16, [&] {
    if (!counted.exchange(true)) first_point_running.count_down();
    gate.acquire();
  });
  serve::Client client = ts.connect();

  const Json response =
      client.submit(quick_campaign("cancellable", {10, 20, 30}));
  ASSERT_EQ(response.at("status").as_string(), "ok");
  const std::string job = response.at("job").as_string();
  const std::string dir = response.at("dir").as_string();

  // The first point is provably past its cancel check (it is inside the
  // gate); the other two have not started and must be skipped.
  first_point_running.wait();
  const Json cancel = client.request(
      Json::object().set("op", Json("cancel")).set("job", Json(job)));
  EXPECT_EQ(cancel.at("status").as_string(), "ok");
  gate.release(3);

  JobStream stream = stream_job(client, job);
  EXPECT_EQ(stream.done.at("ok").as_int(), 1);
  EXPECT_EQ(stream.done.at("cancelled").as_int(), 2);
  // Cancelled points leave no manifest lines, so a resubmission reruns
  // exactly those two.
  EXPECT_EQ(count_lines(dir + "/manifest.jsonl"), 1u);
  ts.shutdown_via(client);
}

// ---------- durability ----------

TEST(ServeDurability, DrainAndShutdownFlushManifestsAndSummary) {
  TestServer ts("drain");
  serve::Client client = ts.connect();
  const Json response =
      client.submit(quick_campaign("drained", {10, 20, 30, 40}));
  ASSERT_EQ(response.at("status").as_string(), "ok");
  const std::string dir = response.at("dir").as_string();

  // Drain blocks until every admitted point has finished and flushed.
  const Json drained =
      client.request(Json::object().set("op", Json("drain")));
  EXPECT_EQ(drained.at("status").as_string(), "ok");
  EXPECT_EQ(count_lines(dir + "/manifest.jsonl"), 4u);
  EXPECT_EQ(count_lines(dir + "/results.jsonl"), 4u);

  // A draining server refuses new work rather than queueing it.
  const Json refused = client.submit(quick_scenario("late"));
  EXPECT_EQ(refused.at("status").as_string(), "draining");

  // The frames are still streamable after the drain response.
  JobStream stream = stream_job(client, response.at("job").as_string());
  EXPECT_EQ(stream.done.at("ok").as_int(), 4);

  ts.shutdown_via(client);
  EXPECT_TRUE(fs::exists(dir + "/summary.json"));
  const Json summary = obs::parse_json(read_file(dir + "/summary.json"));
  EXPECT_EQ(summary.at("report").at("points").at("ok").as_int(), 4);
  // The socket file is gone after a graceful shutdown.
  EXPECT_FALSE(fs::exists(ts.socket_path()));
}

TEST(ServeDurability, RestartResumesFromManifestAndReplaysReports) {
  const std::string root =
      (fs::temp_directory_path() /
       ("mhp_serve_" + std::to_string(::getpid()) + "_restart.jobs"))
          .string();
  fs::remove_all(root);
  const Json doc = quick_campaign("restartable", {10, 20, 30, 40});

  std::string dir;
  {
    TestServer first("restart_a", 2, 64, {}, root);
    serve::Client client = first.connect();
    const Json response = client.submit(doc);
    ASSERT_EQ(response.at("status").as_string(), "ok");
    dir = response.at("dir").as_string();
    JobStream stream = stream_job(client, response.at("job").as_string());
    EXPECT_EQ(stream.done.at("ok").as_int(), 4);
    first.shutdown_via(client);
  }

  // A fresh server process over the same root: the identical document
  // lands in the same durable directory and resumes from its manifest —
  // nothing reruns, every report is replayed from the stored results.
  {
    TestServer second("restart_b", 2, 64, {}, root);
    serve::Client client = second.connect();
    const Json response = client.submit(doc);
    ASSERT_EQ(response.at("status").as_string(), "ok");
    EXPECT_EQ(response.at("dir").as_string(), dir);
    EXPECT_EQ(response.at("skipped").as_int(), 4);
    JobStream stream = stream_job(client, response.at("job").as_string());
    EXPECT_EQ(stream.done.at("skipped").as_int(), 4);
    EXPECT_EQ(stream.done.at("ok").as_int(), 0);
    ASSERT_EQ(stream.results.size(), 4u);
    for (const Json& frame : stream.results) {
      EXPECT_EQ(frame.at("status").as_string(), "skipped");
      EXPECT_NE(frame.find("report"), nullptr)
          << "skipped points replay their stored report";
    }
    EXPECT_EQ(count_lines(dir + "/results.jsonl"), 4u);
    const serve::ServeStats stats = second.stats();
    EXPECT_EQ(stats.points_skipped, 4u);
    EXPECT_EQ(stats.points_ok, 0u);
    second.shutdown_via(client);
  }
  fs::remove_all(root);
}

TEST(ServeDurability, SameSubmissionTwiceConcurrentlyIsBusyNotDuplicated) {
  std::counting_semaphore<64> gate(0);
  TestServer ts("busy", /*workers=*/1, /*capacity=*/16,
                [&] { gate.acquire(); });
  serve::Client client = ts.connect();
  const Json doc = quick_scenario("dup");
  const Json first = client.submit(doc);
  ASSERT_EQ(first.at("status").as_string(), "ok");
  const Json second = client.submit(doc);
  EXPECT_EQ(second.at("status").as_string(), "busy");
  gate.release(1);
  JobStream stream = stream_job(client, first.at("job").as_string());
  EXPECT_EQ(stream.done.at("ok").as_int(), 1);
  ts.shutdown_via(client);
}

}  // namespace
}  // namespace mhp
