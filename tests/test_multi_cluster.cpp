// Inter-cluster coordination (§V-G): shared-channel interference and the
// two remedies, on the event simulator.
#include <gtest/gtest.h>

#include "core/multi_cluster_sim.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

std::vector<ClusterSpec> two_adjacent_clusters(std::uint64_t seed) {
  std::vector<ClusterSpec> specs;
  Rng rng(seed);
  for (int i = 0; i < 2; ++i) {
    ClusterSpec spec;
    spec.deployment = deploy_connected_uniform_square(10, 170.0, 60.0, rng);
    spec.origin = {i * 200.0, 0.0};  // overlapping boundaries
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(MultiCluster, ColoredChannelsIsolateClusters) {
  ProtocolConfig cfg;
  cfg.seed = 3;
  MultiClusterSimulation sim(two_adjacent_clusters(3), cfg,
                             InterClusterMode::kColored, 30.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  EXPECT_EQ(rep.channels_used, 2);
  for (double d : rep.delivery_ratio) EXPECT_GE(d, 0.95);
}

TEST(MultiCluster, TokenRotationSharesOneChannel) {
  ProtocolConfig cfg;
  cfg.seed = 4;
  MultiClusterSimulation sim(two_adjacent_clusters(4), cfg,
                             InterClusterMode::kToken, 30.0);
  EXPECT_EQ(sim.channels_used(), 1);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  for (double d : rep.delivery_ratio) EXPECT_GE(d, 0.95);
}

TEST(MultiCluster, SharedChannelSuffersAtBoundaries) {
  ProtocolConfig cfg;
  cfg.seed = 5;
  MultiClusterSimulation shared(two_adjacent_clusters(5), cfg,
                                InterClusterMode::kShared, 30.0);
  const auto rs = shared.run(Time::sec(40), Time::sec(10));

  MultiClusterSimulation colored(two_adjacent_clusters(5), cfg,
                                 InterClusterMode::kColored, 30.0);
  const auto rc = colored.run(Time::sec(40), Time::sec(10));

  // Simultaneous polls on one channel lose packets the remedies do not.
  EXPECT_LT(rs.aggregate_delivery, rc.aggregate_delivery);
}

TEST(MultiCluster, FarApartClustersShareSafely) {
  // 1 km apart: no mutual interference even on the shared channel.
  std::vector<ClusterSpec> specs;
  Rng rng(6);
  for (int i = 0; i < 2; ++i) {
    ClusterSpec spec;
    spec.deployment = deploy_connected_uniform_square(8, 150.0, 60.0, rng);
    spec.origin = {i * 1000.0, 0.0};
    specs.push_back(std::move(spec));
  }
  ProtocolConfig cfg;
  cfg.seed = 6;
  MultiClusterSimulation sim(specs, cfg, InterClusterMode::kShared, 30.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  for (double d : rep.delivery_ratio) EXPECT_GE(d, 0.95);

  // And the colouring agrees: no adjacency → one channel suffices.
  MultiClusterSimulation colored(specs, cfg, InterClusterMode::kColored,
                                 30.0);
  EXPECT_EQ(colored.channels_used(), 1);
}

TEST(MultiCluster, SingleClusterDegeneratesToPlainProtocol) {
  std::vector<ClusterSpec> specs;
  Rng rng(7);
  ClusterSpec spec;
  spec.deployment = deploy_connected_uniform_square(10, 170.0, 60.0, rng);
  spec.origin = {0.0, 0.0};
  specs.push_back(std::move(spec));
  ProtocolConfig cfg;
  cfg.seed = 7;
  MultiClusterSimulation sim(specs, cfg, InterClusterMode::kShared, 30.0);
  const auto rep = sim.run(Time::sec(40), Time::sec(10));
  ASSERT_EQ(rep.delivery_ratio.size(), 1u);
  EXPECT_GE(rep.delivery_ratio[0], 0.95);
}

}  // namespace
}  // namespace mhp
