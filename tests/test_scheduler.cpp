// Tests for the schedule validator, the on-line greedy scheduler (Table 1)
// and the exact branch-and-bound solver.
#include <gtest/gtest.h>

#include <numeric>

#include "core/greedy_scheduler.hpp"
#include "flow/min_max_load.hpp"
#include "core/optimal_scheduler.hpp"
#include "core/reductions.hpp"
#include "core/schedule.hpp"
#include "net/deployment.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

/// The paper's Fig 2 cluster: S1, S2, S3 with head t.  S2 relays through
/// S1; S2→S1 and S3→t are compatible.
struct Fig2 {
  // Ids: S1=0, S2=1, S3=2, head=3.
  ExplicitOracle oracle{2};
  std::vector<std::vector<NodeId>> paths;

  Fig2() {
    oracle.allow_pair(Tx{1, 0}, Tx{2, 3});
    paths = {{1, 0, 3}, {2, 3}};  // S2's packet, S3's packet
  }
};

// ---------- Schedule / validator ----------

TEST(Schedule, LengthAndConcurrency) {
  Schedule s;
  s.slots = {{ScheduledTx{Tx{1, 0}, 0, 0}, ScheduledTx{Tx{2, 3}, 1, 0}},
             {ScheduledTx{Tx{0, 3}, 0, 1}}};
  EXPECT_EQ(s.length(), 2u);
  EXPECT_EQ(s.total_transmissions(), 3u);
  EXPECT_EQ(s.peak_concurrency(), 2u);
  EXPECT_NE(s.to_string().find("slot 0"), std::string::npos);
}

TEST(Validator, AcceptsFig2OptimalSchedule) {
  Fig2 fig;
  std::vector<PollingRequest> reqs = {{0, {1, 0, 3}}, {1, {2, 3}}};
  Schedule s;
  s.slots = {{ScheduledTx{Tx{1, 0}, 0, 0}, ScheduledTx{Tx{2, 3}, 1, 0}},
             {ScheduledTx{Tx{0, 3}, 0, 1}}};
  EXPECT_TRUE(validate_schedule(reqs, s, fig.oracle).ok);
}

TEST(Validator, RejectsDelayedPacket) {
  Fig2 fig;
  std::vector<PollingRequest> reqs = {{0, {1, 0, 3}}};
  Schedule s;  // hop 0 in slot 0, hop 1 delayed to slot 2
  s.slots = {{ScheduledTx{Tx{1, 0}, 0, 0}},
             {},
             {ScheduledTx{Tx{0, 3}, 0, 1}}};
  const auto r = validate_schedule(reqs, s, fig.oracle);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("delayed"), std::string::npos);
}

TEST(Validator, RejectsWrongTransmission) {
  Fig2 fig;
  std::vector<PollingRequest> reqs = {{0, {1, 0, 3}}};
  Schedule s;
  s.slots = {{ScheduledTx{Tx{1, 3}, 0, 0}},  // wrong: hop 0 is 1→0
             {ScheduledTx{Tx{0, 3}, 0, 1}}};
  EXPECT_FALSE(validate_schedule(reqs, s, fig.oracle).ok);
}

TEST(Validator, RejectsMissingRequest) {
  Fig2 fig;
  std::vector<PollingRequest> reqs = {{0, {1, 0, 3}}, {1, {2, 3}}};
  Schedule s;
  s.slots = {{ScheduledTx{Tx{1, 0}, 0, 0}}, {ScheduledTx{Tx{0, 3}, 0, 1}}};
  const auto r = validate_schedule(reqs, s, fig.oracle);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never scheduled"), std::string::npos);
}

TEST(Validator, RejectsIncompatibleSlot) {
  ExplicitOracle empty(2);  // nothing compatible
  std::vector<PollingRequest> reqs = {{0, {0, 4}}, {1, {2, 3}}};
  Schedule s;
  s.slots = {{ScheduledTx{Tx{0, 4}, 0, 0}, ScheduledTx{Tx{2, 3}, 1, 0}}};
  const auto r = validate_schedule(reqs, s, empty);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("incompatible"), std::string::npos);
}

TEST(LowerBound, MaxOfLengthAndCapacity) {
  std::vector<PollingRequest> reqs = {{0, {0, 1, 2, 9}},   // 3 hops
                                      {1, {3, 9}},         // 1 hop
                                      {2, {4, 9}},         // 1 hop
                                      {3, {5, 9}}};        // 1 hop
  // total 6 hops, order 2 → ≥3; longest path 3 → ≥3.
  EXPECT_EQ(schedule_lower_bound(reqs, 2), 3u);
  EXPECT_EQ(schedule_lower_bound(reqs, 1), 6u);
  EXPECT_EQ(schedule_lower_bound(reqs, 6), 3u);
}

// ---------- Greedy scheduler ----------

TEST(Greedy, Fig2CompletesInTwoSlots) {
  Fig2 fig;
  const auto result = run_offline(fig.oracle, fig.paths);
  EXPECT_TRUE(result.all_delivered);
  EXPECT_EQ(result.slots, 2u);  // the paper's optimal pipeline
  std::vector<PollingRequest> reqs = {{0, fig.paths[0]}, {1, fig.paths[1]}};
  EXPECT_TRUE(validate_schedule(reqs, result.schedule, fig.oracle).ok);
}

TEST(Greedy, SequentialWithoutCompatibility) {
  ExplicitOracle oracle(2);  // no pair compatible
  std::vector<std::vector<NodeId>> paths = {{1, 0, 3}, {2, 3}};
  const auto result = run_offline(oracle, paths);
  EXPECT_TRUE(result.all_delivered);
  EXPECT_EQ(result.slots, 3u);  // strictly serial
}

TEST(Greedy, OnlineInterfaceStepByStep) {
  Fig2 fig;
  GreedyPollingScheduler sched(fig.oracle);
  const RequestId r0 = sched.add_request(fig.paths[0]);
  const RequestId r1 = sched.add_request(fig.paths[1]);
  EXPECT_FALSE(sched.finished());

  auto slot0 = sched.plan_slot();
  ASSERT_EQ(slot0.size(), 2u);  // both admitted concurrently
  auto due0 = sched.due_now();
  ASSERT_EQ(due0.size(), 1u);
  EXPECT_EQ(due0[0], r1);  // single-hop request lands first
  sched.complete_slot(due0);

  auto slot1 = sched.plan_slot();
  ASSERT_EQ(slot1.size(), 1u);
  EXPECT_EQ(slot1[0].request, r0);
  auto due1 = sched.due_now();
  ASSERT_EQ(due1.size(), 1u);
  sched.complete_slot(due1);
  EXPECT_TRUE(sched.finished());
  EXPECT_EQ(sched.current_slot(), 2u);
}

TEST(Greedy, LossReactivatesRequest) {
  Fig2 fig;
  GreedyPollingScheduler sched(fig.oracle);
  sched.add_request(fig.paths[1]);  // single hop
  sched.plan_slot();
  sched.complete_slot({});  // nothing arrived
  EXPECT_FALSE(sched.finished());
  EXPECT_EQ(sched.reactivations(), 1u);
  sched.plan_slot();
  const auto due = sched.due_now();
  sched.complete_slot(due);
  EXPECT_TRUE(sched.finished());
}

TEST(Greedy, BernoulliLossStillCompletes) {
  Fig2 fig;
  Rng rng(9);
  const auto result =
      run_offline(fig.oracle, fig.paths, bernoulli_loss(0.3, rng));
  EXPECT_TRUE(result.all_delivered);
  EXPECT_GE(result.slots, 2u);
}

TEST(Greedy, AbandonRemovesActiveRequest) {
  Fig2 fig;
  GreedyPollingScheduler sched(fig.oracle);
  const RequestId id = sched.add_request(fig.paths[1]);
  sched.abandon(id);
  EXPECT_TRUE(sched.finished());
}

TEST(Greedy, PlanWithoutCompleteThrows) {
  Fig2 fig;
  GreedyPollingScheduler sched(fig.oracle);
  sched.add_request(fig.paths[1]);
  sched.plan_slot();
  EXPECT_THROW(sched.plan_slot(), ContractViolation);
}

TEST(Greedy, RespectsOracleOrderCap) {
  // Five independent single-hop requests, order 2: at most two per slot.
  ExplicitOracle oracle(2);
  std::vector<std::vector<NodeId>> paths;
  for (NodeId s = 0; s < 5; ++s) {
    paths.push_back({s, 10});
    for (NodeId t = 0; t < s; ++t)
      oracle.allow_pair(Tx{s, 10}, Tx{t, 10});
  }
  // All pairs allowed — but sharing receiver 10 is structurally invalid,
  // so scheduling is strictly serial despite the table.
  const auto result = run_offline(oracle, paths);
  EXPECT_TRUE(result.all_delivered);
  EXPECT_EQ(result.slots, 5u);
}

TEST(Greedy, ParallelismBoundedByOrder) {
  ExplicitOracle oracle(2);
  // Disjoint single-hop requests, all pairs compatible.
  std::vector<std::vector<NodeId>> paths;
  std::vector<Tx> txs;
  for (NodeId s = 0; s < 6; ++s) {
    paths.push_back({static_cast<NodeId>(2 * s),
                     static_cast<NodeId>(2 * s + 1)});
    txs.push_back(Tx{static_cast<NodeId>(2 * s),
                     static_cast<NodeId>(2 * s + 1)});
  }
  for (std::size_t i = 0; i < txs.size(); ++i)
    for (std::size_t j = i + 1; j < txs.size(); ++j)
      oracle.allow_pair(txs[i], txs[j]);
  const auto result = run_offline(oracle, paths);
  EXPECT_TRUE(result.all_delivered);
  // Order 2 caps concurrency at 2 → 3 slots.
  EXPECT_EQ(result.slots, 3u);
  EXPECT_EQ(result.schedule.peak_concurrency(), 2u);
}

class GreedyOnRandomClusters : public ::testing::TestWithParam<int> {};

TEST_P(GreedyOnRandomClusters, ValidAndWithinBounds) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + rng.below(10);
  const Deployment dep =
      deploy_connected_uniform_square(n, 150.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  std::vector<std::int64_t> demand(n, 1);
  const auto routing = solve_min_max_load(topo, demand);
  ASSERT_TRUE(routing.feasible);

  // An oracle that admits everything structurally valid up to order 3
  // whose hops belong to the topology.
  ExplicitOracle oracle(3);
  std::vector<std::vector<NodeId>> paths;
  for (NodeId s = 0; s < n; ++s) paths.push_back(routing.paths[s][0].hops);
  const auto txs = transmissions_of_paths(paths);
  for (std::size_t i = 0; i < txs.size(); ++i)
    for (std::size_t j = i + 1; j < txs.size(); ++j)
      oracle.allow_pair(txs[i], txs[j]);

  const auto result = run_offline(oracle, paths);
  ASSERT_TRUE(result.all_delivered);

  std::vector<PollingRequest> reqs;
  for (std::size_t i = 0; i < paths.size(); ++i)
    reqs.push_back({static_cast<RequestId>(i), paths[i]});
  EXPECT_TRUE(validate_schedule(reqs, result.schedule, oracle).ok);
  EXPECT_GE(result.slots, schedule_lower_bound(reqs, 3));
  std::size_t total_hops = 0;
  for (const auto& r : reqs) total_hops += r.hop_count();
  EXPECT_LE(result.slots, total_hops);  // never worse than fully serial
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOnRandomClusters,
                         ::testing::Range(0, 15));

TEST(Greedy, BestOfOrdersNeverWorse) {
  for (int seed = 0; seed < 5; ++seed) {
    Rng rng(4400 + static_cast<std::uint64_t>(seed));
    Graph g(5);
    for (NodeId i = 0; i < 5; ++i)
      for (NodeId j = i + 1; j < 5; ++j)
        if (rng.bernoulli(0.5)) g.add_edge(i, j);
    TsrfReduction red(g);
    std::vector<std::vector<NodeId>> paths;
    for (const auto& r : red.instance.requests()) paths.push_back(r.path);

    const auto base = run_offline(red.oracle, paths);
    Rng restart_rng(seed);
    const auto best = best_of_orders(red.oracle, paths, 10, restart_rng);
    ASSERT_TRUE(best.all_delivered);
    EXPECT_LE(best.slots, base.slots);
    // And the winner is still a valid schedule.
    EXPECT_GE(best.slots,
              schedule_lower_bound(red.instance.requests(), 2));
  }
}

// ---------- Optimal scheduler ----------

TEST(Optimal, MatchesKnownOptimumOnFig2) {
  Fig2 fig;
  std::vector<PollingRequest> reqs = {{0, fig.paths[0]}, {1, fig.paths[1]}};
  OptimalScheduler solver(fig.oracle);
  const auto result = solver.solve(reqs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->slots, 2u);
  EXPECT_TRUE(validate_schedule(reqs, result->schedule, fig.oracle).ok);
}

TEST(Optimal, TsrfCompleteGraphPipelinesPerfectly) {
  // Complete interference graph → Hamiltonian path exists → k+1 slots.
  for (std::size_t k : {2u, 3u, 4u}) {
    Graph g(k);
    for (NodeId i = 0; i < k; ++i)
      for (NodeId j = i + 1; j < k; ++j) g.add_edge(i, j);
    TsrfReduction red(g);
    OptimalScheduler solver(red.oracle);
    const auto result = solver.solve(red.instance.requests());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->slots, k + 1);
  }
}

TEST(Optimal, TsrfEmptyGraphIsSerial) {
  Graph g(3);  // no edges → no pipelining possible
  TsrfReduction red(g);
  OptimalScheduler solver(red.oracle);
  const auto result = solver.solve(red.instance.requests());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->slots, 6u);  // 2 slots per branch, strictly serial
}

TEST(Optimal, NeverWorseThanGreedy) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(3000 + static_cast<std::uint64_t>(seed));
    // Random TSRF-like instance with random pair compatibilities.
    const std::size_t k = 3 + rng.below(3);
    Graph g(k);
    for (NodeId i = 0; i < k; ++i)
      for (NodeId j = i + 1; j < k; ++j)
        if (rng.bernoulli(0.5)) g.add_edge(i, j);
    TsrfReduction red(g);
    const auto reqs = red.instance.requests();

    std::vector<std::vector<NodeId>> paths;
    for (const auto& r : reqs) paths.push_back(r.path);
    const auto greedy = run_offline(red.oracle, paths);
    ASSERT_TRUE(greedy.all_delivered);

    OptimalScheduler solver(red.oracle);
    const auto opt = solver.solve(reqs);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(opt->slots, greedy.slots);
    EXPECT_TRUE(validate_schedule(reqs, opt->schedule, red.oracle).ok);
    EXPECT_GE(opt->slots, schedule_lower_bound(reqs, 2));
  }
}

TEST(Optimal, BudgetDecision) {
  Graph g(3);  // empty: optimum is 6
  TsrfReduction red(g);
  OptimalScheduler solver(red.oracle);
  EXPECT_FALSE(solver.solve(red.instance.requests(), 4).has_value());
  EXPECT_TRUE(solver.solve(red.instance.requests(), 6).has_value());
}

TEST(Optimal, EmptyInstance) {
  ExplicitOracle oracle(2);
  OptimalScheduler solver(oracle);
  const auto result = solver.solve({});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->slots, 0u);
}

TEST(OfflineRun, TruncatedRunStillReportsCounters) {
  // Every hop fails, so the lone request is re-polled forever and the
  // run hits max_slots.  The truncated result must still carry the
  // attempt counters (they used to come back zeroed on this path).
  ExplicitOracle oracle(2);
  const std::vector<std::vector<NodeId>> paths = {{0, 9}};
  const auto always_lose = [](const ScheduledTx&, std::size_t) {
    return false;
  };
  const auto r = run_offline(oracle, paths, always_lose, /*max_slots=*/10);
  EXPECT_FALSE(r.all_delivered);
  EXPECT_EQ(r.slots, 10u);
  EXPECT_GE(r.transmissions, 10u);
  EXPECT_GE(r.reactivations, 9u);
}

TEST(Greedy, IdenticalPathsNeverShareOneTransmission) {
  // Two packets from the same sensor use the same edge: the set-semantics
  // oracle cannot tell two copies apart, so the scheduler itself must
  // serialize them (one radio sends one frame per slot).
  ExplicitOracle oracle(4);
  const std::vector<std::vector<NodeId>> paths = {{0, 9}, {0, 9}};
  const auto r = run_offline(oracle, paths);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_EQ(r.slots, 2u);
  for (const auto& slot : r.schedule.slots) EXPECT_LE(slot.size(), 1u);
}

TEST(Optimal, IdenticalPathsNeverShareOneTransmission) {
  ExplicitOracle oracle(4);
  std::vector<PollingRequest> reqs;
  reqs.push_back(PollingRequest{0, {0, 9}});
  reqs.push_back(PollingRequest{1, {0, 9}});
  OptimalScheduler solver(oracle);
  const auto result = solver.solve(reqs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->slots, 2u);
  EXPECT_TRUE(validate_schedule(reqs, result->schedule, oracle).ok);
}

}  // namespace
}  // namespace mhp
