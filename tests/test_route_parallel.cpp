// Speculative parallel δ-probe contract: solve_balanced must be
// byte-identical for every probe_workers value (the probes only answer
// the scheduling-independent feasibility question, and the decomposed
// flow always comes from the one from-zero solve at δ*).  The per-cell
// δ floor and warm hints are pure accelerators under the same contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/route_repair.hpp"
#include "core/routing.hpp"
#include "exp/fig_common.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "route/cell_grid.hpp"
#include "route/routing_engine.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"

namespace mhp {
namespace {

using route::ClusterRouteJob;
using route::RoutingEngine;
using route::SolveKind;
using route::SolvePolicy;

// Full-fidelity serialization of a solver result: any divergence in
// paths, per-path units or loads shows up as a string mismatch.
std::string fingerprint(const MinMaxLoadResult& r) {
  std::ostringstream out;
  out << "feasible=" << r.feasible << " max_load=" << r.max_load << "\n";
  for (std::size_t s = 0; s < r.paths.size(); ++s) {
    out << s << " load=" << r.load[s] << ":";
    for (const UnitPath& p : r.paths[s]) {
      out << " [";
      for (NodeId hop : p.hops) out << hop << ",";
      out << "]x" << p.units;
    }
    out << "\n";
  }
  return out.str();
}

std::string fingerprint(const RelayPlan& plan) {
  std::ostringstream out;
  out << "max_load=" << plan.max_load() << "\n";
  for (std::size_t s = 0; s < plan.num_sensors(); ++s) {
    out << s << " load=" << plan.load(s) << ":";
    for (const UnitPath& p : plan.paths(s)) {
      out << " [";
      for (NodeId hop : p.hops) out << hop << ",";
      out << "]x" << p.units;
    }
    out << "\n";
  }
  return out.str();
}

struct NamedTopology {
  std::string name;
  ClusterTopology topo;
};

// Every shipped deployment shape: random square, deterministic grid,
// concentric rings (guaranteed multi-hop) and the eval rejection-sampled
// connected square.
std::vector<NamedTopology> shipped_topologies() {
  std::vector<NamedTopology> out;
  Rng rng(123);
  out.push_back({"uniform_square",
                 disc_topology(deploy_uniform_square(60, 200.0, rng), 60.0)});
  out.push_back({"grid", disc_topology(deploy_grid(49, 120.0), 60.0)});
  out.push_back({"rings", disc_topology(deploy_rings(4, 8, 25.0), 60.0)});
  out.push_back({"connected_square",
                 disc_topology(exp::eval_deployment(80, 11), exp::kSensorRange)});
  return out;
}

TEST(RouteParallel, BalancedDigestEqualAcrossWorkerCounts) {
  for (const NamedTopology& t : shipped_topologies()) {
    const std::size_t n = t.topo.num_sensors();
    std::vector<std::int64_t> demand(n, 1);
    for (std::size_t s = 0; s < n; s += 5) demand[s] = 3;

    RoutingEngine serial(SolvePolicy{MaxFlowAlgo::kDinic, true, 1});
    const std::string want = fingerprint(serial.solve_balanced(t.topo, demand));
    EXPECT_EQ(want, fingerprint(solve_min_max_load(t.topo, demand))) << t.name;
    for (std::size_t workers : {4u, 8u, 0u}) {  // 0 = hardware concurrency
      RoutingEngine par(SolvePolicy{MaxFlowAlgo::kDinic, true, workers});
      EXPECT_EQ(want, fingerprint(par.solve_balanced(t.topo, demand)))
          << t.name << " workers=" << workers;
    }
  }
}

TEST(RouteParallel, ColdAndEdmondsKarpModesAgreeAcrossWorkerCounts) {
  const ClusterTopology topo =
      disc_topology(exp::eval_deployment(50, 3), exp::kSensorRange);
  std::vector<std::int64_t> demand(50, 1);
  std::vector<std::int64_t> weight(50);
  for (std::size_t s = 0; s < weight.size(); ++s) weight[s] = 1 + s % 3;

  for (MaxFlowAlgo algo : {MaxFlowAlgo::kDinic, MaxFlowAlgo::kEdmondsKarp}) {
    for (bool warm : {true, false}) {
      RoutingEngine serial(SolvePolicy{algo, warm, 1});
      RoutingEngine par(SolvePolicy{algo, warm, 4});
      EXPECT_EQ(fingerprint(serial.solve_balanced(topo, demand, weight)),
                fingerprint(par.solve_balanced(topo, demand, weight)))
          << "algo=" << static_cast<int>(algo) << " warm=" << warm;
    }
  }
}

TEST(RouteParallel, ReusedParallelEngineMatchesFreshPerSolve) {
  RoutingEngine reused(SolvePolicy{MaxFlowAlgo::kDinic, true, 4});
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ClusterTopology topo =
        disc_topology(exp::eval_deployment(30, seed), exp::kSensorRange);
    const std::vector<std::int64_t> demand(30, 1);
    RoutingEngine fresh(SolvePolicy{MaxFlowAlgo::kDinic, true, 4});
    EXPECT_EQ(fingerprint(reused.solve_balanced(topo, demand)),
              fingerprint(fresh.solve_balanced(topo, demand)))
        << "seed=" << seed;
  }
}

// ---------- the per-cell δ floor ----------

TEST(RouteParallel, CellHintNeverChangesResultsAndTightensFloor) {
  // 600 sensors clears kCellFloorMinSensors, so the hint actually runs
  // the per-cell batch; the result must not move by a byte.
  const Deployment d = exp::eval_deployment(600, 21);
  const ClusterTopology topo = disc_topology(d, exp::kSensorRange);
  const std::vector<std::int64_t> demand(600, 1);

  RoutingEngine plain(SolvePolicy{MaxFlowAlgo::kDinic, true, 1});
  const MinMaxLoadResult base = plain.solve_balanced(topo, demand);
  ASSERT_TRUE(base.feasible);
  const std::int64_t plain_floor = plain.last_stats().delta_lower_bound;

  RoutingEngine hinted(SolvePolicy{MaxFlowAlgo::kDinic, true, 1});
  hinted.set_cell_hint(
      route::grid_cells(std::span(d.positions.data(), d.num_sensors())));
  const MinMaxLoadResult with_hint = hinted.solve_balanced(topo, demand);
  EXPECT_EQ(fingerprint(base), fingerprint(with_hint));

  const route::SolveStats& stats = hinted.last_stats();
  EXPECT_GE(stats.cell_floor, 0);
  EXPECT_GE(stats.delta_lower_bound, plain_floor);
  EXPECT_LE(stats.delta_lower_bound, stats.delta_star);
  EXPECT_EQ(stats.delta_star, with_hint.max_load);

  // And the hint composes with parallel probes.
  RoutingEngine both(SolvePolicy{MaxFlowAlgo::kDinic, true, 4});
  both.set_cell_hint(
      route::grid_cells(std::span(d.positions.data(), d.num_sensors())));
  EXPECT_EQ(fingerprint(base), fingerprint(both.solve_balanced(topo, demand)));
}

TEST(RouteParallel, GridCellsShapes) {
  Rng rng(7);
  const Deployment d = deploy_uniform_square(200, 150.0, rng);
  const auto cells =
      route::grid_cells(std::span(d.positions.data(), d.num_sensors()));
  ASSERT_EQ(cells.size(), d.num_sensors());
  std::int32_t max_id = 0;
  for (const std::int32_t c : cells) {
    EXPECT_GE(c, 0);
    max_id = std::max(max_id, c);
  }
  EXPECT_LT(max_id, 16 * 16);

  // Coincident points collapse to one cell.
  const std::vector<Vec2> same(5, Vec2{3.0, 4.0});
  for (const std::int32_t c : route::grid_cells(std::span(same)))
    EXPECT_EQ(c, 0);
}

// ---------- warm-hinted replans under parallel probes ----------

TEST(RouteParallel, WarmHintedReplanDigestEqualAcrossWorkerCounts) {
  const ClusterTopology topo =
      disc_topology(exp::eval_deployment(40, 7), exp::kSensorRange);
  const std::vector<std::int64_t> demand(40, 1);
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  NodeId victim = 0;
  for (NodeId s = 0; s < plan.num_sensors(); ++s)
    if (plan.load(s) > 1) {
      victim = s;
      break;
    }

  RoutingEngine serial(SolvePolicy{MaxFlowAlgo::kDinic, true, 1});
  serial.set_warm_hint(&plan.all_paths());
  const RouteRepair want = repair_routes(
      topo, {victim}, demand, RoutingPolicy::kBalancedMaxFlow, &serial, &plan);
  for (std::size_t workers : {4u, 8u}) {
    RoutingEngine par(SolvePolicy{MaxFlowAlgo::kDinic, true, workers});
    par.set_warm_hint(&plan.all_paths());
    const RouteRepair got = repair_routes(
        topo, {victim}, demand, RoutingPolicy::kBalancedMaxFlow, &par, &plan);
    EXPECT_EQ(fingerprint(want.plan), fingerprint(got.plan))
        << "workers=" << workers;
    EXPECT_EQ(want.orphaned, got.orphaned) << "workers=" << workers;
  }
}

// ---------- worker handoff through solve_clusters ----------

TEST(RouteParallel, SingleJobSolveClustersHandsWorkersToProbes) {
  const ClusterTopology topo =
      disc_topology(exp::eval_deployment(70, 13), exp::kSensorRange);
  ClusterRouteJob job;
  job.topo = &topo;
  job.demand.assign(70, 1);
  std::vector<ClusterRouteJob> jobs;
  jobs.push_back(std::move(job));

  const auto serial = route::solve_clusters(jobs, 1);
  ASSERT_EQ(serial.size(), 1u);
  for (std::size_t workers : {4u, 8u, 0u}) {
    const auto par = route::solve_clusters(jobs, workers);
    ASSERT_EQ(par.size(), 1u);
    EXPECT_EQ(fingerprint(serial[0]), fingerprint(par[0]))
        << "workers=" << workers;
  }
}

TEST(RouteParallel, PollingScenarioReportByteIdenticalAcrossRouteWorkers) {
  scenario::Scenario s =
      scenario::default_scenario(scenario::StackKind::kPolling);
  s.deployment.n_sensors = 16;
  s.run.duration = Time::sec(10);
  s.run.warmup = Time::sec(2);
  s.run.record_perf = false;

  s.route_workers = 1;
  const std::string serial = scenario::run_scenario(s).dump();
  s.route_workers = 8;
  EXPECT_EQ(serial, scenario::run_scenario(s).dump());
  s.route_workers = 0;  // hardware concurrency
  EXPECT_EQ(serial, scenario::run_scenario(s).dump());
}

}  // namespace
}  // namespace mhp
