// Joint routing + polling (§III-E): candidate enumeration and the exact
// joint optimum vs the paper's decomposition.
#include <gtest/gtest.h>

#include "core/jmhrp.hpp"
#include "net/deployment.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

/// Diamond: 2 → {0,1} → head.
ClusterTopology diamond() {
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  return ClusterTopology(std::move(g), {true, true, false});
}

TEST(CandidatePaths, EnumeratesSimplePathsShortestFirst) {
  const auto topo = diamond();
  const auto cands = candidate_paths(topo, 2, 4);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].size(), 3u);  // both 2-hop
  EXPECT_EQ(cands[1].size(), 3u);
  EXPECT_EQ(cands[0].front(), 2u);
  EXPECT_EQ(cands[0].back(), topo.head());
  EXPECT_NE(cands[0][1], cands[1][1]);  // distinct relays
}

TEST(CandidatePaths, FirstLevelSensorDirect) {
  const auto topo = diamond();
  const auto cands = candidate_paths(topo, 0, 4);
  ASSERT_GE(cands.size(), 1u);
  EXPECT_EQ(cands[0], (std::vector<NodeId>{0, topo.head()}));
}

TEST(CandidatePaths, RespectsCaps) {
  // Dense clique of 5 + head hears all: many paths exist, cap to 3.
  Graph g(5);
  for (NodeId a = 0; a < 5; ++a)
    for (NodeId b = a + 1; b < 5; ++b) g.add_edge(a, b);
  ClusterTopology topo(std::move(g), {true, true, true, true, true});
  EXPECT_LE(candidate_paths(topo, 0, 3).size(), 3u);
}

TEST(Jmhrp, ExactNeverWorseThanDecomposed) {
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(8800 + static_cast<std::uint64_t>(trial));
    const std::size_t n = 4 + rng.below(3);
    const Deployment dep =
        deploy_connected_uniform_square(n, 130.0, 60.0, rng);
    const ClusterTopology topo = disc_topology(dep, 60.0);

    ExplicitOracle oracle(2);
    std::vector<Tx> txs;
    for (NodeId a = 0; a < n; ++a) {
      if (topo.head_hears(a)) txs.push_back(Tx{a, topo.head()});
      for (NodeId b : topo.sensor_links().neighbors(a))
        txs.push_back(Tx{a, b});
    }
    for (std::size_t i = 0; i < txs.size(); ++i)
      for (std::size_t j = i + 1; j < txs.size(); ++j)
        if (rng.bernoulli(0.5)) oracle.allow_pair(txs[i], txs[j]);

    const auto exact = solve_jmhrp_exact(topo, oracle);
    const auto decomp = solve_jmhrp_decomposed(topo, oracle);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(decomp.has_value());
    EXPECT_LE(exact->max_power_rate, decomp->max_power_rate + 1e-9);

    // The joint result's schedule must be valid for its chosen paths.
    std::vector<PollingRequest> reqs;
    for (std::size_t i = 0; i < exact->paths.size(); ++i)
      reqs.push_back({static_cast<RequestId>(i), exact->paths[i]});
    EXPECT_TRUE(validate_schedule(reqs, exact->schedule, oracle).ok);
  }
}

TEST(Jmhrp, BetaZeroReducesToPureLoadBalancing) {
  const auto topo = diamond();
  ExplicitOracle oracle(2);  // nothing concurrent: schedule is serial
  JmhrpParams params{1.0, 0.0};
  const auto exact = solve_jmhrp_exact(topo, oracle, params);
  ASSERT_TRUE(exact.has_value());
  // With β = 0 the optimum is the min-max load: 2 (sensor 2 sends 1,
  // each gateway at most its own + maybe the relay).
  EXPECT_DOUBLE_EQ(exact->max_power_rate, 2.0);
}

TEST(Jmhrp, LargeBetaPrefersShortSchedules) {
  const auto topo = diamond();
  // Allow 2's uplink to overlap the *other* gateway's own transmission.
  ExplicitOracle oracle(2);
  oracle.allow_pair(Tx{2, 0}, Tx{1, topo.head()});
  JmhrpParams heavy{0.0, 1.0};  // only the polling time matters
  const auto exact = solve_jmhrp_exact(topo, oracle, heavy);
  ASSERT_TRUE(exact.has_value());
  // Pipelining shaves one slot off the serial 4: route 2 via gateway 0
  // and overlap with gateway 1's own packet.
  EXPECT_EQ(exact->slots, 3u);
}

}  // namespace
}  // namespace mhp
