#include <gtest/gtest.h>

#include <algorithm>

#include "util/assertx.hpp"
#include "net/cluster.hpp"
#include "net/deployment.hpp"
#include "net/graph.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- Graph ----------

TEST(Graph, EdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 2);  // duplicate ignored
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, SelfLoopThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
}

TEST(Graph, BfsHops) {
  Graph g(5);  // path 0-1-2-3, isolated 4
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = g.bfs_hops(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], Graph::kUnreachable);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, ConnectedDetection) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

// ---------- ClusterTopology ----------

TEST(ClusterTopology, LevelsFromMultiSourceBfs) {
  // 0 and 1 first level; 2 behind 0; 3 behind 2; 4 unreachable.
  Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  ClusterTopology topo(std::move(g), {true, true, false, false, false});
  EXPECT_EQ(topo.level(0), 1u);
  EXPECT_EQ(topo.level(1), 1u);
  EXPECT_EQ(topo.level(2), 2u);
  EXPECT_EQ(topo.level(3), 3u);
  EXPECT_EQ(topo.level(4), ClusterTopology::kUnreachable);
  EXPECT_FALSE(topo.fully_connected());
  EXPECT_EQ(topo.max_level(), 3u);
  EXPECT_EQ(topo.first_level(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(topo.head(), 5u);
}

TEST(ClusterTopology, SizeMismatchThrows) {
  Graph g(3);
  EXPECT_THROW(ClusterTopology(std::move(g), {true, false}),
               ContractViolation);
}

// ---------- Deployments ----------

TEST(Deployment, UniformSquareBoundsAndHead) {
  Rng rng(1);
  const Deployment d = deploy_uniform_square(100, 200.0, rng);
  EXPECT_EQ(d.num_sensors(), 100u);
  EXPECT_EQ(d.head_pos(), (Vec2{0.0, 0.0}));
  for (NodeId s = 0; s < 100; ++s) {
    EXPECT_LE(std::abs(d.sensor_pos(s).x), 100.0);
    EXPECT_LE(std::abs(d.sensor_pos(s).y), 100.0);
  }
}

TEST(Deployment, GridIsDeterministicAndBounded) {
  const Deployment a = deploy_grid(30, 100.0);
  const Deployment b = deploy_grid(30, 100.0);
  EXPECT_EQ(a.num_sensors(), 30u);
  for (NodeId s = 0; s < 30; ++s) {
    EXPECT_EQ(a.sensor_pos(s), b.sensor_pos(s));
    EXPECT_LE(std::abs(a.sensor_pos(s).x), 50.0);
  }
}

TEST(Deployment, RingsAreConcentric) {
  const Deployment d = deploy_rings(3, 8, 40.0);
  EXPECT_EQ(d.num_sensors(), 24u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t k = 0; k < 8; ++k) {
      const double dist =
          distance(d.sensor_pos(static_cast<NodeId>(r * 8 + k)),
                   d.head_pos());
      EXPECT_NEAR(dist, 40.0 * static_cast<double>(r + 1), 1e-9);
    }
}

TEST(DiscTopology, LinksWithinRange) {
  Deployment d;
  d.positions = {{0, 0}, {50, 0}, {120, 0}, {0, 0}};  // head co-located w/ 0
  const ClusterTopology topo = disc_topology(d, 60.0);
  EXPECT_TRUE(topo.sensors_linked(0, 1));   // 50 m
  EXPECT_FALSE(topo.sensors_linked(0, 2));  // 120 m
  EXPECT_FALSE(topo.sensors_linked(1, 2));  // 70 m
}

TEST(DiscTopology, HeadHearsByUplinkRange) {
  Deployment d;
  d.positions = {{10, 0}, {60, 0}, {100, 0}, {0, 0}};
  const ClusterTopology topo = disc_topology(d, 60.0);
  EXPECT_TRUE(topo.head_hears(0));   // 10 m
  EXPECT_TRUE(topo.head_hears(1));   // 60 m, boundary inclusive
  EXPECT_FALSE(topo.head_hears(2));  // 100 m
  EXPECT_EQ(topo.level(2), 2u);      // relays through sensor 1 (40 m)
}

TEST(TopologyFromPredicate, AsymmetricLinksDropped) {
  // 0 hears 1 but 1 does not hear 0: no sensor link.
  const auto topo = topology_from_predicate(2, [](NodeId a, NodeId b) {
    if (a == 0 && b == 1) return false;
    if (a == 1 && b == 0) return true;
    return b == 2;  // everyone reaches the head
  });
  EXPECT_FALSE(topo.sensors_linked(0, 1));
  EXPECT_TRUE(topo.head_hears(0));
  EXPECT_TRUE(topo.head_hears(1));
}

TEST(ConnectedDeployment, AlwaysFullyConnected) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Deployment d =
        deploy_connected_uniform_square(40, 200.0, 60.0, rng);
    EXPECT_TRUE(disc_topology(d, 60.0).fully_connected());
  }
}

// ---------- Grid vs brute-force topology ----------

// The spatial-grid path must produce a byte-identical ClusterTopology to
// the all-pairs scan: same neighbor lists in the same order (downstream
// tie-breaks iterate them), same head links, same levels.
void expect_identical_topology(const Deployment& d, double range) {
  const ClusterTopology grid = disc_topology(d, range);
  const ClusterTopology brute = disc_topology_brute_force(d, range);
  ASSERT_EQ(grid.sensor_links().size(), brute.sensor_links().size());
  for (NodeId v = 0; v < d.num_sensors(); ++v)
    EXPECT_EQ(grid.sensor_links().neighbors(v),
              brute.sensor_links().neighbors(v))
        << "neighbor list of node " << v;
  for (NodeId s = 0; s < d.num_sensors(); ++s) {
    EXPECT_EQ(grid.head_hears(s), brute.head_hears(s)) << "head link " << s;
    EXPECT_EQ(grid.level(s), brute.level(s)) << "level of " << s;
  }
}

TEST(DiscTopologyGrid, MatchesBruteForceOnRandomDeployments) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(trial) * 11;
    const Deployment d =
        deploy_uniform_square(n, 120.0 + 15.0 * trial, rng);
    expect_identical_topology(d, 60.0);
  }
}

TEST(DiscTopologyGrid, CoLocatedSensorsFormACompleteGraph) {
  Deployment d;
  for (int i = 0; i < 20; ++i) d.positions.push_back({5.0, 5.0});
  d.positions.push_back({0.0, 0.0});  // head
  expect_identical_topology(d, 60.0);
  const ClusterTopology topo = disc_topology(d, 60.0);
  EXPECT_EQ(topo.sensor_links().edge_count(), 20u * 19u / 2u);
}

TEST(DiscTopologyGrid, PairsExactlyAtSensorRangeAreLinked) {
  // Representable exact-boundary distances: collinear 60 and the 36-48-60
  // right triangle.  The grid's fast path must defer to the same
  // distance() verdict the brute-force scan uses.
  Deployment d;
  d.positions = {{0, 0}, {60, 0}, {120, 0}, {36, 48}, {0, 0}};
  expect_identical_topology(d, 60.0);
  const ClusterTopology topo = disc_topology(d, 60.0);
  EXPECT_TRUE(topo.sensors_linked(0, 1));   // exactly 60 m
  EXPECT_TRUE(topo.sensors_linked(0, 3));   // hypot(36, 48) = 60 m
  EXPECT_FALSE(topo.sensors_linked(0, 2));  // 120 m
  EXPECT_TRUE(topo.sensors_linked(1, 3));   // hypot(24, 48) < 60
}

TEST(DiscTopologyGrid, EmptyAndSingletonDeployments) {
  Deployment none;
  none.positions = {{0.0, 0.0}};  // head only
  expect_identical_topology(none, 60.0);
  EXPECT_EQ(disc_topology(none, 60.0).num_sensors(), 0u);

  Deployment one;
  one.positions = {{10.0, 10.0}, {0.0, 0.0}};
  expect_identical_topology(one, 60.0);
  EXPECT_EQ(disc_topology(one, 60.0).sensor_links().edge_count(), 0u);
}

TEST(DiscTopologyGrid, SparseSpreadLayoutUsesCappedCells) {
  // Sensor pairs strewn across ~100 km: the natural cell count would be
  // O(area), so the grid caps cells by enlarging them — which must not
  // change any verdict.
  Deployment d;
  for (int i = 0; i < 15; ++i) {
    const double x = static_cast<double>(i) * 7000.0;
    d.positions.push_back({x, 0.0});
    d.positions.push_back({x + 50.0, 10.0});
  }
  d.positions.push_back({0.0, 0.0});  // head
  expect_identical_topology(d, 60.0);
  // Each strewn pair is linked; nothing links across pairs.
  EXPECT_EQ(disc_topology(d, 60.0).sensor_links().edge_count(), 15u);
}

// ---------- Frames ----------

TEST(Frame, DescribeMentionsKindAndEndpoints) {
  Frame f;
  f.uid = 7;
  f.kind = FrameKind::kControl;
  f.src = 3;
  f.dst = kBroadcast;
  f.size_bytes = 16;
  const std::string s = f.describe();
  EXPECT_NE(s.find("control"), std::string::npos);
  EXPECT_NE(s.find("#7"), std::string::npos);
  EXPECT_NE(s.find("*"), std::string::npos);
}

TEST(FrameUidSource, MonotonicallyIncreasing) {
  FrameUidSource uids;
  const auto a = uids.next();
  const auto b = uids.next();
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace mhp
