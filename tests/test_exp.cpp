// Experiment harness: sweeps must be deterministic regardless of worker
// count (per-point seeds, ordered results).
#include <gtest/gtest.h>

#include <functional>

#include "exp/sweep.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

TEST(Sweep, ResultsInPointOrder) {
  std::vector<int> points{5, 3, 9, 1};
  const auto results = mhp::exp::sweep<int, int>(
      points, std::function<int(const int&)>([](const int& p) {
        return p * 10;
      }),
      2);
  EXPECT_EQ(results, (std::vector<int>{50, 30, 90, 10}));
}

TEST(Sweep, WorkerCountDoesNotChangeResults) {
  std::vector<std::uint64_t> points(40);
  for (std::size_t i = 0; i < points.size(); ++i) points[i] = i;
  auto fn = std::function<double(const std::uint64_t&)>(
      [](const std::uint64_t& seed) {
        Rng rng(seed);  // per-point seed: identical on any worker
        double acc = 0.0;
        for (int k = 0; k < 100; ++k) acc += rng.uniform();
        return acc;
      });
  const auto serial = mhp::exp::sweep<std::uint64_t, double>(points, fn, 1);
  const auto wide = mhp::exp::sweep<std::uint64_t, double>(points, fn, 8);
  EXPECT_EQ(serial, wide);
}

TEST(Sweep, EmptyPoints) {
  const auto results = mhp::exp::sweep<int, int>(
      {}, std::function<int(const int&)>([](const int&) { return 0; }));
  EXPECT_TRUE(results.empty());
}

TEST(Sweep, ExceptionPropagates) {
  std::vector<int> points{1, 2, 3};
  EXPECT_THROW(
      (mhp::exp::sweep<int, int>(points,
                                 std::function<int(const int&)>(
                                     [](const int& p) -> int {
                                       if (p == 2)
                                         throw std::runtime_error("boom");
                                       return p;
                                     }),
                                 2)),
      std::runtime_error);
}

}  // namespace
}  // namespace mhp
